#!/usr/bin/env python3
"""Fail on dead relative links in the repo's Markdown files.

Scans every tracked *.md file (or the paths given as arguments) for
Markdown links/images, skips absolute URLs (http/https/mailto) and
pure in-page anchors, resolves relative targets against the containing
file, and exits nonzero listing every target that does not exist.

Stdlib only; run from anywhere inside the repo:

    python3 tools/check_docs_links.py
"""

import re
import subprocess
import sys
from pathlib import Path

# [text](target) and ![alt](target); target ends at the first ')' or
# space (titles like (foo "Title") are split off).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)[^)]*\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def repo_root() -> Path:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, check=True,
    )
    return Path(out.stdout.strip())


def markdown_files(root: Path, argv: list[str]) -> list[Path]:
    if argv:
        return [Path(a).resolve() for a in argv]
    out = subprocess.run(
        ["git", "ls-files", "*.md"],
        capture_output=True, text=True, check=True, cwd=root,
    )
    return [root / line for line in out.stdout.splitlines() if line]


def strip_code(text: str) -> str:
    """Drop fenced and inline code so example links are not checked."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`\n]*`", "", text)


def main() -> int:
    root = repo_root()
    dead: list[str] = []
    for md in markdown_files(root, sys.argv[1:]):
        for target in LINK_RE.findall(strip_code(md.read_text())):
            if target.startswith(SKIP_PREFIXES):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                dead.append(f"{md.relative_to(root)}: {target}")
    if dead:
        print("dead relative links:", file=sys.stderr)
        for entry in dead:
            print(f"  {entry}", file=sys.stderr)
        return 1
    print(f"ok: no dead relative links")
    return 0


if __name__ == "__main__":
    sys.exit(main())
