/**
 * @file
 * The `powermove` command-line front-end.
 *
 * Reads one or more OpenQASM 2.0 files, compiles them concurrently
 * through the batch CompilationService, writes one ISA JSON document
 * per input (`<stem>.isa.json`), and prints a fidelity/summary report
 * per circuit. Duplicate inputs (or re-runs against a warm service) are
 * deduplicated by the content-addressed cache.
 *
 * Usage:
 *   powermove [options] <file.qasm>...
 *
 * Value-taking options accept both `--flag value` and `--flag=value`.
 *
 * Options:
 *   --jobs N       worker threads (default: one per hardware thread)
 *   --jobs-async   route jobs through the async JobService (priority,
 *                  deadline, and admission-control aware) instead of
 *                  the blocking batch service
 *   --cache-dir DIR  persistent on-disk compile cache: results survive
 *                  restarts and are shared across processes pointed at
 *                  the same directory
 *   --priority P   job priority for every input (higher runs earlier;
 *                  may be negative; --jobs-async only)
 *   --deadline-ms D  per-job queue-wait bound in milliseconds; jobs
 *                  still queued past it expire (--jobs-async only)
 *   --max-queue N  per-shard admission bound: queued jobs beyond it are
 *                  rejected (default 1024, 0 = unbounded;
 *                  --jobs-async only)
 *   --num-aods N   independent AOD arrays per compilation (default 1)
 *   --no-storage   storage-free configuration (all qubits in compute)
 *   --seed S       base RNG seed (per-job streams are derived from it)
 *   --alpha A      stage-ordering weight alpha in (0, 1] (default 0.5)
 *   --placement P  initial-layout strategy: row-major (default),
 *                  column-interleaved, usage-frequency, or
 *                  routing-aware (interaction-distance-minimizing,
 *                  src/placement/)
 *   --placement-refine-iters N  routing-aware local-search budget in
 *                  sweeps (default 32; 0 = greedy layout only)
 *   --stage-partition S  CZ-block stage partition: linear (default, the
 *                  bit-identical graph-free scan), coloring (the
 *                  paper's Sec. 4.1 edge coloring), or balanced
 *                  (linear + stage-width rebalance)
 *   --routing R    stage-transition routing: continuous (default, the
 *                  paper's Sec. 5 router), reuse (gate-aware atom
 *                  reuse, src/reuse/), fast (bit-identical incremental
 *                  fast path, src/route/fast_router.*), or windowed
 *                  (best-of-N gate orderings, src/route/
 *                  windowed_router.*)
 *   --residency P  reuse residency (cache replacement) policy: lookahead
 *                  (default), lru, lti, or fidelity (--routing reuse
 *                  only; src/reuse/policy.*)
 *   --reuse-lookahead N  reuse hold window in stages (default 4)
 *   --routing-window N  windowed-routing candidate orderings per stage
 *                  transition (default 8; --routing windowed only)
 *   --batch-policy P  AOD batching: in-order (default, the paper's
 *                  chunking) or duration-balanced
 *   --list-strategies  print every strategy dimension with its value
 *                  names and exit
 *   --profile      print the per-pass time/counter breakdown per input
 *   --fuse         fuse commutable CZ blocks before compiling
 *   --out-dir DIR  directory for ISA JSON (default: next to each input)
 *   --no-json      skip ISA JSON emission
 *   --stats        print service counters (and, with --profile, the
 *                  service-wide per-pass totals) before exiting
 *
 * Observability (any of these turns instrumentation on; without them
 * the services run with observability disabled — one branch per site):
 *   --metrics-out PATH   write the metric registry as Prometheus text
 *                  exposition on exit
 *   --metrics-json PATH  write the same registry as JSON on exit
 *   --trace-out PATH  write per-job spans as Chrome trace-event JSON
 *                  (loadable in Perfetto / chrome://tracing); implies
 *                  --jobs-async, since spans stitch JobService
 *                  timelines
 *   --log-level L  structured logfmt logging to stderr at trace, debug,
 *                  info, warn, error, or off (default info when any
 *                  observability flag is set)
 *   --slow-job-ms D  log a warn-level slow_job line for any job whose
 *                  submit-to-terminal time is >= D ms (async only)
 *   --stats-every-ms N  log one info-level stats line every N ms (and a
 *                  final one on shutdown)
 *   --stats-json PATH  write the tiered service counters as JSON on
 *                  exit (works with and without the flags above)
 *   --help         this text
 *
 * Exit status: 0 if every input compiled, 1 otherwise.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "circuit/fuse.hpp"
#include "common/error.hpp"
#include "compiler/strategies.hpp"
#include "isa/json.hpp"
#include "isa/validator.hpp"
#include "obs/observability.hpp"
#include "qasm/converter.hpp"
#include "report/summary.hpp"
#include "service/job_service.hpp"
#include "service/service.hpp"

namespace {

using namespace powermove;

struct CliOptions
{
    std::vector<std::string> inputs;
    std::size_t jobs = 0; // 0 = hardware concurrency
    CompilerOptions compiler;
    bool fuse = false;
    bool emit_json = true;
    bool print_stats = false;
    bool print_profile = false;
    std::string out_dir;
    /** Route jobs through the async JobService instead of the batch one. */
    bool async = false;
    /** Persistent disk-cache directory; empty disables the disk tier. */
    std::string cache_dir;
    /** Priority applied to every submission (--jobs-async only). */
    int priority = 0;
    /** Queue-wait deadline per job in ms; 0 = none (--jobs-async only). */
    double deadline_ms = 0.0;
    /** Per-shard admission bound; 0 = unbounded (--jobs-async only). */
    std::size_t max_queue = 1024;
    /** Prometheus text exposition destination; empty = no export. */
    std::string metrics_out;
    /** JSON metrics destination; empty = no export. */
    std::string metrics_json;
    /** Chrome trace-event JSON destination; empty = no export. */
    std::string trace_out;
    /** Tiered service counters JSON destination; empty = no export. */
    std::string stats_json;
    /** Structured-log threshold; meaningful when log_level_set. */
    obs::LogLevel log_level = obs::LogLevel::Info;
    bool log_level_set = false;
    /** slow_job warn threshold in ms; 0 disables (--jobs-async only). */
    double slow_job_ms = 0.0;
    /** Periodic stats-line interval in ms; 0 disables. */
    std::size_t stats_every_ms = 0;
};

void
printUsage(std::FILE *stream)
{
    std::fprintf(
        stream,
        "usage: powermove [options] <file.qasm>...\n"
        "\n"
        "Compiles OpenQASM 2.0 circuits for a zoned neutral-atom machine\n"
        "through a thread-pooled, cache-fronted batch service, emitting\n"
        "<stem>.isa.json plus a fidelity summary per input.\n"
        "\n"
        "Value-taking options accept --flag VALUE and --flag=VALUE.\n"
        "\n"
        "options:\n"
        "  --jobs N       worker threads (default: hardware concurrency)\n"
        "  --jobs-async   use the async JobService (priorities, deadlines,\n"
        "                 admission control, sharded workers)\n"
        "  --cache-dir DIR\n"
        "                 persistent on-disk compile cache shared across\n"
        "                 runs and processes\n"
        "  --priority P   per-input job priority, higher runs earlier\n"
        "                 (--jobs-async only; may be negative)\n"
        "  --deadline-ms D\n"
        "                 queue-wait bound per job in milliseconds\n"
        "                 (--jobs-async only; 0 = none)\n"
        "  --max-queue N  per-shard admission bound, 0 = unbounded\n"
        "                 (--jobs-async only; default 1024)\n"
        "  --num-aods N   independent AOD arrays (default 1)\n"
        "  --no-storage   storage-free configuration\n"
        "  --seed S       base RNG seed (default 0xC0FFEE)\n"
        "  --alpha A      stage-ordering weight in (0, 1] (default 0.5)\n"
        "  --placement P  initial layout: row-major (default),\n"
        "                 column-interleaved, usage-frequency, or\n"
        "                 routing-aware\n"
        "  --placement-refine-iters N\n"
        "                 routing-aware local-search sweeps (default 32,\n"
        "                 0 = greedy only)\n"
        "  --stage-partition S\n"
        "                 CZ-block stage partition: linear (default,\n"
        "                 bit-identical graph-free scan), coloring (the\n"
        "                 paper's edge coloring), or balanced (linear +\n"
        "                 stage-width rebalance)\n"
        "  --routing R    stage-transition routing: continuous (default),\n"
        "                 reuse (gate-aware atom reuse), fast\n"
        "                 (bit-identical incremental fast path), or\n"
        "                 windowed (best-of-N gate orderings)\n"
        "  --residency P  reuse residency (cache replacement) policy:\n"
        "                 lookahead (default), lru, lti, or fidelity\n"
        "                 (--routing reuse only)\n"
        "  --reuse-lookahead N\n"
        "                 reuse hold window in stages (default 4)\n"
        "  --routing-window N\n"
        "                 windowed-routing orderings per transition\n"
        "                 (default 8; --routing windowed only)\n"
        "  --batch-policy P\n"
        "                 AOD batching: in-order (default) or\n"
        "                 duration-balanced\n"
        "  --list-strategies\n"
        "                 print every strategy dimension with its value\n"
        "                 names and exit\n"
        "  --profile      print the per-pass time/counter breakdown\n"
        "  --fuse         fuse commutable CZ blocks before compiling\n"
        "  --out-dir DIR  directory for ISA JSON output\n"
        "  --no-json      skip ISA JSON emission\n"
        "  --stats        print service counters before exiting\n"
        "  --metrics-out PATH\n"
        "                 write metrics as Prometheus text exposition\n"
        "  --metrics-json PATH\n"
        "                 write metrics as JSON\n"
        "  --trace-out PATH\n"
        "                 write per-job spans as Chrome trace-event JSON\n"
        "                 (implies --jobs-async)\n"
        "  --log-level L  logfmt logging to stderr: trace, debug, info,\n"
        "                 warn, error, or off\n"
        "  --slow-job-ms D\n"
        "                 warn-log jobs slower than D ms end to end\n"
        "                 (--jobs-async only)\n"
        "  --stats-every-ms N\n"
        "                 log a stats line every N ms\n"
        "  --stats-json PATH\n"
        "                 write tiered service counters as JSON\n"
        "  --help         show this text\n");
}

/**
 * Prints the strategy catalog: every pass dimension with its value
 * names (defaults first) and the flag that selects it, so nobody has
 * to guess flag spellings from the docs.
 */
void
printStrategies()
{
    std::printf("strategy dimensions (default value listed first):\n");
    for (const StrategyCatalogEntry &entry : strategyCatalog()) {
        std::string values;
        for (std::size_t i = 0; i < entry.values.size(); ++i) {
            if (i > 0)
                values += " | ";
            values += entry.values[i];
            if (i == 0)
                values += " (default)";
        }
        const std::string dimension(entry.dimension);
        const std::string flag =
            entry.flag.empty() ? "(library-only)" : std::string(entry.flag);
        std::printf("  %-16s %-18s %s\n", dimension.c_str(), flag.c_str(),
                    values.c_str());
    }
}

/**
 * Expands argv into a flat token list, splitting `--flag=value` into
 * `--flag` and `value` so both spellings parse identically. Only flags
 * that actually take a value are split — `--profile=1` stays intact
 * and fails as an unknown option instead of leaking `1` into the
 * input-file list (and file names containing '=' are never flags).
 */
std::vector<std::string>
expandArgs(int argc, char **argv)
{
    // Must list every value-taking branch of parseArgs() below, or the
    // `--flag=value` spelling of a new flag fails as an unknown option
    // while `--flag value` works.
    static constexpr const char *kValueFlags[] = {
        "--jobs",      "--num-aods",        "--seed",
        "--alpha",     "--placement",       "--routing",
        "--residency", "--reuse-lookahead", "--routing-window",
        "--batch-policy",
        "--out-dir",
        "--placement-refine-iters", "--stage-partition",
        "--cache-dir", "--priority",        "--deadline-ms",
        "--max-queue", "--metrics-out",     "--metrics-json",
        "--trace-out", "--log-level",       "--slow-job-ms",
        "--stats-every-ms", "--stats-json",
    };
    std::vector<std::string> args;
    args.reserve(static_cast<std::size_t>(argc));
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::size_t eq = arg.find('=');
        bool split = false;
        if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-' &&
            eq != std::string::npos) {
            const std::string flag = arg.substr(0, eq);
            for (const char *value_flag : kValueFlags)
                split = split || flag == value_flag;
        }
        if (split) {
            args.push_back(arg.substr(0, eq));
            args.push_back(arg.substr(eq + 1));
        } else {
            args.push_back(arg);
        }
    }
    return args;
}

/** Parses argv; returns false (after usage) on malformed input. */
bool
parseArgs(int argc, char **argv, CliOptions &cli)
{
    const std::vector<std::string> args = expandArgs(argc, argv);
    const std::size_t count = args.size();

    const auto take_value = [&](const char *flag, std::size_t &i,
                                std::string &out) -> bool {
        if (i + 1 >= count) {
            std::fprintf(stderr, "powermove: %s requires a value\n", flag);
            return false;
        }
        out = args[++i];
        return true;
    };

    const auto numeric = [&](const char *flag, std::size_t &i,
                             std::uint64_t &out) -> bool {
        std::string text;
        if (!take_value(flag, i, text))
            return false;
        char *end = nullptr;
        // strtoull silently wraps negatives to huge values; reject signs.
        out = (text[0] == '-' || text[0] == '+')
                  ? 0
                  : std::strtoull(text.c_str(), &end, 0);
        if (end == text.c_str() || end == nullptr || *end != '\0') {
            std::fprintf(stderr, "powermove: bad value for %s: '%s'\n", flag,
                         text.c_str());
            return false;
        }
        return true;
    };

    for (std::size_t i = 0; i < count; ++i) {
        const std::string &arg = args[i];
        std::uint64_t value = 0;
        std::string text;
        if (arg == "--help" || arg == "-h") {
            printUsage(stdout);
            std::exit(0);
        } else if (arg == "--list-strategies") {
            printStrategies();
            std::exit(0);
        } else if (arg == "--jobs") {
            if (!numeric("--jobs", i, value))
                return false;
            cli.jobs = static_cast<std::size_t>(value);
        } else if (arg == "--jobs-async") {
            cli.async = true;
        } else if (arg == "--cache-dir") {
            if (!take_value("--cache-dir", i, text))
                return false;
            cli.cache_dir = text;
        } else if (arg == "--max-queue") {
            if (!numeric("--max-queue", i, value))
                return false;
            cli.max_queue = static_cast<std::size_t>(value);
        } else if (arg == "--priority") {
            if (!take_value("--priority", i, text))
                return false;
            char *end = nullptr;
            const long priority = std::strtol(text.c_str(), &end, 0);
            if (end == text.c_str() || *end != '\0') {
                std::fprintf(stderr,
                             "powermove: bad value for --priority: '%s'\n",
                             text.c_str());
                return false;
            }
            cli.priority = static_cast<int>(priority);
        } else if (arg == "--deadline-ms") {
            if (!take_value("--deadline-ms", i, text))
                return false;
            char *end = nullptr;
            const double deadline = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' || deadline < 0.0) {
                std::fprintf(stderr,
                             "powermove: --deadline-ms must be >= 0, got "
                             "'%s'\n",
                             text.c_str());
                return false;
            }
            cli.deadline_ms = deadline;
        } else if (arg == "--num-aods") {
            if (!numeric("--num-aods", i, value))
                return false;
            cli.compiler.num_aods = static_cast<std::size_t>(value);
        } else if (arg == "--seed") {
            if (!numeric("--seed", i, value))
                return false;
            cli.compiler.seed = value;
        } else if (arg == "--reuse-lookahead") {
            if (!numeric("--reuse-lookahead", i, value))
                return false;
            if (value == 0) {
                std::fprintf(stderr,
                             "powermove: --reuse-lookahead must be >= 1\n");
                return false;
            }
            cli.compiler.reuse_lookahead =
                static_cast<std::uint32_t>(value);
        } else if (arg == "--routing-window") {
            if (!numeric("--routing-window", i, value))
                return false;
            if (value == 0) {
                std::fprintf(stderr,
                             "powermove: --routing-window must be >= 1\n");
                return false;
            }
            cli.compiler.routing_window = static_cast<std::uint32_t>(value);
        } else if (arg == "--alpha") {
            if (!take_value("--alpha", i, text))
                return false;
            char *end = nullptr;
            const double alpha = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' || !(alpha > 0.0) ||
                alpha > 1.0) {
                std::fprintf(stderr,
                             "powermove: --alpha must be in (0, 1], got "
                             "'%s'\n",
                             text.c_str());
                return false;
            }
            cli.compiler.stage_order_alpha = alpha;
        } else if (arg == "--placement") {
            if (!take_value("--placement", i, text))
                return false;
            if (!parsePlacementStrategy(text, cli.compiler.placement)) {
                std::fprintf(stderr,
                             "powermove: unknown placement '%s' (expected "
                             "row-major, column-interleaved, "
                             "usage-frequency, or routing-aware)\n",
                             text.c_str());
                return false;
            }
        } else if (arg == "--placement-refine-iters") {
            if (!numeric("--placement-refine-iters", i, value))
                return false;
            cli.compiler.placement_refine_iters =
                static_cast<std::uint32_t>(value);
        } else if (arg == "--stage-partition") {
            if (!take_value("--stage-partition", i, text))
                return false;
            if (!parseStagePartitionStrategy(text,
                                             cli.compiler.stage_partition)) {
                std::fprintf(stderr,
                             "powermove: unknown stage partition '%s' "
                             "(expected coloring, linear, or balanced)\n",
                             text.c_str());
                return false;
            }
        } else if (arg == "--routing") {
            if (!take_value("--routing", i, text))
                return false;
            if (!parseRoutingStrategy(text, cli.compiler.routing)) {
                std::fprintf(stderr,
                             "powermove: unknown routing '%s' (expected "
                             "continuous, reuse, fast, or windowed)\n",
                             text.c_str());
                return false;
            }
        } else if (arg == "--residency") {
            if (!take_value("--residency", i, text))
                return false;
            if (!parseResidencyPolicy(text, cli.compiler.residency)) {
                std::fprintf(stderr,
                             "powermove: unknown residency policy '%s' "
                             "(expected lookahead, lru, lti, or fidelity)\n",
                             text.c_str());
                return false;
            }
        } else if (arg == "--batch-policy") {
            if (!take_value("--batch-policy", i, text))
                return false;
            if (!parseAodBatchPolicy(text, cli.compiler.aod_batch_policy)) {
                std::fprintf(stderr,
                             "powermove: unknown batch policy '%s' (expected "
                             "in-order or duration-balanced)\n",
                             text.c_str());
                return false;
            }
        } else if (arg == "--metrics-out") {
            if (!take_value("--metrics-out", i, text))
                return false;
            cli.metrics_out = text;
        } else if (arg == "--metrics-json") {
            if (!take_value("--metrics-json", i, text))
                return false;
            cli.metrics_json = text;
        } else if (arg == "--trace-out") {
            if (!take_value("--trace-out", i, text))
                return false;
            cli.trace_out = text;
        } else if (arg == "--stats-json") {
            if (!take_value("--stats-json", i, text))
                return false;
            cli.stats_json = text;
        } else if (arg == "--log-level") {
            if (!take_value("--log-level", i, text))
                return false;
            if (!obs::parseLogLevel(text, cli.log_level)) {
                std::fprintf(stderr,
                             "powermove: unknown log level '%s' (expected "
                             "trace, debug, info, warn, error, or off)\n",
                             text.c_str());
                return false;
            }
            cli.log_level_set = true;
        } else if (arg == "--slow-job-ms") {
            if (!take_value("--slow-job-ms", i, text))
                return false;
            char *end = nullptr;
            const double slow = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' || slow < 0.0) {
                std::fprintf(stderr,
                             "powermove: --slow-job-ms must be >= 0, got "
                             "'%s'\n",
                             text.c_str());
                return false;
            }
            cli.slow_job_ms = slow;
        } else if (arg == "--stats-every-ms") {
            if (!numeric("--stats-every-ms", i, value))
                return false;
            cli.stats_every_ms = static_cast<std::size_t>(value);
        } else if (arg == "--profile") {
            cli.print_profile = true;
        } else if (arg == "--no-storage") {
            cli.compiler.use_storage = false;
        } else if (arg == "--fuse") {
            cli.fuse = true;
        } else if (arg == "--no-json") {
            cli.emit_json = false;
        } else if (arg == "--stats") {
            cli.print_stats = true;
        } else if (arg == "--out-dir") {
            if (!take_value("--out-dir", i, text))
                return false;
            cli.out_dir = text;
        } else if (arg.size() > 1 && arg[0] == '-') {
            std::fprintf(stderr, "powermove: unknown option '%s'\n",
                         arg.c_str());
            printUsage(stderr);
            return false;
        } else {
            cli.inputs.push_back(arg);
        }
    }
    if (cli.inputs.empty()) {
        std::fprintf(stderr, "powermove: no input files\n");
        printUsage(stderr);
        return false;
    }
    return true;
}

/** `<out-dir or input dir>/<stem>.isa.json` for @p input. */
std::filesystem::path
jsonPathFor(const std::string &input, const std::string &out_dir)
{
    const std::filesystem::path source(input);
    std::filesystem::path dir =
        out_dir.empty() ? source.parent_path() : std::filesystem::path(out_dir);
    return dir / (source.stem().string() + ".isa.json");
}

/** Writes @p content to @p path; reports and returns false on failure. */
bool
writeTextFile(const std::string &path, const std::string &content)
{
    std::ofstream file(path);
    if (!file) {
        std::fprintf(stderr, "powermove: cannot write '%s'\n", path.c_str());
        return false;
    }
    file << content;
    file.flush();
    if (file.fail()) {
        std::fprintf(stderr, "powermove: write to '%s' failed\n",
                     path.c_str());
        return false;
    }
    return true;
}

/** Appends `  "key": value,\n` (no trailing comma when @p last). */
void
appendJsonCount(std::string &out, std::string_view indent,
                std::string_view key, std::uint64_t value, bool last = false)
{
    out += indent;
    out += '"';
    out += key;
    out += "\": ";
    out += std::to_string(value);
    out += last ? "\n" : ",\n";
}

/** The shared disk-tier sub-object of both --stats-json shapes. */
void
appendDiskStatsJson(std::string &out, const service::DiskCacheStats &disk,
                    bool last)
{
    out += "  \"disk\": {\n";
    appendJsonCount(out, "    ", "hits", disk.hits);
    appendJsonCount(out, "    ", "misses", disk.misses);
    appendJsonCount(out, "    ", "stores", disk.stores);
    appendJsonCount(out, "    ", "corrupt", disk.corrupt);
    appendJsonCount(out, "    ", "evictions", disk.evictions);
    appendJsonCount(out, "    ", "entries", disk.entries);
    appendJsonCount(out, "    ", "bytes", disk.bytes, true);
    out += last ? "  }\n" : "  },\n";
}

/** JobServiceStats as a JSON document (--stats-json, async mode). */
std::string
statsToJson(const service::JobServiceStats &stats)
{
    std::string out = "{\n  \"service\": \"job\",\n";
    appendJsonCount(out, "  ", "num_shards", stats.num_shards);
    appendJsonCount(out, "  ", "workers_per_shard", stats.workers_per_shard);
    appendJsonCount(out, "  ", "submitted", stats.submitted);
    appendJsonCount(out, "  ", "coalesced", stats.coalesced);
    appendJsonCount(out, "  ", "memory_hits", stats.memory_hits);
    appendJsonCount(out, "  ", "disk_hits", stats.disk_hits);
    appendJsonCount(out, "  ", "compiled", stats.compiled);
    appendJsonCount(out, "  ", "failed", stats.failed);
    appendJsonCount(out, "  ", "rejected", stats.rejected);
    appendJsonCount(out, "  ", "expired", stats.expired);
    appendJsonCount(out, "  ", "queued", stats.queued);
    appendDiskStatsJson(out, stats.disk, true);
    out += "}\n";
    return out;
}

/** ServiceStats as a JSON document (--stats-json, batch mode). */
std::string
statsToJson(const service::ServiceStats &stats)
{
    std::string out = "{\n  \"service\": \"batch\",\n";
    appendJsonCount(out, "  ", "num_workers", stats.num_workers);
    appendJsonCount(out, "  ", "jobs_submitted", stats.jobs_submitted);
    appendJsonCount(out, "  ", "jobs_completed", stats.jobs_completed);
    appendJsonCount(out, "  ", "jobs_failed", stats.jobs_failed);
    appendJsonCount(out, "  ", "coalesced", stats.coalesced);
    appendJsonCount(out, "  ", "memory_hits", stats.memory_hits);
    appendJsonCount(out, "  ", "disk_hits", stats.disk_hits);
    appendJsonCount(out, "  ", "misses", stats.misses);
    appendJsonCount(out, "  ", "cache_evictions", stats.cache_evictions);
    appendJsonCount(out, "  ", "cache_entries", stats.cache_entries);
    appendJsonCount(out, "  ", "machines_built", stats.machines_built);
    appendDiskStatsJson(out, stats.disk, false);
    out += "  \"pass_totals\": [";
    for (std::size_t p = 0; p < stats.pass_totals.size(); ++p) {
        const PassProfile &profile = stats.pass_totals[p];
        char entry[160];
        std::snprintf(entry, sizeof(entry),
                      "%s\n    {\"pass\": \"%.*s\", \"wall_us\": %.3f, "
                      "\"invocations\": %llu}",
                      p == 0 ? "" : ",",
                      static_cast<int>(passName(profile.pass).size()),
                      passName(profile.pass).data(),
                      profile.wall_time.micros(),
                      static_cast<unsigned long long>(profile.invocations));
        out += entry;
    }
    out += stats.pass_totals.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    if (!parseArgs(argc, argv, cli))
        return 1;

    if (!cli.out_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(cli.out_dir, ec);
        if (ec) {
            std::fprintf(stderr, "powermove: cannot create '%s': %s\n",
                         cli.out_dir.c_str(), ec.message().c_str());
            return 1;
        }
    }

    // Any observability flag builds the shared bundle; without one the
    // services run with instrumentation fully disabled.
    const bool want_obs = !cli.metrics_out.empty() ||
                          !cli.metrics_json.empty() ||
                          !cli.trace_out.empty() || cli.log_level_set ||
                          cli.slow_job_ms > 0.0 || cli.stats_every_ms > 0;
    std::shared_ptr<obs::Observability> bundle;
    if (want_obs) {
        obs::ObservabilityOptions obs_options;
        if (cli.log_level_set)
            obs_options.log_level = cli.log_level;
        bundle = std::make_shared<obs::Observability>(obs_options);
    }
    // Trace spans stitch per-job timelines, which only the JobService
    // keeps; --trace-out therefore routes through it.
    if (!cli.trace_out.empty())
        cli.async = true;

    // Exactly one of the two services exists, per --jobs-async. Both
    // resolve futures of the same JobResult type, so the reporting loop
    // below is shared.
    std::unique_ptr<service::CompilationService> svc;
    std::unique_ptr<service::JobService> async_svc;
    if (cli.async) {
        service::JobServiceOptions options;
        options.cache_capacity = 256;
        options.max_queue = cli.max_queue;
        options.cache_dir = cli.cache_dir;
        options.obs = bundle;
        options.slow_job_ms = cli.slow_job_ms;
        if (cli.jobs != 0) {
            // --jobs bounds total workers in async mode too: one shard
            // per worker up to 4 shards, the rest as per-shard workers.
            options.num_shards = std::min<std::size_t>(cli.jobs, 4);
            options.workers_per_shard =
                std::max<std::size_t>(1, cli.jobs / options.num_shards);
        }
        async_svc = std::make_unique<service::JobService>(options);
    } else {
        service::ServiceOptions options;
        options.num_workers = cli.jobs;
        options.cache_capacity = 256;
        options.cache_dir = cli.cache_dir;
        options.obs = bundle;
        svc = std::make_unique<service::CompilationService>(options);
    }

    // One stats line every --stats-every-ms, plus a final one at
    // shutdown (the reporter fires once on destruction if it never
    // fired); destroyed before the exports snapshot the registry.
    std::unique_ptr<obs::PeriodicReporter> reporter;
    if (cli.stats_every_ms > 0)
        reporter = std::make_unique<obs::PeriodicReporter>(
            std::chrono::milliseconds(cli.stats_every_ms), [&] {
                if (async_svc) {
                    const service::JobServiceStats s = async_svc->stats();
                    bundle->log.info("stats",
                                     {{"submitted", s.submitted},
                                      {"queued", s.queued},
                                      {"coalesced", s.coalesced},
                                      {"memory_hits", s.memory_hits},
                                      {"disk_hits", s.disk_hits},
                                      {"compiled", s.compiled},
                                      {"failed", s.failed},
                                      {"rejected", s.rejected},
                                      {"expired", s.expired}});
                } else {
                    const service::ServiceStats s = svc->stats();
                    bundle->log.info("stats",
                                     {{"submitted", s.jobs_submitted},
                                      {"completed", s.jobs_completed},
                                      {"failed", s.jobs_failed},
                                      {"coalesced", s.coalesced},
                                      {"memory_hits", s.memory_hits},
                                      {"disk_hits", s.disk_hits},
                                      {"misses", s.misses}});
                }
            });

    const auto submit_job = [&](Circuit circuit, const MachineConfig &config) {
        if (async_svc) {
            service::JobRequest request;
            request.job =
                service::CompileJob{std::move(circuit), config, cli.compiler};
            request.priority = cli.priority;
            request.deadline_ms = cli.deadline_ms;
            return async_svc->submit(std::move(request)).result;
        }
        return svc->submit(std::move(circuit), config, cli.compiler);
    };

    // Load every input and submit it immediately, so the pool compiles
    // early files while later ones are still being parsed.
    struct InFlight
    {
        std::string input;
        Circuit circuit;
        std::future<service::JobResult> future;
        std::string load_error;
    };
    std::vector<InFlight> flights;
    flights.reserve(cli.inputs.size());

    for (const std::string &input : cli.inputs) {
        InFlight flight;
        flight.input = input;
        try {
            qasm::ConvertResult loaded = qasm::loadQasmFile(input);
            Circuit circuit = std::move(loaded.circuit);
            circuit.setName(std::filesystem::path(input).stem().string());
            if (cli.fuse)
                circuit = fuseCommutableBlocks(circuit);
            const MachineConfig config =
                MachineConfig::forQubits(circuit.numQubits());
            flight.circuit = circuit;
            flight.future = submit_job(std::move(circuit), config);
        } catch (const std::exception &e) {
            flight.load_error = e.what();
        }
        flights.push_back(std::move(flight));
    }

    int failures = 0;
    for (InFlight &flight : flights) {
        if (!flight.load_error.empty()) {
            std::fprintf(stderr, "powermove: %s: %s\n", flight.input.c_str(),
                         flight.load_error.c_str());
            ++failures;
            continue;
        }
        try {
            const service::JobResult out = flight.future.get();
            const CompileResult &result = *out.result;
            validateAgainstCircuit(result.schedule, flight.circuit);

            std::printf("%s: %zu qubits, %zu CZ gates, %zu 1Q gates%s\n",
                        flight.input.c_str(), flight.circuit.numQubits(),
                        flight.circuit.numCzGates(),
                        flight.circuit.numOneQGates(),
                        out.from_cache ? " [cached]" : "");
            std::printf("  schedule: %zu stages, %zu coll-moves, %zu "
                        "transfers\n",
                        result.num_stages, result.num_coll_moves,
                        result.schedule.numTransfers());
            std::printf("  metrics: %s\n", result.metrics.toString().c_str());
            std::printf("  compile time: %.1f us\n",
                        result.compile_time.micros());
            if (cli.print_profile)
                std::printf("%s", formatPassProfiles(result.pass_profiles)
                                      .c_str());

            if (cli.emit_json) {
                const auto json_path = jsonPathFor(flight.input, cli.out_dir);
                std::ofstream json_file(json_path);
                if (!json_file) {
                    std::fprintf(stderr, "powermove: cannot write '%s'\n",
                                 json_path.string().c_str());
                    ++failures;
                    continue;
                }
                json_file << scheduleToJson(result.schedule) << '\n';
                std::printf("  isa json: %s\n", json_path.string().c_str());
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "powermove: %s: %s\n", flight.input.c_str(),
                         e.what());
            ++failures;
        }
    }

    if (cli.print_stats && async_svc) {
        const service::JobServiceStats stats = async_svc->stats();
        std::printf("job service: %zu shards x %zu workers; %zu submitted; "
                    "tiers: %zu coalesced / %zu memory / %zu disk / "
                    "%zu compiled; %zu failed, %zu rejected, %zu expired\n",
                    stats.num_shards, stats.workers_per_shard,
                    stats.submitted, stats.coalesced, stats.memory_hits,
                    stats.disk_hits, stats.compiled, stats.failed,
                    stats.rejected, stats.expired);
        if (!cli.cache_dir.empty())
            std::printf("disk cache: %zu hit / %zu miss / %zu stored / "
                        "%zu corrupt / %zu evicted (%zu entries, %llu "
                        "bytes)\n",
                        stats.disk.hits, stats.disk.misses, stats.disk.stores,
                        stats.disk.corrupt, stats.disk.evictions,
                        stats.disk.entries,
                        static_cast<unsigned long long>(stats.disk.bytes));
    } else if (cli.print_stats) {
        const service::ServiceStats stats = svc->stats();
        std::printf("service: %zu workers; %zu submitted, %zu compiled, "
                    "%zu failed; tiers: %zu coalesced / %zu memory / "
                    "%zu disk / %zu miss; %zu evicted (%zu resident); "
                    "%zu machines\n",
                    stats.num_workers, stats.jobs_submitted,
                    stats.jobs_completed, stats.jobs_failed, stats.coalesced,
                    stats.memory_hits, stats.disk_hits, stats.misses,
                    stats.cache_evictions, stats.cache_entries,
                    stats.machines_built);
        if (!cli.cache_dir.empty())
            std::printf("disk cache: %zu hit / %zu miss / %zu stored / "
                        "%zu corrupt / %zu evicted (%zu entries, %llu "
                        "bytes)\n",
                        stats.disk.hits, stats.disk.misses, stats.disk.stores,
                        stats.disk.corrupt, stats.disk.evictions,
                        stats.disk.entries,
                        static_cast<unsigned long long>(stats.disk.bytes));
        if (cli.print_profile) {
            std::printf("service pass totals:\n%s",
                        formatPassProfiles(stats.pass_totals).c_str());
        }
    }

    // Machine-readable exports, after the final stats line so the
    // registry snapshot includes everything the run observed.
    reporter.reset();
    if (async_svc != nullptr)
        (void)async_svc->stats(); // refreshes the shard-imbalance gauge
    if (bundle != nullptr) {
        if (!cli.metrics_out.empty() &&
            !writeTextFile(cli.metrics_out,
                           bundle->metrics.toPrometheusText()))
            ++failures;
        if (!cli.metrics_json.empty() &&
            !writeTextFile(cli.metrics_json, bundle->metrics.toJson()))
            ++failures;
        if (!cli.trace_out.empty() &&
            !writeTextFile(cli.trace_out, bundle->trace.toChromeTraceJson()))
            ++failures;
    }
    if (!cli.stats_json.empty()) {
        const std::string json = async_svc != nullptr
                                     ? statsToJson(async_svc->stats())
                                     : statsToJson(svc->stats());
        if (!writeTextFile(cli.stats_json, json))
            ++failures;
    }
    return failures == 0 ? 0 : 1;
}
