/**
 * @file
 * Zone-aware stage ordering (paper Sec. 4.2).
 *
 * The stages of one commutable CZ block may run in any order. PowerMove
 * orders them to minimize qubit interchange between the compute and
 * storage zones: start with the stage touching the fewest qubits (so
 * most qubits stay in storage), then greedily pick the stage whose
 * interacting-qubit set differs least from the current one, scoring a
 * candidate next stage S_{i+1} as
 *
 *     |Q_i \ Q_{i+1}| + alpha * |Q_{i+1} \ Q_i|,    alpha < 1,
 *
 * which prefers qubits *entering* storage (left term: current qubits the
 * next stage parks) over qubits leaving it.
 */

#ifndef POWERMOVE_SCHEDULE_STAGE_ORDER_HPP
#define POWERMOVE_SCHEDULE_STAGE_ORDER_HPP

#include <vector>

#include "schedule/stage.hpp"

namespace powermove {

/** Tuning knobs of the stage scheduler. */
struct StageOrderOptions
{
    /** Weight of the move-out-of-storage term; must be in (0, 1]. */
    double alpha = 0.5;
};

/**
 * The transition cost between consecutive stages: qubits idled by the
 * next stage plus alpha times the qubits it re-activates.
 */
double stageTransitionCost(const std::vector<QubitId> &current_qubits,
                           const std::vector<QubitId> &next_qubits,
                           double alpha);

/**
 * Reorders @p stages per Sec. 4.2; returns the scheduled sequence.
 * Deterministic: ties break toward the lowest original stage index.
 */
std::vector<Stage> orderStages(std::vector<Stage> stages,
                               const StageOrderOptions &options = {});

} // namespace powermove

#endif // POWERMOVE_SCHEDULE_STAGE_ORDER_HPP
