#include "schedule/stage_order.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace powermove {

namespace {

/** |a \ b| for sorted vectors. */
std::size_t
differenceSize(const std::vector<QubitId> &a, const std::vector<QubitId> &b)
{
    std::size_t count = 0;
    auto ita = a.begin();
    auto itb = b.begin();
    while (ita != a.end()) {
        if (itb == b.end() || *ita < *itb) {
            ++count;
            ++ita;
        } else if (*itb < *ita) {
            ++itb;
        } else {
            ++ita;
            ++itb;
        }
    }
    return count;
}

} // namespace

double
stageTransitionCost(const std::vector<QubitId> &current_qubits,
                    const std::vector<QubitId> &next_qubits, double alpha)
{
    const auto entering_storage =
        static_cast<double>(differenceSize(current_qubits, next_qubits));
    const auto leaving_storage =
        static_cast<double>(differenceSize(next_qubits, current_qubits));
    return entering_storage + alpha * leaving_storage;
}

std::vector<Stage>
orderStages(std::vector<Stage> stages, const StageOrderOptions &options)
{
    if (options.alpha <= 0.0 || options.alpha > 1.0)
        fatal("stage order alpha must lie in (0, 1]");
    if (stages.size() <= 1)
        return stages;

    std::vector<std::vector<QubitId>> qubit_sets;
    qubit_sets.reserve(stages.size());
    for (const auto &stage : stages)
        qubit_sets.push_back(stage.interactingQubits());

    const std::size_t count = stages.size();
    std::vector<bool> used(count, false);

    // First stage: fewest interacting qubits, so the bulk of the register
    // can stay in storage from the start.
    std::size_t current = 0;
    for (std::size_t i = 1; i < count; ++i) {
        if (qubit_sets[i].size() < qubit_sets[current].size())
            current = i;
    }

    std::vector<Stage> ordered;
    ordered.reserve(count);
    ordered.push_back(std::move(stages[current]));
    used[current] = true;

    for (std::size_t step = 1; step < count; ++step) {
        std::size_t best = count;
        double best_cost = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < count; ++i) {
            if (used[i])
                continue;
            const double cost = stageTransitionCost(qubit_sets[current],
                                                    qubit_sets[i],
                                                    options.alpha);
            if (cost < best_cost) {
                best_cost = cost;
                best = i;
            }
        }
        PM_ASSERT(best < count, "stage ordering failed to pick a stage");
        ordered.push_back(std::move(stages[best]));
        used[best] = true;
        current = best;
    }
    return ordered;
}

} // namespace powermove
