/**
 * @file
 * A Rydberg stage: CZ gates executable under one global pulse.
 *
 * Gates within a stage act on pairwise-disjoint qubits (paper Sec. 1,
 * aspect 1). Once the router has brought every pair of a stage together,
 * a single Rydberg excitation executes all of its gates in parallel.
 */

#ifndef POWERMOVE_SCHEDULE_STAGE_HPP
#define POWERMOVE_SCHEDULE_STAGE_HPP

#include <vector>

#include "circuit/gate.hpp"

namespace powermove {

/** One Rydberg stage. */
struct Stage
{
    std::vector<CzGate> gates;

    /** Sorted list of the qubits interacting in this stage. */
    std::vector<QubitId> interactingQubits() const;

    /** True if no two gates share a qubit. */
    bool qubitsDisjoint() const;
};

} // namespace powermove

#endif // POWERMOVE_SCHEDULE_STAGE_HPP
