#include "schedule/stage_partition.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace powermove {

namespace {

/**
 * Per-qubit dynamic bitsets of stage indices already taken by a colored
 * gate on that qubit. All gates on one qubit mutually conflict, so their
 * stage indices are distinct and the set is exactly one bit per stage;
 * the words grow lazily with the running stage count, keeping the whole
 * structure O(num_qubits) bitsets of O(stages/64) words each.
 */
class UsedStageSets
{
  public:
    explicit UsedStageSets(std::size_t num_qubits) : words_(num_qubits) {}

    /** Smallest stage index absent from used[a] | used[b]. */
    std::uint32_t
    firstFree(QubitId a, QubitId b) const
    {
        const auto &wa = words_[a];
        const auto &wb = words_[b];
        const std::size_t limit = std::max(wa.size(), wb.size());
        for (std::size_t w = 0; w < limit; ++w) {
            const std::uint64_t merged = (w < wa.size() ? wa[w] : 0) |
                                         (w < wb.size() ? wb[w] : 0);
            if (merged != ~std::uint64_t{0}) {
                return static_cast<std::uint32_t>(
                    w * 64 + static_cast<std::size_t>(std::countr_one(merged)));
            }
        }
        return static_cast<std::uint32_t>(limit * 64);
    }

    bool
    test(QubitId q, std::uint32_t stage) const
    {
        const auto &w = words_[q];
        const std::size_t word = stage / 64;
        return word < w.size() && (w[word] >> (stage % 64)) & 1;
    }

    void
    set(QubitId q, std::uint32_t stage)
    {
        auto &w = words_[q];
        const std::size_t word = stage / 64;
        if (word >= w.size())
            w.resize(word + 1, 0);
        w[word] |= std::uint64_t{1} << (stage % 64);
    }

    void
    clear(QubitId q, std::uint32_t stage)
    {
        words_[q][stage / 64] &= ~(std::uint64_t{1} << (stage % 64));
    }

  private:
    std::vector<std::vector<std::uint64_t>> words_;
};

/** Canonical {min, max} qubit pair packed into one map key. */
std::uint64_t
pairKey(const CzGate &gate)
{
    const auto lo = std::min(gate.a, gate.b);
    const auto hi = std::max(gate.a, gate.b);
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

/**
 * The greedy stage assignment of partitionIntoStages computed by a
 * qubit scan, without the conflict graph. Two ingredients make the
 * result bit-identical:
 *
 *  1. The scan order reproduces verticesByDegreeDesc exactly: conflict
 *     degrees come from per-qubit gate counts — deg(g) = (cnt[a] - 1) +
 *     (cnt[b] - 1) - (pairs[{a,b}] - 1), the last term undoing the
 *     double count of gates sharing *both* qubits — and a counting sort
 *     by descending degree preserves ascending gate index within each
 *     degree, matching the stable sort's tie break.
 *  2. The forbidden colors of a gate are the union of the stage sets of
 *     its two qubits — precisely the colors of its already-colored
 *     graph neighbors — so taking the first free bit of that union is
 *     the same "smallest color unused among neighbors" choice
 *     greedyColoring makes.
 *
 * @param used scratch stage sets; left at their final state so callers
 *             (the Balanced rebalance) can reuse them.
 * @return one stage index per gate, dense from 0.
 */
std::vector<std::uint32_t>
greedyScanAssignment(const CzBlock &block, std::size_t num_qubits,
                     UsedStageSets &used)
{
    const std::size_t num_gates = block.gates.size();

    std::vector<std::uint32_t> count_on_qubit(num_qubits, 0);
    std::unordered_map<std::uint64_t, std::uint32_t> pair_multiplicity;
    pair_multiplicity.reserve(num_gates);
    for (const auto &gate : block.gates) {
        PM_ASSERT(gate.a < num_qubits && gate.b < num_qubits,
                  "gate qubit outside circuit width");
        PM_ASSERT(gate.a != gate.b, "CZ gate with identical qubits");
        ++count_on_qubit[gate.a];
        ++count_on_qubit[gate.b];
        ++pair_multiplicity[pairKey(gate)];
    }

    std::vector<std::uint32_t> degree(num_gates);
    std::uint32_t max_degree = 0;
    for (std::size_t g = 0; g < num_gates; ++g) {
        const auto &gate = block.gates[g];
        degree[g] = count_on_qubit[gate.a] + count_on_qubit[gate.b] - 2 -
                    (pair_multiplicity[pairKey(gate)] - 1);
        max_degree = std::max(max_degree, degree[g]);
    }

    // Counting sort, descending degree, ascending gate index within a
    // degree (the stable_sort tie break of verticesByDegreeDesc).
    std::vector<std::vector<std::uint32_t>> buckets(max_degree + 1);
    for (std::size_t g = 0; g < num_gates; ++g)
        buckets[degree[g]].push_back(static_cast<std::uint32_t>(g));

    std::vector<std::uint32_t> stage_of(num_gates);
    for (std::size_t d = buckets.size(); d-- > 0;) {
        for (const std::uint32_t g : buckets[d]) {
            const auto &gate = block.gates[g];
            const std::uint32_t stage = used.firstFree(gate.a, gate.b);
            stage_of[g] = stage;
            used.set(gate.a, stage);
            used.set(gate.b, stage);
        }
    }
    return stage_of;
}

/** Stages from a dense per-gate assignment, gates in block order. */
std::vector<Stage>
stagesFromAssignment(const CzBlock &block,
                     const std::vector<std::uint32_t> &stage_of)
{
    std::uint32_t num_stages = 0;
    for (const auto stage : stage_of)
        num_stages = std::max(num_stages, stage + 1);

    std::vector<Stage> stages(num_stages);
    for (std::size_t g = 0; g < block.gates.size(); ++g)
        stages[stage_of[g]].gates.push_back(block.gates[g]);

    for (const auto &stage : stages)
        PM_ASSERT(stage.qubitsDisjoint(), "stage partition produced overlap");
    return stages;
}

/**
 * Width rebalance: migrate gates from over-full stages into strictly
 * emptier qubit-disjoint stages (most underfilled target first, lowest
 * index on ties). A move needs load(target) + 1 < load(source), so no
 * stage ever empties and the count is preserved; each move lowers the
 * sum of squared widths, so the sweeps terminate (the cap only bounds
 * the worst case). Deterministic: gate order, target choice, and the
 * stop condition depend only on the assignment.
 */
void
rebalanceWidths(const CzBlock &block, std::vector<std::uint32_t> &stage_of,
                UsedStageSets &used)
{
    constexpr int kMaxSweeps = 8;

    std::uint32_t num_stages = 0;
    for (const auto stage : stage_of)
        num_stages = std::max(num_stages, stage + 1);

    std::vector<std::uint32_t> load(num_stages, 0);
    for (const auto stage : stage_of)
        ++load[stage];

    bool changed = true;
    for (int sweep = 0; sweep < kMaxSweeps && changed; ++sweep) {
        changed = false;
        for (std::size_t g = 0; g < block.gates.size(); ++g) {
            const std::uint32_t from = stage_of[g];
            if (load[from] < 2)
                continue;
            const auto &gate = block.gates[g];
            constexpr std::uint32_t kNone = ~std::uint32_t{0};
            std::uint32_t best = kNone;
            for (std::uint32_t to = 0; to < num_stages; ++to) {
                if (to == from || load[to] + 1 >= load[from])
                    continue;
                if (best != kNone && load[to] >= load[best])
                    continue;
                if (used.test(gate.a, to) || used.test(gate.b, to))
                    continue;
                best = to;
            }
            if (best == kNone)
                continue;
            used.clear(gate.a, from);
            used.clear(gate.b, from);
            used.set(gate.a, best);
            used.set(gate.b, best);
            --load[from];
            ++load[best];
            stage_of[g] = best;
            changed = true;
        }
    }
}

} // namespace

Graph
buildInteractionGraph(const CzBlock &block, std::size_t num_qubits)
{
    const std::size_t num_gates = block.gates.size();
    Graph graph(num_gates);

    // Index gates by qubit, then connect every two gates sharing one.
    std::vector<std::vector<Graph::Vertex>> gates_on_qubit(num_qubits);
    for (std::size_t g = 0; g < num_gates; ++g) {
        const auto &gate = block.gates[g];
        PM_ASSERT(gate.a < num_qubits && gate.b < num_qubits,
                  "gate qubit outside circuit width");
        gates_on_qubit[gate.a].push_back(static_cast<Graph::Vertex>(g));
        gates_on_qubit[gate.b].push_back(static_cast<Graph::Vertex>(g));
    }
    for (std::size_t q = 0; q < num_qubits; ++q) {
        const auto &sharers = gates_on_qubit[q];
        for (std::size_t i = 0; i < sharers.size(); ++i) {
            for (std::size_t j = i + 1; j < sharers.size(); ++j) {
                // A pair sharing both qubits sits in two sharer lists;
                // expand it only from the lower one so the edge reaches
                // addEdge exactly once instead of leaning on its
                // linear-scan duplicate rejection.
                const auto other_i =
                    block.gates[sharers[i]].partnerOf(static_cast<QubitId>(q));
                const auto other_j =
                    block.gates[sharers[j]].partnerOf(static_cast<QubitId>(q));
                if (other_i == other_j && other_i < q)
                    continue;
                const bool inserted = graph.addEdge(sharers[i], sharers[j]);
                // addEdge also rejects duplicates (by an O(degree) scan),
                // so the guard above is output-invisible; this assert is
                // what keeps it from silently regressing.
                PM_ASSERT(inserted,
                          "clique expansion emitted a duplicate conflict");
            }
        }
    }
    return graph;
}

std::vector<Stage>
partitionIntoStages(const CzBlock &block, std::size_t num_qubits)
{
    if (block.gates.empty())
        return {};
    if (block.gates.size() == 1)
        return {Stage{block.gates}};

    const Graph graph = buildInteractionGraph(block, num_qubits);
    const auto order = verticesByDegreeDesc(graph);
    const auto coloring = greedyColoring(graph, order);

    std::vector<Stage> stages(numColors(coloring));
    for (std::size_t g = 0; g < block.gates.size(); ++g)
        stages[coloring[g]].gates.push_back(block.gates[g]);

    for (const auto &stage : stages)
        PM_ASSERT(stage.qubitsDisjoint(), "stage partition produced overlap");
    return stages;
}

std::vector<Stage>
partitionIntoStagesLinear(const CzBlock &block, std::size_t num_qubits)
{
    if (block.gates.empty())
        return {};
    if (block.gates.size() == 1)
        return {Stage{block.gates}};

    UsedStageSets used(num_qubits);
    const auto stage_of = greedyScanAssignment(block, num_qubits, used);
    return stagesFromAssignment(block, stage_of);
}

std::vector<Stage>
partitionIntoStagesBalanced(const CzBlock &block, std::size_t num_qubits)
{
    if (block.gates.empty())
        return {};
    if (block.gates.size() == 1)
        return {Stage{block.gates}};

    UsedStageSets used(num_qubits);
    auto stage_of = greedyScanAssignment(block, num_qubits, used);
    rebalanceWidths(block, stage_of, used);
    return stagesFromAssignment(block, stage_of);
}

std::vector<Stage>
partitionIntoStagesBy(StagePartitionStrategy strategy, const CzBlock &block,
                      std::size_t num_qubits)
{
    switch (strategy) {
    case StagePartitionStrategy::Coloring:
        return partitionIntoStages(block, num_qubits);
    case StagePartitionStrategy::Linear:
        return partitionIntoStagesLinear(block, num_qubits);
    case StagePartitionStrategy::Balanced:
        return partitionIntoStagesBalanced(block, num_qubits);
    }
    fatal("unknown stage-partition strategy");
}

} // namespace powermove
