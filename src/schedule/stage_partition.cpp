#include "schedule/stage_partition.hpp"

#include <vector>

#include "common/error.hpp"

namespace powermove {

Graph
buildInteractionGraph(const CzBlock &block, std::size_t num_qubits)
{
    const std::size_t num_gates = block.gates.size();
    Graph graph(num_gates);

    // Index gates by qubit, then connect every two gates sharing one.
    std::vector<std::vector<Graph::Vertex>> gates_on_qubit(num_qubits);
    for (std::size_t g = 0; g < num_gates; ++g) {
        const auto &gate = block.gates[g];
        PM_ASSERT(gate.a < num_qubits && gate.b < num_qubits,
                  "gate qubit outside circuit width");
        gates_on_qubit[gate.a].push_back(static_cast<Graph::Vertex>(g));
        gates_on_qubit[gate.b].push_back(static_cast<Graph::Vertex>(g));
    }
    for (const auto &sharers : gates_on_qubit) {
        for (std::size_t i = 0; i < sharers.size(); ++i) {
            for (std::size_t j = i + 1; j < sharers.size(); ++j)
                graph.addEdge(sharers[i], sharers[j]);
        }
    }
    return graph;
}

std::vector<Stage>
partitionIntoStages(const CzBlock &block, std::size_t num_qubits)
{
    if (block.gates.empty())
        return {};
    if (block.gates.size() == 1)
        return {Stage{block.gates}};

    const Graph graph = buildInteractionGraph(block, num_qubits);
    const auto order = verticesByDegreeDesc(graph);
    const auto coloring = greedyColoring(graph, order);

    std::vector<Stage> stages(numColors(coloring));
    for (std::size_t g = 0; g < block.gates.size(); ++g)
        stages[coloring[g]].gates.push_back(block.gates[g]);

    for (const auto &stage : stages)
        PM_ASSERT(stage.qubitsDisjoint(), "stage partition produced overlap");
    return stages;
}

} // namespace powermove
