#include "schedule/stage.hpp"

#include <algorithm>

namespace powermove {

std::vector<QubitId>
Stage::interactingQubits() const
{
    std::vector<QubitId> qubits;
    qubits.reserve(gates.size() * 2);
    for (const auto &gate : gates) {
        qubits.push_back(gate.a);
        qubits.push_back(gate.b);
    }
    std::sort(qubits.begin(), qubits.end());
    qubits.erase(std::unique(qubits.begin(), qubits.end()), qubits.end());
    return qubits;
}

bool
Stage::qubitsDisjoint() const
{
    std::vector<QubitId> qubits;
    qubits.reserve(gates.size() * 2);
    for (const auto &gate : gates) {
        qubits.push_back(gate.a);
        qubits.push_back(gate.b);
    }
    std::sort(qubits.begin(), qubits.end());
    return std::adjacent_find(qubits.begin(), qubits.end()) == qubits.end();
}

} // namespace powermove
