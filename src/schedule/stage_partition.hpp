/**
 * @file
 * Stage partitioning via edge coloring (paper Sec. 4.1, Algorithm 1).
 *
 * Gates of a commutable CZ block form the vertices of an *interaction
 * graph* whose edges join gates sharing a qubit. A proper coloring of
 * this graph yields stages: gates of one color act on disjoint qubits and
 * execute under a single Rydberg pulse. PowerMove colors greedily in
 * descending vertex-degree order (Welsh-Powell), which is near-optimal
 * for these line-graph-like instances.
 *
 * Three implementations sit behind StagePartitionStrategy:
 *
 *  - partitionIntoStages (Coloring): materializes the conflict graph —
 *    a clique per qubit, O(k^2) edges for a qubit used in k gates —
 *    then colors it. The paper's formulation and the reference.
 *  - partitionIntoStagesLinear (Linear): the same greedy coloring by a
 *    qubit scan that never builds the graph. A gate conflicts only
 *    through its two qubits, so a per-qubit bitset of already-used
 *    stage indices gives the forbidden set in O(stages/64) words; the
 *    result is bit-identical to Coloring in O(gates * stages/64) time
 *    and O(num_qubits) bitsets of extra space.
 *  - partitionIntoStagesBalanced (Balanced): the Linear scan followed
 *    by a deterministic width-rebalancing sweep that migrates gates
 *    from over-full stages into emptier qubit-disjoint stages. Stage
 *    count is provably unchanged; the maximum stage width — the number
 *    of simultaneous moves the routers later schedule — shrinks.
 */

#ifndef POWERMOVE_SCHEDULE_STAGE_PARTITION_HPP
#define POWERMOVE_SCHEDULE_STAGE_PARTITION_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "common/graph.hpp"
#include "compiler/strategies.hpp"
#include "schedule/stage.hpp"

namespace powermove {

/**
 * Builds the interaction graph of a CZ block: one vertex per gate, one
 * edge between every two gates sharing at least one qubit. Gate pairs
 * sharing *both* qubits are deduplicated up front (the pair is expanded
 * only from its lower shared qubit), so every conflict reaches
 * Graph::addEdge exactly once.
 */
Graph buildInteractionGraph(const CzBlock &block, std::size_t num_qubits);

/**
 * Partitions a commutable CZ block into stages (Algorithm 1) via the
 * materialized conflict graph.
 *
 * @param block      the gates to partition
 * @param num_qubits circuit width (for the qubit-indexed gate lists)
 * @return stages of disjoint-qubit gates; their concatenation is a
 *         permutation of the block's gates.
 */
std::vector<Stage> partitionIntoStages(const CzBlock &block,
                                       std::size_t num_qubits);

/**
 * Graph-free qubit-scan partitioner: produces a stage assignment
 * bit-identical to partitionIntoStages (same greedy order, same colors)
 * without materializing the conflict graph.
 */
std::vector<Stage> partitionIntoStagesLinear(const CzBlock &block,
                                             std::size_t num_qubits);

/**
 * Width-balanced partitioner: the Linear assignment plus a rebalancing
 * sweep. Returns the same number of stages as partitionIntoStages with
 * the same gate multiset and qubit-disjoint stages, but ties broken
 * toward emptier stages so the maximum stage width never grows (and
 * usually shrinks).
 */
std::vector<Stage> partitionIntoStagesBalanced(const CzBlock &block,
                                               std::size_t num_qubits);

/** Dispatches to the partitioner selected by @p strategy. */
std::vector<Stage> partitionIntoStagesBy(StagePartitionStrategy strategy,
                                         const CzBlock &block,
                                         std::size_t num_qubits);

} // namespace powermove

#endif // POWERMOVE_SCHEDULE_STAGE_PARTITION_HPP
