/**
 * @file
 * Stage partitioning via edge coloring (paper Sec. 4.1, Algorithm 1).
 *
 * Gates of a commutable CZ block form the vertices of an *interaction
 * graph* whose edges join gates sharing a qubit. A proper coloring of
 * this graph yields stages: gates of one color act on disjoint qubits and
 * execute under a single Rydberg pulse. PowerMove colors greedily in
 * descending vertex-degree order (Welsh-Powell), which is near-optimal
 * for these line-graph-like instances and runs in near-linear time.
 */

#ifndef POWERMOVE_SCHEDULE_STAGE_PARTITION_HPP
#define POWERMOVE_SCHEDULE_STAGE_PARTITION_HPP

#include <vector>

#include "circuit/circuit.hpp"
#include "common/graph.hpp"
#include "schedule/stage.hpp"

namespace powermove {

/**
 * Builds the interaction graph of a CZ block: one vertex per gate, one
 * edge between every two gates sharing a qubit.
 */
Graph buildInteractionGraph(const CzBlock &block, std::size_t num_qubits);

/**
 * Partitions a commutable CZ block into stages (Algorithm 1).
 *
 * @param block      the gates to partition
 * @param num_qubits circuit width (for the qubit-indexed gate lists)
 * @return stages of disjoint-qubit gates; their concatenation is a
 *         permutation of the block's gates.
 */
std::vector<Stage> partitionIntoStages(const CzBlock &block,
                                       std::size_t num_qubits);

} // namespace powermove

#endif // POWERMOVE_SCHEDULE_STAGE_PARTITION_HPP
