#include "placement/cost_model.hpp"

#include <limits>

#include "common/error.hpp"

namespace powermove {

PlacementCostModel::PlacementCostModel(const Machine &machine, ZoneKind zone)
    : sites_(zone == ZoneKind::Compute ? machine.computeSites()
                                       : machine.storageSites())
{
    PM_ASSERT(!sites_.empty(), "zone has no sites");
    coords_.reserve(sites_.size());
    for (const SiteId site : sites_)
        coords_.push_back(machine.coordOf(site));

    // Growth anchor: storage grows from the middle of its compute-facing
    // row (short first retrievals *and* compact pairs); the compute zone
    // — used only in the storage-free flow, where no inter-zone shuttle
    // exists — grows from its center (compact pairs only).
    std::int32_t min_x = std::numeric_limits<std::int32_t>::max();
    std::int32_t max_x = std::numeric_limits<std::int32_t>::min();
    std::int32_t min_y = std::numeric_limits<std::int32_t>::max();
    std::int32_t max_y = std::numeric_limits<std::int32_t>::min();
    for (const SiteCoord coord : coords_) {
        min_x = std::min(min_x, coord.x);
        max_x = std::max(max_x, coord.x);
        min_y = std::min(min_y, coord.y);
        max_y = std::max(max_y, coord.y);
    }
    const SiteCoord target{(min_x + max_x) / 2,
                           zone == ZoneKind::Storage ? min_y
                                                     : (min_y + max_y) / 2};
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (std::uint32_t slot = 0; slot < coords_.size(); ++slot) {
        const std::int64_t d = manhattan(coords_[slot], target);
        if (d < best) {
            best = d;
            anchor_slot_ = slot;
        }
    }
}

double
PlacementCostModel::weightedDistance(
    const InteractionGraph &graph,
    const std::vector<std::uint32_t> &slot_of) const
{
    double cost = 0.0;
    for (const InteractionEdge &edge : graph.edges()) {
        const std::uint32_t sa = slot_of[edge.a];
        const std::uint32_t sb = slot_of[edge.b];
        PM_ASSERT(sa != kUnassignedSlot && sb != kUnassignedSlot,
                  "interacting qubit left unassigned");
        cost += edge.weight * static_cast<double>(slotDistance(sa, sb));
    }
    return cost;
}

double
PlacementCostModel::swapDelta(const InteractionGraph &graph,
                              const std::vector<std::uint32_t> &slot_of,
                              QubitId u, QubitId v) const
{
    const std::uint32_t su = slot_of[u];
    const std::uint32_t sv = slot_of[v];
    double delta = 0.0;
    for (const InteractionNeighbor &n : graph.neighbors(u)) {
        if (n.neighbor == v)
            continue; // the u-v distance is invariant under the swap
        const std::uint32_t sn = slot_of[n.neighbor];
        delta += n.weight * static_cast<double>(slotDistance(sv, sn) -
                                                slotDistance(su, sn));
    }
    for (const InteractionNeighbor &n : graph.neighbors(v)) {
        if (n.neighbor == u)
            continue;
        const std::uint32_t sn = slot_of[n.neighbor];
        delta += n.weight * static_cast<double>(slotDistance(su, sn) -
                                                slotDistance(sv, sn));
    }
    return delta;
}

double
PlacementCostModel::relocateDelta(const InteractionGraph &graph,
                                  const std::vector<std::uint32_t> &slot_of,
                                  QubitId u, std::uint32_t target) const
{
    const std::uint32_t su = slot_of[u];
    double delta = 0.0;
    for (const InteractionNeighbor &n : graph.neighbors(u)) {
        const std::uint32_t sn = slot_of[n.neighbor];
        delta += n.weight * static_cast<double>(slotDistance(target, sn) -
                                                slotDistance(su, sn));
    }
    return delta;
}

} // namespace powermove
