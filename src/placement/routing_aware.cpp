#include "placement/routing_aware.hpp"

#include <limits>

#include "common/error.hpp"
#include "placement/cost_model.hpp"
#include "placement/interaction_graph.hpp"

namespace powermove {

namespace {

constexpr double kImproveEps = 1e-9;

/** Greedy grow-from-seed layout; returns qubit -> slot. */
std::vector<std::uint32_t>
greedyGrow(const InteractionGraph &graph, const PlacementCostModel &model,
           std::size_t num_qubits)
{
    std::vector<std::uint32_t> slot_of(num_qubits, kUnassignedSlot);
    std::vector<char> slot_free(model.numSlots(), 1);
    // Attachment weight of each unplaced qubit to the placed set.
    std::vector<double> attach(num_qubits, 0.0);
    const SiteCoord anchor = model.coordOf(model.anchorSlot());

    const auto nearest_free = [&](SiteCoord target) {
        std::uint32_t best_slot = kUnassignedSlot;
        std::int64_t best = std::numeric_limits<std::int64_t>::max();
        for (std::uint32_t slot = 0; slot < model.numSlots(); ++slot) {
            if (!slot_free[slot])
                continue;
            const std::int64_t d = manhattan(model.coordOf(slot), target);
            if (d < best) {
                best = d;
                best_slot = slot;
            }
        }
        return best_slot;
    };

    const auto assign = [&](QubitId qubit, std::uint32_t slot) {
        slot_of[qubit] = slot;
        slot_free[slot] = 0;
        for (const InteractionNeighbor &n : graph.neighbors(qubit))
            attach[n.neighbor] += n.weight;
    };

    std::size_t remaining = 0;
    for (QubitId q = 0; q < num_qubits; ++q) {
        if (graph.incidentWeight(q) > 0.0)
            ++remaining;
    }

    while (remaining > 0) {
        // The unplaced qubit most attached to the placed set; ties go to
        // the heavier qubit, then the lower id. attach == 0 everywhere
        // means a fresh connected component: seed it by total weight.
        QubitId next = kNoQubit;
        for (QubitId q = 0; q < num_qubits; ++q) {
            if (slot_of[q] != kUnassignedSlot ||
                graph.incidentWeight(q) == 0.0)
                continue;
            if (next == kNoQubit || attach[q] > attach[next] ||
                (attach[q] == attach[next] &&
                 graph.incidentWeight(q) > graph.incidentWeight(next)))
                next = q;
        }

        std::uint32_t slot = kUnassignedSlot;
        if (attach[next] == 0.0) {
            // Component seed: closest free slot to the zone anchor.
            slot = nearest_free(anchor);
        } else {
            // Free slot minimizing the weighted distance to the already
            // placed neighbors; ties go to the anchor-nearest slot, then
            // the lower slot index.
            double best_cost = std::numeric_limits<double>::infinity();
            std::int64_t best_anchor_d = 0;
            for (std::uint32_t candidate = 0; candidate < model.numSlots();
                 ++candidate) {
                if (!slot_free[candidate])
                    continue;
                double cost = 0.0;
                for (const InteractionNeighbor &n : graph.neighbors(next)) {
                    if (slot_of[n.neighbor] == kUnassignedSlot)
                        continue;
                    cost += n.weight *
                            static_cast<double>(model.slotDistance(
                                candidate, slot_of[n.neighbor]));
                }
                const std::int64_t anchor_d =
                    manhattan(model.coordOf(candidate), anchor);
                if (cost < best_cost ||
                    (cost == best_cost && anchor_d < best_anchor_d)) {
                    best_cost = cost;
                    best_anchor_d = anchor_d;
                    slot = candidate;
                }
            }
        }
        PM_ASSERT(slot != kUnassignedSlot, "no free slot for placement");
        assign(next, slot);
        --remaining;
    }

    // Isolated qubits keep row-major order over the remaining free slots,
    // so a CZ-free circuit reproduces placeRowMajor() exactly.
    std::uint32_t cursor = 0;
    for (QubitId q = 0; q < num_qubits; ++q) {
        if (slot_of[q] != kUnassignedSlot)
            continue;
        while (!slot_free[cursor])
            ++cursor;
        assign(q, cursor);
    }
    return slot_of;
}

/**
 * Bounded first-improvement local search: per sweep, try relocating
 * each interacting qubit to every free slot, then swapping every
 * interacting pair, applying each change that strictly lowers the
 * weighted distance. Returns the running cost after each sweep.
 */
double
refine(const InteractionGraph &graph, const PlacementCostModel &model,
       std::vector<std::uint32_t> &slot_of, double cost,
       std::uint32_t max_sweeps, RoutingAwarePlacementReport *report)
{
    std::vector<char> slot_free(model.numSlots(), 1);
    for (const std::uint32_t slot : slot_of)
        slot_free[slot] = 0;

    std::vector<QubitId> active;
    for (QubitId q = 0; q < slot_of.size(); ++q) {
        if (graph.incidentWeight(q) > 0.0)
            active.push_back(q);
    }

    for (std::uint32_t sweep = 0; sweep < max_sweeps; ++sweep) {
        bool improved = false;

        for (const QubitId q : active) {
            // Best-improvement relocation for this qubit.
            std::uint32_t best_slot = kUnassignedSlot;
            double best_delta = -kImproveEps;
            for (std::uint32_t slot = 0; slot < model.numSlots(); ++slot) {
                if (!slot_free[slot])
                    continue;
                const double delta =
                    model.relocateDelta(graph, slot_of, q, slot);
                if (delta < best_delta) {
                    best_delta = delta;
                    best_slot = slot;
                }
            }
            if (best_slot != kUnassignedSlot) {
                slot_free[slot_of[q]] = 1;
                slot_free[best_slot] = 0;
                slot_of[q] = best_slot;
                cost += best_delta;
                improved = true;
                if (report != nullptr)
                    ++report->refine_moves;
            }
        }

        for (std::size_t i = 0; i < active.size(); ++i) {
            for (std::size_t j = i + 1; j < active.size(); ++j) {
                const QubitId u = active[i];
                const QubitId v = active[j];
                const double delta = model.swapDelta(graph, slot_of, u, v);
                if (delta < -kImproveEps) {
                    std::swap(slot_of[u], slot_of[v]);
                    cost += delta;
                    improved = true;
                    if (report != nullptr)
                        ++report->refine_moves;
                }
            }
        }

        if (report != nullptr) {
            ++report->refine_sweeps;
            report->sweep_costs.push_back(cost);
        }
        if (!improved)
            break;
    }
    return cost;
}

} // namespace

std::vector<SiteId>
routingAwareAssignment(const Machine &machine, ZoneKind zone,
                       const Circuit &circuit,
                       const RoutingAwarePlacementOptions &options,
                       RoutingAwarePlacementReport *report)
{
    const PlacementCostModel model(machine, zone);
    if (circuit.numQubits() > model.numSlots())
        fatal("zone too small to hold " +
              std::to_string(circuit.numQubits()) + " qubits (" +
              std::to_string(model.numSlots()) + " sites)");

    const InteractionGraph graph = InteractionGraph::build(circuit);
    std::vector<std::uint32_t> slot_of =
        greedyGrow(graph, model, circuit.numQubits());

    double cost = model.weightedDistance(graph, slot_of);
    if (report != nullptr) {
        *report = {};
        report->initial_weighted_distance = cost;
    }
    if (!graph.empty())
        cost = refine(graph, model, slot_of, cost, options.refine_iters,
                      report);
    if (report != nullptr)
        report->refined_weighted_distance = cost;

    std::vector<SiteId> assignment(circuit.numQubits());
    for (QubitId q = 0; q < circuit.numQubits(); ++q)
        assignment[q] = model.sites()[slot_of[q]];
    return assignment;
}

void
placeRoutingAware(Layout &layout, ZoneKind zone, const Circuit &circuit,
                  const RoutingAwarePlacementOptions &options,
                  RoutingAwarePlacementReport *report)
{
    PM_ASSERT(layout.numQubits() == circuit.numQubits(),
              "layout/circuit qubit count mismatch");
    const auto assignment = routingAwareAssignment(layout.machine(), zone,
                                                   circuit, options, report);
    for (QubitId q = 0; q < layout.numQubits(); ++q)
        layout.place(q, assignment[q]);
}

} // namespace powermove
