/**
 * @file
 * Interaction-distance cost model over one zone of the zoned grid.
 *
 * Placement quality is scored as the sum over interaction-graph edges
 * of edge weight times the Manhattan distance (in sites) between the
 * two qubits' assigned slots. Manhattan in lattice units matches what
 * routing later pays: a stage transition shuttles each atom along the
 * row/column raster of the trap plane, so pairs placed close under
 * this metric need short Coll-Moves to meet.
 *
 * Assignments are expressed in zone *slots* — indices into the zone's
 * row-major site list — so the model is oblivious to which zone it
 * scores and swap deltas never touch the Machine.
 */

#ifndef POWERMOVE_PLACEMENT_COST_MODEL_HPP
#define POWERMOVE_PLACEMENT_COST_MODEL_HPP

#include <cstdint>
#include <vector>

#include "arch/machine.hpp"
#include "common/geometry.hpp"
#include "placement/interaction_graph.hpp"

namespace powermove {

/** Sentinel slot for "qubit not assigned yet". */
inline constexpr std::uint32_t kUnassignedSlot = ~std::uint32_t{0};

/** Weighted-Manhattan scoring over the slots of one zone. */
class PlacementCostModel
{
  public:
    /** Caches the row-major site list and coordinates of @p zone. */
    PlacementCostModel(const Machine &machine, ZoneKind zone);

    /** Number of slots (= sites) in the zone. */
    std::size_t numSlots() const { return sites_.size(); }

    /** Zone sites, row-major; slot i corresponds to sites()[i]. */
    const std::vector<SiteId> &sites() const { return sites_; }

    /** Lattice coordinate of @p slot. */
    SiteCoord coordOf(std::uint32_t slot) const { return coords_[slot]; }

    /** Manhattan distance between two slots, in sites. */
    std::int64_t
    slotDistance(std::uint32_t a, std::uint32_t b) const
    {
        return manhattan(coords_[a], coords_[b]);
    }

    /**
     * The slot nearest to the zone's entry anchor — the middle of the
     * row closest to the other zone (storage's first row faces compute
     * and vice versa), where the greedy layout seeds its growth.
     */
    std::uint32_t anchorSlot() const { return anchor_slot_; }

    /**
     * Total weighted distance of @p slot_of (qubit -> slot; every qubit
     * with an incident edge must be assigned).
     */
    double weightedDistance(const InteractionGraph &graph,
                            const std::vector<std::uint32_t> &slot_of) const;

    /**
     * Cost change from swapping the slots of @p u and @p v under
     * @p slot_of (negative = improvement). The u-v edge, if any, is
     * unaffected and ignored.
     */
    double swapDelta(const InteractionGraph &graph,
                     const std::vector<std::uint32_t> &slot_of, QubitId u,
                     QubitId v) const;

    /**
     * Cost change from relocating @p u to the free slot @p target
     * (negative = improvement).
     */
    double relocateDelta(const InteractionGraph &graph,
                         const std::vector<std::uint32_t> &slot_of, QubitId u,
                         std::uint32_t target) const;

  private:
    std::vector<SiteId> sites_;
    std::vector<SiteCoord> coords_;
    std::uint32_t anchor_slot_ = 0;
};

} // namespace powermove

#endif // POWERMOVE_PLACEMENT_COST_MODEL_HPP
