#include "placement/interaction_graph.hpp"

#include <algorithm>
#include <map>
#include <utility>
#include <variant>

namespace powermove {

InteractionGraph
InteractionGraph::build(const Circuit &circuit)
{
    InteractionGraph graph;
    graph.incident_weight_.assign(circuit.numQubits(), 0.0);
    graph.adjacency_.resize(circuit.numQubits());

    // Accumulate pair weights in a sorted map so edge order (and with it
    // every downstream tie-break) is independent of gate order.
    std::map<std::pair<QubitId, QubitId>, double> pair_weight;
    std::size_t block_index = 0;
    for (const Moment &moment : circuit.moments()) {
        const auto *block = std::get_if<CzBlock>(&moment);
        if (block == nullptr)
            continue;
        const double weight = 1.0 / (1.0 + static_cast<double>(block_index));
        for (const CzGate &gate : block->gates) {
            const auto key = std::minmax(gate.a, gate.b);
            pair_weight[{key.first, key.second}] += weight;
        }
        ++block_index;
    }

    graph.edges_.reserve(pair_weight.size());
    for (const auto &[pair, weight] : pair_weight) {
        graph.edges_.push_back({pair.first, pair.second, weight});
        graph.adjacency_[pair.first].push_back({pair.second, weight});
        graph.adjacency_[pair.second].push_back({pair.first, weight});
        graph.incident_weight_[pair.first] += weight;
        graph.incident_weight_[pair.second] += weight;
    }
    return graph;
}

} // namespace powermove
