/**
 * @file
 * Weighted qubit-pair interaction graph of a circuit.
 *
 * Routing-aware placement (Stade et al., "Routing-Aware Placement for
 * Zoned Neutral Atom-based Quantum Computing") needs one summary of the
 * program per qubit pair: how soon and how often do these two qubits
 * interact? The graph aggregates every CZ gate into one edge per pair,
 * discounting later blocks — the first block's transitions are paid
 * from the *initial* layout, so its pairs dominate the placement cost,
 * while pairs that only meet many blocks later are almost decoupled
 * from where they start (routing has rearranged everything by then).
 *
 * Edge weight: sum over the pair's CZ gates of 1 / (1 + block index).
 */

#ifndef POWERMOVE_PLACEMENT_INTERACTION_GRAPH_HPP
#define POWERMOVE_PLACEMENT_INTERACTION_GRAPH_HPP

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/gate.hpp"

namespace powermove {

/** One aggregated qubit-pair interaction (a < b). */
struct InteractionEdge
{
    QubitId a = 0;
    QubitId b = 0;
    /** Soonness-discounted interaction count (see file header). */
    double weight = 0.0;
};

/** A qubit's view of one incident interaction edge. */
struct InteractionNeighbor
{
    QubitId neighbor = 0;
    double weight = 0.0;
};

/** Aggregated pair-interaction structure of one circuit. */
class InteractionGraph
{
  public:
    /** Builds the graph from every CZ block of @p circuit. */
    static InteractionGraph build(const Circuit &circuit);

    std::size_t numQubits() const { return incident_weight_.size(); }

    /** Every pair edge, ordered by (a, b). */
    const std::vector<InteractionEdge> &edges() const { return edges_; }

    /** Incident edges of @p qubit, ordered by neighbor id. */
    const std::vector<InteractionNeighbor> &neighbors(QubitId qubit) const
    {
        return adjacency_[qubit];
    }

    /** Total weight incident to @p qubit (0 for an isolated qubit). */
    double incidentWeight(QubitId qubit) const
    {
        return incident_weight_[qubit];
    }

    /** True if no pair of qubits ever interacts. */
    bool empty() const { return edges_.empty(); }

  private:
    std::vector<InteractionEdge> edges_;
    std::vector<std::vector<InteractionNeighbor>> adjacency_;
    std::vector<double> incident_weight_;
};

} // namespace powermove

#endif // POWERMOVE_PLACEMENT_INTERACTION_GRAPH_HPP
