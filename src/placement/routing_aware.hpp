/**
 * @file
 * Routing-aware initial placement (Stade et al.).
 *
 * The frequency-ranked placements shorten each busy qubit's shuttle to
 * the compute zone but leave the *pairwise* move distance — what the
 * routing pass actually pays per stage transition — invisible. This
 * method places interacting qubits near each other instead:
 *
 *  1. Build the circuit's interaction graph (placement/
 *     interaction_graph.hpp): one edge per qubit pair, weighted by how
 *     soon and how often the pair interacts.
 *  2. Grow a layout greedily from a seed: the heaviest qubit takes the
 *     slot nearest the zone's anchor, then the unplaced qubit most
 *     attached to the placed set repeatedly takes the free slot
 *     minimizing its weighted distance to its placed neighbors.
 *  3. Refine with a bounded local search: sweep relocations (to free
 *     slots) and pair swaps, applying every change that lowers the
 *     total weighted Manhattan distance, for at most refine_iters
 *     sweeps or until a sweep improves nothing.
 *
 * The whole method is deterministic — no RNG is consumed — so a fixed
 * (circuit, machine, options) triple always yields the same layout.
 * Qubits that never interact keep their row-major slots (in ascending
 * id order over the slots the greedy phase left free), so a circuit
 * with no CZ gates reproduces the row-major placement exactly.
 */

#ifndef POWERMOVE_PLACEMENT_ROUTING_AWARE_HPP
#define POWERMOVE_PLACEMENT_ROUTING_AWARE_HPP

#include <cstdint>
#include <vector>

#include "arch/layout.hpp"
#include "arch/machine.hpp"
#include "circuit/circuit.hpp"

namespace powermove {

/** Knobs of the routing-aware placement. */
struct RoutingAwarePlacementOptions
{
    /**
     * Maximum local-search sweeps after the greedy layout (0 = greedy
     * only). Each sweep tries every relocation and pair swap once; the
     * search stops early when a sweep improves nothing.
     */
    std::uint32_t refine_iters = 32;
};

/** What the placement did, for pass counters and tests. */
struct RoutingAwarePlacementReport
{
    /** Weighted distance of the greedy layout, before refinement. */
    double initial_weighted_distance = 0.0;
    /** Weighted distance of the final layout. */
    double refined_weighted_distance = 0.0;
    /** Refinement sweeps actually executed. */
    std::size_t refine_sweeps = 0;
    /** Improving relocations + swaps applied across all sweeps. */
    std::size_t refine_moves = 0;
    /**
     * Weighted distance after each sweep. Monotonically non-increasing
     * by construction (only strictly improving changes are applied).
     */
    std::vector<double> sweep_costs;
};

/**
 * Computes the routing-aware site assignment (qubit -> site) into
 * @p zone. Throws ConfigError when the zone cannot hold the circuit.
 */
std::vector<SiteId>
routingAwareAssignment(const Machine &machine, ZoneKind zone,
                       const Circuit &circuit,
                       const RoutingAwarePlacementOptions &options = {},
                       RoutingAwarePlacementReport *report = nullptr);

/** Places every qubit of @p layout per routingAwareAssignment(). */
void placeRoutingAware(Layout &layout, ZoneKind zone, const Circuit &circuit,
                       const RoutingAwarePlacementOptions &options = {},
                       RoutingAwarePlacementReport *report = nullptr);

} // namespace powermove

#endif // POWERMOVE_PLACEMENT_ROUTING_AWARE_HPP
