/**
 * @file
 * Span collection exported as Chrome trace-event JSON.
 *
 * A TraceCollector accumulates complete ("X") and instant ("i") events
 * against one steady-clock epoch fixed at construction, then renders
 * them as the Chrome trace-event JSON object format — loadable directly
 * in Perfetto (ui.perfetto.dev) or chrome://tracing. The service layer
 * stitches per-job spans into it: one lane (tid) per job, with the
 * job's lifecycle states, its per-pass compile spans, and its
 * cache-tier reads/writes as nested spans (see service/observe.hpp).
 *
 * Collection is mutex-guarded append; events are recorded at job
 * resolution (not per pass invocation), so the collector is never on a
 * compile hot path.
 */

#ifndef POWERMOVE_OBS_TRACE_HPP
#define POWERMOVE_OBS_TRACE_HPP

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace powermove::obs {

/** One Chrome trace event. */
struct TraceEvent
{
    std::string name;
    /** Comma-free category tag, e.g. "job", "pass", "cache". */
    std::string cat;
    /** 'X' (complete, has dur_us) or 'i' (instant). */
    char phase = 'X';
    /** Microseconds since the collector's epoch. */
    double ts_us = 0.0;
    /** Duration in microseconds; complete events only. */
    double dur_us = 0.0;
    /** Process lane; the service uses one pid for everything. */
    std::uint64_t pid = 1;
    /** Thread lane; the service uses the job id. */
    std::uint64_t tid = 0;
    /** Free-form key/value annotations, emitted as strings. */
    std::vector<std::pair<std::string, std::string>> args;
};

/** Thread-safe trace-event accumulator with a fixed epoch. */
class TraceCollector
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Fixes the trace epoch at now(). */
    TraceCollector();

    TraceCollector(const TraceCollector &) = delete;
    TraceCollector &operator=(const TraceCollector &) = delete;

    /** Microseconds of @p at since the epoch (negative if earlier). */
    double tsOf(Clock::time_point at) const;

    void add(TraceEvent event);

    /** Appends a complete span covering [start, end]. */
    void addComplete(std::string name, std::string cat, std::uint64_t tid,
                     Clock::time_point start, Clock::time_point end,
                     std::vector<std::pair<std::string, std::string>> args =
                         {});

    /** Appends an instant event at @p at. */
    void addInstant(std::string name, std::string cat, std::uint64_t tid,
                    Clock::time_point at,
                    std::vector<std::pair<std::string, std::string>> args =
                        {});

    /** Events recorded so far. */
    std::size_t size() const;

    /**
     * The Chrome trace-event JSON object format:
     * {"traceEvents": [...], "displayTimeUnit": "ms"}, events sorted by
     * timestamp.
     */
    std::string toChromeTraceJson() const;

  private:
    Clock::time_point epoch_;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

} // namespace powermove::obs

#endif // POWERMOVE_OBS_TRACE_HPP
