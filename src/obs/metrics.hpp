/**
 * @file
 * Lock-sharded metrics registry: counters, gauges, and fixed-boundary
 * latency histograms with machine-readable exports.
 *
 * Every signal the service and pipeline layers publish flows through
 * one MetricsRegistry:
 *
 *  - Registration (counter()/gauge()/histogram()) resolves a
 *    (name, labels) series to a stable handle under one of a fixed set
 *    of shard locks; the hot path then touches only that handle's
 *    atomics — no lock, no lookup, no allocation. Callers resolve
 *    handles once (at service construction) and keep the pointers.
 *  - Histograms use fixed upper-boundary buckets (Prometheus
 *    cumulative-bucket style) so observation is a binary search plus
 *    two relaxed atomic adds, and p50/p95/p99 are estimated by linear
 *    interpolation inside the owning bucket — the same quantile
 *    definition percentileOfSorted() applies to raw samples, which is
 *    how the bench harness and the live histograms stay comparable.
 *  - Export renders the whole registry as Prometheus text exposition
 *    (toPrometheusText) or JSON (toJson). Exports take each shard lock
 *    only to walk the series list; values are atomic snapshots, so a
 *    scrape never stalls the instrumented hot paths.
 *
 * Thread safety: every public member of every type here may be called
 * from any thread. Counter/Gauge/Histogram handles returned by the
 * registry stay valid for the registry's lifetime.
 */

#ifndef POWERMOVE_OBS_METRICS_HPP
#define POWERMOVE_OBS_METRICS_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace powermove::obs {

/** One metric series' label set, in fixed (registration) order. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/** Monotonically increasing event count. */
class Counter
{
  public:
    void add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Point-in-time level; set() and add() may interleave freely. */
class Gauge
{
  public:
    void set(double value) { value_.store(value, std::memory_order_relaxed); }

    void
    add(double delta)
    {
        double current = value_.load(std::memory_order_relaxed);
        while (!value_.compare_exchange_weak(current, current + delta,
                                             std::memory_order_relaxed))
            ;
    }

    double value() const { return value_.load(std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-boundary latency histogram. Bucket i counts observations
 * <= bounds[i]; one implicit +Inf bucket catches the rest. Boundaries
 * are fixed at registration so concurrent observation needs no
 * rebucketing and export needs no coordination.
 */
class Histogram
{
  public:
    /** @param bounds strictly increasing upper boundaries; may be empty. */
    explicit Histogram(std::vector<double> bounds);

    void observe(double value);

    /** Observations so far. */
    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Sum of observed values. */
    double sum() const { return sum_.load(std::memory_order_relaxed); }

    /** Upper boundaries (excluding the implicit +Inf). */
    const std::vector<double> &bounds() const { return bounds_; }

    /** Snapshot of per-bucket counts, bounds() first, +Inf last. */
    std::vector<std::uint64_t> bucketCounts() const;

    /**
     * Estimated q-quantile (q in [0, 1]): the owning bucket is found by
     * cumulative count and the value interpolated linearly inside it.
     * Observations beyond the last boundary clamp to it. Zero when
     * empty.
     */
    double percentile(double q) const;

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> buckets_; // bounds + Inf
    std::atomic<std::uint64_t> count_{0};
    std::atomic<double> sum_{0.0};
};

/**
 * The q-quantile (q in [0, 1]) of an ascending-sorted sample set by
 * linear interpolation between adjacent order statistics — the same
 * quantile definition Histogram::percentile() applies inside a bucket,
 * so bench-harness percentiles over raw samples and registry histogram
 * percentiles agree on methodology. Zero for an empty set.
 */
double percentileOfSorted(const std::vector<double> &sorted, double q);

/** Default microsecond latency boundaries: 100us .. 30s, log-spaced. */
std::vector<double> defaultLatencyBoundsUs();

/** Finer microsecond boundaries for per-pass wall times: 10us .. 1s. */
std::vector<double> passWallBoundsUs();

/**
 * The registry. Series keys are (name, labels); re-registering an
 * existing key returns the existing handle (histogram boundaries of
 * the first registration win). Registering one key as two different
 * kinds throws Error.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    Counter &counter(std::string_view name, const Labels &labels = {});
    Gauge &gauge(std::string_view name, const Labels &labels = {});
    Histogram &histogram(std::string_view name, std::vector<double> bounds,
                         const Labels &labels = {});

    /**
     * Prometheus text exposition (version 0.0.4): one `# TYPE` line per
     * family, series sorted by name then label string, histograms as
     * cumulative `_bucket{le=...}` plus `_sum`/`_count`.
     */
    std::string toPrometheusText() const;

    /**
     * JSON export: {"counters": [...], "gauges": [...], "histograms":
     * [...]}, each series with its name, labels, and value(s);
     * histograms carry buckets, sum, count, and p50/p95/p99.
     */
    std::string toJson() const;

  private:
    enum class Kind : std::uint8_t
    {
        Counter,
        Gauge,
        Histogram,
    };

    struct Series
    {
        std::string name;
        Labels labels;
        /** Canonical `k="v",k2="v2"` form of labels (may be empty). */
        std::string label_text;
        Kind kind = Kind::Counter;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    static constexpr std::size_t kNumShards = 8;

    struct Shard
    {
        mutable std::mutex mutex;
        /** Registration order; export re-sorts. Pointers are stable. */
        std::vector<std::unique_ptr<Series>> series;
    };

    Series &resolve(std::string_view name, const Labels &labels, Kind kind,
                    std::vector<double> *bounds);

    /** Pointers to every series, sorted by (name, label_text). */
    std::vector<const Series *> sortedSeries() const;

    std::vector<Shard> shards_;
};

} // namespace powermove::obs

#endif // POWERMOVE_OBS_METRICS_HPP
