#include "obs/observability.hpp"

namespace powermove::obs {

PeriodicReporter::PeriodicReporter(std::chrono::milliseconds interval,
                                   std::function<void()> fn)
    : interval_(interval), fn_(std::move(fn))
{
    thread_ = std::thread([this] {
        std::unique_lock<std::mutex> lock(mutex_);
        for (;;) {
            if (wake_.wait_for(lock, interval_,
                               [this] { return stopping_; }))
                return;
            ++reports_;
            lock.unlock();
            fn_();
            lock.lock();
        }
    });
}

PeriodicReporter::~PeriodicReporter()
{
    bool fire_final = false;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        fire_final = reports_ == 0;
    }
    wake_.notify_all();
    thread_.join();
    if (fire_final) {
        fn_();
        const std::lock_guard<std::mutex> lock(mutex_);
        ++reports_;
    }
}

std::size_t
PeriodicReporter::reports() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return reports_;
}

} // namespace powermove::obs
