/**
 * @file
 * Leveled structured logger emitting one key=value line per event.
 *
 * Lines are machine-parsable logfmt:
 *
 *   ts=2026-08-08T12:34:56.123456Z level=warn event=slow_job job=42 \
 *       total_ms=1287.3
 *
 * The level check is one relaxed atomic load, so call sites may guard
 * expensive field construction with enabled(); a disabled logger costs
 * a branch. Line assembly and the single write() happen under a mutex
 * so concurrent events never interleave mid-line.
 */

#ifndef POWERMOVE_OBS_LOG_HPP
#define POWERMOVE_OBS_LOG_HPP

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>

namespace powermove::obs {

/** Severity levels, least to most severe; Off disables everything. */
enum class LogLevel : int
{
    Trace = 0,
    Debug,
    Info,
    Warn,
    Error,
    Off,
};

/** Stable lower-case name, e.g. "warn". */
std::string_view logLevelName(LogLevel level);

/** Parses "trace".."error"/"off" into @p out; false on anything else. */
bool parseLogLevel(std::string_view text, LogLevel &out);

/** One key plus a pre-rendered value for a log line. */
struct LogField
{
    LogField(std::string_view key, std::string_view value);
    LogField(std::string_view key, const char *value);
    LogField(std::string_view key, const std::string &value);
    // The fundamental integer types rather than the fixed-width
    // aliases: int64_t/uint64_t/size_t collapse onto the same
    // fundamentals per platform, which would duplicate an overload.
    LogField(std::string_view key, int value);
    LogField(std::string_view key, unsigned value);
    LogField(std::string_view key, long value);
    LogField(std::string_view key, unsigned long value);
    LogField(std::string_view key, long long value);
    LogField(std::string_view key, unsigned long long value);
    LogField(std::string_view key, double value);

    std::string_view key;
    std::string value;
    /** True when the value needs quoting (spaces, quotes, '='). */
    bool quote = false;
};

/** Thread-safe leveled logfmt logger. */
class Logger
{
  public:
    /**
     * @param min_level events below this are dropped
     * @param out destination stream (not owned); stderr by default
     */
    explicit Logger(LogLevel min_level = LogLevel::Info,
                    std::FILE *out = stderr);

    Logger(const Logger &) = delete;
    Logger &operator=(const Logger &) = delete;

    LogLevel level() const
    {
        return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
    }

    void setLevel(LogLevel level)
    {
        level_.store(static_cast<int>(level), std::memory_order_relaxed);
    }

    /** True when an event at @p level would be emitted. */
    bool
    enabled(LogLevel level) const
    {
        return level != LogLevel::Off &&
               static_cast<int>(level) >=
                   level_.load(std::memory_order_relaxed);
    }

    /** Emits one line: ts, level, event, then @p fields in order. */
    void log(LogLevel level, std::string_view event,
             std::initializer_list<LogField> fields = {});

    void
    debug(std::string_view event, std::initializer_list<LogField> fields = {})
    {
        log(LogLevel::Debug, event, fields);
    }

    void
    info(std::string_view event, std::initializer_list<LogField> fields = {})
    {
        log(LogLevel::Info, event, fields);
    }

    void
    warn(std::string_view event, std::initializer_list<LogField> fields = {})
    {
        log(LogLevel::Warn, event, fields);
    }

    void
    error(std::string_view event, std::initializer_list<LogField> fields = {})
    {
        log(LogLevel::Error, event, fields);
    }

    /** Lines emitted (post-filter); cheap liveness probe for tests. */
    std::uint64_t linesWritten() const
    {
        return lines_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int> level_;
    std::FILE *out_;
    std::mutex mutex_;
    std::atomic<std::uint64_t> lines_{0};
};

} // namespace powermove::obs

#endif // POWERMOVE_OBS_LOG_HPP
