#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string_view>

namespace powermove::obs {

namespace {

std::string
escapeJson(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatTs(double micros)
{
    if (!std::isfinite(micros))
        micros = 0.0;
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.3f", micros);
    return buffer;
}

} // namespace

TraceCollector::TraceCollector() : epoch_(Clock::now()) {}

double
TraceCollector::tsOf(Clock::time_point at) const
{
    return std::chrono::duration<double, std::micro>(at - epoch_).count();
}

void
TraceCollector::add(TraceEvent event)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

void
TraceCollector::addComplete(
    std::string name, std::string cat, std::uint64_t tid,
    Clock::time_point start, Clock::time_point end,
    std::vector<std::pair<std::string, std::string>> args)
{
    TraceEvent event;
    event.name = std::move(name);
    event.cat = std::move(cat);
    event.phase = 'X';
    event.ts_us = tsOf(start);
    event.dur_us =
        std::max(0.0, std::chrono::duration<double, std::micro>(end - start)
                          .count());
    event.tid = tid;
    event.args = std::move(args);
    add(std::move(event));
}

void
TraceCollector::addInstant(
    std::string name, std::string cat, std::uint64_t tid,
    Clock::time_point at,
    std::vector<std::pair<std::string, std::string>> args)
{
    TraceEvent event;
    event.name = std::move(name);
    event.cat = std::move(cat);
    event.phase = 'i';
    event.ts_us = tsOf(at);
    event.tid = tid;
    event.args = std::move(args);
    add(std::move(event));
}

std::size_t
TraceCollector::size() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::string
TraceCollector::toChromeTraceJson() const
{
    std::vector<TraceEvent> events;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        events = events_;
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         return a.ts_us < b.ts_us;
                     });

    std::string out = "{\"traceEvents\":[";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &event = events[i];
        if (i > 0)
            out += ',';
        out += "{\"name\":\"";
        out += escapeJson(event.name);
        out += "\",\"cat\":\"";
        out += escapeJson(event.cat);
        out += "\",\"ph\":\"";
        out += event.phase;
        out += "\",\"ts\":";
        out += formatTs(event.ts_us);
        if (event.phase == 'X') {
            out += ",\"dur\":";
            out += formatTs(event.dur_us);
        } else if (event.phase == 'i') {
            out += ",\"s\":\"t\"";
        }
        out += ",\"pid\":";
        out += std::to_string(event.pid);
        out += ",\"tid\":";
        out += std::to_string(event.tid);
        if (!event.args.empty()) {
            out += ",\"args\":{";
            for (std::size_t a = 0; a < event.args.size(); ++a) {
                if (a > 0)
                    out += ',';
                out += '"';
                out += escapeJson(event.args[a].first);
                out += "\":\"";
                out += escapeJson(event.args[a].second);
                out += '"';
            }
            out += '}';
        }
        out += '}';
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

} // namespace powermove::obs
