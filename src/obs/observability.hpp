/**
 * @file
 * The observability bundle the service and CLI layers share.
 *
 * One Observability instance groups the three signal planes — a
 * MetricsRegistry, a TraceCollector, and a Logger — behind a single
 * shared_ptr that ServiceOptions / JobServiceOptions / DiskCacheOptions
 * carry. A null bundle means "observability off": every instrumented
 * call site guards on the pointer, so the disabled path costs one
 * branch and the compile pipeline itself is never touched (its
 * PassProfiles are folded in at job resolution).
 *
 * PeriodicReporter drives the "stats line every N ms" surface: it owns
 * one background thread invoking a caller-supplied callback on a fixed
 * interval until destruction, and fires the callback one final time on
 * shutdown so short runs still produce a report.
 */

#ifndef POWERMOVE_OBS_OBSERVABILITY_HPP
#define POWERMOVE_OBS_OBSERVABILITY_HPP

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace powermove::obs {

/** Bundle construction knobs. */
struct ObservabilityOptions
{
    LogLevel log_level = LogLevel::Info;
    /** Log destination (not owned); stderr by default. */
    std::FILE *log_out = stderr;
};

/** Metrics + traces + logs behind one handle. */
class Observability
{
  public:
    explicit Observability(ObservabilityOptions options = {})
        : log(options.log_level, options.log_out)
    {
    }

    MetricsRegistry metrics;
    TraceCollector trace;
    Logger log;
};

/** Calls @p fn every @p interval on a background thread until destroyed. */
class PeriodicReporter
{
  public:
    PeriodicReporter(std::chrono::milliseconds interval,
                     std::function<void()> fn);

    /** Stops the thread; fires @p fn once more if it never fired. */
    ~PeriodicReporter();

    PeriodicReporter(const PeriodicReporter &) = delete;
    PeriodicReporter &operator=(const PeriodicReporter &) = delete;

    /** Times the callback has run. */
    std::size_t reports() const;

  private:
    std::chrono::milliseconds interval_;
    std::function<void()> fn_;
    mutable std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
    std::size_t reports_ = 0;
    std::thread thread_;
};

} // namespace powermove::obs

#endif // POWERMOVE_OBS_OBSERVABILITY_HPP
