#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>

#include "common/error.hpp"

namespace powermove::obs {

namespace {

/** Escapes a Prometheus label value (backslash, quote, newline). */
std::string
escapeLabelValue(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
    return out;
}

/** Escapes a JSON string value. */
std::string
escapeJson(std::string_view value)
{
    std::string out;
    out.reserve(value.size());
    for (const char c : value) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Shortest round-trippable decimal for @p value. */
std::string
formatDouble(double value)
{
    if (!std::isfinite(value))
        return value > 0 ? "1e999" : (value < 0 ? "-1e999" : "0");
    char buffer[64];
    // Integer-valued doubles render without an exponent ("10", not
    // "1e+01") so histogram `le` labels keep the conventional shape.
    if (value == std::floor(value) && std::fabs(value) < 1e15) {
        std::snprintf(buffer, sizeof(buffer), "%.0f", value);
        return buffer;
    }
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    // Prefer the shortest representation that still round-trips.
    for (const int precision : {1, 3, 6, 9, 12, 15}) {
        char candidate[64];
        std::snprintf(candidate, sizeof(candidate), "%.*g", precision, value);
        if (std::strtod(candidate, nullptr) == value)
            return candidate;
    }
    return buffer;
}

/** Canonical `k="v",k2="v2"` rendering of @p labels. */
std::string
labelText(const Labels &labels)
{
    std::string out;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i > 0)
            out += ',';
        out += labels[i].first;
        out += "=\"";
        out += escapeLabelValue(labels[i].second);
        out += '"';
    }
    return out;
}

/** `{"k":"v",...}` JSON object for @p labels. */
std::string
labelsJson(const Labels &labels)
{
    std::string out = "{";
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (i > 0)
            out += ',';
        out += '"';
        out += escapeJson(labels[i].first);
        out += "\":\"";
        out += escapeJson(labels[i].second);
        out += '"';
    }
    out += '}';
    return out;
}

} // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    for (std::size_t i = 1; i < bounds_.size(); ++i)
        if (!(bounds_[i] > bounds_[i - 1]))
            throw Error("histogram boundaries must be strictly increasing");
}

void
Histogram::observe(double value)
{
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const std::size_t bucket =
        static_cast<std::size_t>(it - bounds_.begin());
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double sum = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(sum, sum + value,
                                       std::memory_order_relaxed))
        ;
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> counts(buckets_.size());
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        counts[i] = buckets_[i].load(std::memory_order_relaxed);
    return counts;
}

double
Histogram::percentile(double q) const
{
    const std::vector<std::uint64_t> counts = bucketCounts();
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts)
        total += c;
    if (total == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // The same fractional rank percentileOfSorted() uses; the in-bucket
    // position is then interpolated linearly between the boundaries.
    const double rank = q * static_cast<double>(total - 1);
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
        if (counts[i] == 0)
            continue;
        const std::uint64_t below = cumulative;
        cumulative += counts[i];
        if (rank >= static_cast<double>(cumulative))
            continue;
        const double lo = i == 0 ? 0.0 : bounds_[i - 1];
        // Observations past the last boundary clamp to it: the +Inf
        // bucket has no finite width to interpolate into.
        if (i == bounds_.size())
            return bounds_.empty() ? 0.0 : bounds_.back();
        const double hi = bounds_[i];
        const double within =
            (rank - static_cast<double>(below) + 0.5) /
            static_cast<double>(counts[i]);
        return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
}

double
percentileOfSorted(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::vector<double>
defaultLatencyBoundsUs()
{
    return {100.0,    250.0,    500.0,    1000.0,    2500.0,    5000.0,
            10000.0,  25000.0,  50000.0,  100000.0,  250000.0,  500000.0,
            1.0e6,    2.5e6,    5.0e6,    1.0e7,     3.0e7};
}

std::vector<double>
passWallBoundsUs()
{
    return {10.0,    25.0,    50.0,     100.0,    250.0,   500.0,
            1000.0,  2500.0,  5000.0,   10000.0,  25000.0, 50000.0,
            100000.0, 250000.0, 1.0e6};
}

MetricsRegistry::MetricsRegistry() : shards_(kNumShards) {}

MetricsRegistry::Series &
MetricsRegistry::resolve(std::string_view name, const Labels &labels,
                         Kind kind, std::vector<double> *bounds)
{
    const std::string text = labelText(labels);
    std::string key(name);
    key += '{';
    key += text;
    key += '}';
    Shard &shard = shards_[std::hash<std::string>{}(key) % kNumShards];

    const std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto &series : shard.series) {
        if (series->name != name || series->label_text != text)
            continue;
        if (series->kind != kind)
            throw Error("metric '" + key + "' registered as two kinds");
        return *series;
    }
    auto series = std::make_unique<Series>();
    series->name = std::string(name);
    series->labels = labels;
    series->label_text = text;
    series->kind = kind;
    switch (kind) {
    case Kind::Counter:
        series->counter = std::make_unique<Counter>();
        break;
    case Kind::Gauge:
        series->gauge = std::make_unique<Gauge>();
        break;
    case Kind::Histogram:
        series->histogram = std::make_unique<Histogram>(
            bounds != nullptr ? std::move(*bounds) : std::vector<double>{});
        break;
    }
    shard.series.push_back(std::move(series));
    return *shard.series.back();
}

Counter &
MetricsRegistry::counter(std::string_view name, const Labels &labels)
{
    return *resolve(name, labels, Kind::Counter, nullptr).counter;
}

Gauge &
MetricsRegistry::gauge(std::string_view name, const Labels &labels)
{
    return *resolve(name, labels, Kind::Gauge, nullptr).gauge;
}

Histogram &
MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds,
                           const Labels &labels)
{
    return *resolve(name, labels, Kind::Histogram, &bounds).histogram;
}

std::vector<const MetricsRegistry::Series *>
MetricsRegistry::sortedSeries() const
{
    std::vector<const Series *> all;
    for (const Shard &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard.mutex);
        for (const auto &series : shard.series)
            all.push_back(series.get());
    }
    std::sort(all.begin(), all.end(),
              [](const Series *a, const Series *b) {
                  if (a->name != b->name)
                      return a->name < b->name;
                  return a->label_text < b->label_text;
              });
    return all;
}

std::string
MetricsRegistry::toPrometheusText() const
{
    const std::vector<const Series *> all = sortedSeries();
    std::string out;
    std::string_view last_family;
    for (const Series *series : all) {
        if (series->name != last_family) {
            out += "# TYPE ";
            out += series->name;
            switch (series->kind) {
            case Kind::Counter:
                out += " counter\n";
                break;
            case Kind::Gauge:
                out += " gauge\n";
                break;
            case Kind::Histogram:
                out += " histogram\n";
                break;
            }
            last_family = series->name;
        }
        const auto suffixed = [&](std::string_view suffix,
                                  std::string_view extra_label) {
            std::string line = series->name;
            line += suffix;
            if (!series->label_text.empty() || !extra_label.empty()) {
                line += '{';
                line += series->label_text;
                if (!series->label_text.empty() && !extra_label.empty())
                    line += ',';
                line += extra_label;
                line += '}';
            }
            line += ' ';
            return line;
        };
        switch (series->kind) {
        case Kind::Counter:
            out += suffixed("", "");
            out += std::to_string(series->counter->value());
            out += '\n';
            break;
        case Kind::Gauge:
            out += suffixed("", "");
            out += formatDouble(series->gauge->value());
            out += '\n';
            break;
        case Kind::Histogram: {
            const Histogram &histogram = *series->histogram;
            const std::vector<std::uint64_t> counts =
                histogram.bucketCounts();
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < counts.size(); ++i) {
                cumulative += counts[i];
                const std::string le =
                    i < histogram.bounds().size()
                        ? formatDouble(histogram.bounds()[i])
                        : "+Inf";
                out += suffixed("_bucket", "le=\"" + le + "\"");
                out += std::to_string(cumulative);
                out += '\n';
            }
            out += suffixed("_sum", "");
            out += formatDouble(histogram.sum());
            out += '\n';
            out += suffixed("_count", "");
            out += std::to_string(histogram.count());
            out += '\n';
            break;
        }
        }
    }
    return out;
}

std::string
MetricsRegistry::toJson() const
{
    const std::vector<const Series *> all = sortedSeries();
    std::string counters, gauges, histograms;
    for (const Series *series : all) {
        std::string entry = "{\"name\":\"";
        entry += escapeJson(series->name);
        entry += "\",\"labels\":";
        entry += labelsJson(series->labels);
        switch (series->kind) {
        case Kind::Counter:
            entry += ",\"value\":";
            entry += std::to_string(series->counter->value());
            entry += '}';
            if (!counters.empty())
                counters += ',';
            counters += entry;
            break;
        case Kind::Gauge:
            entry += ",\"value\":";
            entry += formatDouble(series->gauge->value());
            entry += '}';
            if (!gauges.empty())
                gauges += ',';
            gauges += entry;
            break;
        case Kind::Histogram: {
            const Histogram &histogram = *series->histogram;
            const std::vector<std::uint64_t> counts =
                histogram.bucketCounts();
            entry += ",\"count\":";
            entry += std::to_string(histogram.count());
            entry += ",\"sum\":";
            entry += formatDouble(histogram.sum());
            entry += ",\"p50\":";
            entry += formatDouble(histogram.percentile(0.50));
            entry += ",\"p95\":";
            entry += formatDouble(histogram.percentile(0.95));
            entry += ",\"p99\":";
            entry += formatDouble(histogram.percentile(0.99));
            entry += ",\"buckets\":[";
            std::uint64_t cumulative = 0;
            for (std::size_t i = 0; i < counts.size(); ++i) {
                cumulative += counts[i];
                if (i > 0)
                    entry += ',';
                entry += "{\"le\":\"";
                entry += i < histogram.bounds().size()
                             ? formatDouble(histogram.bounds()[i])
                             : "+Inf";
                entry += "\",\"count\":";
                entry += std::to_string(cumulative);
                entry += '}';
            }
            entry += "]}";
            if (!histograms.empty())
                histograms += ',';
            histograms += entry;
            break;
        }
        }
    }
    std::string out = "{\"counters\":[";
    out += counters;
    out += "],\"gauges\":[";
    out += gauges;
    out += "],\"histograms\":[";
    out += histograms;
    out += "]}";
    return out;
}

} // namespace powermove::obs
