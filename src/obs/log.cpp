#include "obs/log.hpp"

#include <chrono>
#include <cinttypes>
#include <ctime>

namespace powermove::obs {

namespace {

/** True when @p value can travel bare (no spaces, quotes, or '='). */
bool
isBareValue(std::string_view value)
{
    if (value.empty())
        return false;
    for (const char c : value)
        if (c == ' ' || c == '"' || c == '=' || c == '\n' || c == '\t')
            return false;
    return true;
}

std::string
quoteValue(std::string_view value)
{
    std::string out = "\"";
    for (const char c : value) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            out += c;
        }
    }
    out += '"';
    return out;
}

/** UTC wall-clock timestamp with microseconds, RFC 3339 shaped. */
std::string
formatTimestamp()
{
    const auto now = std::chrono::system_clock::now();
    const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
    const auto micros =
        std::chrono::duration_cast<std::chrono::microseconds>(
            now.time_since_epoch())
            .count() %
        1000000;
    std::tm tm{};
    gmtime_r(&seconds, &tm);
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer),
                  "%04d-%02d-%02dT%02d:%02d:%02d.%06lldZ", tm.tm_year + 1900,
                  tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min,
                  tm.tm_sec, static_cast<long long>(micros));
    return buffer;
}

} // namespace

std::string_view
logLevelName(LogLevel level)
{
    switch (level) {
    case LogLevel::Trace:
        return "trace";
    case LogLevel::Debug:
        return "debug";
    case LogLevel::Info:
        return "info";
    case LogLevel::Warn:
        return "warn";
    case LogLevel::Error:
        return "error";
    case LogLevel::Off:
        return "off";
    }
    return "unknown";
}

bool
parseLogLevel(std::string_view text, LogLevel &out)
{
    for (const LogLevel level :
         {LogLevel::Trace, LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
          LogLevel::Error, LogLevel::Off}) {
        if (text == logLevelName(level)) {
            out = level;
            return true;
        }
    }
    return false;
}

LogField::LogField(std::string_view key, std::string_view value)
    : key(key), value(value), quote(!isBareValue(value))
{
}

LogField::LogField(std::string_view key, const char *value)
    : LogField(key, std::string_view(value))
{
}

LogField::LogField(std::string_view key, const std::string &value)
    : LogField(key, std::string_view(value))
{
}

LogField::LogField(std::string_view key, int value)
    : key(key), value(std::to_string(value))
{
}

LogField::LogField(std::string_view key, unsigned value)
    : key(key), value(std::to_string(value))
{
}

LogField::LogField(std::string_view key, long value)
    : key(key), value(std::to_string(value))
{
}

LogField::LogField(std::string_view key, unsigned long value)
    : key(key), value(std::to_string(value))
{
}

LogField::LogField(std::string_view key, long long value)
    : key(key), value(std::to_string(value))
{
}

LogField::LogField(std::string_view key, unsigned long long value)
    : key(key), value(std::to_string(value))
{
}

LogField::LogField(std::string_view key, double value) : key(key)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    this->value = buffer;
}

Logger::Logger(LogLevel min_level, std::FILE *out)
    : level_(static_cast<int>(min_level)), out_(out)
{
}

void
Logger::log(LogLevel level, std::string_view event,
            std::initializer_list<LogField> fields)
{
    if (!enabled(level) || level == LogLevel::Off)
        return;
    std::string line = "ts=";
    line += formatTimestamp();
    line += " level=";
    line += logLevelName(level);
    line += " event=";
    line += isBareValue(event) ? std::string(event) : quoteValue(event);
    for (const LogField &field : fields) {
        line += ' ';
        line += field.key;
        line += '=';
        line += field.quote ? quoteValue(field.value) : field.value;
    }
    line += '\n';
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        std::fwrite(line.data(), 1, line.size(), out_);
        std::fflush(out_);
    }
    lines_.fetch_add(1, std::memory_order_relaxed);
}

} // namespace powermove::obs
