#include "circuit/gate.hpp"

#include "common/error.hpp"

namespace powermove {

bool
oneQKindHasAngle(OneQKind kind)
{
    switch (kind) {
      case OneQKind::Rx:
      case OneQKind::Ry:
      case OneQKind::Rz:
      case OneQKind::U:
        return true;
      default:
        return false;
    }
}

std::string
oneQKindName(OneQKind kind)
{
    switch (kind) {
      case OneQKind::H:
        return "h";
      case OneQKind::X:
        return "x";
      case OneQKind::Y:
        return "y";
      case OneQKind::Z:
        return "z";
      case OneQKind::S:
        return "s";
      case OneQKind::Sdg:
        return "sdg";
      case OneQKind::T:
        return "t";
      case OneQKind::Tdg:
        return "tdg";
      case OneQKind::Rx:
        return "rx";
      case OneQKind::Ry:
        return "ry";
      case OneQKind::Rz:
        return "rz";
      case OneQKind::U:
        return "u";
    }
    panic("unknown OneQKind");
}

} // namespace powermove
