/**
 * @file
 * Commutation-aware CZ block fusion.
 *
 * The strict alternating IR closes a CZ block whenever any 1Q gate
 * appears, but many of those gates commute past the block: diagonal
 * gates (Z, S, T, Rz and adjoints) commute with CZ everywhere, and any
 * 1Q gate commutes with a block that never touches its qubit. Fusing
 * across such layers merges adjacent blocks, giving the stage partition
 * more parallelism to mine — the transformation the QFT generator
 * performs by hand when it defers its Rz corrections (see qft.cpp).
 * Especially effective on QASM imports, where decompositions sprinkle
 * Rz gates between CZs.
 */

#ifndef POWERMOVE_CIRCUIT_FUSE_HPP
#define POWERMOVE_CIRCUIT_FUSE_HPP

#include "circuit/circuit.hpp"

namespace powermove {

/** True for 1Q gates diagonal in the computational basis. */
bool isDiagonal(OneQKind kind);

/**
 * Fuses adjacent CZ blocks whenever the 1Q gates between them can be
 * hoisted before the earlier block or sunk after the later one without
 * changing circuit semantics. Gate counts are preserved exactly; the
 * number of blocks never increases. Explicit barriers are dissolved
 * (they exist to *prevent* commuting, so run this pass only when that
 * is acceptable).
 */
Circuit fuseCommutableBlocks(const Circuit &circuit);

} // namespace powermove

#endif // POWERMOVE_CIRCUIT_FUSE_HPP
