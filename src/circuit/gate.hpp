/**
 * @file
 * Gate-level building blocks of the circuit IR.
 *
 * Neutral-atom hardware natively supports parallel single-qubit rotations
 * (Raman) and CZ gates (global Rydberg pulse on adjacent pairs); every
 * input program is synthesized into this {1Q, CZ} basis before
 * compilation (paper Sec. 2.2). A CzGate is one *adjacency episode*: the
 * two qubits must share a site during one Rydberg stage.
 */

#ifndef POWERMOVE_CIRCUIT_GATE_HPP
#define POWERMOVE_CIRCUIT_GATE_HPP

#include <compare>
#include <cstdint>
#include <string>

namespace powermove {

/** Index of a program qubit. */
using QubitId = std::uint32_t;

/** Sentinel meaning "no qubit". */
inline constexpr QubitId kNoQubit = ~QubitId{0};

/** The single-qubit gate alphabet produced by synthesis. */
enum class OneQKind : std::uint8_t
{
    H,
    X,
    Y,
    Z,
    S,
    Sdg,
    T,
    Tdg,
    Rx,
    Ry,
    Rz,
    U, // generic U(theta, phi, lambda); only theta is stored
};

/** True for gate kinds that carry a rotation angle. */
bool oneQKindHasAngle(OneQKind kind);

/** Lower-case mnemonic ("h", "rz", ...). */
std::string oneQKindName(OneQKind kind);

/** A single-qubit gate instance. */
struct OneQGate
{
    OneQKind kind = OneQKind::H;
    QubitId qubit = 0;
    /** Rotation angle in radians; meaningful only when the kind has one. */
    double angle = 0.0;

    auto operator<=>(const OneQGate &) const = default;
};

/** A CZ-class two-qubit gate (one adjacency episode between two qubits). */
struct CzGate
{
    QubitId a = 0;
    QubitId b = 0;

    /** Canonical form with a < b. */
    CzGate
    canonical() const
    {
        return a <= b ? *this : CzGate{b, a};
    }

    /** True if the gate acts on @p q. */
    bool touches(QubitId q) const { return a == q || b == q; }

    /** The other endpoint of the gate. */
    QubitId
    partnerOf(QubitId q) const
    {
        return a == q ? b : a;
    }

    auto operator<=>(const CzGate &) const = default;
};

} // namespace powermove

#endif // POWERMOVE_CIRCUIT_GATE_HPP
