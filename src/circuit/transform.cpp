#include "circuit/transform.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/error.hpp"

namespace powermove {

namespace {

OneQGate
inverseOf(const OneQGate &gate)
{
    OneQGate inverse = gate;
    switch (gate.kind) {
      case OneQKind::S:
        inverse.kind = OneQKind::Sdg;
        break;
      case OneQKind::Sdg:
        inverse.kind = OneQKind::S;
        break;
      case OneQKind::T:
        inverse.kind = OneQKind::Tdg;
        break;
      case OneQKind::Tdg:
        inverse.kind = OneQKind::T;
        break;
      case OneQKind::Rx:
      case OneQKind::Ry:
      case OneQKind::Rz:
      case OneQKind::U:
        inverse.angle = -gate.angle;
        break;
      default:
        break; // H, X, Y, Z are self-inverse
    }
    return inverse;
}

bool
isSelfInverse(OneQKind kind)
{
    switch (kind) {
      case OneQKind::H:
      case OneQKind::X:
      case OneQKind::Y:
      case OneQKind::Z:
        return true;
      default:
        return false;
    }
}

bool
isRotation(OneQKind kind)
{
    return kind == OneQKind::Rx || kind == OneQKind::Ry ||
           kind == OneQKind::Rz;
}

} // namespace

Circuit
inverseCircuit(const Circuit &circuit)
{
    Circuit inverse(circuit.numQubits(), circuit.name() + "-inverse");
    const auto &moments = circuit.moments();
    for (auto it = moments.rbegin(); it != moments.rend(); ++it) {
        if (const auto *layer = std::get_if<OneQLayer>(&*it)) {
            for (auto gate = layer->gates.rbegin();
                 gate != layer->gates.rend(); ++gate) {
                inverse.append(inverseOf(*gate));
            }
        } else {
            // CZ gates are diagonal and self-inverse; block order flips
            // but intra-block order is irrelevant (all commute).
            inverse.barrier();
            for (const auto &gate : std::get<CzBlock>(*it).gates)
                inverse.append(gate);
        }
    }
    return inverse;
}

Circuit
cancelAdjacentOneQ(const Circuit &circuit)
{
    Circuit simplified(circuit.numQubits(), circuit.name());
    for (const auto &moment : circuit.moments()) {
        if (const auto *block = std::get_if<CzBlock>(&moment)) {
            simplified.barrier();
            for (const auto &gate : block->gates)
                simplified.append(gate);
            continue;
        }
        // Per-qubit peephole within the layer: cancel X X, merge
        // rz(a) rz(b), drop zero rotations.
        const auto &layer = std::get<OneQLayer>(moment);
        std::vector<std::vector<OneQGate>> per_qubit(circuit.numQubits());
        for (const auto &gate : layer.gates) {
            auto &stack = per_qubit[gate.qubit];
            if (!stack.empty()) {
                const OneQGate &top = stack.back();
                if (isSelfInverse(gate.kind) && top.kind == gate.kind) {
                    stack.pop_back();
                    continue;
                }
                if (isRotation(gate.kind) && top.kind == gate.kind) {
                    const double merged = top.angle + gate.angle;
                    stack.pop_back();
                    if (std::fabs(merged) > 1e-12) {
                        OneQGate combined = gate;
                        combined.angle = merged;
                        stack.push_back(combined);
                    }
                    continue;
                }
            }
            if (isRotation(gate.kind) && std::fabs(gate.angle) < 1e-12)
                continue;
            stack.push_back(gate);
        }
        // Emit survivors in original qubit-major order for determinism.
        for (QubitId q = 0; q < circuit.numQubits(); ++q) {
            for (const auto &gate : per_qubit[q])
                simplified.append(gate);
        }
    }
    return simplified;
}

std::vector<std::size_t>
gateCountsPerQubit(const Circuit &circuit)
{
    std::vector<std::size_t> counts(circuit.numQubits(), 0);
    for (const auto &moment : circuit.moments()) {
        if (const auto *layer = std::get_if<OneQLayer>(&moment)) {
            for (const auto &gate : layer->gates)
                ++counts[gate.qubit];
        } else {
            for (const auto &gate : std::get<CzBlock>(moment).gates) {
                ++counts[gate.a];
                ++counts[gate.b];
            }
        }
    }
    return counts;
}

std::size_t
circuitDepth(const Circuit &circuit)
{
    std::size_t depth = 0;
    std::vector<std::size_t> multiplicity(circuit.numQubits());
    for (const auto &moment : circuit.moments()) {
        if (const auto *layer = std::get_if<OneQLayer>(&moment)) {
            depth += layer->depth(circuit.numQubits());
        } else {
            std::fill(multiplicity.begin(), multiplicity.end(), 0);
            std::size_t block_depth = 0;
            for (const auto &gate : std::get<CzBlock>(moment).gates) {
                block_depth = std::max({block_depth, ++multiplicity[gate.a],
                                        ++multiplicity[gate.b]});
            }
            depth += block_depth;
        }
    }
    return depth;
}

} // namespace powermove
