/**
 * @file
 * The circuit intermediate representation.
 *
 * A Circuit is a sequence of *moments*, strictly alternating between
 * layers of single-qubit gates and blocks of mutually commutable CZ gates
 * ("dependent CZ blocks", paper Sec. 4.1). All CZ gates are diagonal and
 * therefore commute with one another, so a block is a maximal run of CZ
 * gates uninterrupted by single-qubit gates; the compiler is free to
 * reorder stages within a block but must respect block order.
 *
 * Appending gates maintains the alternating structure automatically:
 * consecutive CZ gates extend the current block, and a 1Q gate closes it.
 */

#ifndef POWERMOVE_CIRCUIT_CIRCUIT_HPP
#define POWERMOVE_CIRCUIT_CIRCUIT_HPP

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "circuit/gate.hpp"

namespace powermove {

/** A layer of single-qubit gates executed between CZ blocks. */
struct OneQLayer
{
    std::vector<OneQGate> gates;

    /**
     * Serialized depth of the layer: the maximum number of gates stacked
     * on any single qubit. Gates on distinct qubits run in parallel, so
     * the layer takes depth * t_1q wall time.
     */
    std::size_t depth(std::size_t num_qubits) const;
};

/** A block of mutually commutable CZ gates. */
struct CzBlock
{
    std::vector<CzGate> gates;

    /** Distinct qubits touched by the block. */
    std::vector<QubitId> touchedQubits() const;
};

/** One element of the alternating moment sequence. */
using Moment = std::variant<OneQLayer, CzBlock>;

/** A quantum program in the {1Q, CZ} basis. */
class Circuit
{
  public:
    Circuit() = default;

    /** Creates an empty circuit over @p num_qubits qubits. */
    explicit Circuit(std::size_t num_qubits, std::string name = "circuit");

    /** Number of program qubits. */
    std::size_t numQubits() const { return num_qubits_; }

    /** Human-readable benchmark name. */
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /**
     * Appends a single-qubit gate. Closes the current CZ block (if one is
     * open) and extends or opens a 1Q layer.
     */
    void append(const OneQGate &gate);

    /**
     * Appends a CZ gate. Extends the current CZ block, or opens a new one
     * if the previous moment is a 1Q layer. Self-interactions are
     * rejected.
     */
    void append(const CzGate &gate);

    /** Appends every gate of @p other (qubit counts must match). */
    void appendCircuit(const Circuit &other);

    /**
     * Closes the current moment: subsequent CZ gates start a new block
     * even without an intervening 1Q gate (QASM barrier semantics).
     */
    void barrier() { barrier_pending_ = true; }

    /** The alternating moment sequence. */
    const std::vector<Moment> &moments() const { return moments_; }

    /** All CZ blocks, in program order. */
    std::vector<const CzBlock *> blocks() const;

    /** Total number of single-qubit gates. */
    std::size_t numOneQGates() const { return num_one_q_; }

    /** Total number of CZ gates. */
    std::size_t numCzGates() const { return num_cz_; }

    /** Number of CZ blocks. */
    std::size_t numBlocks() const { return num_blocks_; }

    /** True if the circuit has no gates. */
    bool empty() const { return moments_.empty(); }

  private:
    void checkQubit(QubitId q) const;

    std::size_t num_qubits_ = 0;
    std::string name_ = "circuit";
    std::vector<Moment> moments_;
    std::size_t num_one_q_ = 0;
    std::size_t num_cz_ = 0;
    std::size_t num_blocks_ = 0;
    bool barrier_pending_ = false;
};

} // namespace powermove

#endif // POWERMOVE_CIRCUIT_CIRCUIT_HPP
