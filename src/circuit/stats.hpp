/**
 * @file
 * Summary statistics over circuits, used by reports and tests.
 */

#ifndef POWERMOVE_CIRCUIT_STATS_HPP
#define POWERMOVE_CIRCUIT_STATS_HPP

#include <cstddef>
#include <string>

namespace powermove {

class Circuit;

/** Aggregate shape information about a circuit. */
struct CircuitStats
{
    std::size_t num_qubits = 0;
    std::size_t num_one_q_gates = 0;
    std::size_t num_cz_gates = 0;
    std::size_t num_blocks = 0;
    /** Largest CZ block, in gates. */
    std::size_t max_block_gates = 0;
    /** Sum over blocks of the max gate multiplicity per qubit; a lower
     *  bound on the total number of Rydberg stages. */
    std::size_t stage_lower_bound = 0;

    std::string toString() const;
};

/** Computes statistics for @p circuit. */
CircuitStats computeStats(const Circuit &circuit);

} // namespace powermove

#endif // POWERMOVE_CIRCUIT_STATS_HPP
