#include "circuit/fuse.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace powermove {

bool
isDiagonal(OneQKind kind)
{
    switch (kind) {
      case OneQKind::Z:
      case OneQKind::S:
      case OneQKind::Sdg:
      case OneQKind::T:
      case OneQKind::Tdg:
      case OneQKind::Rz:
        return true;
      default:
        return false;
    }
}

namespace {

/** Membership bitmap of the qubits a block touches. */
std::vector<bool>
touchedMask(const CzBlock &block, std::size_t num_qubits)
{
    std::vector<bool> mask(num_qubits, false);
    for (const auto &gate : block.gates) {
        mask[gate.a] = true;
        mask[gate.b] = true;
    }
    return mask;
}

} // namespace

Circuit
fuseCommutableBlocks(const Circuit &circuit)
{
    const std::size_t n = circuit.numQubits();

    // Working representation: an optional leading layer, then
    // alternating (block, layer) pairs.
    std::vector<OneQGate> leading;
    struct Segment
    {
        CzBlock block;
        std::vector<bool> touched;
        std::vector<OneQGate> following;
    };
    std::vector<Segment> segments;

    const auto pending_of = [&]() -> std::vector<OneQGate> & {
        return segments.empty() ? leading : segments.back().following;
    };

    for (const auto &moment : circuit.moments()) {
        if (const auto *layer = std::get_if<OneQLayer>(&moment)) {
            auto &pending = pending_of();
            pending.insert(pending.end(), layer->gates.begin(),
                           layer->gates.end());
            continue;
        }
        const auto &block = std::get<CzBlock>(moment);

        if (!segments.empty()) {
            Segment &prev = segments.back();
            const auto new_mask = touchedMask(block, n);

            // Try to clear the in-between layer: hoist gates before the
            // previous block or sink them after this one. Once a gate
            // on some qubit sinks, later gates on that qubit must sink
            // too (their relative order must survive).
            std::vector<OneQGate> hoisted;
            std::vector<OneQGate> sunk;
            std::vector<bool> qubit_sunk(n, false);
            bool blocked = false;
            for (const auto &gate : prev.following) {
                const bool hoistable =
                    (isDiagonal(gate.kind) || !prev.touched[gate.qubit]) &&
                    !qubit_sunk[gate.qubit];
                const bool sinkable =
                    isDiagonal(gate.kind) || !new_mask[gate.qubit];
                if (hoistable) {
                    hoisted.push_back(gate);
                } else if (sinkable) {
                    sunk.push_back(gate);
                    qubit_sunk[gate.qubit] = true;
                } else {
                    blocked = true;
                    break;
                }
            }

            if (!blocked) {
                // Merge: hoisted gates jump before the previous block,
                // the new block's gates join it, sunk gates stay pending.
                auto &pre_layer = segments.size() >= 2
                                      ? segments[segments.size() - 2].following
                                      : leading;
                pre_layer.insert(pre_layer.end(), hoisted.begin(),
                                 hoisted.end());
                prev.block.gates.insert(prev.block.gates.end(),
                                        block.gates.begin(),
                                        block.gates.end());
                for (QubitId q = 0; q < n; ++q) {
                    if (new_mask[q])
                        prev.touched[q] = true;
                }
                prev.following = std::move(sunk);
                continue;
            }
        }

        Segment segment;
        segment.block = block;
        segment.touched = touchedMask(block, n);
        segments.push_back(std::move(segment));
    }

    // Re-emit.
    Circuit fused(n, circuit.name());
    for (const auto &gate : leading)
        fused.append(gate);
    for (const auto &segment : segments) {
        for (const auto &gate : segment.block.gates)
            fused.append(gate);
        for (const auto &gate : segment.following)
            fused.append(gate);
    }

    PM_ASSERT(fused.numCzGates() == circuit.numCzGates(),
              "fusion must preserve the CZ gate multiset");
    PM_ASSERT(fused.numOneQGates() == circuit.numOneQGates(),
              "fusion must preserve the 1Q gate count");
    PM_ASSERT(fused.numBlocks() <= circuit.numBlocks(),
              "fusion must not create blocks");
    return fused;
}

} // namespace powermove
