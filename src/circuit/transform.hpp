/**
 * @file
 * Circuit transformation and analysis utilities.
 *
 * Small, composable passes used by the QASM pipeline and by tooling:
 * inversion (CZ blocks are self-inverse up to 1Q adjoints), adjacent
 * self-inverse 1Q cancellation (H/X/Y/Z pairs — the simplification that
 * makes CX chains on one target collapse into a single CZ block), and
 * per-qubit/depth statistics.
 */

#ifndef POWERMOVE_CIRCUIT_TRANSFORM_HPP
#define POWERMOVE_CIRCUIT_TRANSFORM_HPP

#include <vector>

#include "circuit/circuit.hpp"

namespace powermove {

/**
 * The adjoint circuit: moments reversed, each 1Q gate replaced by its
 * inverse (S <-> Sdg, T <-> Tdg, rotations negated; H/X/Y/Z and CZ are
 * self-inverse). Appending inverse(c) to c yields the identity.
 */
Circuit inverseCircuit(const Circuit &circuit);

/**
 * Cancels adjacent self-inverse 1Q gate pairs on the same qubit within
 * each layer and merges consecutive rotations of the same axis
 * (rz(a) rz(b) -> rz(a+b); zero-angle rotations are dropped). Returns
 * the simplified circuit; CZ blocks are untouched.
 */
Circuit cancelAdjacentOneQ(const Circuit &circuit);

/** Number of gates (1Q + CZ) acting on each qubit. */
std::vector<std::size_t> gateCountsPerQubit(const Circuit &circuit);

/**
 * Circuit depth in moments, where a 1Q layer contributes its serialized
 * depth and a CZ block contributes its stage lower bound (max per-qubit
 * gate multiplicity).
 */
std::size_t circuitDepth(const Circuit &circuit);

} // namespace powermove

#endif // POWERMOVE_CIRCUIT_TRANSFORM_HPP
