#include "circuit/stats.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "circuit/circuit.hpp"

namespace powermove {

CircuitStats
computeStats(const Circuit &circuit)
{
    CircuitStats stats;
    stats.num_qubits = circuit.numQubits();
    stats.num_one_q_gates = circuit.numOneQGates();
    stats.num_cz_gates = circuit.numCzGates();
    stats.num_blocks = circuit.numBlocks();

    std::vector<std::size_t> multiplicity(circuit.numQubits());
    for (const auto *block : circuit.blocks()) {
        stats.max_block_gates = std::max(stats.max_block_gates,
                                         block->gates.size());
        // Any qubit appearing k times in a block forces >= k stages, since
        // stages act on disjoint qubits.
        std::fill(multiplicity.begin(), multiplicity.end(), 0);
        std::size_t block_bound = block->gates.empty() ? 0 : 1;
        for (const auto &gate : block->gates) {
            block_bound = std::max({block_bound, ++multiplicity[gate.a],
                                    ++multiplicity[gate.b]});
        }
        stats.stage_lower_bound += block_bound;
    }
    return stats;
}

std::string
CircuitStats::toString() const
{
    std::ostringstream os;
    os << "qubits=" << num_qubits << " 1q=" << num_one_q_gates
       << " cz=" << num_cz_gates << " blocks=" << num_blocks
       << " max_block=" << max_block_gates
       << " stage_lb=" << stage_lower_bound;
    return os.str();
}

} // namespace powermove
