#include "circuit/circuit.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace powermove {

std::size_t
OneQLayer::depth(std::size_t num_qubits) const
{
    std::vector<std::size_t> per_qubit(num_qubits, 0);
    std::size_t depth = 0;
    for (const auto &gate : gates) {
        PM_ASSERT(gate.qubit < num_qubits, "1Q gate qubit out of range");
        depth = std::max(depth, ++per_qubit[gate.qubit]);
    }
    return depth;
}

std::vector<QubitId>
CzBlock::touchedQubits() const
{
    std::vector<QubitId> qubits;
    qubits.reserve(gates.size() * 2);
    for (const auto &gate : gates) {
        qubits.push_back(gate.a);
        qubits.push_back(gate.b);
    }
    std::sort(qubits.begin(), qubits.end());
    qubits.erase(std::unique(qubits.begin(), qubits.end()), qubits.end());
    return qubits;
}

Circuit::Circuit(std::size_t num_qubits, std::string name)
    : num_qubits_(num_qubits), name_(std::move(name))
{}

void
Circuit::checkQubit(QubitId q) const
{
    if (q >= num_qubits_)
        fatal("gate addresses qubit " + std::to_string(q) + " but circuit has " +
              std::to_string(num_qubits_) + " qubits");
}

void
Circuit::append(const OneQGate &gate)
{
    checkQubit(gate.qubit);
    barrier_pending_ = false;
    if (moments_.empty() || !std::holds_alternative<OneQLayer>(moments_.back()))
        moments_.emplace_back(OneQLayer{});
    std::get<OneQLayer>(moments_.back()).gates.push_back(gate);
    ++num_one_q_;
}

void
Circuit::append(const CzGate &gate)
{
    checkQubit(gate.a);
    checkQubit(gate.b);
    if (gate.a == gate.b)
        fatal("CZ gate endpoints must differ");
    if (moments_.empty() || barrier_pending_ ||
        !std::holds_alternative<CzBlock>(moments_.back())) {
        moments_.emplace_back(CzBlock{});
        ++num_blocks_;
    }
    barrier_pending_ = false;
    std::get<CzBlock>(moments_.back()).gates.push_back(gate.canonical());
    ++num_cz_;
}

void
Circuit::appendCircuit(const Circuit &other)
{
    if (other.numQubits() != num_qubits_)
        fatal("appendCircuit requires matching qubit counts");
    for (const auto &moment : other.moments()) {
        if (const auto *layer = std::get_if<OneQLayer>(&moment)) {
            for (const auto &gate : layer->gates)
                append(gate);
        } else {
            for (const auto &gate : std::get<CzBlock>(moment).gates)
                append(gate);
        }
    }
}

std::vector<const CzBlock *>
Circuit::blocks() const
{
    std::vector<const CzBlock *> result;
    result.reserve(num_blocks_);
    for (const auto &moment : moments_) {
        if (const auto *block = std::get_if<CzBlock>(&moment))
            result.push_back(block);
    }
    return result;
}

} // namespace powermove
