/**
 * @file
 * Per-pass instrumentation of the compile pipeline.
 *
 * Every pipeline pass is timed and may publish named counters; the
 * resulting PassProfiles travel inside CompileResult so that callers —
 * the CLI's --profile flag, the batch service's aggregate stats, and
 * bench/micro_passes — can attribute compile time to individual passes.
 *
 * Wall times are measurement noise by nature; everything else (the
 * invocation counts and every counter) is deterministic for a fixed
 * (circuit, machine, options) triple, which the tests rely on.
 */

#ifndef POWERMOVE_COMPILER_PROFILE_HPP
#define POWERMOVE_COMPILER_PROFILE_HPP

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"

namespace powermove {

/** The named passes of the compile pipeline, in execution order. */
enum class PassId : std::uint8_t
{
    Placement,
    StagePartition,
    StageOrder,
    Routing,
    CollMoveOrder,
    AodBatch,
};

/** Number of PassId values. */
inline constexpr std::size_t kNumPasses = 6;

/** Stable pass name, e.g. "routing". */
std::string_view passName(PassId pass);

/** One named, pass-specific measurement. */
struct PassCounter
{
    std::string name;
    std::uint64_t value = 0;
};

/** The profile of one pass accumulated over a compilation. */
struct PassProfile
{
    PassId pass = PassId::Placement;
    /** Total wall time spent inside the pass. */
    Duration wall_time = Duration::micros(0.0);
    /** Times the pass ran (per block or per stage for inner passes). */
    std::size_t invocations = 0;
    /** Pass-specific counters, in first-touch order. */
    std::vector<PassCounter> counters;
};

/**
 * Collects PassProfiles during one compilation. When disabled (see
 * CompilerOptions::profile_passes) every operation is a cheap no-op and
 * finish() returns an empty vector; the schedule a compilation produces
 * is bit-identical either way.
 */
class PassProfiler
{
  public:
    explicit PassProfiler(bool enabled) : enabled_(enabled) {}

    bool enabled() const { return enabled_; }

    /** RAII scope accumulating wall time into one pass. */
    class [[nodiscard]] Timing
    {
      public:
        Timing(PassProfiler *profiler, PassId pass)
            : profiler_(profiler), pass_(pass)
        {
            if (profiler_ != nullptr)
                start_ = std::chrono::steady_clock::now();
        }

        ~Timing()
        {
            if (profiler_ != nullptr)
                profiler_->record(pass_, std::chrono::steady_clock::now() -
                                             start_);
        }

        Timing(const Timing &) = delete;
        Timing &operator=(const Timing &) = delete;

      private:
        PassProfiler *profiler_;
        PassId pass_;
        std::chrono::steady_clock::time_point start_;
    };

    /** Starts a timed invocation of @p pass. */
    Timing
    time(PassId pass)
    {
        return Timing(enabled_ ? this : nullptr, pass);
    }

    /** Adds @p delta to the pass counter named @p name. */
    void addCounter(PassId pass, std::string_view name, std::uint64_t delta);

    /** Profiles of every invoked pass, in pipeline order. */
    std::vector<PassProfile> finish() const;

  private:
    friend class Timing;

    void record(PassId pass, std::chrono::steady_clock::duration elapsed);

    struct Slot
    {
        double wall_micros = 0.0;
        std::size_t invocations = 0;
        std::vector<PassCounter> counters;
    };

    std::array<Slot, kNumPasses> slots_;
    bool enabled_;
};

/**
 * Accumulates @p from into @p into: wall times and invocations add up,
 * counters merge by name. Used by the batch service to aggregate pass
 * totals across every job it compiles.
 */
void mergePassProfiles(std::vector<PassProfile> &into,
                       const std::vector<PassProfile> &from);

} // namespace powermove

#endif // POWERMOVE_COMPILER_PROFILE_HPP
