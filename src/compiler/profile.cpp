#include "compiler/profile.hpp"

#include <algorithm>

namespace powermove {

std::string_view
passName(PassId pass)
{
    switch (pass) {
    case PassId::Placement:
        return "placement";
    case PassId::StagePartition:
        return "stage-partition";
    case PassId::StageOrder:
        return "stage-order";
    case PassId::Routing:
        return "routing";
    case PassId::CollMoveOrder:
        return "coll-move-order";
    case PassId::AodBatch:
        return "aod-batch";
    }
    return "unknown";
}

void
PassProfiler::addCounter(PassId pass, std::string_view name,
                         std::uint64_t delta)
{
    if (!enabled_)
        return;
    auto &counters = slots_[static_cast<std::size_t>(pass)].counters;
    const auto it =
        std::find_if(counters.begin(), counters.end(),
                     [&](const PassCounter &c) { return c.name == name; });
    if (it != counters.end())
        it->value += delta;
    else
        counters.push_back({std::string(name), delta});
}

void
PassProfiler::record(PassId pass, std::chrono::steady_clock::duration elapsed)
{
    Slot &slot = slots_[static_cast<std::size_t>(pass)];
    slot.wall_micros +=
        std::chrono::duration<double, std::micro>(elapsed).count();
    ++slot.invocations;
}

std::vector<PassProfile>
PassProfiler::finish() const
{
    std::vector<PassProfile> profiles;
    if (!enabled_)
        return profiles;
    for (std::size_t i = 0; i < kNumPasses; ++i) {
        const Slot &slot = slots_[i];
        if (slot.invocations == 0)
            continue;
        PassProfile profile;
        profile.pass = static_cast<PassId>(i);
        profile.wall_time = Duration::micros(slot.wall_micros);
        profile.invocations = slot.invocations;
        profile.counters = slot.counters;
        profiles.push_back(std::move(profile));
    }
    return profiles;
}

void
mergePassProfiles(std::vector<PassProfile> &into,
                  const std::vector<PassProfile> &from)
{
    for (const PassProfile &profile : from) {
        auto it = std::find_if(
            into.begin(), into.end(),
            [&](const PassProfile &p) { return p.pass == profile.pass; });
        if (it == into.end()) {
            into.push_back(profile);
            continue;
        }
        it->wall_time = it->wall_time + profile.wall_time;
        it->invocations += profile.invocations;
        for (const PassCounter &counter : profile.counters) {
            const auto cit = std::find_if(
                it->counters.begin(), it->counters.end(),
                [&](const PassCounter &c) { return c.name == counter.name; });
            if (cit != it->counters.end())
                cit->value += counter.value;
            else
                it->counters.push_back(counter);
        }
    }
    // Keep the aggregate in pipeline order no matter how partial the
    // incoming profiles were (a pass can be absent from early jobs).
    std::sort(into.begin(), into.end(),
              [](const PassProfile &a, const PassProfile &b) {
                  return static_cast<int>(a.pass) < static_cast<int>(b.pass);
              });
}

} // namespace powermove
