/**
 * @file
 * PowerMove compiler configuration.
 */

#ifndef POWERMOVE_COMPILER_OPTIONS_HPP
#define POWERMOVE_COMPILER_OPTIONS_HPP

#include <cstdint>

#include "collsched/multi_aod.hpp"

namespace powermove {

/** End-to-end pipeline knobs. */
struct CompilerOptions
{
    /**
     * Integrate the storage zone (paper's "with-storage" configuration).
     * When false only the continuous router runs and all qubits live in
     * the compute zone (paper's "non-storage" rows in Table 3).
     */
    bool use_storage = true;

    /** Number of independent AOD arrays (paper Sec. 6.2, Fig. 7). */
    std::size_t num_aods = 1;

    /** Stage-ordering weight alpha in (0, 1] (paper Sec. 4.2). */
    double stage_order_alpha = 0.5;

    /**
     * Seed for the router's randomized mobile/static choice.
     *
     * Determinism rule for batched compilation: a job's randomized
     * decisions must depend only on (seed, job content) — never on which
     * worker thread runs it or on queue interleaving. The batch service
     * therefore compiles each job with a *derived* seed,
     * service::deriveJobSeed(seed, job fingerprint), which mixes this
     * base seed with the content address of (circuit, machine config,
     * options). Identical jobs get identical streams — so serial and
     * 8-worker runs produce bit-identical results — while distinct jobs
     * get decorrelated streams from one base seed. Use
     * service::effectiveOptions() to replay any batched job directly
     * through PowerMoveCompiler.
     */
    std::uint64_t seed = 0xC0FFEE;

    /**
     * Run the Sec. 4.2 stage scheduler. Disabling keeps the raw edge-
     * coloring order; used by the component ablation benchmarks.
     */
    bool reorder_stages = true;

    /**
     * Run the Sec. 6.1 intra-stage Coll-Move scheduler (move-ins early,
     * move-outs late). Disabling keeps the grouping order; used by the
     * component ablation benchmarks.
     */
    bool order_coll_moves = true;

    /**
     * How Coll-Moves are split across AOD arrays: InOrder is the paper's
     * consecutive chunking; DurationBalanced (extension) sorts groups by
     * move duration first, trading storage-dwell order for makespan.
     */
    AodBatchPolicy aod_batch_policy = AodBatchPolicy::InOrder;
};

} // namespace powermove

#endif // POWERMOVE_COMPILER_OPTIONS_HPP
