/**
 * @file
 * PowerMove compiler configuration.
 *
 * Fingerprint invariant: every field of CompilerOptions must be hashed
 * by service::fingerprintOptions() — the batch service's compile cache
 * addresses results by that hash, so an unhashed field would let two
 * different configurations share a cache entry. fingerprint.cpp guards
 * the invariant with a sizeof static_assert and fingerprint_test.cpp
 * with a structured-binding field-count probe; extend all three when
 * adding a field here.
 */

#ifndef POWERMOVE_COMPILER_OPTIONS_HPP
#define POWERMOVE_COMPILER_OPTIONS_HPP

#include <cstdint>

#include "collsched/multi_aod.hpp"
#include "compiler/strategies.hpp"

namespace powermove {

/** End-to-end pipeline knobs. */
struct CompilerOptions
{
    /**
     * Integrate the storage zone (paper's "with-storage" configuration).
     * When false only the continuous router runs and all qubits live in
     * the compute zone (paper's "non-storage" rows in Table 3).
     */
    bool use_storage = true;

    /** Number of independent AOD arrays (paper Sec. 6.2, Fig. 7). */
    std::size_t num_aods = 1;

    /** Stage-ordering weight alpha in (0, 1] (paper Sec. 4.2). */
    double stage_order_alpha = 0.5;

    /**
     * Seed for the router's randomized mobile/static choice.
     *
     * Determinism rule for batched compilation: a job's randomized
     * decisions must depend only on (seed, job content) — never on which
     * worker thread runs it or on queue interleaving. The batch service
     * therefore compiles each job with a *derived* seed,
     * service::deriveJobSeed(seed, job fingerprint), which mixes this
     * base seed with the content address of (circuit, machine config,
     * options). Identical jobs get identical streams — so serial and
     * 8-worker runs produce bit-identical results — while distinct jobs
     * get decorrelated streams from one base seed. Use
     * service::effectiveOptions() to replay any batched job directly
     * through PowerMoveCompiler.
     */
    std::uint64_t seed = 0xC0FFEE;

    /** How the PlacementPass builds the initial layout. */
    PlacementStrategy placement = PlacementStrategy::RowMajor;

    /**
     * Local-search budget of the routing-aware placement: the maximum
     * number of refinement sweeps over relocations and pair swaps after
     * the greedy layout (0 = greedy only; the search stops early when a
     * sweep improves nothing). Ignored by every other placement.
     */
    std::uint32_t placement_refine_iters = 32;

    /**
     * How each commutable CZ block is split into Rydberg stages.
     * Linear (the default) is the graph-free qubit scan that reproduces
     * the paper's Sec. 4.1 edge coloring bit-for-bit without
     * materializing the conflict graph — same schedules, linear time on
     * deep blocks; Coloring is that reference edge coloring; Balanced
     * additionally rebalances stage widths while keeping the stage
     * count (src/schedule/stage_partition.hpp).
     */
    StagePartitionStrategy stage_partition = StagePartitionStrategy::Linear;

    /**
     * Stage ordering within each CZ block. ZoneAware runs the Sec. 4.2
     * stage scheduler; AsPartitioned keeps the raw edge-coloring order
     * (the component-ablation baseline).
     */
    StageOrderStrategy stage_order = StageOrderStrategy::ZoneAware;

    /**
     * Coll-Move ordering within each stage transition. StorageDwell runs
     * the Sec. 6.1 intra-stage scheduler (move-ins early, move-outs
     * late); AsGrouped keeps the distance-grouping order (the
     * component-ablation baseline).
     */
    CollMoveOrderStrategy coll_move_order = CollMoveOrderStrategy::StorageDwell;

    /**
     * How Coll-Moves are split across AOD arrays: InOrder is the paper's
     * consecutive chunking; DurationBalanced (extension) sorts groups by
     * move duration first, trading storage-dwell order for makespan.
     */
    AodBatchPolicy aod_batch_policy = AodBatchPolicy::InOrder;

    /**
     * How the RoutingPass plans stage transitions. Continuous is the
     * paper's Sec. 5 router (every idle qubit parks in storage); Reuse
     * keeps idle qubits resident in the compute zone when they interact
     * again within reuse_lookahead stages (src/reuse/). Reuse requires
     * the storage zone: with use_storage = false the pass falls back to
     * the continuous router.
     */
    RoutingStrategy routing = RoutingStrategy::Continuous;

    /**
     * Reuse-routing lookahead window, in stages (>= 1): an idle qubit
     * is held in the compute zone only if its next interaction lies
     * within this many upcoming stages of the current block. Ignored
     * by the continuous router.
     */
    std::uint32_t reuse_lookahead = 4;

    /**
     * How the reuse router decides which idle atoms stay resident in
     * the compute zone — the replacement policy of the compute zone
     * viewed as a cache of atoms over storage. Lookahead (the default)
     * is the fixed reuse_lookahead window with holds force-released at
     * every block boundary, bit-identical to the pre-policy router;
     * Lru / Lti / Fidelity let residency persist across blocks and
     * evict by recency, next-use distance, or the fidelity cost model
     * (src/reuse/policy.hpp). Ignored by every other routing strategy.
     */
    ResidencyPolicy residency = ResidencyPolicy::Lookahead;

    /**
     * Windowed-routing search width, in candidate gate orderings per
     * stage transition (>= 1): the original order plus window - 1
     * random shuffles, each routed on a scratch layout, best total
     * move distance wins. Compile time grows linearly with the
     * window; 1 degenerates to the continuous router. Ignored by
     * every other routing strategy.
     */
    std::uint32_t routing_window = 8;

    /**
     * Record per-pass wall times and counters into
     * CompileResult::pass_profiles. Profiling never changes the emitted
     * schedule; disabling only removes the clock reads from the hot loop
     * and leaves pass_profiles empty.
     */
    bool profile_passes = true;
};

} // namespace powermove

#endif // POWERMOVE_COMPILER_OPTIONS_HPP
