#include "compiler/pipeline.hpp"

#include <chrono>
#include <cmath>
#include <utility>

#include "collsched/intra_stage.hpp"
#include "collsched/multi_aod.hpp"
#include "common/error.hpp"
#include "fidelity/evaluator.hpp"
#include "placement/routing_aware.hpp"
#include "route/grouping.hpp"
#include "schedule/stage_partition.hpp"

namespace powermove {

namespace {

// --------------------------------------------------- placement strategies

class RowMajorPlacement final : public PlacementMethod
{
  public:
    void
    place(Layout &layout, ZoneKind zone, const Circuit &,
          PassProfiler &) const override
    {
        placeRowMajor(layout, zone);
    }
};

class ColumnInterleavedPlacement final : public PlacementMethod
{
  public:
    void
    place(Layout &layout, ZoneKind zone, const Circuit &,
          PassProfiler &) const override
    {
        placeColumnInterleaved(layout, zone);
    }
};

class UsageFrequencyPlacement final : public PlacementMethod
{
  public:
    void
    place(Layout &layout, ZoneKind zone, const Circuit &circuit,
          PassProfiler &) const override
    {
        // Weight = CZ-gate count: each CZ forces the qubit toward the
        // compute zone, so heavy qubits should start nearest to it.
        std::vector<std::size_t> weights(circuit.numQubits(), 0);
        for (const Moment &moment : circuit.moments()) {
            const auto *block = std::get_if<CzBlock>(&moment);
            if (block == nullptr)
                continue;
            for (const CzGate &gate : block->gates) {
                ++weights[gate.a];
                ++weights[gate.b];
            }
        }
        placeByUsageFrequency(layout, zone, weights);
    }
};

class RoutingAwarePlacement final : public PlacementMethod
{
  public:
    explicit RoutingAwarePlacement(std::uint32_t refine_iters)
        : options_{refine_iters}
    {}

    void
    place(Layout &layout, ZoneKind zone, const Circuit &circuit,
          PassProfiler &profiler) const override
    {
        RoutingAwarePlacementReport report;
        placeRoutingAware(layout, zone, circuit, options_, &report);
        // Strategy-specific counters (kept off the default profile, as
        // with the reuse routing counters): the weighted interaction
        // distance before and after refinement, x1000 to survive the
        // integer counter format, plus the local-search effort.
        profiler.addCounter(
            PassId::Placement, "initial_weighted_dist_x1000",
            static_cast<std::uint64_t>(
                std::llround(report.initial_weighted_distance * 1000.0)));
        profiler.addCounter(
            PassId::Placement, "refined_weighted_dist_x1000",
            static_cast<std::uint64_t>(
                std::llround(report.refined_weighted_distance * 1000.0)));
        profiler.addCounter(PassId::Placement, "refine_sweeps",
                            report.refine_sweeps);
        profiler.addCounter(PassId::Placement, "refine_moves",
                            report.refine_moves);
    }

  private:
    RoutingAwarePlacementOptions options_;
};

// ---------------------------------------------- stage-partition strategies

// One class, not one per enum value: stage_partition.cpp already owns
// the strategy dispatch (partitionIntoStagesBy), so a second switch
// here would just be a place for a future fourth strategy to be missed.
class SelectedStagePartition final : public StagePartitionMethod
{
  public:
    explicit SelectedStagePartition(StagePartitionStrategy strategy)
        : strategy_(strategy)
    {}

    std::vector<Stage>
    partition(const CzBlock &block, std::size_t num_qubits) const override
    {
        return partitionIntoStagesBy(strategy_, block, num_qubits);
    }

  private:
    StagePartitionStrategy strategy_;
};

// -------------------------------------------------- stage-order strategies

class AsPartitionedStageOrder final : public StageOrderMethod
{
  public:
    std::vector<Stage>
    order(std::vector<Stage> stages, const StageOrderOptions &) const override
    {
        return stages;
    }
};

class ZoneAwareStageOrder final : public StageOrderMethod
{
  public:
    std::vector<Stage>
    order(std::vector<Stage> stages,
          const StageOrderOptions &options) const override
    {
        return orderStages(std::move(stages), options);
    }
};

// ---------------------------------------------- coll-move-order strategies

class AsGroupedCollMoveOrder final : public CollMoveOrderMethod
{
  public:
    std::vector<CollMove>
    order(const Machine &, std::vector<CollMove> groups) const override
    {
        return groups;
    }
};

class StorageDwellCollMoveOrder final : public CollMoveOrderMethod
{
  public:
    std::vector<CollMove>
    order(const Machine &machine, std::vector<CollMove> groups) const override
    {
        return orderCollMoves(machine, std::move(groups));
    }
};

} // namespace

std::unique_ptr<const PlacementMethod>
makePlacementMethod(PlacementStrategy strategy, std::uint32_t refine_iters)
{
    switch (strategy) {
    case PlacementStrategy::RowMajor:
        return std::make_unique<RowMajorPlacement>();
    case PlacementStrategy::ColumnInterleaved:
        return std::make_unique<ColumnInterleavedPlacement>();
    case PlacementStrategy::UsageFrequency:
        return std::make_unique<UsageFrequencyPlacement>();
    case PlacementStrategy::RoutingAware:
        return std::make_unique<RoutingAwarePlacement>(refine_iters);
    }
    fatal("unknown placement strategy");
}

std::unique_ptr<const StagePartitionMethod>
makeStagePartitionMethod(StagePartitionStrategy strategy)
{
    return std::make_unique<SelectedStagePartition>(strategy);
}

std::unique_ptr<const StageOrderMethod>
makeStageOrderMethod(StageOrderStrategy strategy)
{
    switch (strategy) {
    case StageOrderStrategy::AsPartitioned:
        return std::make_unique<AsPartitionedStageOrder>();
    case StageOrderStrategy::ZoneAware:
        return std::make_unique<ZoneAwareStageOrder>();
    }
    fatal("unknown stage-order strategy");
}

std::unique_ptr<const CollMoveOrderMethod>
makeCollMoveOrderMethod(CollMoveOrderStrategy strategy)
{
    switch (strategy) {
    case CollMoveOrderStrategy::AsGrouped:
        return std::make_unique<AsGroupedCollMoveOrder>();
    case CollMoveOrderStrategy::StorageDwell:
        return std::make_unique<StorageDwellCollMoveOrder>();
    }
    fatal("unknown coll-move-order strategy");
}

// ------------------------------------------------------------------- passes

PlacementPass::PlacementPass(PlacementStrategy strategy,
                             std::uint32_t refine_iters)
    : method_(makePlacementMethod(strategy, refine_iters))
{}

void
PlacementPass::run(PipelineContext &ctx) const
{
    const auto timing = ctx.profiler.time(PassId::Placement);
    // The initial layout sits entirely in storage (Sec. 4.2) so that no
    // qubit is exposed to the first excitations; without a storage zone
    // everything starts in the compute zone instead.
    const ZoneKind zone =
        ctx.options.use_storage ? ZoneKind::Storage : ZoneKind::Compute;
    ctx.profiler.addCounter(PassId::Placement, "qubits_placed",
                            ctx.circuit.numQubits());
    method_->place(ctx.layout, zone, ctx.circuit, ctx.profiler);

    std::vector<SiteId> initial_sites(ctx.circuit.numQubits());
    for (QubitId q = 0; q < ctx.circuit.numQubits(); ++q)
        initial_sites[q] = ctx.layout.siteOf(q);
    ctx.schedule.emplace(ctx.machine, std::move(initial_sites));
}

StagePartitionPass::StagePartitionPass(StagePartitionStrategy strategy)
    : method_(makeStagePartitionMethod(strategy))
{}

std::vector<Stage>
StagePartitionPass::run(PipelineContext &ctx, const CzBlock &block) const
{
    const auto timing = ctx.profiler.time(PassId::StagePartition);
    auto stages = method_->partition(block, ctx.circuit.numQubits());
    ctx.profiler.addCounter(PassId::StagePartition, "gates",
                            block.gates.size());
    ctx.profiler.addCounter(PassId::StagePartition, "stages_produced",
                            stages.size());
    return stages;
}

StageOrderPass::StageOrderPass(StageOrderStrategy strategy)
    : method_(makeStageOrderMethod(strategy))
{}

std::vector<Stage>
StageOrderPass::run(PipelineContext &ctx, std::vector<Stage> stages) const
{
    const auto timing = ctx.profiler.time(PassId::StageOrder);
    ctx.profiler.addCounter(PassId::StageOrder, "stages_ordered",
                            stages.size());
    return method_->order(std::move(stages),
                          StageOrderOptions{ctx.options.stage_order_alpha});
}

RoutingPass::RoutingPass(PipelineContext &ctx)
    : router_(ctx.machine,
              RouterOptions{ctx.options.use_storage, ctx.options.seed},
              ctx.rng)
{
    // Atom reuse trades storage round trips for compute-zone residency,
    // which only exists as a trade when there is a storage zone to
    // round-trip to; storage-free configurations route continuously.
    if (ctx.options.routing == RoutingStrategy::Reuse &&
        ctx.options.use_storage) {
        if (ctx.options.reuse_lookahead == 0)
            fatal("reuse routing requires a lookahead window >= 1 stage");
        reuse_router_ = std::make_unique<ReuseAwareRouter>(
            ctx.machine,
            ReuseRouterOptions{ctx.options.reuse_lookahead,
                               ctx.options.seed, ctx.options.residency},
            ctx.rng);
    }
    if (ctx.options.routing == RoutingStrategy::Fast) {
        fast_router_ = std::make_unique<FastContinuousRouter>(
            ctx.machine,
            RouterOptions{ctx.options.use_storage, ctx.options.seed},
            ctx.rng);
    }
    if (ctx.options.routing == RoutingStrategy::Windowed) {
        if (ctx.options.routing_window == 0)
            fatal("windowed routing requires a window >= 1 ordering");
        windowed_router_ = std::make_unique<WindowedRouter>(
            ctx.machine,
            RouterOptions{ctx.options.use_storage, ctx.options.seed},
            ctx.options.routing_window, ctx.rng);
    }
}

void
RoutingPass::beginBlock(PipelineContext &ctx, const std::vector<Stage> &stages)
{
    if (reuse_router_ == nullptr)
        return;
    // Deliberately untimed: the O(block gates) lookahead scan is noise
    // next to the per-stage planning, and opening a profiler scope here
    // would inflate the routing row's invocation count past the
    // documented one-per-stage semantics.
    const bool final_block =
        ctx.block_index + 1 == ctx.circuit.numBlocks();
    reuse_router_->beginBlock(stages, ctx.circuit.numQubits(), final_block);
}

TransitionPlan
RoutingPass::run(PipelineContext &ctx, const Stage &stage)
{
    const auto timing = ctx.profiler.time(PassId::Routing);
    TransitionPlan plan =
        reuse_router_ != nullptr
            ? reuse_router_->planStageTransition(ctx.layout, stage)
        : fast_router_ != nullptr
            ? fast_router_->planStageTransition(ctx.layout, stage)
        : windowed_router_ != nullptr
            ? windowed_router_->planStageTransition(ctx.layout, stage)
            : router_.planStageTransition(ctx.layout, stage);
    ctx.profiler.addCounter(PassId::Routing, "moves_planned",
                            plan.moves.size());
    ctx.profiler.addCounter(PassId::Routing, "qubits_parked",
                            plan.num_parked);
    ctx.profiler.addCounter(PassId::Routing, "qubits_evicted",
                            plan.num_evicted);
    if (reuse_router_ != nullptr) {
        // Reuse-only counters stay out of the continuous profile so the
        // default --profile output is unchanged from PR 2.
        ctx.profiler.addCounter(PassId::Routing, "qubits_held",
                                plan.num_held);
        // A hold that stays put skips its park move outright; a
        // relocated hold still emits one compute-zone move, so it only
        // trades the park (it saves the storage round trip's transfers
        // and the later retrieval, not a move this transition).
        ctx.profiler.addCounter(PassId::Routing, "moves_saved",
                                plan.num_held - plan.num_reuse_relocated);
        ctx.profiler.addCounter(PassId::Routing, "lookahead_hits",
                                plan.num_reuse_hits);
        ctx.profiler.addCounter(PassId::Routing, "lookahead_misses",
                                plan.num_lookahead_misses);
        // The misses split into "no further use in the block" (parking
        // is simply correct) and genuine window/pressure/cost misses;
        // the two always sum to lookahead_misses.
        ctx.profiler.addCounter(PassId::Routing, "parked_no_reuse",
                                plan.num_parked_no_reuse);
        ctx.profiler.addCounter(PassId::Routing, "window_misses",
                                plan.num_window_misses);
        ctx.profiler.addCounter(PassId::Routing, "reuse_relocations",
                                plan.num_reuse_relocated);
        ctx.profiler.addCounter(PassId::Routing, "holds_denied",
                                plan.num_hold_denied);
    }
    if (windowed_router_ != nullptr) {
        // Windowed-only counters, gated like the reuse block above so
        // the default --profile output stays unchanged.
        ctx.profiler.addCounter(PassId::Routing, "orderings_evaluated",
                                plan.num_candidates);
        ctx.profiler.addCounter(PassId::Routing, "window_wins",
                                plan.num_window_wins);
    }
    return plan;
}

void
RoutingPass::endProgram(PipelineContext &ctx)
{
    if (reuse_router_ == nullptr)
        return;
    // Settle residency spans still open after the last transition so
    // the lifetime stats balance (holds_started == holds_ended); they
    // used to leak for the final block, whose spans were only closed by
    // a beginBlock() that never came.
    reuse_router_->endProgram();
    const ResidencyStats &stats = reuse_router_->residencyStats();
    ctx.profiler.addCounter(PassId::Routing, "residency_holds_started",
                            stats.holds_started);
    ctx.profiler.addCounter(PassId::Routing, "residency_holds_ended",
                            stats.holds_ended);
    ctx.profiler.addCounter(PassId::Routing, "residency_resident_stages",
                            stats.resident_stages);
    ctx.profiler.addCounter(PassId::Routing, "residency_max_concurrent",
                            stats.max_concurrent);
}

CollMoveOrderPass::CollMoveOrderPass(CollMoveOrderStrategy strategy)
    : method_(makeCollMoveOrderMethod(strategy))
{}

std::vector<CollMove>
CollMoveOrderPass::run(PipelineContext &ctx,
                       std::vector<QubitMove> moves) const
{
    const auto timing = ctx.profiler.time(PassId::CollMoveOrder);
    auto groups =
        method_->order(ctx.machine, groupMoves(ctx.machine, std::move(moves)));
    ctx.profiler.addCounter(PassId::CollMoveOrder, "groups_formed",
                            groups.size());
    return groups;
}

std::vector<AodBatch>
AodBatchPass::run(PipelineContext &ctx, std::vector<CollMove> groups) const
{
    const auto timing = ctx.profiler.time(PassId::AodBatch);
    auto batches =
        batchForAods(ctx.machine, std::move(groups), ctx.options.num_aods,
                     ctx.options.aod_batch_policy);
    ctx.profiler.addCounter(PassId::AodBatch, "batches_emitted",
                            batches.size());
    return batches;
}

// ------------------------------------------------------------------- driver

Pipeline::Pipeline(const Machine &machine, CompilerOptions options)
    : machine_(machine), options_(options)
{
    if (options_.num_aods == 0)
        fatal("compiler requires at least one AOD array");
}

CompileResult
Pipeline::run(const Circuit &circuit) const
{
    const auto start = std::chrono::steady_clock::now();

    PipelineContext ctx{machine_,
                        options_,
                        circuit,
                        Layout(machine_, circuit.numQubits()),
                        std::nullopt,
                        Rng(options_.seed),
                        PassProfiler(options_.profile_passes)};

    const PlacementPass placement(options_.placement,
                                  options_.placement_refine_iters);
    const StagePartitionPass partition(options_.stage_partition);
    const StageOrderPass stage_order(options_.stage_order);
    RoutingPass routing(ctx);
    const CollMoveOrderPass coll_move_order(options_.coll_move_order);
    const AodBatchPass aod_batch;

    placement.run(ctx);

    for (const auto &moment : circuit.moments()) {
        if (const auto *one_q = std::get_if<OneQLayer>(&moment)) {
            ctx.schedule->addOneQLayer(one_q->gates.size(),
                                       one_q->depth(circuit.numQubits()));
            continue;
        }
        const auto &block = std::get<CzBlock>(moment);

        // Stage Scheduler: partition, then strategy-selected ordering.
        auto stages = stage_order.run(ctx, partition.run(ctx, block));

        // The routing strategy sees the whole ordered block up front
        // (the reuse lookahead scans it; continuous ignores it).
        routing.beginBlock(ctx, stages);

        for (const auto &stage : stages) {
            // Continuous Router: direct transition into the stage layout.
            TransitionPlan plan = routing.run(ctx, stage);

            // Coll-Move grouping/ordering, then AOD batching.
            auto groups = coll_move_order.run(ctx, std::move(plan.moves));
            ctx.num_coll_moves += groups.size();
            for (auto &batch : aod_batch.run(ctx, std::move(groups)))
                ctx.schedule->addMoveBatch(std::move(batch));

            ctx.schedule->addRydberg(stage.gates, ctx.block_index);
            ++ctx.num_stages;
        }
        ++ctx.block_index;
    }

    // Close residency spans surviving the final block (reuse routing
    // only; a no-op for the other strategies).
    routing.endProgram(ctx);

    const auto stop = std::chrono::steady_clock::now();
    const double elapsed_us =
        std::chrono::duration<double, std::micro>(stop - start).count();

    CompileResult result{std::move(*ctx.schedule),
                         {},
                         Duration::micros(elapsed_us),
                         ctx.num_stages,
                         ctx.num_coll_moves,
                         ctx.profiler.finish()};
    result.metrics = evaluateSchedule(result.schedule);
    return result;
}

} // namespace powermove
