/**
 * @file
 * The PowerMove compiler (paper Fig. 1b) — a thin facade over the pass
 * pipeline in compiler/pipeline.hpp:
 *
 *   PlacementPass      initial layout (strategy-selected);
 *   StagePartitionPass edge-coloring stage partition (Sec. 4.1);
 *   StageOrderPass     zone-aware stage ordering (Sec. 4.2);
 *   RoutingPass        direct layout-to-layout transitions (Sec. 5),
 *                      continuous or reuse-aware (src/reuse/);
 *   CollMoveOrderPass  distance-aware grouping + storage-dwell order
 *                      (Sec. 5.3 / 6.1);
 *   AodBatchPass       multi-AOD parallel batching (Sec. 6.2).
 *
 * The initial layout sits entirely in the storage zone (compute zone in
 * the storage-free configuration) and is never returned to: layouts flow
 * forward continuously. Strategies are selected through CompilerOptions;
 * every compile records per-pass profiles into CompileResult unless
 * profiling is disabled.
 */

#ifndef POWERMOVE_COMPILER_POWERMOVE_HPP
#define POWERMOVE_COMPILER_POWERMOVE_HPP

#include "arch/machine.hpp"
#include "circuit/circuit.hpp"
#include "compiler/options.hpp"
#include "compiler/pipeline.hpp"
#include "compiler/result.hpp"

namespace powermove {

/** The zoned-architecture neutral-atom compiler. */
class PowerMoveCompiler
{
  public:
    /**
     * @param machine target machine; must outlive the compiler and every
     *                CompileResult it produces
     * @param options pipeline configuration; validated here (e.g. a zero
     *                AOD count throws ConfigError at construction)
     */
    explicit PowerMoveCompiler(const Machine &machine,
                               CompilerOptions options = {});

    /**
     * Compiles @p circuit into a machine schedule and evaluates it.
     * Throws ConfigError if the machine cannot hold the circuit.
     */
    CompileResult compile(const Circuit &circuit) const;

    const CompilerOptions &options() const { return pipeline_.options(); }
    const Machine &machine() const { return machine_; }

  private:
    const Machine &machine_;
    Pipeline pipeline_;
};

} // namespace powermove

#endif // POWERMOVE_COMPILER_POWERMOVE_HPP
