/**
 * @file
 * The PowerMove compiler (paper Fig. 1b).
 *
 * Pipeline per commutable CZ block:
 *
 *   Stage Scheduler  (Sec. 4): edge-coloring stage partition, then
 *                    zone-aware stage ordering;
 *   Continuous Router(Sec. 5): direct layout-to-layout transitions —
 *                    single-qubit movement decisions and distance-aware
 *                    Coll-Move grouping;
 *   Coll-Move Scheduler (Sec. 6): storage-dwell-maximizing intra-stage
 *                    order and multi-AOD parallel batching.
 *
 * The initial layout sits entirely in the storage zone (compute zone in
 * the storage-free configuration) and is never returned to: layouts flow
 * forward continuously.
 */

#ifndef POWERMOVE_COMPILER_POWERMOVE_HPP
#define POWERMOVE_COMPILER_POWERMOVE_HPP

#include "arch/machine.hpp"
#include "circuit/circuit.hpp"
#include "compiler/options.hpp"
#include "compiler/result.hpp"

namespace powermove {

/** The zoned-architecture neutral-atom compiler. */
class PowerMoveCompiler
{
  public:
    /**
     * @param machine target machine; must outlive the compiler and every
     *                CompileResult it produces
     * @param options pipeline configuration
     */
    explicit PowerMoveCompiler(const Machine &machine,
                               CompilerOptions options = {});

    /**
     * Compiles @p circuit into a machine schedule and evaluates it.
     * Throws ConfigError if the machine cannot hold the circuit.
     */
    CompileResult compile(const Circuit &circuit) const;

    const CompilerOptions &options() const { return options_; }
    const Machine &machine() const { return machine_; }

  private:
    const Machine &machine_;
    CompilerOptions options_;
};

} // namespace powermove

#endif // POWERMOVE_COMPILER_POWERMOVE_HPP
