#include "compiler/powermove.hpp"

#include <chrono>

#include "arch/layout.hpp"
#include "collsched/intra_stage.hpp"
#include "collsched/multi_aod.hpp"
#include "common/error.hpp"
#include "fidelity/evaluator.hpp"
#include "route/grouping.hpp"
#include "route/router.hpp"
#include "schedule/stage_order.hpp"
#include "schedule/stage_partition.hpp"

namespace powermove {

PowerMoveCompiler::PowerMoveCompiler(const Machine &machine,
                                     CompilerOptions options)
    : machine_(machine), options_(options)
{
    if (options_.num_aods == 0)
        fatal("compiler requires at least one AOD array");
}

CompileResult
PowerMoveCompiler::compile(const Circuit &circuit) const
{
    const auto start = std::chrono::steady_clock::now();

    // The initial layout sits entirely in storage (Sec. 4.2) so that no
    // qubit is exposed to the first excitations; without a storage zone
    // everything starts in the compute zone instead.
    Layout layout(machine_, circuit.numQubits());
    placeRowMajor(layout,
                  options_.use_storage ? ZoneKind::Storage : ZoneKind::Compute);

    std::vector<SiteId> initial_sites(circuit.numQubits());
    for (QubitId q = 0; q < circuit.numQubits(); ++q)
        initial_sites[q] = layout.siteOf(q);

    MachineSchedule schedule(machine_, std::move(initial_sites));
    ContinuousRouter router(machine_,
                            {options_.use_storage, options_.seed});
    const StageOrderOptions order_options{options_.stage_order_alpha};

    std::size_t num_stages = 0;
    std::size_t num_coll_moves = 0;
    std::size_t block_index = 0;

    for (const auto &moment : circuit.moments()) {
        if (const auto *one_q = std::get_if<OneQLayer>(&moment)) {
            schedule.addOneQLayer(one_q->gates.size(),
                                  one_q->depth(circuit.numQubits()));
            continue;
        }
        const auto &block = std::get<CzBlock>(moment);

        // Stage Scheduler: partition, then zone-aware ordering.
        auto stages = partitionIntoStages(block, circuit.numQubits());
        if (options_.reorder_stages)
            stages = orderStages(std::move(stages), order_options);

        for (const auto &stage : stages) {
            // Continuous Router: direct transition into the stage layout.
            const TransitionPlan plan =
                router.planStageTransition(layout, stage);

            // Coll-Move grouping, storage-dwell ordering, AOD batching.
            auto groups = groupMoves(machine_, plan.moves);
            if (options_.order_coll_moves)
                groups = orderCollMoves(machine_, std::move(groups));
            num_coll_moves += groups.size();
            for (auto &batch :
                 batchForAods(machine_, std::move(groups), options_.num_aods,
                              options_.aod_batch_policy)) {
                schedule.addMoveBatch(std::move(batch));
            }

            schedule.addRydberg(stage.gates, block_index);
            ++num_stages;
        }
        ++block_index;
    }

    const auto stop = std::chrono::steady_clock::now();
    const double elapsed_us =
        std::chrono::duration<double, std::micro>(stop - start).count();

    CompileResult result{std::move(schedule), {}, Duration::micros(elapsed_us),
                         num_stages, num_coll_moves};
    result.metrics = evaluateSchedule(result.schedule);
    return result;
}

} // namespace powermove
