#include "compiler/powermove.hpp"

namespace powermove {

PowerMoveCompiler::PowerMoveCompiler(const Machine &machine,
                                     CompilerOptions options)
    : machine_(machine), pipeline_(machine, options)
{}

CompileResult
PowerMoveCompiler::compile(const Circuit &circuit) const
{
    return pipeline_.run(circuit);
}

} // namespace powermove
