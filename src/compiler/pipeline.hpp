/**
 * @file
 * The explicit pass pipeline behind PowerMoveCompiler (paper Fig. 1b).
 *
 * One compilation is a walk over the circuit's moments driven by
 * Pipeline::run(), threading a PipelineContext (layout, schedule in
 * progress, RNG, counters) through six named passes:
 *
 *   PlacementPass      initial layout (strategy-selected)        [once]
 *   StagePartitionPass stage partition (Sec. 4.1 coloring, the   [per block]
 *                      bit-identical linear scan, or balanced)
 *   StageOrderPass     zone-aware stage ordering (Sec. 4.2)      [per block]
 *   RoutingPass        layout transitions: continuous (Sec. 5)   [per stage]
 *                      or reuse-aware (src/reuse/)
 *   CollMoveOrderPass  grouping + storage-dwell order (5.3/6.1)  [per stage]
 *   AodBatchPass       multi-AOD parallel batching (Sec. 6.2)    [per stage]
 *
 * Passes with more than one algorithm delegate to a small strategy
 * interface (PlacementMethod, StagePartitionMethod, StageOrderMethod,
 * CollMoveOrderMethod) or strategy-selected router, chosen by the
 * CompilerOptions enums, so
 * new strategies from the related literature — e.g. routing-aware
 * placement — slot in without forking the driver. Each pass invocation
 * is timed and counted by the context's PassProfiler (see
 * compiler/profile.hpp).
 *
 * With default options the pipeline reproduces the pre-pipeline
 * monolithic compiler bit-for-bit (pipeline_test.cpp locks this in
 * against an inline legacy reference across the Table 2 suite).
 */

#ifndef POWERMOVE_COMPILER_PIPELINE_HPP
#define POWERMOVE_COMPILER_PIPELINE_HPP

#include <memory>
#include <optional>
#include <vector>

#include "arch/layout.hpp"
#include "arch/machine.hpp"
#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "compiler/options.hpp"
#include "compiler/profile.hpp"
#include "compiler/result.hpp"
#include "isa/machine_schedule.hpp"
#include "reuse/router.hpp"
#include "route/fast_router.hpp"
#include "route/router.hpp"
#include "route/windowed_router.hpp"
#include "schedule/stage.hpp"
#include "schedule/stage_order.hpp"

namespace powermove {

/** Everything a pass may read or mutate during one compilation. */
struct PipelineContext
{
    const Machine &machine;
    const CompilerOptions &options;
    const Circuit &circuit;
    /** Qubit occupancy; created unplaced, owned by the PlacementPass on. */
    Layout layout;
    /** Engaged by the PlacementPass once initial sites are known. */
    std::optional<MachineSchedule> schedule;
    /** The compilation's single randomized-decision stream. */
    Rng rng;
    /** Per-pass wall times and counters. */
    PassProfiler profiler;
    std::size_t num_stages = 0;
    std::size_t num_coll_moves = 0;
    std::size_t block_index = 0;
};

// ------------------------------------------------------- strategy interfaces

/** Strategy interface of the PlacementPass. */
class PlacementMethod
{
  public:
    virtual ~PlacementMethod() = default;
    /**
     * Places every unplaced qubit of @p layout into @p zone. Methods
     * with strategy-specific measurements publish them as PassId::
     * Placement counters on @p profiler (the pass wrapper owns the
     * timing scope and the shared counters); the simple layouts leave
     * it untouched.
     */
    virtual void place(Layout &layout, ZoneKind zone, const Circuit &circuit,
                       PassProfiler &profiler) const = 0;
};

/** Strategy interface of the StagePartitionPass. */
class StagePartitionMethod
{
  public:
    virtual ~StagePartitionMethod() = default;
    /** Splits @p block into qubit-disjoint stages covering every gate. */
    virtual std::vector<Stage> partition(const CzBlock &block,
                                         std::size_t num_qubits) const = 0;
};

/** Strategy interface of the StageOrderPass. */
class StageOrderMethod
{
  public:
    virtual ~StageOrderMethod() = default;
    virtual std::vector<Stage> order(std::vector<Stage> stages,
                                     const StageOrderOptions &options)
        const = 0;
};

/** Strategy interface of the CollMoveOrderPass (post-grouping order). */
class CollMoveOrderMethod
{
  public:
    virtual ~CollMoveOrderMethod() = default;
    virtual std::vector<CollMove> order(const Machine &machine,
                                        std::vector<CollMove> groups)
        const = 0;
};

/**
 * Factory for the selected placement algorithm. @p refine_iters is the
 * routing-aware local-search budget (ignored by the other strategies).
 */
std::unique_ptr<const PlacementMethod>
makePlacementMethod(PlacementStrategy strategy, std::uint32_t refine_iters);

/** Factory for the selected stage-partition algorithm. */
std::unique_ptr<const StagePartitionMethod>
makeStagePartitionMethod(StagePartitionStrategy strategy);

/** Factory for the selected stage-order algorithm. */
std::unique_ptr<const StageOrderMethod>
makeStageOrderMethod(StageOrderStrategy strategy);

/** Factory for the selected Coll-Move-order algorithm. */
std::unique_ptr<const CollMoveOrderMethod>
makeCollMoveOrderMethod(CollMoveOrderStrategy strategy);

// ------------------------------------------------------------------- passes

/**
 * Builds the initial layout (into storage when options.use_storage,
 * else into the compute zone) and engages ctx.schedule with the
 * resulting per-qubit sites.
 */
class PlacementPass
{
  public:
    PlacementPass(PlacementStrategy strategy, std::uint32_t refine_iters);
    void run(PipelineContext &ctx) const;

  private:
    std::unique_ptr<const PlacementMethod> method_;
};

/**
 * Partitions one CZ block into disjoint-qubit stages (Algorithm 1) per
 * the selected strategy: the paper's edge coloring, the bit-identical
 * graph-free linear scan, or the width-balanced variant.
 */
class StagePartitionPass
{
  public:
    explicit StagePartitionPass(StagePartitionStrategy strategy);
    std::vector<Stage> run(PipelineContext &ctx, const CzBlock &block) const;

  private:
    std::unique_ptr<const StagePartitionMethod> method_;
};

/** Orders the stages of one block per the selected strategy. */
class StageOrderPass
{
  public:
    explicit StageOrderPass(StageOrderStrategy strategy);
    std::vector<Stage> run(PipelineContext &ctx,
                           std::vector<Stage> stages) const;

  private:
    std::unique_ptr<const StageOrderMethod> method_;
};

/**
 * Plans and applies one layout transition per stage through the
 * strategy selected by CompilerOptions::routing: the paper's continuous
 * router (route/), its bit-identical incremental fast path
 * (route/fast_router.hpp), the reuse-aware router (reuse/), or the
 * windowed best-of-orderings search (route/windowed_router.hpp). Owns
 * the routers (and through them the scratch buffers); randomized
 * decisions draw from ctx.rng. The reuse strategy requires the storage
 * zone, so the storage-free configuration always routes continuously.
 */
class RoutingPass
{
  public:
    explicit RoutingPass(PipelineContext &ctx);

    /**
     * Announces the ordered stages of the next block before its first
     * transition is routed (the reuse strategy's lookahead scans them;
     * a no-op for the other strategies).
     */
    void beginBlock(PipelineContext &ctx, const std::vector<Stage> &stages);

    TransitionPlan run(PipelineContext &ctx, const Stage &stage);

    /**
     * Called once after the program's last transition: closes residency
     * spans surviving the final block (they used to leak — the stats
     * only settled in the next beginBlock(), which never comes for the
     * last block) and publishes the residency lifetime counters. A
     * no-op for the non-reuse strategies.
     */
    void endProgram(PipelineContext &ctx);

  private:
    ContinuousRouter router_;
    std::unique_ptr<ReuseAwareRouter> reuse_router_;     // engaged iff Reuse
    std::unique_ptr<FastContinuousRouter> fast_router_;  // engaged iff Fast
    std::unique_ptr<WindowedRouter> windowed_router_;    // engaged iff Windowed
};

/** Groups a transition's moves into Coll-Moves and orders them. */
class CollMoveOrderPass
{
  public:
    explicit CollMoveOrderPass(CollMoveOrderStrategy strategy);
    std::vector<CollMove> run(PipelineContext &ctx,
                              std::vector<QubitMove> moves) const;

  private:
    std::unique_ptr<const CollMoveOrderMethod> method_;
};

/** Splits ordered Coll-Moves into parallel multi-AOD batches. */
class AodBatchPass
{
  public:
    std::vector<AodBatch> run(PipelineContext &ctx,
                              std::vector<CollMove> groups) const;
};

// ------------------------------------------------------------------- driver

/** The pass-pipeline compiler core. */
class Pipeline
{
  public:
    /**
     * @param machine target machine; must outlive the pipeline and every
     *                CompileResult it produces
     * @param options pipeline configuration (num_aods must be positive)
     */
    Pipeline(const Machine &machine, CompilerOptions options);

    /** Runs every pass over @p circuit and evaluates the result. */
    CompileResult run(const Circuit &circuit) const;

    const CompilerOptions &options() const { return options_; }

  private:
    const Machine &machine_;
    CompilerOptions options_;
};

} // namespace powermove

#endif // POWERMOVE_COMPILER_PIPELINE_HPP
