/**
 * @file
 * Strategy selections for the pass pipeline.
 *
 * Each pipeline pass that admits more than one algorithm exposes its
 * choice as a small enum here, selected through CompilerOptions. The
 * paper's Fig. 1b flow is the default in every dimension; alternatives
 * either reproduce an ablation (the "as-is" orderings) or open a new
 * scenario (placement variants). Every enum participates in the job
 * fingerprint (service/fingerprint.cpp), so two option sets differing
 * in any strategy can never share a cache entry.
 */

#ifndef POWERMOVE_COMPILER_STRATEGIES_HPP
#define POWERMOVE_COMPILER_STRATEGIES_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "collsched/multi_aod.hpp"

namespace powermove {

/** How the initial layout places qubits into their starting zone. */
enum class PlacementStrategy : std::uint8_t
{
    /** The paper's initial layout: row-major from the zone's top left. */
    RowMajor,
    /**
     * The transpose of RowMajor: the zone fills column by column, so
     * consecutive qubits — which circuit generators tend to couple —
     * share a column and their storage traffic runs vertically along
     * that column.
     */
    ColumnInterleaved,
    /**
     * Usage-frequency-aware: qubits are ranked by their CZ-gate count
     * and the busiest qubits take the row-major sites closest to the
     * compute zone, shortening the shuttle distance of the atoms that
     * cross the inter-zone gap most often.
     */
    UsageFrequency,
    /**
     * Routing-aware (Stade et al., src/placement/): interacting qubits
     * are placed near each other by a greedy grow-from-seed layout over
     * the circuit's weighted interaction graph, then refined by up to
     * CompilerOptions::placement_refine_iters local-search sweeps, so
     * the move distance routing later pays is minimized before routing
     * ever runs.
     */
    RoutingAware,
};

/** How a commutable CZ block is partitioned into Rydberg stages. */
enum class StagePartitionStrategy : std::uint8_t
{
    /**
     * The paper's Sec. 4.1 edge coloring: materialize the gate-conflict
     * graph (a clique per qubit), then greedily color it in descending
     * degree order. O(k^2) edges for a qubit used in k gates, which
     * dominates compile time on deep blocks.
     */
    Coloring,
    /**
     * The same greedy coloring computed by a linear-time qubit scan
     * (src/schedule/): each gate conflicts only through its two qubits,
     * so tracking a per-qubit "stages already used" bitset reproduces
     * the Coloring stage assignment bit-for-bit without ever building
     * the conflict graph (stage_partition_test.cpp locks the identity
     * across the Table 2 suite).
     */
    Linear,
    /**
     * The Linear scan followed by a width-rebalancing sweep: gates
     * migrate from over-full stages to emptier qubit-disjoint stages,
     * keeping the stage count but shrinking the maximum stage width
     * (fewer simultaneous moves for the routers to schedule).
     */
    Balanced,
};

/** How stages of one commutable CZ block are ordered. */
enum class StageOrderStrategy : std::uint8_t
{
    /** Keep the raw edge-coloring order (ablation baseline). */
    AsPartitioned,
    /** The paper's Sec. 4.2 zone-aware greedy ordering. */
    ZoneAware,
};

/** How Coll-Moves of one stage transition are ordered. */
enum class CollMoveOrderStrategy : std::uint8_t
{
    /** Keep the distance-grouping emission order (ablation baseline). */
    AsGrouped,
    /** The paper's Sec. 6.1 storage-dwell-maximizing order. */
    StorageDwell,
};

/** How the RoutingPass plans stage transitions. */
enum class RoutingStrategy : std::uint8_t
{
    /** The paper's Sec. 5 continuous router: every idle qubit parks. */
    Continuous,
    /**
     * Gate-aware atom reuse (Lin et al.): idle qubits that interact
     * again within CompilerOptions::reuse_lookahead stages stay parked
     * in the compute zone instead of round-tripping to storage
     * (src/reuse/). Requires the storage zone; the storage-free
     * configuration falls back to Continuous.
     */
    Reuse,
    /**
     * The continuous router's incremental fast path (src/route/
     * fast_router.*): bit-identical plans — same moves, labels, and
     * RNG stream — computed from persistent conflict state (planned
     * occupancy, free-site bitmasks, compute-zone resident list)
     * instead of per-transition rebuilds. Differential tests lock the
     * identity; selecting it changes only compile time (and, because
     * every strategy participates in the job fingerprint, the cache
     * key).
     */
    Fast,
    /**
     * Opt-in high-quality mode in the spirit of Stade et al. (PAPERS
     * "Search Smarter, Not Harder"): each stage transition evaluates
     * CompilerOptions::routing_window candidate gate orderings through
     * the continuous router on a scratch layout and commits the plan
     * with the smallest total move distance (ties: fewer moves, then
     * the earliest candidate). Trades compile time for planned-move
     * quality.
     */
    Windowed,
};

/**
 * How the reuse router decides compute-zone residency — the cache
 * replacement policy when the compute zone is viewed as a cache of
 * atoms over storage (only meaningful with RoutingStrategy::Reuse).
 *
 * The paper's fidelity model (src/fidelity/) prices the alternatives:
 * a storage round trip costs four trap transfers plus two shuttle
 * legs, staying resident costs one excitation exposure per intervening
 * Rydberg pulse plus idle dephasing. The policies differ in how they
 * weigh that trade and in whether residency may survive block
 * boundaries.
 */
enum class ResidencyPolicy : std::uint8_t
{
    /**
     * The fixed stage-count lookahead (Lin et al.): hold an idle qubit
     * iff its next interaction lies within
     * CompilerOptions::reuse_lookahead stages of the current block.
     * Every hold is force-released at block boundaries. This is the
     * default and reproduces the pre-policy reuse router bit for bit.
     */
    Lookahead,
    /**
     * Least-recently-used: every idle-in-compute qubit stays resident;
     * under compute-zone pressure the qubits whose last gate lies
     * farthest in the past are evicted first. Residency persists
     * across block boundaries.
     */
    Lru,
    /**
     * Longest-time-to-interaction (Belady-style, the quicksilver
     * lru-vs-lti compute-slot-replacement shape): every idle qubit
     * stays resident; under pressure the qubit whose next use (from
     * ReuseAnalysis) lies farthest in the future is evicted first, a
     * qubit with no known next use counting as farthest. Residency
     * persists across block boundaries, which is what finally buys
     * cross-block reuse on QSIM/QFT/BV.
     */
    Lti,
    /**
     * Fidelity-weighted: hold iff the projected cost of staying
     * resident until the next use — excitation exposures plus idle
     * dephasing from the hardware parameters — is below the cost of a
     * four-transfer storage round trip. Adapts the window to the
     * machine instead of fixing a stage count; persists across blocks.
     */
    Fidelity,
};

/** Short stable name, e.g. "row-major"; used by reports and the CLI. */
std::string_view placementStrategyName(PlacementStrategy strategy);
std::string_view stagePartitionStrategyName(StagePartitionStrategy strategy);
std::string_view stageOrderStrategyName(StageOrderStrategy strategy);
std::string_view collMoveOrderStrategyName(CollMoveOrderStrategy strategy);
std::string_view aodBatchPolicyName(AodBatchPolicy policy);
std::string_view routingStrategyName(RoutingStrategy strategy);
std::string_view residencyPolicyName(ResidencyPolicy policy);

/**
 * Parses a strategy name as printed by the matching *Name() function.
 * Returns false (leaving @p out untouched) on an unknown name.
 */
bool parsePlacementStrategy(std::string_view text, PlacementStrategy &out);
bool parseStagePartitionStrategy(std::string_view text,
                                 StagePartitionStrategy &out);
bool parseStageOrderStrategy(std::string_view text, StageOrderStrategy &out);
bool parseCollMoveOrderStrategy(std::string_view text,
                                CollMoveOrderStrategy &out);
bool parseAodBatchPolicy(std::string_view text, AodBatchPolicy &out);
bool parseRoutingStrategy(std::string_view text, RoutingStrategy &out);
bool parseResidencyPolicy(std::string_view text, ResidencyPolicy &out);

/**
 * One row of the strategy catalog behind `powermove --list-strategies`:
 * a strategy dimension, the CLI flag selecting it (empty when the
 * dimension is library-only), and its value names, default first.
 */
struct StrategyCatalogEntry
{
    std::string_view dimension;
    std::string_view flag;
    std::vector<std::string_view> values;
};

/** Every strategy dimension with every value name, defaults first. */
std::vector<StrategyCatalogEntry> strategyCatalog();

} // namespace powermove

#endif // POWERMOVE_COMPILER_STRATEGIES_HPP
