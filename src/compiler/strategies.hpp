/**
 * @file
 * Strategy selections for the pass pipeline.
 *
 * Each pipeline pass that admits more than one algorithm exposes its
 * choice as a small enum here, selected through CompilerOptions. The
 * paper's Fig. 1b flow is the default in every dimension; alternatives
 * either reproduce an ablation (the "as-is" orderings) or open a new
 * scenario (placement variants). Every enum participates in the job
 * fingerprint (service/fingerprint.cpp), so two option sets differing
 * in any strategy can never share a cache entry.
 */

#ifndef POWERMOVE_COMPILER_STRATEGIES_HPP
#define POWERMOVE_COMPILER_STRATEGIES_HPP

#include <cstdint>
#include <string>
#include <string_view>

#include "collsched/multi_aod.hpp"

namespace powermove {

/** How the initial layout places qubits into their starting zone. */
enum class PlacementStrategy : std::uint8_t
{
    /** The paper's initial layout: row-major from the zone's top left. */
    RowMajor,
    /**
     * The transpose of RowMajor: the zone fills column by column, so
     * consecutive qubits — which circuit generators tend to couple —
     * share a column and their storage traffic runs vertically along
     * that column.
     */
    ColumnInterleaved,
    /**
     * Usage-frequency-aware: qubits are ranked by their CZ-gate count
     * and the busiest qubits take the row-major sites closest to the
     * compute zone, shortening the shuttle distance of the atoms that
     * cross the inter-zone gap most often.
     */
    UsageFrequency,
};

/** How stages of one commutable CZ block are ordered. */
enum class StageOrderStrategy : std::uint8_t
{
    /** Keep the raw edge-coloring order (ablation baseline). */
    AsPartitioned,
    /** The paper's Sec. 4.2 zone-aware greedy ordering. */
    ZoneAware,
};

/** How Coll-Moves of one stage transition are ordered. */
enum class CollMoveOrderStrategy : std::uint8_t
{
    /** Keep the distance-grouping emission order (ablation baseline). */
    AsGrouped,
    /** The paper's Sec. 6.1 storage-dwell-maximizing order. */
    StorageDwell,
};

/** Short stable name, e.g. "row-major"; used by reports and the CLI. */
std::string_view placementStrategyName(PlacementStrategy strategy);
std::string_view stageOrderStrategyName(StageOrderStrategy strategy);
std::string_view collMoveOrderStrategyName(CollMoveOrderStrategy strategy);
std::string_view aodBatchPolicyName(AodBatchPolicy policy);

/**
 * Parses a strategy name as printed by the matching *Name() function.
 * Returns false (leaving @p out untouched) on an unknown name.
 */
bool parsePlacementStrategy(std::string_view text, PlacementStrategy &out);
bool parseStageOrderStrategy(std::string_view text, StageOrderStrategy &out);
bool parseCollMoveOrderStrategy(std::string_view text,
                                CollMoveOrderStrategy &out);
bool parseAodBatchPolicy(std::string_view text, AodBatchPolicy &out);

} // namespace powermove

#endif // POWERMOVE_COMPILER_STRATEGIES_HPP
