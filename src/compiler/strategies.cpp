#include "compiler/strategies.hpp"

namespace powermove {

std::string_view
placementStrategyName(PlacementStrategy strategy)
{
    switch (strategy) {
    case PlacementStrategy::RowMajor:
        return "row-major";
    case PlacementStrategy::ColumnInterleaved:
        return "column-interleaved";
    case PlacementStrategy::UsageFrequency:
        return "usage-frequency";
    }
    return "unknown";
}

std::string_view
stageOrderStrategyName(StageOrderStrategy strategy)
{
    switch (strategy) {
    case StageOrderStrategy::AsPartitioned:
        return "as-partitioned";
    case StageOrderStrategy::ZoneAware:
        return "zone-aware";
    }
    return "unknown";
}

std::string_view
collMoveOrderStrategyName(CollMoveOrderStrategy strategy)
{
    switch (strategy) {
    case CollMoveOrderStrategy::AsGrouped:
        return "as-grouped";
    case CollMoveOrderStrategy::StorageDwell:
        return "storage-dwell";
    }
    return "unknown";
}

std::string_view
aodBatchPolicyName(AodBatchPolicy policy)
{
    switch (policy) {
    case AodBatchPolicy::InOrder:
        return "in-order";
    case AodBatchPolicy::DurationBalanced:
        return "duration-balanced";
    }
    return "unknown";
}

bool
parsePlacementStrategy(std::string_view text, PlacementStrategy &out)
{
    for (const auto strategy :
         {PlacementStrategy::RowMajor, PlacementStrategy::ColumnInterleaved,
          PlacementStrategy::UsageFrequency}) {
        if (text == placementStrategyName(strategy)) {
            out = strategy;
            return true;
        }
    }
    return false;
}

bool
parseStageOrderStrategy(std::string_view text, StageOrderStrategy &out)
{
    for (const auto strategy :
         {StageOrderStrategy::AsPartitioned, StageOrderStrategy::ZoneAware}) {
        if (text == stageOrderStrategyName(strategy)) {
            out = strategy;
            return true;
        }
    }
    return false;
}

bool
parseCollMoveOrderStrategy(std::string_view text, CollMoveOrderStrategy &out)
{
    for (const auto strategy : {CollMoveOrderStrategy::AsGrouped,
                                CollMoveOrderStrategy::StorageDwell}) {
        if (text == collMoveOrderStrategyName(strategy)) {
            out = strategy;
            return true;
        }
    }
    return false;
}

bool
parseAodBatchPolicy(std::string_view text, AodBatchPolicy &out)
{
    for (const auto policy :
         {AodBatchPolicy::InOrder, AodBatchPolicy::DurationBalanced}) {
        if (text == aodBatchPolicyName(policy)) {
            out = policy;
            return true;
        }
    }
    return false;
}

} // namespace powermove
