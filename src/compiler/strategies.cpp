#include "compiler/strategies.hpp"

namespace powermove {

std::string_view
placementStrategyName(PlacementStrategy strategy)
{
    switch (strategy) {
    case PlacementStrategy::RowMajor:
        return "row-major";
    case PlacementStrategy::ColumnInterleaved:
        return "column-interleaved";
    case PlacementStrategy::UsageFrequency:
        return "usage-frequency";
    case PlacementStrategy::RoutingAware:
        return "routing-aware";
    }
    return "unknown";
}

std::string_view
stagePartitionStrategyName(StagePartitionStrategy strategy)
{
    switch (strategy) {
    case StagePartitionStrategy::Coloring:
        return "coloring";
    case StagePartitionStrategy::Linear:
        return "linear";
    case StagePartitionStrategy::Balanced:
        return "balanced";
    }
    return "unknown";
}

std::string_view
stageOrderStrategyName(StageOrderStrategy strategy)
{
    switch (strategy) {
    case StageOrderStrategy::AsPartitioned:
        return "as-partitioned";
    case StageOrderStrategy::ZoneAware:
        return "zone-aware";
    }
    return "unknown";
}

std::string_view
collMoveOrderStrategyName(CollMoveOrderStrategy strategy)
{
    switch (strategy) {
    case CollMoveOrderStrategy::AsGrouped:
        return "as-grouped";
    case CollMoveOrderStrategy::StorageDwell:
        return "storage-dwell";
    }
    return "unknown";
}

std::string_view
aodBatchPolicyName(AodBatchPolicy policy)
{
    switch (policy) {
    case AodBatchPolicy::InOrder:
        return "in-order";
    case AodBatchPolicy::DurationBalanced:
        return "duration-balanced";
    }
    return "unknown";
}

bool
parsePlacementStrategy(std::string_view text, PlacementStrategy &out)
{
    for (const auto strategy :
         {PlacementStrategy::RowMajor, PlacementStrategy::ColumnInterleaved,
          PlacementStrategy::UsageFrequency,
          PlacementStrategy::RoutingAware}) {
        if (text == placementStrategyName(strategy)) {
            out = strategy;
            return true;
        }
    }
    return false;
}

bool
parseStagePartitionStrategy(std::string_view text, StagePartitionStrategy &out)
{
    for (const auto strategy :
         {StagePartitionStrategy::Coloring, StagePartitionStrategy::Linear,
          StagePartitionStrategy::Balanced}) {
        if (text == stagePartitionStrategyName(strategy)) {
            out = strategy;
            return true;
        }
    }
    return false;
}

bool
parseStageOrderStrategy(std::string_view text, StageOrderStrategy &out)
{
    for (const auto strategy :
         {StageOrderStrategy::AsPartitioned, StageOrderStrategy::ZoneAware}) {
        if (text == stageOrderStrategyName(strategy)) {
            out = strategy;
            return true;
        }
    }
    return false;
}

bool
parseCollMoveOrderStrategy(std::string_view text, CollMoveOrderStrategy &out)
{
    for (const auto strategy : {CollMoveOrderStrategy::AsGrouped,
                                CollMoveOrderStrategy::StorageDwell}) {
        if (text == collMoveOrderStrategyName(strategy)) {
            out = strategy;
            return true;
        }
    }
    return false;
}

bool
parseAodBatchPolicy(std::string_view text, AodBatchPolicy &out)
{
    for (const auto policy :
         {AodBatchPolicy::InOrder, AodBatchPolicy::DurationBalanced}) {
        if (text == aodBatchPolicyName(policy)) {
            out = policy;
            return true;
        }
    }
    return false;
}

std::string_view
routingStrategyName(RoutingStrategy strategy)
{
    switch (strategy) {
    case RoutingStrategy::Continuous:
        return "continuous";
    case RoutingStrategy::Reuse:
        return "reuse";
    case RoutingStrategy::Fast:
        return "fast";
    case RoutingStrategy::Windowed:
        return "windowed";
    }
    return "unknown";
}

bool
parseRoutingStrategy(std::string_view text, RoutingStrategy &out)
{
    for (const auto strategy :
         {RoutingStrategy::Continuous, RoutingStrategy::Reuse,
          RoutingStrategy::Fast, RoutingStrategy::Windowed}) {
        if (text == routingStrategyName(strategy)) {
            out = strategy;
            return true;
        }
    }
    return false;
}

std::string_view
residencyPolicyName(ResidencyPolicy policy)
{
    switch (policy) {
    case ResidencyPolicy::Lookahead:
        return "lookahead";
    case ResidencyPolicy::Lru:
        return "lru";
    case ResidencyPolicy::Lti:
        return "lti";
    case ResidencyPolicy::Fidelity:
        return "fidelity";
    }
    return "unknown";
}

bool
parseResidencyPolicy(std::string_view text, ResidencyPolicy &out)
{
    for (const auto policy :
         {ResidencyPolicy::Lookahead, ResidencyPolicy::Lru,
          ResidencyPolicy::Lti, ResidencyPolicy::Fidelity}) {
        if (text == residencyPolicyName(policy)) {
            out = policy;
            return true;
        }
    }
    return false;
}

std::vector<StrategyCatalogEntry>
strategyCatalog()
{
    // Defaults first in every row; the catalog is the single source the
    // CLI prints, so a new enum value only needs a line here to stop
    // users guessing flag spellings.
    return {
        {"placement",
         "--placement",
         {placementStrategyName(PlacementStrategy::RowMajor),
          placementStrategyName(PlacementStrategy::ColumnInterleaved),
          placementStrategyName(PlacementStrategy::UsageFrequency),
          placementStrategyName(PlacementStrategy::RoutingAware)}},
        {"routing",
         "--routing",
         {routingStrategyName(RoutingStrategy::Continuous),
          routingStrategyName(RoutingStrategy::Reuse),
          routingStrategyName(RoutingStrategy::Fast),
          routingStrategyName(RoutingStrategy::Windowed)}},
        {"residency",
         "--residency",
         {residencyPolicyName(ResidencyPolicy::Lookahead),
          residencyPolicyName(ResidencyPolicy::Lru),
          residencyPolicyName(ResidencyPolicy::Lti),
          residencyPolicyName(ResidencyPolicy::Fidelity)}},
        {"stage-partition",
         "--stage-partition",
         {stagePartitionStrategyName(StagePartitionStrategy::Linear),
          stagePartitionStrategyName(StagePartitionStrategy::Coloring),
          stagePartitionStrategyName(StagePartitionStrategy::Balanced)}},
        {"stage-order",
         "",
         {stageOrderStrategyName(StageOrderStrategy::ZoneAware),
          stageOrderStrategyName(StageOrderStrategy::AsPartitioned)}},
        {"coll-move-order",
         "",
         {collMoveOrderStrategyName(CollMoveOrderStrategy::StorageDwell),
          collMoveOrderStrategyName(CollMoveOrderStrategy::AsGrouped)}},
        {"aod-batch",
         "--batch-policy",
         {aodBatchPolicyName(AodBatchPolicy::InOrder),
          aodBatchPolicyName(AodBatchPolicy::DurationBalanced)}},
    };
}

} // namespace powermove
