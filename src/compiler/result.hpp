/**
 * @file
 * The outcome of one compilation run.
 */

#ifndef POWERMOVE_COMPILER_RESULT_HPP
#define POWERMOVE_COMPILER_RESULT_HPP

#include <vector>

#include "compiler/profile.hpp"
#include "fidelity/breakdown.hpp"
#include "isa/machine_schedule.hpp"

namespace powermove {

/** A compiled program plus its metrics. */
struct CompileResult
{
    /** The executable machine program. */
    MachineSchedule schedule;
    /** Fidelity and execution-time breakdown (Eq. 1). */
    FidelityBreakdown metrics;
    /** Wall-clock compilation time (T_comp), excluding evaluation. */
    Duration compile_time;
    /** Rydberg stages executed. */
    std::size_t num_stages = 0;
    /** Coll-Moves emitted. */
    std::size_t num_coll_moves = 0;
    /**
     * Per-pass wall time and counters, in pipeline order. Empty when the
     * producing compiler does not profile (CompilerOptions::profile_passes
     * off, or the Enola baseline).
     */
    std::vector<PassProfile> pass_profiles;
};

} // namespace powermove

#endif // POWERMOVE_COMPILER_RESULT_HPP
