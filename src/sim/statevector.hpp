/**
 * @file
 * A dense state-vector simulator.
 *
 * Small (intended for <= ~14 qubits) but exact: used by the test suite
 * to prove that circuit transformations (block fusion, 1Q cancellation,
 * inversion), QASM decompositions (CX/CP/SWAP/CCX/RZZ) and write/parse
 * round trips preserve circuit *semantics*, not merely gate counts.
 *
 * Conventions: qubit q occupies bit q of the amplitude index (little
 * endian); the generic one-pulse gate U(theta) is u3(theta, 0, 0), i.e.
 * Ry(theta), matching the writer's emission.
 */

#ifndef POWERMOVE_SIM_STATEVECTOR_HPP
#define POWERMOVE_SIM_STATEVECTOR_HPP

#include <complex>
#include <vector>

#include "circuit/circuit.hpp"

namespace powermove {

class Rng;

/** An exact quantum state over a small register. */
class StateVector
{
  public:
    using Amplitude = std::complex<double>;

    /** Initializes |0...0> over @p num_qubits qubits. */
    explicit StateVector(std::size_t num_qubits);

    /** A random normalized state (for equivalence testing). */
    static StateVector random(std::size_t num_qubits, Rng &rng);

    std::size_t numQubits() const { return num_qubits_; }
    std::size_t dimension() const { return amplitudes_.size(); }

    /** Amplitude of basis state @p index. */
    Amplitude amplitude(std::size_t index) const;

    /** Squared norm (1 up to rounding for unitary evolution). */
    double norm() const;

    /** Probability of measuring qubit @p q as 1. */
    double probabilityOfOne(QubitId q) const;

    /** Applies a single-qubit gate. */
    void apply(const OneQGate &gate);

    /** Applies a CZ gate. */
    void apply(const CzGate &gate);

    /** Applies every gate of @p circuit in moment order. */
    void applyCircuit(const Circuit &circuit);

    /**
     * |<a|b>|^2 — state fidelity, insensitive to global phase. Both
     * states must have equal dimension.
     */
    static double overlap(const StateVector &a, const StateVector &b);

  private:
    void applyMatrix(QubitId q, Amplitude m00, Amplitude m01, Amplitude m10,
                     Amplitude m11);

    std::size_t num_qubits_;
    std::vector<Amplitude> amplitudes_;
};

} // namespace powermove

#endif // POWERMOVE_SIM_STATEVECTOR_HPP
