#include "sim/statevector.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace powermove {

namespace {

constexpr std::size_t kMaxSimQubits = 20;
const std::complex<double> kI{0.0, 1.0};

} // namespace

StateVector::StateVector(std::size_t num_qubits) : num_qubits_(num_qubits)
{
    if (num_qubits == 0 || num_qubits > kMaxSimQubits)
        fatal("state-vector simulation supports 1.." +
              std::to_string(kMaxSimQubits) + " qubits");
    amplitudes_.assign(std::size_t{1} << num_qubits, {0.0, 0.0});
    amplitudes_[0] = {1.0, 0.0};
}

StateVector
StateVector::random(std::size_t num_qubits, Rng &rng)
{
    StateVector state(num_qubits);
    double norm_sq = 0.0;
    for (auto &amplitude : state.amplitudes_) {
        // Gaussian-ish amplitudes via sums of uniforms are fine here.
        const double re = rng.nextDouble() - 0.5 + rng.nextDouble() - 0.5;
        const double im = rng.nextDouble() - 0.5 + rng.nextDouble() - 0.5;
        amplitude = {re, im};
        norm_sq += std::norm(amplitude);
    }
    const double scale = 1.0 / std::sqrt(norm_sq);
    for (auto &amplitude : state.amplitudes_)
        amplitude *= scale;
    return state;
}

StateVector::Amplitude
StateVector::amplitude(std::size_t index) const
{
    PM_ASSERT(index < amplitudes_.size(), "basis index out of range");
    return amplitudes_[index];
}

double
StateVector::norm() const
{
    double total = 0.0;
    for (const auto &amplitude : amplitudes_)
        total += std::norm(amplitude);
    return total;
}

double
StateVector::probabilityOfOne(QubitId q) const
{
    PM_ASSERT(q < num_qubits_, "qubit out of range");
    const std::size_t bit = std::size_t{1} << q;
    double probability = 0.0;
    for (std::size_t index = 0; index < amplitudes_.size(); ++index) {
        if (index & bit)
            probability += std::norm(amplitudes_[index]);
    }
    return probability;
}

void
StateVector::applyMatrix(QubitId q, Amplitude m00, Amplitude m01,
                         Amplitude m10, Amplitude m11)
{
    PM_ASSERT(q < num_qubits_, "qubit out of range");
    const std::size_t bit = std::size_t{1} << q;
    for (std::size_t base = 0; base < amplitudes_.size(); ++base) {
        if (base & bit)
            continue;
        const Amplitude a0 = amplitudes_[base];
        const Amplitude a1 = amplitudes_[base | bit];
        amplitudes_[base] = m00 * a0 + m01 * a1;
        amplitudes_[base | bit] = m10 * a0 + m11 * a1;
    }
}

void
StateVector::apply(const OneQGate &gate)
{
    const double inv_sqrt2 = 1.0 / std::numbers::sqrt2;
    const double half = gate.angle / 2.0;
    switch (gate.kind) {
      case OneQKind::H:
        applyMatrix(gate.qubit, inv_sqrt2, inv_sqrt2, inv_sqrt2, -inv_sqrt2);
        return;
      case OneQKind::X:
        applyMatrix(gate.qubit, 0.0, 1.0, 1.0, 0.0);
        return;
      case OneQKind::Y:
        applyMatrix(gate.qubit, 0.0, -kI, kI, 0.0);
        return;
      case OneQKind::Z:
        applyMatrix(gate.qubit, 1.0, 0.0, 0.0, -1.0);
        return;
      case OneQKind::S:
        applyMatrix(gate.qubit, 1.0, 0.0, 0.0, kI);
        return;
      case OneQKind::Sdg:
        applyMatrix(gate.qubit, 1.0, 0.0, 0.0, -kI);
        return;
      case OneQKind::T:
        applyMatrix(gate.qubit, 1.0, 0.0, 0.0, std::exp(kI * (std::numbers::pi / 4.0)));
        return;
      case OneQKind::Tdg:
        applyMatrix(gate.qubit, 1.0, 0.0, 0.0, std::exp(-kI * (std::numbers::pi / 4.0)));
        return;
      case OneQKind::Rx:
        applyMatrix(gate.qubit, std::cos(half), -kI * std::sin(half),
                    -kI * std::sin(half), std::cos(half));
        return;
      case OneQKind::Ry:
      case OneQKind::U: // U(theta) = u3(theta, 0, 0) = Ry(theta)
        applyMatrix(gate.qubit, std::cos(half), -std::sin(half),
                    std::sin(half), std::cos(half));
        return;
      case OneQKind::Rz:
        applyMatrix(gate.qubit, std::exp(-kI * half), 0.0, 0.0,
                    std::exp(kI * half));
        return;
    }
    panic("unknown 1Q gate kind in simulation");
}

void
StateVector::apply(const CzGate &gate)
{
    PM_ASSERT(gate.a < num_qubits_ && gate.b < num_qubits_,
              "qubit out of range");
    PM_ASSERT(gate.a != gate.b, "CZ endpoints must differ");
    const std::size_t mask =
        (std::size_t{1} << gate.a) | (std::size_t{1} << gate.b);
    for (std::size_t index = 0; index < amplitudes_.size(); ++index) {
        if ((index & mask) == mask)
            amplitudes_[index] = -amplitudes_[index];
    }
}

void
StateVector::applyCircuit(const Circuit &circuit)
{
    PM_ASSERT(circuit.numQubits() == num_qubits_,
              "circuit width must match the register");
    for (const auto &moment : circuit.moments()) {
        if (const auto *layer = std::get_if<OneQLayer>(&moment)) {
            for (const auto &gate : layer->gates)
                apply(gate);
        } else {
            for (const auto &gate : std::get<CzBlock>(moment).gates)
                apply(gate);
        }
    }
}

double
StateVector::overlap(const StateVector &a, const StateVector &b)
{
    PM_ASSERT(a.dimension() == b.dimension(),
              "states must have equal dimension");
    Amplitude inner{0.0, 0.0};
    for (std::size_t index = 0; index < a.amplitudes_.size(); ++index)
        inner += std::conj(a.amplitudes_[index]) * b.amplitudes_[index];
    return std::norm(inner);
}

} // namespace powermove
