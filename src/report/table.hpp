/**
 * @file
 * Fixed-width text tables for the benchmark harnesses.
 *
 * The Table 3 / Fig. 6 / Fig. 7 harnesses print the same rows and series
 * the paper reports; this widget renders them as aligned ASCII and CSV.
 */

#ifndef POWERMOVE_REPORT_TABLE_HPP
#define POWERMOVE_REPORT_TABLE_HPP

#include <string>
#include <vector>

namespace powermove {

/** A simple column-aligned text table. */
class TextTable
{
  public:
    /** Creates a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Appends one row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    std::size_t numRows() const { return rows_.size(); }
    std::size_t numColumns() const { return headers_.size(); }

    /** Renders with aligned columns and a header rule. */
    std::string toString() const;

    /** Renders as comma-separated values (quoted where needed). */
    std::string toCsv() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace powermove

#endif // POWERMOVE_REPORT_TABLE_HPP
