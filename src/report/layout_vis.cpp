#include "report/layout_vis.hpp"

#include <sstream>

#include "common/error.hpp"

namespace powermove {

std::string
renderPositions(const Machine &machine, const std::vector<SiteId> &positions)
{
    // Occupancy per site.
    std::vector<std::vector<QubitId>> occupants(machine.numSites());
    for (QubitId q = 0; q < positions.size(); ++q) {
        PM_ASSERT(positions[q] < machine.numSites(),
                  "position outside the machine");
        occupants[positions[q]].push_back(q);
    }

    const auto &config = machine.config();
    const std::int32_t total_rows =
        machine.storageTopRow() + config.storage_rows;

    std::ostringstream os;
    for (std::int32_t y = 0; y < total_rows; ++y) {
        const bool compute_row = y < config.compute_rows;
        const bool gap_row = !compute_row && y < machine.storageTopRow();
        const std::int32_t cols =
            compute_row ? config.compute_cols : config.storage_cols;

        if (y == 0)
            os << "compute  ";
        else if (y == machine.storageTopRow())
            os << "storage  ";
        else
            os << "         ";

        if (gap_row) {
            os << "~\n";
            continue;
        }
        for (std::int32_t x = 0; x < cols; ++x) {
            const SiteId site = machine.siteAt(SiteCoord{x, y});
            const auto &holders = occupants[site];
            if (holders.empty())
                os << '.';
            else if (holders.size() == 1)
                os << static_cast<char>('0' + holders[0] % 10);
            else
                os << '@';
            os << ' ';
        }
        os << "\n";
    }
    return os.str();
}

std::string
renderLayout(const Layout &layout)
{
    std::vector<SiteId> positions(layout.numQubits());
    for (QubitId q = 0; q < layout.numQubits(); ++q) {
        PM_ASSERT(layout.siteOf(q) != kInvalidSite,
                  "cannot render a layout with unplaced qubits");
        positions[q] = layout.siteOf(q);
    }
    return renderPositions(layout.machine(), positions);
}

} // namespace powermove
