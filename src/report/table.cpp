#include "report/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace powermove {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    PM_ASSERT(!headers_.empty(), "a table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        fatal("table row width does not match header");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::toString() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    const auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << (c == 0 ? "" : "  ") << cells[c]
               << std::string(widths[c] - cells[c].size(), ' ');
        }
        os << "\n";
    };
    emit_row(headers_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(rule, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
TextTable::toCsv() const
{
    const auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string quoted = "\"";
        for (const char c : cell) {
            if (c == '"')
                quoted += '"';
            quoted += c;
        }
        quoted += '"';
        return quoted;
    };

    std::ostringstream os;
    const auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c)
            os << (c == 0 ? "" : ",") << quote(cells[c]);
        os << "\n";
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

} // namespace powermove
