#include "report/summary.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace powermove {

void
RatioSummary::add(double ratio)
{
    if (!(ratio > 0.0))
        fatal("ratio summaries require positive values");
    ratios_.push_back(ratio);
}

double
RatioSummary::min() const
{
    PM_ASSERT(!ratios_.empty(), "empty summary has no minimum");
    return *std::min_element(ratios_.begin(), ratios_.end());
}

double
RatioSummary::max() const
{
    PM_ASSERT(!ratios_.empty(), "empty summary has no maximum");
    return *std::max_element(ratios_.begin(), ratios_.end());
}

double
RatioSummary::geometricMean() const
{
    PM_ASSERT(!ratios_.empty(), "empty summary has no mean");
    double log_sum = 0.0;
    for (const double ratio : ratios_)
        log_sum += std::log(ratio);
    return std::exp(log_sum / static_cast<double>(ratios_.size()));
}

double
RatioSummary::arithmeticMean() const
{
    PM_ASSERT(!ratios_.empty(), "empty summary has no mean");
    double sum = 0.0;
    for (const double ratio : ratios_)
        sum += ratio;
    return sum / static_cast<double>(ratios_.size());
}

std::string
RatioSummary::toString() const
{
    if (ratios_.empty())
        return "(no data)";
    std::ostringstream os;
    os << formatRatio(min()) << " to " << formatRatio(max()) << " (geomean "
       << formatRatio(geometricMean()) << ", mean "
       << formatRatio(arithmeticMean()) << ") over " << ratios_.size()
       << " benchmarks";
    return os.str();
}

} // namespace powermove
