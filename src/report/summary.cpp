#include "report/summary.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"
#include "report/table.hpp"

namespace powermove {

void
RatioSummary::add(double ratio)
{
    if (!(ratio > 0.0))
        fatal("ratio summaries require positive values");
    ratios_.push_back(ratio);
}

double
RatioSummary::min() const
{
    PM_ASSERT(!ratios_.empty(), "empty summary has no minimum");
    return *std::min_element(ratios_.begin(), ratios_.end());
}

double
RatioSummary::max() const
{
    PM_ASSERT(!ratios_.empty(), "empty summary has no maximum");
    return *std::max_element(ratios_.begin(), ratios_.end());
}

double
RatioSummary::geometricMean() const
{
    PM_ASSERT(!ratios_.empty(), "empty summary has no mean");
    double log_sum = 0.0;
    for (const double ratio : ratios_)
        log_sum += std::log(ratio);
    return std::exp(log_sum / static_cast<double>(ratios_.size()));
}

double
RatioSummary::arithmeticMean() const
{
    PM_ASSERT(!ratios_.empty(), "empty summary has no mean");
    double sum = 0.0;
    for (const double ratio : ratios_)
        sum += ratio;
    return sum / static_cast<double>(ratios_.size());
}

std::string
RatioSummary::toString() const
{
    if (ratios_.empty())
        return "(no data)";
    std::ostringstream os;
    os << formatRatio(min()) << " to " << formatRatio(max()) << " (geomean "
       << formatRatio(geometricMean()) << ", mean "
       << formatRatio(arithmeticMean()) << ") over " << ratios_.size()
       << " benchmarks";
    return os.str();
}

std::string
formatPassProfiles(const std::vector<PassProfile> &profiles)
{
    if (profiles.empty())
        return "(no pass profiles)\n";

    double total_micros = 0.0;
    for (const PassProfile &profile : profiles)
        total_micros += profile.wall_time.micros();

    TextTable table({"Pass", "Calls", "Time (us)", "Share", "Counters"});
    for (const PassProfile &profile : profiles) {
        const double micros = profile.wall_time.micros();
        const double share = total_micros > 0.0 ? micros / total_micros : 0.0;
        std::vector<std::string> counters;
        counters.reserve(profile.counters.size());
        for (const PassCounter &counter : profile.counters)
            counters.push_back(counter.name + "=" +
                               std::to_string(counter.value));
        table.addRow({std::string(passName(profile.pass)),
                      std::to_string(profile.invocations),
                      formatGeneral(micros, 4),
                      formatGeneral(share * 100.0, 3) + "%",
                      counters.empty() ? "-" : join(counters, " ")});
    }
    return table.toString();
}

} // namespace powermove
