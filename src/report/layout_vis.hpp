/**
 * @file
 * ASCII visualization of the zoned lattice.
 *
 * Renders the compute zone, the inter-zone gap, and the storage zone as
 * a character grid: '.' empty site, a qubit id digit (mod 10) for single
 * occupancy, '@' for an interacting pair. Invaluable when debugging
 * router decisions and for teaching the zoned-architecture layout flow.
 */

#ifndef POWERMOVE_REPORT_LAYOUT_VIS_HPP
#define POWERMOVE_REPORT_LAYOUT_VIS_HPP

#include <string>
#include <vector>

#include "arch/layout.hpp"
#include "arch/machine.hpp"

namespace powermove {

/** Renders the current occupancy of @p layout. */
std::string renderLayout(const Layout &layout);

/** Renders an explicit per-qubit position assignment. */
std::string renderPositions(const Machine &machine,
                            const std::vector<SiteId> &positions);

} // namespace powermove

#endif // POWERMOVE_REPORT_LAYOUT_VIS_HPP
