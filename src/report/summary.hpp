/**
 * @file
 * Aggregate statistics over benchmark runs.
 *
 * The paper summarizes Table 3 with aggregate claims ("average fidelity
 * improvement of 313.86x", "execution time improved by 1.71x to 3.46x");
 * this module computes the same aggregates from measured results:
 * geometric means for ratio-like quantities and min/max ranges.
 */

#ifndef POWERMOVE_REPORT_SUMMARY_HPP
#define POWERMOVE_REPORT_SUMMARY_HPP

#include <cstddef>
#include <string>
#include <vector>

#include "compiler/profile.hpp"

namespace powermove {

/** Accumulates ratios and reports range and central tendency. */
class RatioSummary
{
  public:
    /** Adds one observed ratio (must be positive). */
    void add(double ratio);

    std::size_t count() const { return ratios_.size(); }
    bool empty() const { return ratios_.empty(); }

    /** Smallest observed ratio. */
    double min() const;
    /** Largest observed ratio. */
    double max() const;
    /** Geometric mean — the right average for multiplicative factors. */
    double geometricMean() const;
    /** Arithmetic mean (what the paper's "average improvement" uses). */
    double arithmeticMean() const;

    /** "min-max (geomean X, mean Y) over N benchmarks". */
    std::string toString() const;

  private:
    std::vector<double> ratios_;
};

/**
 * Renders per-pass profiles as an aligned table: pass name, invocation
 * count, wall time, share of the summed pass time, and the pass's
 * counters. Used by `powermove --profile`, the service stats dump, and
 * bench/micro_passes. Returns "(no pass profiles)" when @p profiles is
 * empty (profiling disabled or a non-pipeline compiler).
 */
std::string formatPassProfiles(const std::vector<PassProfile> &profiles);

} // namespace powermove

#endif // POWERMOVE_REPORT_SUMMARY_HPP
