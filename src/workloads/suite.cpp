#include "workloads/suite.hpp"

#include "common/error.hpp"
#include "workloads/bv.hpp"
#include "workloads/qaoa.hpp"
#include "workloads/qft.hpp"
#include "workloads/qsim.hpp"
#include "workloads/vqe.hpp"

namespace powermove {

namespace {

/** Stable per-entry seed derived from family and size. */
std::uint64_t
benchmarkSeed(const std::string &family, std::size_t num_qubits)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : family) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ULL;
    }
    h ^= num_qubits;
    h *= 0x100000001b3ULL;
    return h;
}

Circuit
buildFamily(const std::string &family, std::size_t n)
{
    const std::uint64_t seed = benchmarkSeed(family, n);
    if (family == "QAOA-regular3")
        return makeQaoaRegular(n, 3, 1, seed);
    if (family == "QAOA-regular4")
        return makeQaoaRegular(n, 4, 1, seed);
    if (family == "QAOA-random")
        return makeQaoaRandom(n, 0.5, 1, seed);
    if (family == "QFT")
        return makeQft(n);
    if (family == "BV")
        return makeBv(n, seed);
    if (family == "VQE")
        return makeVqe(n, 1, VqeEntanglement::Linear, seed);
    if (family == "QSIM-rand-0.3")
        return makeQsim(n, 0.3, 10, seed);
    fatal("unknown benchmark family: " + family);
}

BenchmarkSpec
makeSpec(const std::string &family, std::size_t n)
{
    BenchmarkSpec spec;
    spec.family = family;
    spec.num_qubits = n;
    spec.name = family + "-" + std::to_string(n);
    spec.machine_config = MachineConfig::forQubits(n);
    spec.build = [family, n] { return buildFamily(family, n); };
    return spec;
}

} // namespace

std::vector<BenchmarkSpec>
table2Suite()
{
    const auto add = [](std::vector<BenchmarkSpec> &out,
                        const std::string &family,
                        std::initializer_list<std::size_t> sizes) {
        for (const std::size_t n : sizes)
            out.push_back(makeSpec(family, n));
    };

    std::vector<BenchmarkSpec> suite;
    add(suite, "QAOA-regular3", {30, 40, 50, 60, 80, 100});
    add(suite, "QAOA-regular4", {30, 40, 50, 60, 80});
    add(suite, "QAOA-random", {20, 30});
    add(suite, "QFT", {18, 29});
    add(suite, "BV", {14, 50, 70});
    add(suite, "VQE", {30, 50});
    add(suite, "QSIM-rand-0.3", {10, 20, 40});
    return suite;
}

BenchmarkSpec
findBenchmark(const std::string &name)
{
    for (auto &spec : table2Suite()) {
        if (spec.name == name)
            return spec;
    }
    fatal("unknown benchmark: " + name);
}

BenchmarkSpec
makeFamilyInstance(const std::string &family, std::size_t num_qubits)
{
    return makeSpec(family, num_qubits);
}

} // namespace powermove
