#include "workloads/qft.hpp"

#include <numbers>

namespace powermove {

Circuit
makeQft(std::size_t num_qubits)
{
    Circuit circuit(num_qubits, "QFT-" + std::to_string(num_qubits));
    const auto n = static_cast<QubitId>(num_qubits);

    for (QubitId k = 0; k < n; ++k) {
        circuit.append(OneQGate{OneQKind::H, k, 0.0});
        // All CP(j, k) for j > k are diagonal and mutually commutable:
        // one CZ block sharing qubit k (hence one gate per stage).
        for (QubitId j = k + 1; j < n; ++j)
            circuit.append(CzGate{j, k});
        // Deferred Rz corrections of the CP decompositions.
        for (QubitId j = k + 1; j < n; ++j) {
            const double angle =
                std::numbers::pi / static_cast<double>(1ULL << (j - k + 1));
            circuit.append(OneQGate{OneQKind::Rz, j, angle});
            circuit.append(OneQGate{OneQKind::Rz, k, angle});
        }
    }
    return circuit;
}

} // namespace powermove
