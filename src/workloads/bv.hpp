/**
 * @file
 * Bernstein-Vazirani benchmark.
 *
 * The oracle applies CX(i, ancilla) for every secret bit s_i = 1; in the
 * CZ basis the ancilla-side Hadamards of consecutive CXs cancel, leaving
 * a single CZ block in which every gate shares the ancilla — the
 * inherently sequential structure that exposes Enola's excitation error
 * (paper Fig. 6e). Secret strings have an even 0/1 distribution
 * (Sec. 7.1).
 */

#ifndef POWERMOVE_WORKLOADS_BV_HPP
#define POWERMOVE_WORKLOADS_BV_HPP

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"

namespace powermove {

/** BV with an explicit secret over num_qubits-1 data bits. */
Circuit makeBvWithSecret(std::size_t num_qubits,
                         const std::vector<bool> &secret);

/**
 * BV over @p num_qubits qubits (data + 1 ancilla) with a random secret
 * containing floor((n-1)/2) ones ("BV-<n>").
 */
Circuit makeBv(std::size_t num_qubits, std::uint64_t seed);

} // namespace powermove

#endif // POWERMOVE_WORKLOADS_BV_HPP
