/**
 * @file
 * QAOA benchmark circuits (paper Sec. 7.1).
 *
 * Two flavors: *regular* — ZZ interactions on the edges of a random
 * d-regular graph — and *random* — ZZ interactions between each qubit
 * pair with 50% probability (an Erdos-Renyi G(n, 0.5) cost graph). Each
 * ZZ interaction is one CZ-class adjacency episode (see DESIGN.md); all
 * episodes of one round are mutually commutable and form a single CZ
 * block, followed by the RX mixer layer.
 */

#ifndef POWERMOVE_WORKLOADS_QAOA_HPP
#define POWERMOVE_WORKLOADS_QAOA_HPP

#include <cstdint>

#include "circuit/circuit.hpp"
#include "common/graph.hpp"

namespace powermove {

/** QAOA circuit over an explicit problem graph, @p rounds rounds. */
Circuit makeQaoaFromGraph(const Graph &graph, std::size_t rounds,
                          std::string name);

/** QAOA on a random d-regular graph ("QAOA-regular<d>-<n>"). */
Circuit makeQaoaRegular(std::size_t num_qubits, std::size_t degree,
                        std::size_t rounds, std::uint64_t seed);

/** QAOA on G(n, p) ("QAOA-random-<n>"). */
Circuit makeQaoaRandom(std::size_t num_qubits, double edge_probability,
                       std::size_t rounds, std::uint64_t seed);

} // namespace powermove

#endif // POWERMOVE_WORKLOADS_QAOA_HPP
