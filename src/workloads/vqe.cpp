#include "workloads/vqe.hpp"

#include "common/rng.hpp"

namespace powermove {

Circuit
makeVqe(std::size_t num_qubits, std::size_t reps,
        VqeEntanglement entanglement, std::uint64_t seed)
{
    Rng rng(seed);
    Circuit circuit(num_qubits, "VQE-" + std::to_string(num_qubits));
    const auto n = static_cast<QubitId>(num_qubits);

    const auto ry_layer = [&] {
        for (QubitId q = 0; q < n; ++q) {
            circuit.append(
                OneQGate{OneQKind::Ry, q, rng.nextDouble() * 6.2831853});
        }
    };

    ry_layer();
    for (std::size_t rep = 0; rep < reps; ++rep) {
        if (entanglement == VqeEntanglement::Linear) {
            for (QubitId q = 0; q + 1 < n; ++q)
                circuit.append(CzGate{q, static_cast<QubitId>(q + 1)});
        } else {
            for (QubitId a = 0; a < n; ++a) {
                for (QubitId b = a + 1; b < n; ++b)
                    circuit.append(CzGate{a, b});
            }
        }
        ry_layer();
    }
    return circuit;
}

} // namespace powermove
