/**
 * @file
 * The paper's benchmark suite (Table 2).
 *
 * Twenty-three entries across seven families, each paired with the
 * paper's default machine shape for its qubit count (compute
 * ceil(sqrt(n))^2, storage ceil(sqrt(n)) x 2 ceil(sqrt(n)), 15 um pitch,
 * 30 um inter-zone gap). Circuits are generated deterministically from
 * per-entry seeds so every run reproduces identical programs.
 */

#ifndef POWERMOVE_WORKLOADS_SUITE_HPP
#define POWERMOVE_WORKLOADS_SUITE_HPP

#include <functional>
#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "circuit/circuit.hpp"

namespace powermove {

/** One Table 2 row: a benchmark circuit plus its machine shape. */
struct BenchmarkSpec
{
    /** Paper row name, e.g. "QAOA-regular3-30". */
    std::string name;
    /** Benchmark family, e.g. "QAOA-regular3". */
    std::string family;
    /** Circuit width. */
    std::size_t num_qubits = 0;
    /** Machine shape from Sec. 7.1's sizing rule. */
    MachineConfig machine_config;
    /** Deterministic circuit builder. */
    std::function<Circuit()> build;
};

/** All 23 benchmark entries of Table 2, in paper order. */
std::vector<BenchmarkSpec> table2Suite();

/** The entry named @p name; throws ConfigError if absent. */
BenchmarkSpec findBenchmark(const std::string &name);

/**
 * A family sweep used by the Fig. 6 ablation: the family's builder
 * instantiated at an arbitrary qubit count.
 */
BenchmarkSpec makeFamilyInstance(const std::string &family,
                                 std::size_t num_qubits);

} // namespace powermove

#endif // POWERMOVE_WORKLOADS_SUITE_HPP
