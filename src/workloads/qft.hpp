/**
 * @file
 * Quantum Fourier Transform benchmark.
 *
 * Standard QFT: for each target k, a Hadamard followed by controlled-
 * phase rotations CP(pi/2^(j-k)) from every higher qubit j. Each CP is
 * one CZ-class adjacency episode; because CP is diagonal its residual
 * single-qubit Rz corrections commute with the CZ block and are emitted
 * after it, preserving the block structure. The final bit-reversal swaps
 * are omitted (they relabel qubits classically), following standard
 * compilation-study practice.
 */

#ifndef POWERMOVE_WORKLOADS_QFT_HPP
#define POWERMOVE_WORKLOADS_QFT_HPP

#include "circuit/circuit.hpp"

namespace powermove {

/** n-qubit QFT ("QFT-<n>"). */
Circuit makeQft(std::size_t num_qubits);

} // namespace powermove

#endif // POWERMOVE_WORKLOADS_QFT_HPP
