#include "workloads/bv.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"

namespace powermove {

Circuit
makeBvWithSecret(std::size_t num_qubits, const std::vector<bool> &secret)
{
    if (num_qubits < 2)
        fatal("BV needs at least one data qubit plus the ancilla");
    if (secret.size() != num_qubits - 1)
        fatal("BV secret length must be num_qubits - 1");

    Circuit circuit(num_qubits, "BV-" + std::to_string(num_qubits));
    const auto ancilla = static_cast<QubitId>(num_qubits - 1);

    // Prepare |+>^data and |-> on the ancilla.
    for (QubitId q = 0; q < ancilla; ++q)
        circuit.append(OneQGate{OneQKind::H, q, 0.0});
    circuit.append(OneQGate{OneQKind::X, ancilla, 0.0});
    circuit.append(OneQGate{OneQKind::H, ancilla, 0.0});

    // Oracle: CX(i, ancilla) per secret one; the ancilla Hadamards of
    // consecutive CXs cancel, so a single H brackets one CZ block.
    circuit.append(OneQGate{OneQKind::H, ancilla, 0.0});
    for (QubitId q = 0; q < ancilla; ++q) {
        if (secret[q])
            circuit.append(CzGate{q, ancilla});
    }
    circuit.append(OneQGate{OneQKind::H, ancilla, 0.0});

    // Unprepare the data register to read the secret out.
    for (QubitId q = 0; q < ancilla; ++q)
        circuit.append(OneQGate{OneQKind::H, q, 0.0});
    return circuit;
}

Circuit
makeBv(std::size_t num_qubits, std::uint64_t seed)
{
    if (num_qubits < 2)
        fatal("BV needs at least one data qubit plus the ancilla");
    Rng rng(seed);
    const std::size_t data_bits = num_qubits - 1;
    std::vector<bool> secret(data_bits, false);
    for (const std::size_t index : rng.sampleIndices(data_bits, data_bits / 2))
        secret[index] = true;
    return makeBvWithSecret(num_qubits, secret);
}

} // namespace powermove
