#include "workloads/qaoa.hpp"

#include "common/rng.hpp"

namespace powermove {

Circuit
makeQaoaFromGraph(const Graph &graph, std::size_t rounds, std::string name)
{
    const std::size_t n = graph.numVertices();
    Circuit circuit(n, std::move(name));

    // Initial |+> preparation.
    for (QubitId q = 0; q < n; ++q)
        circuit.append(OneQGate{OneQKind::H, q, 0.0});

    for (std::size_t round = 0; round < rounds; ++round) {
        // Cost layer: one commutable ZZ episode per problem edge.
        for (const auto &[u, v] : graph.edges())
            circuit.append(CzGate{u, v});
        // Mixer layer.
        for (QubitId q = 0; q < n; ++q)
            circuit.append(OneQGate{
                OneQKind::Rx, q, 0.42 + 0.1 * static_cast<double>(round)});
    }
    return circuit;
}

Circuit
makeQaoaRegular(std::size_t num_qubits, std::size_t degree,
                std::size_t rounds, std::uint64_t seed)
{
    Rng rng(seed);
    const Graph graph = randomRegularGraph(num_qubits, degree, rng);
    return makeQaoaFromGraph(graph, rounds,
                             "QAOA-regular" + std::to_string(degree) + "-" +
                                 std::to_string(num_qubits));
}

Circuit
makeQaoaRandom(std::size_t num_qubits, double edge_probability,
               std::size_t rounds, std::uint64_t seed)
{
    Rng rng(seed);
    const Graph graph = randomGnp(num_qubits, edge_probability, rng);
    return makeQaoaFromGraph(graph, rounds,
                             "QAOA-random-" + std::to_string(num_qubits));
}

} // namespace powermove
