#include "workloads/qsim.hpp"

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace powermove {

namespace {

enum class Pauli : std::uint8_t { I, X, Y, Z };

/** Basis change rotating the Pauli eigenbasis onto Z. */
void
applyBasisChange(Circuit &circuit, QubitId q, Pauli pauli, bool inverse)
{
    switch (pauli) {
      case Pauli::X:
        circuit.append(OneQGate{OneQKind::H, q, 0.0});
        break;
      case Pauli::Y:
        if (inverse) {
            circuit.append(OneQGate{OneQKind::H, q, 0.0});
            circuit.append(OneQGate{OneQKind::S, q, 0.0});
        } else {
            circuit.append(OneQGate{OneQKind::Sdg, q, 0.0});
            circuit.append(OneQGate{OneQKind::H, q, 0.0});
        }
        break;
      default:
        break;
    }
}

/** One CZ-basis CX(control, target): H(target) CZ H(target). */
void
appendCx(Circuit &circuit, QubitId control, QubitId target)
{
    circuit.append(OneQGate{OneQKind::H, target, 0.0});
    circuit.append(CzGate{control, target});
    circuit.append(OneQGate{OneQKind::H, target, 0.0});
}

} // namespace

Circuit
makeQsim(std::size_t num_qubits, double non_identity_probability,
         std::size_t num_strings, std::uint64_t seed)
{
    if (num_qubits < 2)
        fatal("QSim needs at least two qubits");
    Rng rng(seed);
    Circuit circuit(num_qubits, "QSIM-rand-" + std::to_string(num_qubits));

    for (std::size_t s = 0; s < num_strings; ++s) {
        // Draw a Pauli string with at least two non-identity entries so
        // the term needs entangling gates.
        std::vector<Pauli> paulis;
        std::vector<QubitId> support;
        do {
            paulis.assign(num_qubits, Pauli::I);
            support.clear();
            for (QubitId q = 0; q < num_qubits; ++q) {
                if (!rng.nextBool(non_identity_probability))
                    continue;
                const auto which = rng.nextBelow(3);
                paulis[q] = which == 0   ? Pauli::X
                            : which == 1 ? Pauli::Y
                                         : Pauli::Z;
                support.push_back(q);
            }
        } while (support.size() < 2);

        for (const QubitId q : support)
            applyBasisChange(circuit, q, paulis[q], false);

        // Parity ladder down, Rz on the last support qubit, ladder back.
        for (std::size_t i = 0; i + 1 < support.size(); ++i)
            appendCx(circuit, support[i], support[i + 1]);
        circuit.append(OneQGate{OneQKind::Rz, support.back(),
                                rng.nextDouble() * 3.14159});
        for (std::size_t i = support.size() - 1; i-- > 0;)
            appendCx(circuit, support[i], support[i + 1]);

        for (const QubitId q : support)
            applyBasisChange(circuit, q, paulis[q], true);
    }
    return circuit;
}

} // namespace powermove
