/**
 * @file
 * Random Pauli-string quantum-simulation benchmark ("QSIM-rand-0.3").
 *
 * Each circuit exponentiates ten random Pauli strings; every qubit
 * carries a non-identity Pauli with probability 0.3 (paper Sec. 7.1).
 * A string exp(-i theta P) synthesizes to basis-change 1Q layers, a CNOT
 * parity ladder down its support, an Rz, and the mirrored ladder back.
 * In the CZ basis, the target-side Hadamards between consecutive ladder
 * steps make each ladder CZ its own block — the long sequential stage
 * chains that dominate Enola's excitation error on this benchmark
 * (paper Fig. 6b).
 */

#ifndef POWERMOVE_WORKLOADS_QSIM_HPP
#define POWERMOVE_WORKLOADS_QSIM_HPP

#include <cstdint>

#include "circuit/circuit.hpp"

namespace powermove {

/** Random Pauli-string simulation circuit ("QSIM-rand-<n>"). */
Circuit makeQsim(std::size_t num_qubits, double non_identity_probability,
                 std::size_t num_strings, std::uint64_t seed);

} // namespace powermove

#endif // POWERMOVE_WORKLOADS_QSIM_HPP
