/**
 * @file
 * Variational Quantum Eigensolver ansatz benchmark.
 *
 * Hardware-efficient TwoLocal ansatz: RY rotation layers interleaved
 * with entangling CZ layers. The default is *linear* entanglement
 * (nearest-neighbor chain) with one repetition, which matches the gate
 * counts implied by the paper's Table 3 (see DESIGN.md: the reported
 * VQE-30 fidelity of 0.71 bounds g2 around 30–70, ruling out all-pairs
 * entanglement); *full* (all-pairs) entanglement is available as an
 * option.
 */

#ifndef POWERMOVE_WORKLOADS_VQE_HPP
#define POWERMOVE_WORKLOADS_VQE_HPP

#include <cstdint>

#include "circuit/circuit.hpp"

namespace powermove {

/** Entangling-layer topology of the ansatz. */
enum class VqeEntanglement : std::uint8_t
{
    Linear,
    Full,
};

/** TwoLocal VQE ansatz ("VQE-<n>"). */
Circuit makeVqe(std::size_t num_qubits, std::size_t reps = 1,
                VqeEntanglement entanglement = VqeEntanglement::Linear,
                std::uint64_t seed = 1);

} // namespace powermove

#endif // POWERMOVE_WORKLOADS_VQE_HPP
