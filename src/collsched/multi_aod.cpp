#include "collsched/multi_aod.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace powermove {

std::size_t
AodBatch::numMoves() const
{
    std::size_t count = 0;
    for (const auto &group : groups)
        count += group.moves.size();
    return count;
}

Duration
AodBatch::duration(const Machine &machine) const
{
    if (numMoves() == 0)
        return Duration::micros(0.0);
    const auto &params = machine.params();
    Duration longest = Duration::micros(0.0);
    for (const auto &group : groups)
        longest = std::max(longest, params.moveDuration(group.maxDistance(machine)));
    return params.t_transfer * 2.0 + longest;
}

std::vector<AodBatch>
batchForAods(std::vector<CollMove> ordered_groups, std::size_t num_aods)
{
    if (num_aods == 0)
        fatal("at least one AOD array is required");
    std::vector<AodBatch> batches;
    AodBatch current;
    for (auto &group : ordered_groups) {
        if (current.groups.size() == num_aods) {
            batches.push_back(std::move(current));
            current = AodBatch{};
        }
        current.groups.push_back(std::move(group));
    }
    if (!current.groups.empty())
        batches.push_back(std::move(current));
    return batches;
}

std::vector<AodBatch>
batchForAods(const Machine &machine, std::vector<CollMove> ordered_groups,
             std::size_t num_aods, AodBatchPolicy policy)
{
    if (policy == AodBatchPolicy::DurationBalanced && num_aods > 1) {
        std::stable_sort(
            ordered_groups.begin(), ordered_groups.end(),
            [&machine](const CollMove &a, const CollMove &b) {
                return a.maxDistance(machine) > b.maxDistance(machine);
            });
    }
    return batchForAods(std::move(ordered_groups), num_aods);
}

} // namespace powermove
