/**
 * @file
 * Multi-AOD parallel batching (paper Sec. 6.2).
 *
 * With n independent AOD arrays, n consecutive Coll-Moves execute in
 * parallel even if their member moves conflict, because each array obeys
 * the order constraints separately. The ordered group sequence
 * {G'_1 ... G'_k} is chunked into ceil(k/n) batches of up to n groups;
 * batch r lasts 2*t_transfer + max of its member move times (parallel
 * pickups, simultaneous motion, parallel drops). The *number* of
 * transfers — and therefore the transfer-error term of Eq. (1) — is
 * unchanged; only wall time shrinks.
 */

#ifndef POWERMOVE_COLLSCHED_MULTI_AOD_HPP
#define POWERMOVE_COLLSCHED_MULTI_AOD_HPP

#include <vector>

#include "arch/machine.hpp"
#include "route/move.hpp"

namespace powermove {

/** Coll-Moves executing simultaneously on distinct AOD arrays. */
struct AodBatch
{
    std::vector<CollMove> groups;

    /** Total moved qubits across the batch. */
    std::size_t numMoves() const;

    /** Wall time: 2 * t_transfer (pickup + drop) + slowest member move. */
    Duration duration(const Machine &machine) const;
};

/** How the ordered Coll-Move sequence is split across AOD arrays. */
enum class AodBatchPolicy : std::uint8_t
{
    /**
     * The paper's scheme: consecutive chunks of n groups, preserving the
     * intra-stage (storage-dwell) order exactly.
     */
    InOrder,
    /**
     * Extension: stable-sort groups by descending move duration before
     * chunking. A batch lasts as long as its slowest member, so pairing
     * similar durations minimizes the summed batch time — at the cost of
     * perturbing the storage-dwell order within the transition.
     */
    DurationBalanced,
};

/**
 * Chunks the ordered Coll-Move sequence into parallel batches of at most
 * @p num_aods groups (paper Sec. 6.2). @p num_aods must be positive.
 * The machine reference is only used by the DurationBalanced policy.
 */
std::vector<AodBatch> batchForAods(std::vector<CollMove> ordered_groups,
                                   std::size_t num_aods);

/** Policy-selecting overload. */
std::vector<AodBatch> batchForAods(const Machine &machine,
                                   std::vector<CollMove> ordered_groups,
                                   std::size_t num_aods,
                                   AodBatchPolicy policy);

} // namespace powermove

#endif // POWERMOVE_COLLSCHED_MULTI_AOD_HPP
