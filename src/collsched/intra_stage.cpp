#include "collsched/intra_stage.hpp"

#include <algorithm>

namespace powermove {

std::int64_t
storageBalance(const Machine &machine, const CollMove &group)
{
    return static_cast<std::int64_t>(group.countMoveIns(machine)) -
           static_cast<std::int64_t>(group.countMoveOuts(machine));
}

std::vector<CollMove>
orderCollMoves(const Machine &machine, std::vector<CollMove> groups)
{
    std::stable_sort(groups.begin(), groups.end(),
                     [&machine](const CollMove &a, const CollMove &b) {
                         return storageBalance(machine, a) >
                                storageBalance(machine, b);
                     });
    return groups;
}

} // namespace powermove
