/**
 * @file
 * Intra-stage Coll-Move ordering (paper Sec. 6.1).
 *
 * Within one stage transition, Coll-Moves that carry qubits *into* the
 * storage zone should execute early and Coll-Moves that pull qubits
 * *out* should execute late, maximizing storage dwell time and hence
 * minimizing decoherence. Groups are sorted by descending
 * (move-ins - move-outs); the sort is stable so equal-score groups keep
 * the router's emission order.
 */

#ifndef POWERMOVE_COLLSCHED_INTRA_STAGE_HPP
#define POWERMOVE_COLLSCHED_INTRA_STAGE_HPP

#include <vector>

#include "arch/machine.hpp"
#include "route/move.hpp"

namespace powermove {

/** Storage-direction score of a group: move-ins minus move-outs. */
std::int64_t storageBalance(const Machine &machine, const CollMove &group);

/** Orders Coll-Moves by descending storage balance (stable). */
std::vector<CollMove> orderCollMoves(const Machine &machine,
                                     std::vector<CollMove> groups);

} // namespace powermove

#endif // POWERMOVE_COLLSCHED_INTRA_STAGE_HPP
