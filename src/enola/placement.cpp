#include "enola/placement.hpp"

#include <cmath>

#include "common/error.hpp"

namespace powermove {

namespace {

/** Collects every CZ gate of the circuit, across all blocks. */
std::vector<CzGate>
allGates(const Circuit &circuit)
{
    std::vector<CzGate> gates;
    gates.reserve(circuit.numCzGates());
    for (const auto *block : circuit.blocks())
        gates.insert(gates.end(), block->gates.begin(), block->gates.end());
    return gates;
}

} // namespace

double
placementCost(const Machine &machine, const Circuit &circuit,
              const std::vector<SiteId> &home)
{
    double cost = 0.0;
    for (const auto *block : circuit.blocks()) {
        for (const auto &gate : block->gates)
            cost += machine.distanceBetween(home[gate.a], home[gate.b]).microns();
    }
    return cost;
}

std::vector<SiteId>
annealPlacement(const Machine &machine, const Circuit &circuit, Rng &rng,
                const PlacementOptions &options)
{
    const std::size_t num_qubits = circuit.numQubits();
    if (num_qubits > machine.numComputeSites())
        fatal("compute zone too small for the Enola home placement");

    // Row-major start; site_holder maps compute site -> qubit (or none).
    std::vector<SiteId> home(num_qubits);
    std::vector<QubitId> site_holder(machine.numComputeSites(), kNoQubit);
    for (QubitId q = 0; q < num_qubits; ++q) {
        home[q] = static_cast<SiteId>(q);
        site_holder[q] = q;
    }

    // Per-qubit gate adjacency for O(degree) cost deltas.
    std::vector<std::vector<QubitId>> neighbors(num_qubits);
    for (const auto &gate : allGates(circuit)) {
        neighbors[gate.a].push_back(gate.b);
        neighbors[gate.b].push_back(gate.a);
    }

    const auto qubit_cost = [&](QubitId q, SiteId at) {
        double cost = 0.0;
        for (const QubitId other : neighbors[q])
            cost += machine.distanceBetween(at, home[other]).microns();
        return cost;
    };

    double temperature = options.initial_temperature;
    const auto num_sites =
        static_cast<std::uint64_t>(machine.numComputeSites());
    for (std::size_t iter = 0; iter < options.iterations; ++iter) {
        const auto q = static_cast<QubitId>(
            rng.nextBelow(static_cast<std::uint64_t>(num_qubits)));
        const auto dest = static_cast<SiteId>(rng.nextBelow(num_sites));
        const SiteId from = home[q];
        if (dest == from)
            continue;
        const QubitId displaced = site_holder[dest];

        double delta;
        if (displaced == kNoQubit) {
            delta = qubit_cost(q, dest) - qubit_cost(q, from);
        } else {
            const double before =
                qubit_cost(q, from) + qubit_cost(displaced, dest);
            // Evaluate after-state with both homes tentatively swapped.
            home[q] = dest;
            home[displaced] = from;
            const double after =
                qubit_cost(q, dest) + qubit_cost(displaced, from);
            home[q] = from;
            home[displaced] = dest;
            delta = after - before;
        }

        const bool accept =
            delta <= 0.0 ||
            rng.nextDouble() < std::exp(-delta / std::max(temperature, 1e-9));
        if (accept) {
            home[q] = dest;
            site_holder[from] = displaced;
            site_holder[dest] = q;
            if (displaced != kNoQubit)
                home[displaced] = from;
        }
        temperature *= options.cooling;
    }
    return home;
}

} // namespace powermove
