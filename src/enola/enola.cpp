#include "enola/enola.hpp"

#include <chrono>

#include "collsched/multi_aod.hpp"
#include "common/error.hpp"
#include "enola/mis.hpp"
#include "fidelity/evaluator.hpp"


namespace powermove {

EnolaCompiler::EnolaCompiler(const Machine &machine, EnolaOptions options)
    : machine_(machine), options_(options)
{
    if (options_.num_aods == 0)
        fatal("Enola requires at least one AOD array");
}

CompileResult
EnolaCompiler::compile(const Circuit &circuit) const
{
    const auto start = std::chrono::steady_clock::now();

    Rng rng(options_.seed);
    std::vector<SiteId> home;
    if (options_.use_storage) {
        // Fig. 3e: the home layout sits entirely in the storage zone.
        const auto storage = machine_.storageSites();
        if (circuit.numQubits() > storage.size())
            fatal("storage zone too small for the Enola home layout");
        home.assign(storage.begin(),
                    storage.begin() +
                        static_cast<std::ptrdiff_t>(circuit.numQubits()));
    } else if (options_.anneal_placement) {
        home = annealPlacement(machine_, circuit, rng, options_.placement);
    } else {
        // Row-major home layout (paper Fig. 3e).
        if (circuit.numQubits() > machine_.numComputeSites())
            fatal("compute zone too small for the Enola home layout");
        home.resize(circuit.numQubits());
        for (QubitId q = 0; q < circuit.numQubits(); ++q)
            home[q] = static_cast<SiteId>(q);
    }

    MachineSchedule schedule(machine_, home);

    std::size_t num_stages = 0;
    std::size_t num_coll_moves = 0;
    std::size_t block_index = 0;

    for (const auto &moment : circuit.moments()) {
        if (const auto *one_q = std::get_if<OneQLayer>(&moment)) {
            schedule.addOneQLayer(one_q->gates.size(),
                                  one_q->depth(circuit.numQubits()));
            continue;
        }
        const auto &block = std::get<CzBlock>(moment);
        // Enola's gate scheduling: stages via repeated MIS extraction.
        const auto stages = partitionStagesByMis(block, circuit.numQubits());

        const auto emit_leg = [&](const std::vector<QubitMove> &leg) {
            std::vector<CollMove> groups;
            if (options_.movement == EnolaMovement::Mis) {
                groups = groupMovesByMis(machine_, leg);
            } else {
                groups.reserve(leg.size());
                for (const auto &move : leg)
                    groups.push_back(CollMove{{move}});
            }
            num_coll_moves += groups.size();
            for (auto &batch :
                 batchForAods(std::move(groups), options_.num_aods)) {
                schedule.addMoveBatch(std::move(batch));
            }
        };

        for (const auto &stage : stages) {
            // Out leg. Without storage, the lower-id endpoint of each
            // gate travels from its home site to its partner's home
            // site. With storage (Fig. 3f), *both* endpoints shuttle
            // from their storage homes to a compute interaction site.
            std::vector<QubitMove> out_leg;
            out_leg.reserve(stage.gates.size() * 2);
            if (options_.use_storage) {
                SiteId interaction_site = 0;
                for (const auto &gate : stage.gates) {
                    const auto canonical = gate.canonical();
                    out_leg.push_back(
                        {canonical.a, home[canonical.a], interaction_site});
                    out_leg.push_back(
                        {canonical.b, home[canonical.b], interaction_site});
                    ++interaction_site;
                }
            } else {
                for (const auto &gate : stage.gates) {
                    const auto canonical = gate.canonical();
                    out_leg.push_back(
                        {canonical.a, home[canonical.a], home[canonical.b]});
                }
            }
            emit_leg(out_leg);

            schedule.addRydberg(stage.gates, block_index);
            ++num_stages;

            // Return leg: revert to the home layout (paper Fig. 3c).
            std::vector<QubitMove> back_leg;
            back_leg.reserve(out_leg.size());
            for (const auto &move : out_leg)
                back_leg.push_back({move.qubit, move.to, move.from});
            emit_leg(back_leg);
        }
        ++block_index;
    }

    const auto stop = std::chrono::steady_clock::now();
    const double elapsed_us =
        std::chrono::duration<double, std::micro>(stop - start).count();

    // No pass_profiles: the baseline is not the pass pipeline.
    CompileResult result{std::move(schedule), {}, Duration::micros(elapsed_us),
                         num_stages, num_coll_moves, {}};
    result.metrics = evaluateSchedule(result.schedule);
    return result;
}

} // namespace powermove
