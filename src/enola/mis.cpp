#include "enola/mis.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "route/conflict.hpp"

namespace powermove {

std::vector<std::vector<std::size_t>>
misPartition(std::size_t count,
             const std::function<bool(std::size_t, std::size_t)> &conflict)
{
    // Dense conflict adjacency matrix, rebuilt degrees every round: the
    // deliberately heavyweight solver loop the baseline is known for.
    std::vector<std::vector<bool>> conflicts(count,
                                             std::vector<bool>(count, false));
    for (std::size_t i = 0; i < count; ++i) {
        for (std::size_t j = i + 1; j < count; ++j) {
            if (conflict(i, j)) {
                conflicts[i][j] = true;
                conflicts[j][i] = true;
            }
        }
    }

    std::vector<bool> assigned(count, false);
    std::size_t remaining = count;
    std::vector<std::vector<std::size_t>> groups;

    while (remaining > 0) {
        std::vector<std::size_t> degree(count, 0);
        for (std::size_t i = 0; i < count; ++i) {
            if (assigned[i])
                continue;
            for (std::size_t j = 0; j < count; ++j) {
                if (!assigned[j] && conflicts[i][j])
                    ++degree[i];
            }
        }
        std::vector<std::size_t> order;
        order.reserve(remaining);
        for (std::size_t i = 0; i < count; ++i) {
            if (!assigned[i])
                order.push_back(i);
        }
        std::stable_sort(order.begin(), order.end(),
                         [&degree](std::size_t a, std::size_t b) {
                             return degree[a] < degree[b];
                         });

        std::vector<std::size_t> chosen;
        for (const std::size_t candidate : order) {
            const bool independent = std::none_of(
                chosen.begin(), chosen.end(), [&](std::size_t member) {
                    return conflicts[candidate][member];
                });
            if (independent)
                chosen.push_back(candidate);
        }
        PM_ASSERT(!chosen.empty(), "MIS extraction stalled");
        for (const std::size_t member : chosen) {
            assigned[member] = true;
            --remaining;
        }
        groups.push_back(std::move(chosen));
    }
    return groups;
}

std::vector<Stage>
partitionStagesByMis(const CzBlock &block, std::size_t num_qubits)
{
    if (block.gates.empty())
        return {};
    const auto share_qubit = [&](std::size_t i, std::size_t j) {
        const auto &a = block.gates[i];
        const auto &b = block.gates[j];
        return a.touches(b.a) || a.touches(b.b);
    };
    const auto groups = misPartition(block.gates.size(), share_qubit);

    std::vector<Stage> stages;
    stages.reserve(groups.size());
    for (const auto &group : groups) {
        Stage stage;
        stage.gates.reserve(group.size());
        for (const std::size_t g : group)
            stage.gates.push_back(block.gates[g]);
        PM_ASSERT(stage.qubitsDisjoint(), "MIS stage has overlapping qubits");
        stages.push_back(std::move(stage));
    }
    (void)num_qubits;
    return stages;
}

std::vector<CollMove>
groupMovesByMis(const Machine &machine, const std::vector<QubitMove> &moves)
{
    const auto conflict = [&](std::size_t i, std::size_t j) {
        return movesConflict(machine, moves[i], moves[j]);
    };
    const auto groups = misPartition(moves.size(), conflict);

    std::vector<CollMove> result;
    result.reserve(groups.size());
    for (const auto &group : groups) {
        CollMove coll;
        coll.moves.reserve(group.size());
        for (const std::size_t m : group)
            coll.moves.push_back(moves[m]);
        result.push_back(std::move(coll));
    }
    return result;
}

} // namespace powermove
