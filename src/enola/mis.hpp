/**
 * @file
 * Maximum-independent-set machinery of the Enola baseline.
 *
 * The original Enola leans on repeated maximum-independent-set solving
 * (paper Sec. 7.2 attributes its long compile times to exactly this):
 * each Rydberg stage is the largest set of pairwise qubit-disjoint gates
 * remaining, extracted from the gate conflict graph. We implement the
 * standard greedy minimum-degree MIS with residual-degree rebuilds,
 * preserving the superlinear compile-time scaling while staying exact
 * enough to match Enola's near-optimal stage counts.
 *
 * The same machinery can optionally batch qubit movements into
 * AOD-compatible Coll-Moves (EnolaMovement::Mis), an *upgraded* baseline
 * variant used in ablations; the paper's measured Enola executes one
 * movement at a time (see DESIGN.md).
 */

#ifndef POWERMOVE_ENOLA_MIS_HPP
#define POWERMOVE_ENOLA_MIS_HPP

#include <functional>
#include <vector>

#include "arch/machine.hpp"
#include "circuit/circuit.hpp"
#include "route/move.hpp"
#include "schedule/stage.hpp"

namespace powermove {

/**
 * Partitions indices [0, count) into groups by repeatedly extracting a
 * greedy maximal independent set of the conflict relation.
 */
std::vector<std::vector<std::size_t>> misPartition(
    std::size_t count,
    const std::function<bool(std::size_t, std::size_t)> &conflict);

/**
 * Enola's gate scheduling: stages extracted as successive maximum
 * independent sets of the gate interaction graph.
 */
std::vector<Stage> partitionStagesByMis(const CzBlock &block,
                                        std::size_t num_qubits);

/** Movement batching by iterated MIS on the move conflict graph. */
std::vector<CollMove> groupMovesByMis(const Machine &machine,
                                      const std::vector<QubitMove> &moves);

} // namespace powermove

#endif // POWERMOVE_ENOLA_MIS_HPP
