/**
 * @file
 * The Enola baseline compiler (Tan, Lin, Cong 2024), reimplemented.
 *
 * Enola is the strongest prior NAQC compiler and the paper's primary
 * baseline (Sec. 3, Sec. 7). Its pipeline:
 *
 *  1. a fixed *home* layout in the compute zone, found by simulated
 *     annealing;
 *  2. edge-coloring gate scheduling into stages (same near-optimal
 *     scheme PowerMove uses);
 *  3. per stage, one endpoint of every gate travels from its home to its
 *     partner's home site, the pulse fires, and the movers travel back —
 *     the "revert to initial layout" scheme whose clustering rationale
 *     Fig. 3 illustrates;
 *  4. movement batching via repeated maximum-independent-set extraction
 *     on the conflict graph.
 *
 * No storage zone is used, so every idle qubit is exposed to every
 * Rydberg excitation. Both the two movement legs per stage and the MIS
 * batching reproduce Enola's fidelity/time/compile-time scaling shape.
 */

#ifndef POWERMOVE_ENOLA_ENOLA_HPP
#define POWERMOVE_ENOLA_ENOLA_HPP

#include <cstdint>

#include "arch/machine.hpp"
#include "circuit/circuit.hpp"
#include "compiler/result.hpp"
#include "enola/placement.hpp"

namespace powermove {

/** How the baseline batches qubit movements. */
enum class EnolaMovement : std::uint8_t
{
    /**
     * One relocation per Coll-Move. This matches the movement costs the
     * paper measures for Enola (e.g. VQE-50's ~10 ms across 98
     * near-adjacent relocations is only consistent with unbatched
     * moves) and reflects that Coll-Move grouping is PowerMove's own
     * contribution (Sec. 5.3).
     */
    Sequential,
    /** Batch compatible moves via iterated MIS: an upgraded baseline. */
    Mis,
};

/** Enola pipeline knobs. */
struct EnolaOptions
{
    /** Movement batching flavor (see EnolaMovement). */
    EnolaMovement movement = EnolaMovement::Sequential;

    /**
     * The paper's Example 2 (Fig. 3e/f): what Enola's revert scheme
     * would look like *with* a storage zone. The home layout lives
     * entirely in storage and, for every stage, both endpoints of every
     * gate shuttle to a compute-zone interaction site and back. This
     * eliminates excitation errors but pays two inter-zone legs per
     * qubit per stage — the overhead the paper's Stage Scheduler and
     * Continuous Router exist to avoid. Off by default (the measured
     * Enola has no storage zone).
     */
    bool use_storage = false;
    /**
     * Anneal the home layout against the whole gate list. Off by
     * default: the paper depicts Enola's initial layout as the plain
     * row-major grid (Fig. 3e) and PowerMove *adopts* that same initial
     * layout (Sec. 4.2); a statically gate-aware home layout would also
     * grant the baseline a joint optimization the original tool does
     * not perform. Enable for ablation studies.
     */
    bool anneal_placement = false;
    /** Placement annealing schedule (used when anneal_placement). */
    PlacementOptions placement;
    /** Seed for placement annealing. */
    std::uint64_t seed = 0xE401A;
    /** Number of AOD arrays (the paper evaluates Enola with one). */
    std::size_t num_aods = 1;
};

/** The revert-style baseline compiler. */
class EnolaCompiler
{
  public:
    explicit EnolaCompiler(const Machine &machine, EnolaOptions options = {});

    /** Compiles @p circuit with the Enola scheme and evaluates it. */
    CompileResult compile(const Circuit &circuit) const;

    const EnolaOptions &options() const { return options_; }

  private:
    const Machine &machine_;
    EnolaOptions options_;
};

} // namespace powermove

#endif // POWERMOVE_ENOLA_ENOLA_HPP
