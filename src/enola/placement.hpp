/**
 * @file
 * Simulated-annealing home placement for the Enola baseline.
 *
 * Enola keeps a fixed "home" layout in the compute zone and returns to
 * it after every stage (paper Sec. 3.1). Its placement step searches for
 * homes minimizing the total movement the gate list induces; we model it
 * as simulated annealing over home swaps with the classic objective
 * sum over CZ gates of the physical distance between the endpoints'
 * homes.
 */

#ifndef POWERMOVE_ENOLA_PLACEMENT_HPP
#define POWERMOVE_ENOLA_PLACEMENT_HPP

#include <cstdint>
#include <vector>

#include "arch/machine.hpp"
#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace powermove {

/** Annealing schedule knobs. */
struct PlacementOptions
{
    /** Proposed swaps. */
    std::size_t iterations = 20000;
    /** Initial temperature, in micrometers of cost. */
    double initial_temperature = 60.0;
    /** Geometric cooling factor applied each iteration. */
    double cooling = 0.9995;
};

/** Total home-distance cost of a placement. */
double placementCost(const Machine &machine, const Circuit &circuit,
                     const std::vector<SiteId> &home);

/**
 * Anneals a compute-zone home placement for @p circuit. Starts from the
 * row-major layout and proposes swaps of two qubit homes or moves into
 * free compute sites.
 *
 * @return one home site per qubit (all distinct, all in the compute zone).
 */
std::vector<SiteId> annealPlacement(const Machine &machine,
                                    const Circuit &circuit, Rng &rng,
                                    const PlacementOptions &options = {});

} // namespace powermove

#endif // POWERMOVE_ENOLA_PLACEMENT_HPP
