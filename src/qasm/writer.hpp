/**
 * @file
 * OpenQASM 2.0 emission from the circuit IR.
 *
 * Emits the circuit in moment order using native gates only (1Q alphabet
 * plus cz), so writer output re-parses into an equivalent circuit — the
 * round-trip property the QASM tests rely on.
 */

#ifndef POWERMOVE_QASM_WRITER_HPP
#define POWERMOVE_QASM_WRITER_HPP

#include <string>

#include "circuit/circuit.hpp"

namespace powermove::qasm {

/** Serializes @p circuit as OpenQASM 2.0. */
std::string writeQasm(const Circuit &circuit);

} // namespace powermove::qasm

#endif // POWERMOVE_QASM_WRITER_HPP
