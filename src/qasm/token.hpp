/**
 * @file
 * Lexical tokens of the OpenQASM 2.0 frontend.
 */

#ifndef POWERMOVE_QASM_TOKEN_HPP
#define POWERMOVE_QASM_TOKEN_HPP

#include <cstdint>
#include <string>

namespace powermove::qasm {

/** Token kinds of the OpenQASM 2.0 grammar subset we accept. */
enum class TokenKind : std::uint8_t
{
    Identifier,
    Real,       // 3.14, 1e-3
    Integer,    // 42
    String,     // "qelib1.inc"
    // Keywords
    KwOpenQasm, // OPENQASM
    KwInclude,
    KwQreg,
    KwCreg,
    KwGate,
    KwMeasure,
    KwBarrier,
    KwReset,
    KwIf,
    KwPi,
    // Punctuation and operators
    Semicolon,
    Comma,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Arrow, // ->
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    EqualEqual,
    EndOfFile,
};

/** Human-readable token-kind name for diagnostics. */
std::string tokenKindName(TokenKind kind);

/** One lexed token with its source position (1-based). */
struct Token
{
    TokenKind kind = TokenKind::EndOfFile;
    std::string text;
    double number = 0.0; // value for Real/Integer
    std::size_t line = 0;
    std::size_t column = 0;
};

} // namespace powermove::qasm

#endif // POWERMOVE_QASM_TOKEN_HPP
