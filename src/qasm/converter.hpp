/**
 * @file
 * Lowering of OpenQASM 2.0 programs to the {1Q, CZ} circuit IR.
 *
 * Standard qelib1 gates are provided natively; user gate definitions are
 * expanded recursively with parameter substitution. Multi-qubit gates
 * are decomposed into CZ-basis sequences:
 *
 *   cx c,t   -> h t; cz c,t; h t
 *   cp/cu1   -> rz halves + two cx (full decomposition, unlike the
 *               benchmark generators' one-episode convention)
 *   rzz      -> cx; rz; cx
 *   swap     -> three cx
 *   ccx      -> the standard six-CX + T decomposition
 *
 * `barrier` closes the current commutable CZ block; `measure` targets
 * are recorded but produce no operations (the compiler handles unitary
 * circuits; measurement happens after execution).
 */

#ifndef POWERMOVE_QASM_CONVERTER_HPP
#define POWERMOVE_QASM_CONVERTER_HPP

#include <string>
#include <string_view>
#include <vector>

#include "circuit/circuit.hpp"
#include "qasm/ast.hpp"

namespace powermove::qasm {

/** Result of lowering a QASM program. */
struct ConvertResult
{
    Circuit circuit;
    /** Qubits named in measure statements, in program order. */
    std::vector<QubitId> measured;
};

/** Lowers a parsed program. Throws ParseError on semantic errors. */
ConvertResult convertProgram(const Program &program,
                             std::string circuit_name = "qasm");

/** Convenience: parse + lower a source buffer. */
ConvertResult loadQasm(std::string_view source,
                       std::string circuit_name = "qasm");

/** Convenience: parse + lower a file on disk. */
ConvertResult loadQasmFile(const std::string &path);

} // namespace powermove::qasm

#endif // POWERMOVE_QASM_CONVERTER_HPP
