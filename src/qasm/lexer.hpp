/**
 * @file
 * The OpenQASM 2.0 lexer.
 *
 * Handles line comments (// ...), both integer and real literals
 * (including exponent notation), string literals for include paths, and
 * the keyword set of the OpenQASM 2.0 grammar. Unknown characters raise
 * ParseError with a 1-based line/column position.
 */

#ifndef POWERMOVE_QASM_LEXER_HPP
#define POWERMOVE_QASM_LEXER_HPP

#include <string_view>
#include <vector>

#include "qasm/token.hpp"

namespace powermove::qasm {

/** Tokenizes an entire source buffer (appends an EndOfFile token). */
std::vector<Token> tokenize(std::string_view source);

} // namespace powermove::qasm

#endif // POWERMOVE_QASM_LEXER_HPP
