#include "qasm/lexer.hpp"

#include <cctype>
#include <charconv>
#include <unordered_map>

#include "common/error.hpp"

namespace powermove::qasm {

std::string
tokenKindName(TokenKind kind)
{
    switch (kind) {
      case TokenKind::Identifier:
        return "identifier";
      case TokenKind::Real:
        return "real literal";
      case TokenKind::Integer:
        return "integer literal";
      case TokenKind::String:
        return "string literal";
      case TokenKind::KwOpenQasm:
        return "'OPENQASM'";
      case TokenKind::KwInclude:
        return "'include'";
      case TokenKind::KwQreg:
        return "'qreg'";
      case TokenKind::KwCreg:
        return "'creg'";
      case TokenKind::KwGate:
        return "'gate'";
      case TokenKind::KwMeasure:
        return "'measure'";
      case TokenKind::KwBarrier:
        return "'barrier'";
      case TokenKind::KwReset:
        return "'reset'";
      case TokenKind::KwIf:
        return "'if'";
      case TokenKind::KwPi:
        return "'pi'";
      case TokenKind::Semicolon:
        return "';'";
      case TokenKind::Comma:
        return "','";
      case TokenKind::LParen:
        return "'('";
      case TokenKind::RParen:
        return "')'";
      case TokenKind::LBracket:
        return "'['";
      case TokenKind::RBracket:
        return "']'";
      case TokenKind::LBrace:
        return "'{'";
      case TokenKind::RBrace:
        return "'}'";
      case TokenKind::Arrow:
        return "'->'";
      case TokenKind::Plus:
        return "'+'";
      case TokenKind::Minus:
        return "'-'";
      case TokenKind::Star:
        return "'*'";
      case TokenKind::Slash:
        return "'/'";
      case TokenKind::Caret:
        return "'^'";
      case TokenKind::EqualEqual:
        return "'=='";
      case TokenKind::EndOfFile:
        return "end of input";
    }
    panic("unknown token kind");
}

namespace {

const std::unordered_map<std::string_view, TokenKind> kKeywords = {
    {"OPENQASM", TokenKind::KwOpenQasm},
    {"include", TokenKind::KwInclude},
    {"qreg", TokenKind::KwQreg},
    {"creg", TokenKind::KwCreg},
    {"gate", TokenKind::KwGate},
    {"measure", TokenKind::KwMeasure},
    {"barrier", TokenKind::KwBarrier},
    {"reset", TokenKind::KwReset},
    {"if", TokenKind::KwIf},
    {"pi", TokenKind::KwPi},
};

class Lexer
{
  public:
    explicit Lexer(std::string_view source) : source_(source) {}

    std::vector<Token>
    run()
    {
        std::vector<Token> tokens;
        for (;;) {
            skipWhitespaceAndComments();
            if (atEnd()) {
                tokens.push_back(make(TokenKind::EndOfFile, ""));
                return tokens;
            }
            tokens.push_back(next());
        }
    }

  private:
    bool atEnd() const { return pos_ >= source_.size(); }
    char peek() const { return source_[pos_]; }
    char
    peekAt(std::size_t offset) const
    {
        return pos_ + offset < source_.size() ? source_[pos_ + offset] : '\0';
    }

    void
    advance()
    {
        if (source_[pos_] == '\n') {
            ++line_;
            column_ = 1;
        } else {
            ++column_;
        }
        ++pos_;
    }

    Token
    make(TokenKind kind, std::string text) const
    {
        return Token{kind, std::move(text), 0.0, token_line_, token_column_};
    }

    void
    skipWhitespaceAndComments()
    {
        for (;;) {
            while (!atEnd() && std::isspace(static_cast<unsigned char>(peek())))
                advance();
            if (!atEnd() && peek() == '/' && peekAt(1) == '/') {
                while (!atEnd() && peek() != '\n')
                    advance();
                continue;
            }
            return;
        }
    }

    Token
    next()
    {
        token_line_ = line_;
        token_column_ = column_;
        const char c = peek();

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
            return identifier();
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(peekAt(1))))) {
            return number();
        }
        if (c == '"')
            return stringLiteral();

        advance();
        switch (c) {
          case ';':
            return make(TokenKind::Semicolon, ";");
          case ',':
            return make(TokenKind::Comma, ",");
          case '(':
            return make(TokenKind::LParen, "(");
          case ')':
            return make(TokenKind::RParen, ")");
          case '[':
            return make(TokenKind::LBracket, "[");
          case ']':
            return make(TokenKind::RBracket, "]");
          case '{':
            return make(TokenKind::LBrace, "{");
          case '}':
            return make(TokenKind::RBrace, "}");
          case '+':
            return make(TokenKind::Plus, "+");
          case '*':
            return make(TokenKind::Star, "*");
          case '/':
            return make(TokenKind::Slash, "/");
          case '^':
            return make(TokenKind::Caret, "^");
          case '-':
            if (!atEnd() && peek() == '>') {
                advance();
                return make(TokenKind::Arrow, "->");
            }
            return make(TokenKind::Minus, "-");
          case '=':
            if (!atEnd() && peek() == '=') {
                advance();
                return make(TokenKind::EqualEqual, "==");
            }
            throw ParseError("stray '='", token_line_, token_column_);
          default:
            throw ParseError(std::string("unexpected character '") + c + "'",
                             token_line_, token_column_);
        }
    }

    Token
    identifier()
    {
        std::string text;
        while (!atEnd() &&
               (std::isalnum(static_cast<unsigned char>(peek())) ||
                peek() == '_')) {
            text += peek();
            advance();
        }
        const auto it = kKeywords.find(text);
        if (it != kKeywords.end())
            return make(it->second, std::move(text));
        return make(TokenKind::Identifier, std::move(text));
    }

    Token
    number()
    {
        std::string text;
        bool is_real = false;
        while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek()))) {
            text += peek();
            advance();
        }
        if (!atEnd() && peek() == '.') {
            is_real = true;
            text += peek();
            advance();
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek()))) {
                text += peek();
                advance();
            }
        }
        if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
            is_real = true;
            text += peek();
            advance();
            if (!atEnd() && (peek() == '+' || peek() == '-')) {
                text += peek();
                advance();
            }
            if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
                throw ParseError("malformed exponent", token_line_,
                                 token_column_);
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(peek()))) {
                text += peek();
                advance();
            }
        }

        Token token =
            make(is_real ? TokenKind::Real : TokenKind::Integer, text);
        double value = 0.0;
        const auto [ptr, ec] =
            std::from_chars(text.data(), text.data() + text.size(), value);
        if (ec != std::errc{} || ptr != text.data() + text.size())
            throw ParseError("malformed number '" + text + "'", token_line_,
                             token_column_);
        token.number = value;
        return token;
    }

    Token
    stringLiteral()
    {
        advance(); // opening quote
        std::string text;
        while (!atEnd() && peek() != '"') {
            if (peek() == '\n')
                throw ParseError("unterminated string literal", token_line_,
                                 token_column_);
            text += peek();
            advance();
        }
        if (atEnd())
            throw ParseError("unterminated string literal", token_line_,
                             token_column_);
        advance(); // closing quote
        return make(TokenKind::String, std::move(text));
    }

    std::string_view source_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
    std::size_t column_ = 1;
    std::size_t token_line_ = 1;
    std::size_t token_column_ = 1;
};

} // namespace

std::vector<Token>
tokenize(std::string_view source)
{
    return Lexer(source).run();
}

} // namespace powermove::qasm
