#include "qasm/writer.hpp"

#include <limits>
#include <sstream>

namespace powermove::qasm {

std::string
writeQasm(const Circuit &circuit)
{
    std::ostringstream os;
    // Full round-trip precision for rotation angles.
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";
    os << "// " << circuit.name() << "\n";
    os << "qreg q[" << circuit.numQubits() << "];\n";

    bool previous_was_block = false;
    for (const auto &moment : circuit.moments()) {
        if (const auto *layer = std::get_if<OneQLayer>(&moment)) {
            previous_was_block = false;
            for (const auto &gate : layer->gates) {
                if (gate.kind == OneQKind::U) {
                    // Generic pulse: emit as u3 with the stored theta.
                    os << "u3(" << gate.angle << ",0,0) q[" << gate.qubit
                       << "];\n";
                    continue;
                }
                os << oneQKindName(gate.kind);
                if (oneQKindHasAngle(gate.kind))
                    os << "(" << gate.angle << ")";
                os << " q[" << gate.qubit << "];\n";
            }
        } else {
            // Adjacent blocks (created via barrier()) need an explicit
            // barrier to survive a round trip.
            if (previous_was_block)
                os << "barrier q;\n";
            previous_was_block = true;
            for (const auto &gate : std::get<CzBlock>(moment).gates)
                os << "cz q[" << gate.a << "],q[" << gate.b << "];\n";
        }
    }
    return os.str();
}

} // namespace powermove::qasm
