/**
 * @file
 * Abstract syntax tree of the OpenQASM 2.0 frontend.
 */

#ifndef POWERMOVE_QASM_AST_HPP
#define POWERMOVE_QASM_AST_HPP

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace powermove::qasm {

/** Parameter-expression node kinds. */
enum class ExprKind : std::uint8_t
{
    Number,
    Pi,
    Parameter, // formal parameter of a gate body
    Unary,     // negation
    Binary,    // + - * / ^
    Call,      // sin cos tan exp ln sqrt
};

/** A parameter expression (angles etc.). */
struct Expr
{
    ExprKind kind = ExprKind::Number;
    double number = 0.0;          // Number
    std::string name;             // Parameter / Call
    char op = '+';                // Binary
    std::vector<Expr> children;   // Unary(1) / Binary(2) / Call(1)
};

/** A quantum argument: register name plus optional element index. */
struct QuantumArg
{
    std::string reg;
    std::optional<std::size_t> index; // nullopt = whole-register broadcast
    std::size_t line = 0;
    std::size_t column = 0;
};

/** qreg / creg declaration. */
struct RegDecl
{
    std::string name;
    std::size_t size = 0;
    bool quantum = true;
};

/** An invocation of a builtin or user-defined gate. */
struct GateCall
{
    std::string name;
    std::vector<Expr> params;
    std::vector<QuantumArg> args;
    std::size_t line = 0;
    std::size_t column = 0;
};

/** A user gate definition (body restricted to gate calls and barriers). */
struct GateDecl
{
    std::string name;
    std::vector<std::string> params;
    std::vector<std::string> qubits;
    std::vector<GateCall> body; // "barrier" encoded as a call named barrier
};

/** measure src -> dst. */
struct MeasureStmt
{
    QuantumArg source;
    std::string target_reg;
};

/** barrier over arguments (arguments are informational only). */
struct BarrierStmt
{
    std::vector<QuantumArg> args;
};

/** Any top-level statement. */
using Statement =
    std::variant<RegDecl, GateDecl, GateCall, MeasureStmt, BarrierStmt>;

/** A parsed OpenQASM 2.0 program. */
struct Program
{
    std::string version = "2.0";
    std::vector<std::string> includes;
    std::vector<Statement> statements;
};

} // namespace powermove::qasm

#endif // POWERMOVE_QASM_AST_HPP
