#include "qasm/parser.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "qasm/lexer.hpp"

namespace powermove::qasm {

namespace {

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    Program
    run()
    {
        Program program;
        parseHeader(program);
        while (!check(TokenKind::EndOfFile))
            program.statements.push_back(parseStatement(program));
        return program;
    }

  private:
    const Token &peek() const { return tokens_[pos_]; }

    const Token &
    advance()
    {
        const Token &token = tokens_[pos_];
        if (!check(TokenKind::EndOfFile))
            ++pos_;
        return token;
    }

    bool check(TokenKind kind) const { return peek().kind == kind; }

    bool
    match(TokenKind kind)
    {
        if (!check(kind))
            return false;
        advance();
        return true;
    }

    const Token &
    expect(TokenKind kind, const std::string &context)
    {
        if (!check(kind)) {
            throw ParseError("expected " + tokenKindName(kind) + " " +
                                 context + ", found " +
                                 tokenKindName(peek().kind),
                             peek().line, peek().column);
        }
        return advance();
    }

    [[noreturn]] void
    errorHere(const std::string &message) const
    {
        throw ParseError(message, peek().line, peek().column);
    }

    void
    parseHeader(Program &program)
    {
        // The OPENQASM header is conventionally required; accept programs
        // without it for robustness but record the version when present.
        if (match(TokenKind::KwOpenQasm)) {
            const Token &version = expect(TokenKind::Real, "after OPENQASM");
            program.version = version.text;
            expect(TokenKind::Semicolon, "after the OPENQASM header");
        }
        while (match(TokenKind::KwInclude)) {
            const Token &path = expect(TokenKind::String, "after include");
            expect(TokenKind::Semicolon, "after include");
            program.includes.push_back(path.text);
        }
    }

    Statement
    parseStatement(Program &program)
    {
        if (match(TokenKind::KwInclude)) {
            const Token &path = expect(TokenKind::String, "after include");
            expect(TokenKind::Semicolon, "after include");
            program.includes.push_back(path.text);
            return BarrierStmt{}; // no-op placeholder
        }
        if (check(TokenKind::KwQreg) || check(TokenKind::KwCreg))
            return parseRegDecl();
        if (check(TokenKind::KwGate))
            return parseGateDecl();
        if (check(TokenKind::KwMeasure))
            return parseMeasure();
        if (check(TokenKind::KwBarrier))
            return parseBarrier();
        if (check(TokenKind::KwReset))
            errorHere("'reset' is not supported: PowerMove compiles unitary "
                      "circuits");
        if (check(TokenKind::KwIf))
            errorHere("classically controlled gates ('if') are not supported");
        if (check(TokenKind::Identifier))
            return parseGateCall();
        errorHere("expected a statement, found " + tokenKindName(peek().kind));
    }

    Statement
    parseRegDecl()
    {
        RegDecl decl;
        decl.quantum = advance().kind == TokenKind::KwQreg;
        decl.name = expect(TokenKind::Identifier, "as register name").text;
        expect(TokenKind::LBracket, "in register declaration");
        const Token &size = expect(TokenKind::Integer, "as register size");
        expect(TokenKind::RBracket, "in register declaration");
        expect(TokenKind::Semicolon, "after register declaration");
        decl.size = static_cast<std::size_t>(size.number);
        if (decl.size == 0)
            throw ParseError("register size must be positive", size.line,
                             size.column);
        return decl;
    }

    Statement
    parseGateDecl()
    {
        advance(); // gate
        GateDecl decl;
        decl.name = expect(TokenKind::Identifier, "as gate name").text;
        if (match(TokenKind::LParen)) {
            if (!check(TokenKind::RParen)) {
                do {
                    decl.params.push_back(
                        expect(TokenKind::Identifier, "as gate parameter")
                            .text);
                } while (match(TokenKind::Comma));
            }
            expect(TokenKind::RParen, "after gate parameters");
        }
        do {
            decl.qubits.push_back(
                expect(TokenKind::Identifier, "as gate qubit").text);
        } while (match(TokenKind::Comma));
        expect(TokenKind::LBrace, "to open the gate body");
        while (!match(TokenKind::RBrace)) {
            if (match(TokenKind::KwBarrier)) {
                GateCall barrier;
                barrier.name = "barrier";
                while (!check(TokenKind::Semicolon))
                    advance();
                expect(TokenKind::Semicolon, "after barrier");
                decl.body.push_back(std::move(barrier));
                continue;
            }
            decl.body.push_back(parseGateCallBody());
        }
        return decl;
    }

    /** A gate call inside a gate body (identifier args, no indices). */
    GateCall
    parseGateCallBody()
    {
        GateCall call;
        const Token &name = expect(TokenKind::Identifier, "as gate name");
        call.name = name.text;
        call.line = name.line;
        call.column = name.column;
        if (match(TokenKind::LParen)) {
            if (!check(TokenKind::RParen)) {
                do {
                    call.params.push_back(parseExpr());
                } while (match(TokenKind::Comma));
            }
            expect(TokenKind::RParen, "after gate arguments");
        }
        do {
            const Token &arg =
                expect(TokenKind::Identifier, "as gate body argument");
            call.args.push_back(
                QuantumArg{arg.text, std::nullopt, arg.line, arg.column});
        } while (match(TokenKind::Comma));
        expect(TokenKind::Semicolon, "after gate call");
        return call;
    }

    Statement
    parseGateCall()
    {
        GateCall call;
        const Token &name = advance();
        call.name = name.text;
        call.line = name.line;
        call.column = name.column;
        if (match(TokenKind::LParen)) {
            if (!check(TokenKind::RParen)) {
                do {
                    call.params.push_back(parseExpr());
                } while (match(TokenKind::Comma));
            }
            expect(TokenKind::RParen, "after gate parameters");
        }
        do {
            call.args.push_back(parseQuantumArg());
        } while (match(TokenKind::Comma));
        expect(TokenKind::Semicolon, "after gate call");
        return call;
    }

    QuantumArg
    parseQuantumArg()
    {
        const Token &reg = expect(TokenKind::Identifier, "as register name");
        QuantumArg arg{reg.text, std::nullopt, reg.line, reg.column};
        if (match(TokenKind::LBracket)) {
            const Token &index = expect(TokenKind::Integer, "as qubit index");
            expect(TokenKind::RBracket, "after qubit index");
            arg.index = static_cast<std::size_t>(index.number);
        }
        return arg;
    }

    Statement
    parseMeasure()
    {
        advance(); // measure
        MeasureStmt stmt;
        stmt.source = parseQuantumArg();
        expect(TokenKind::Arrow, "in measure statement");
        const Token &target = expect(TokenKind::Identifier, "as creg name");
        stmt.target_reg = target.text;
        if (match(TokenKind::LBracket)) {
            expect(TokenKind::Integer, "as creg index");
            expect(TokenKind::RBracket, "after creg index");
        }
        expect(TokenKind::Semicolon, "after measure");
        return stmt;
    }

    Statement
    parseBarrier()
    {
        advance(); // barrier
        BarrierStmt stmt;
        do {
            stmt.args.push_back(parseQuantumArg());
        } while (match(TokenKind::Comma));
        expect(TokenKind::Semicolon, "after barrier");
        return stmt;
    }

    // ---- expression grammar: additive > multiplicative > power > unary ----

    Expr
    parseExpr()
    {
        Expr left = parseTerm();
        while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
            const char op = advance().kind == TokenKind::Plus ? '+' : '-';
            Expr node;
            node.kind = ExprKind::Binary;
            node.op = op;
            node.children = {std::move(left), parseTerm()};
            left = std::move(node);
        }
        return left;
    }

    Expr
    parseTerm()
    {
        Expr left = parsePower();
        while (check(TokenKind::Star) || check(TokenKind::Slash)) {
            const char op = advance().kind == TokenKind::Star ? '*' : '/';
            Expr node;
            node.kind = ExprKind::Binary;
            node.op = op;
            node.children = {std::move(left), parsePower()};
            left = std::move(node);
        }
        return left;
    }

    Expr
    parsePower()
    {
        Expr base = parseUnary();
        if (check(TokenKind::Caret)) {
            advance();
            Expr node;
            node.kind = ExprKind::Binary;
            node.op = '^';
            // Right associative.
            node.children = {std::move(base), parsePower()};
            return node;
        }
        return base;
    }

    Expr
    parseUnary()
    {
        if (match(TokenKind::Minus)) {
            Expr node;
            node.kind = ExprKind::Unary;
            node.children = {parseUnary()};
            return node;
        }
        return parsePrimary();
    }

    Expr
    parsePrimary()
    {
        Expr node;
        if (check(TokenKind::Real) || check(TokenKind::Integer)) {
            node.kind = ExprKind::Number;
            node.number = advance().number;
            return node;
        }
        if (match(TokenKind::KwPi)) {
            node.kind = ExprKind::Pi;
            return node;
        }
        if (check(TokenKind::Identifier)) {
            const Token &name = advance();
            if (match(TokenKind::LParen)) {
                node.kind = ExprKind::Call;
                node.name = name.text;
                node.children = {parseExpr()};
                expect(TokenKind::RParen, "after function argument");
                return node;
            }
            node.kind = ExprKind::Parameter;
            node.name = name.text;
            return node;
        }
        if (match(TokenKind::LParen)) {
            Expr inner = parseExpr();
            expect(TokenKind::RParen, "to close the expression");
            return inner;
        }
        errorHere("expected an expression, found " +
                  tokenKindName(peek().kind));
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
};

} // namespace

Program
parseProgram(std::string_view source)
{
    return Parser(tokenize(source)).run();
}

double
evaluateExpr(const Expr &expr,
             const std::vector<std::pair<std::string, double>> &bindings)
{
    switch (expr.kind) {
      case ExprKind::Number:
        return expr.number;
      case ExprKind::Pi:
        return std::numbers::pi;
      case ExprKind::Parameter:
        for (const auto &[name, value] : bindings) {
            if (name == expr.name)
                return value;
        }
        throw ParseError("unbound parameter '" + expr.name + "'", 0, 0);
      case ExprKind::Unary:
        return -evaluateExpr(expr.children[0], bindings);
      case ExprKind::Binary: {
        const double lhs = evaluateExpr(expr.children[0], bindings);
        const double rhs = evaluateExpr(expr.children[1], bindings);
        switch (expr.op) {
          case '+':
            return lhs + rhs;
          case '-':
            return lhs - rhs;
          case '*':
            return lhs * rhs;
          case '/':
            return lhs / rhs;
          case '^':
            return std::pow(lhs, rhs);
          default:
            panic("unknown binary operator");
        }
      }
      case ExprKind::Call: {
        const double arg = evaluateExpr(expr.children[0], bindings);
        if (expr.name == "sin")
            return std::sin(arg);
        if (expr.name == "cos")
            return std::cos(arg);
        if (expr.name == "tan")
            return std::tan(arg);
        if (expr.name == "exp")
            return std::exp(arg);
        if (expr.name == "ln")
            return std::log(arg);
        if (expr.name == "sqrt")
            return std::sqrt(arg);
        throw ParseError("unknown function '" + expr.name + "'", 0, 0);
      }
    }
    panic("unknown expression kind");
}

} // namespace powermove::qasm
