/**
 * @file
 * Recursive-descent parser for the OpenQASM 2.0 subset.
 *
 * Grammar support: the OPENQASM header, include directives (recorded,
 * with qelib1.inc's standard gates provided natively), qreg/creg
 * declarations, gate definitions with parameter lists, gate calls with
 * parameter expressions (+ - * / ^, unary minus, pi, and the functions
 * sin/cos/tan/exp/ln/sqrt), register broadcast arguments, measure and
 * barrier. `reset` and `if` are rejected with a clear diagnostic: they
 * have no meaning for a unitary-circuit compiler.
 */

#ifndef POWERMOVE_QASM_PARSER_HPP
#define POWERMOVE_QASM_PARSER_HPP

#include <string_view>

#include "qasm/ast.hpp"

namespace powermove::qasm {

/** Parses a full OpenQASM 2.0 source buffer; throws ParseError. */
Program parseProgram(std::string_view source);

/** Evaluates a parameter expression against formal-parameter bindings. */
double evaluateExpr(const Expr &expr,
                    const std::vector<std::pair<std::string, double>> &bindings);

} // namespace powermove::qasm

#endif // POWERMOVE_QASM_PARSER_HPP
