#include "qasm/converter.hpp"

#include <fstream>
#include <iterator>
#include <numbers>
#include <sstream>
#include <unordered_map>

#include "common/error.hpp"
#include "qasm/parser.hpp"

namespace powermove::qasm {

namespace {

constexpr std::size_t kMaxExpansionDepth = 64;

/** Quantum register table: name -> (offset, size). */
struct RegisterTable
{
    std::unordered_map<std::string, std::pair<QubitId, std::size_t>> regs;
    std::size_t total = 0;

    void
    declare(const RegDecl &decl)
    {
        if (regs.contains(decl.name))
            throw ParseError("register '" + decl.name + "' redeclared", 0, 0);
        regs.emplace(decl.name,
                     std::make_pair(static_cast<QubitId>(total), decl.size));
        total += decl.size;
    }

    QubitId
    resolve(const QuantumArg &arg) const
    {
        const auto it = regs.find(arg.reg);
        if (it == regs.end())
            throw ParseError("unknown quantum register '" + arg.reg + "'",
                             arg.line, arg.column);
        const auto [offset, size] = it->second;
        if (!arg.index)
            throw ParseError("expected an indexed qubit", arg.line,
                             arg.column);
        if (*arg.index >= size)
            throw ParseError("index " + std::to_string(*arg.index) +
                                 " out of range for '" + arg.reg + "'",
                             arg.line, arg.column);
        return offset + static_cast<QubitId>(*arg.index);
    }

    std::size_t
    sizeOf(const QuantumArg &arg) const
    {
        const auto it = regs.find(arg.reg);
        if (it == regs.end())
            throw ParseError("unknown quantum register '" + arg.reg + "'",
                             arg.line, arg.column);
        return it->second.second;
    }
};

class Lowering
{
  public:
    explicit Lowering(const Program &program, std::string name)
        : program_(program)
    {
        // Pass 1: registers and gate definitions.
        for (const auto &statement : program.statements) {
            if (const auto *reg = std::get_if<RegDecl>(&statement)) {
                if (reg->quantum)
                    qregs_.declare(*reg);
            } else if (const auto *gate = std::get_if<GateDecl>(&statement)) {
                if (gate_decls_.contains(gate->name))
                    throw ParseError("gate '" + gate->name + "' redefined", 0,
                                     0);
                gate_decls_.emplace(gate->name, gate);
            }
        }
        if (qregs_.total == 0)
            throw ParseError("program declares no quantum register", 0, 0);
        result_.circuit = Circuit(qregs_.total, std::move(name));
    }

    ConvertResult
    run()
    {
        for (const auto &statement : program_.statements) {
            if (const auto *call = std::get_if<GateCall>(&statement))
                applyTopLevelCall(*call);
            else if (const auto *measure =
                         std::get_if<MeasureStmt>(&statement))
                applyMeasure(*measure);
            else if (std::get_if<BarrierStmt>(&statement) != nullptr)
                result_.circuit.barrier();
        }
        return std::move(result_);
    }

  private:
    void
    applyMeasure(const MeasureStmt &measure)
    {
        if (measure.source.index) {
            result_.measured.push_back(qregs_.resolve(measure.source));
            return;
        }
        const std::size_t size = qregs_.sizeOf(measure.source);
        for (std::size_t i = 0; i < size; ++i) {
            QuantumArg arg = measure.source;
            arg.index = i;
            result_.measured.push_back(qregs_.resolve(arg));
        }
    }

    /** Broadcasts register arguments, then emits the gate. */
    void
    applyTopLevelCall(const GateCall &call)
    {
        std::vector<double> params;
        params.reserve(call.params.size());
        for (const auto &expr : call.params)
            params.push_back(evaluateExpr(expr, {}));

        // Determine broadcast width: all whole-register args must agree.
        std::size_t width = 1;
        bool broadcast = false;
        for (const auto &arg : call.args) {
            if (arg.index)
                continue;
            const std::size_t size = qregs_.sizeOf(arg);
            if (broadcast && size != width)
                throw ParseError(
                    "broadcast registers must have equal sizes", call.line,
                    call.column);
            broadcast = true;
            width = size;
        }

        for (std::size_t i = 0; i < width; ++i) {
            std::vector<QubitId> qubits;
            qubits.reserve(call.args.size());
            for (const auto &arg : call.args) {
                QuantumArg concrete = arg;
                if (!concrete.index)
                    concrete.index = i;
                qubits.push_back(qregs_.resolve(concrete));
            }
            emitGate(call.name, params, qubits, call.line, call.column, 0);
        }
    }

    void
    emitGate(const std::string &name, const std::vector<double> &params,
             const std::vector<QubitId> &qubits, std::size_t line,
             std::size_t column, std::size_t depth)
    {
        if (depth > kMaxExpansionDepth)
            throw ParseError("gate expansion too deep (recursive definition?)",
                             line, column);

        // User definitions may shadow builtins (qelib1-style files define
        // the standard gates textually).
        const auto decl_it = gate_decls_.find(name);
        if (decl_it != gate_decls_.end()) {
            expandUserGate(*decl_it->second, params, qubits, line, column,
                           depth);
            return;
        }
        if (emitBuiltin(name, params, qubits, line, column, depth))
            return;
        throw ParseError("unknown gate '" + name + "'", line, column);
    }

    void
    expandUserGate(const GateDecl &decl, const std::vector<double> &params,
                   const std::vector<QubitId> &qubits, std::size_t line,
                   std::size_t column, std::size_t depth)
    {
        if (params.size() != decl.params.size())
            throw ParseError("gate '" + decl.name + "' expects " +
                                 std::to_string(decl.params.size()) +
                                 " parameters",
                             line, column);
        if (qubits.size() != decl.qubits.size())
            throw ParseError("gate '" + decl.name + "' expects " +
                                 std::to_string(decl.qubits.size()) +
                                 " qubits",
                             line, column);

        std::vector<std::pair<std::string, double>> bindings;
        bindings.reserve(params.size());
        for (std::size_t i = 0; i < params.size(); ++i)
            bindings.emplace_back(decl.params[i], params[i]);

        std::unordered_map<std::string, QubitId> qubit_map;
        for (std::size_t i = 0; i < qubits.size(); ++i)
            qubit_map.emplace(decl.qubits[i], qubits[i]);

        for (const auto &body_call : decl.body) {
            if (body_call.name == "barrier") {
                result_.circuit.barrier();
                continue;
            }
            std::vector<double> body_params;
            body_params.reserve(body_call.params.size());
            for (const auto &expr : body_call.params)
                body_params.push_back(evaluateExpr(expr, bindings));

            std::vector<QubitId> body_qubits;
            body_qubits.reserve(body_call.args.size());
            for (const auto &arg : body_call.args) {
                const auto it = qubit_map.find(arg.reg);
                if (it == qubit_map.end())
                    throw ParseError("unknown gate-body qubit '" + arg.reg +
                                         "'",
                                     arg.line, arg.column);
                body_qubits.push_back(it->second);
            }
            emitGate(body_call.name, body_params, body_qubits, body_call.line,
                     body_call.column, depth + 1);
        }
    }

    // ---- builtin emission helpers ----

    void one(OneQKind kind, QubitId q, double angle = 0.0)
    {
        result_.circuit.append(OneQGate{kind, q, angle});
    }

    void cz(QubitId a, QubitId b) { result_.circuit.append(CzGate{a, b}); }

    void
    cx(QubitId control, QubitId target)
    {
        one(OneQKind::H, target);
        cz(control, target);
        one(OneQKind::H, target);
    }

    void
    checkArity(const std::string &name, const std::vector<double> &params,
               std::size_t want_params, const std::vector<QubitId> &qubits,
               std::size_t want_qubits, std::size_t line, std::size_t column)
    {
        if (params.size() != want_params || qubits.size() != want_qubits) {
            std::ostringstream os;
            os << "gate '" << name << "' expects " << want_params
               << " parameter(s) and " << want_qubits << " qubit(s)";
            throw ParseError(os.str(), line, column);
        }
    }

    bool
    emitBuiltin(const std::string &name, const std::vector<double> &params,
                const std::vector<QubitId> &qubits, std::size_t line,
                std::size_t column, std::size_t depth)
    {
        static const std::unordered_map<std::string, OneQKind> kSimple1Q = {
            {"h", OneQKind::H},     {"x", OneQKind::X},
            {"y", OneQKind::Y},     {"z", OneQKind::Z},
            {"s", OneQKind::S},     {"sdg", OneQKind::Sdg},
            {"t", OneQKind::T},     {"tdg", OneQKind::Tdg},
        };
        static const std::unordered_map<std::string, OneQKind> kRotation1Q = {
            {"rx", OneQKind::Rx},
            {"ry", OneQKind::Ry},
            {"rz", OneQKind::Rz},
        };

        if (const auto it = kSimple1Q.find(name); it != kSimple1Q.end()) {
            checkArity(name, params, 0, qubits, 1, line, column);
            one(it->second, qubits[0]);
            return true;
        }
        if (const auto it = kRotation1Q.find(name); it != kRotation1Q.end()) {
            checkArity(name, params, 1, qubits, 1, line, column);
            one(it->second, qubits[0], params[0]);
            return true;
        }
        if (name == "id") {
            checkArity(name, params, 0, qubits, 1, line, column);
            return true; // identity: no operation
        }
        if (name == "u1" || name == "p") {
            checkArity(name, params, 1, qubits, 1, line, column);
            one(OneQKind::Rz, qubits[0], params[0]);
            return true;
        }
        if (name == "u2") {
            checkArity(name, params, 2, qubits, 1, line, column);
            // u2(phi, lambda) is one hardware pulse: a generic U with
            // theta = pi/2 (angles beyond theta do not affect costing).
            one(OneQKind::U, qubits[0], std::numbers::pi / 2.0);
            return true;
        }
        if (name == "u3" || name == "u") {
            checkArity(name, params, 3, qubits, 1, line, column);
            one(OneQKind::U, qubits[0], params[0]);
            return true;
        }
        if (name == "cz") {
            checkArity(name, params, 0, qubits, 2, line, column);
            cz(qubits[0], qubits[1]);
            return true;
        }
        if (name == "cx" || name == "CX") {
            checkArity(name, params, 0, qubits, 2, line, column);
            cx(qubits[0], qubits[1]);
            return true;
        }
        if (name == "cp" || name == "cu1") {
            checkArity(name, params, 1, qubits, 2, line, column);
            const double lambda = params[0];
            one(OneQKind::Rz, qubits[0], lambda / 2.0);
            cx(qubits[0], qubits[1]);
            one(OneQKind::Rz, qubits[1], -lambda / 2.0);
            cx(qubits[0], qubits[1]);
            one(OneQKind::Rz, qubits[1], lambda / 2.0);
            return true;
        }
        if (name == "rzz") {
            checkArity(name, params, 1, qubits, 2, line, column);
            cx(qubits[0], qubits[1]);
            one(OneQKind::Rz, qubits[1], params[0]);
            cx(qubits[0], qubits[1]);
            return true;
        }
        if (name == "swap") {
            checkArity(name, params, 0, qubits, 2, line, column);
            cx(qubits[0], qubits[1]);
            cx(qubits[1], qubits[0]);
            cx(qubits[0], qubits[1]);
            return true;
        }
        if (name == "ccx") {
            checkArity(name, params, 0, qubits, 3, line, column);
            const QubitId a = qubits[0];
            const QubitId b = qubits[1];
            const QubitId c = qubits[2];
            // Standard six-CX Toffoli decomposition.
            one(OneQKind::H, c);
            cx(b, c);
            one(OneQKind::Tdg, c);
            cx(a, c);
            one(OneQKind::T, c);
            cx(b, c);
            one(OneQKind::Tdg, c);
            cx(a, c);
            one(OneQKind::T, b);
            one(OneQKind::T, c);
            one(OneQKind::H, c);
            cx(a, b);
            one(OneQKind::T, a);
            one(OneQKind::Tdg, b);
            cx(a, b);
            return true;
        }
        (void)depth;
        return false;
    }

    const Program &program_;
    RegisterTable qregs_;
    std::unordered_map<std::string, const GateDecl *> gate_decls_;
    ConvertResult result_;
};

} // namespace

ConvertResult
convertProgram(const Program &program, std::string circuit_name)
{
    return Lowering(program, std::move(circuit_name)).run();
}

ConvertResult
loadQasm(std::string_view source, std::string circuit_name)
{
    const Program program = parseProgram(source);
    return convertProgram(program, std::move(circuit_name));
}

namespace {

std::string
readFileOrFatal(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open QASM file: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string
directoryOf(const std::string &path)
{
    const auto slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string{}
                                      : path.substr(0, slash + 1);
}

/** True for includes whose gates the converter provides natively. */
bool
isStandardInclude(const std::string &name)
{
    return name == "qelib1.inc" || name == "stdgates.inc";
}

/**
 * Parses @p path and recursively splices non-standard includes (resolved
 * relative to the including file) ahead of the including program's own
 * statements, so included gate definitions are visible downstream.
 */
Program
parseFileWithIncludes(const std::string &path, std::size_t depth)
{
    if (depth > 16)
        fatal("QASM include nesting too deep (cycle?): " + path);
    Program program = parseProgram(readFileOrFatal(path));

    std::vector<Statement> spliced;
    for (const auto &include : program.includes) {
        if (isStandardInclude(include))
            continue;
        Program inner =
            parseFileWithIncludes(directoryOf(path) + include, depth + 1);
        for (auto &statement : inner.statements)
            spliced.push_back(std::move(statement));
    }
    if (!spliced.empty()) {
        spliced.insert(spliced.end(),
                       std::make_move_iterator(program.statements.begin()),
                       std::make_move_iterator(program.statements.end()));
        program.statements = std::move(spliced);
    }
    return program;
}

} // namespace

ConvertResult
loadQasmFile(const std::string &path)
{
    const Program program = parseFileWithIncludes(path, 0);
    std::string name = path;
    if (const auto slash = name.find_last_of('/'); slash != std::string::npos)
        name = name.substr(slash + 1);
    return convertProgram(program, std::move(name));
}

} // namespace powermove::qasm
