#include "isa/validator.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "route/conflict.hpp"

namespace powermove {

namespace {

[[noreturn]] void
fail(const std::string &message)
{
    throw ValidationError("schedule validation failed: " + message);
}

/** Occupancy census of a position assignment. */
class Census
{
  public:
    Census(const Machine &machine, const std::vector<SiteId> &positions)
        : machine_(machine), count_(machine.numSites(), 0),
          occupants_(machine.numSites())
    {
        for (QubitId q = 0; q < positions.size(); ++q) {
            const SiteId site = positions[q];
            if (site >= machine.numSites())
                fail("qubit " + std::to_string(q) + " is off the lattice");
            ++count_[site];
            occupants_[site].push_back(q);
        }
    }

    /** Enforces steady-state capacity: compute <= 2, storage <= 1. */
    void
    checkCapacity() const
    {
        for (SiteId site = 0; site < count_.size(); ++site) {
            const std::size_t cap =
                machine_.zoneOf(site) == ZoneKind::Compute ? 2 : 1;
            if (count_[site] > cap) {
                std::ostringstream os;
                os << "site " << machine_.coordOf(site) << " holds "
                   << count_[site] << " qubits (capacity " << cap << ")";
                fail(os.str());
            }
        }
    }

    const std::vector<QubitId> &occupantsOf(SiteId site) const
    {
        return occupants_[site];
    }

    std::size_t occupancy(SiteId site) const { return count_[site]; }

  private:
    const Machine &machine_;
    std::vector<std::size_t> count_;
    std::vector<std::vector<QubitId>> occupants_;
};

void
checkPulse(const Machine &machine, const std::vector<SiteId> &positions,
           const RydbergOp &pulse)
{
    if (pulse.gates.empty())
        fail("empty Rydberg pulse");

    const Census census(machine, positions);
    census.checkCapacity();

    // Gates act on pairwise disjoint qubits.
    std::vector<QubitId> touched;
    for (const auto &gate : pulse.gates) {
        touched.push_back(gate.a);
        touched.push_back(gate.b);
    }
    std::sort(touched.begin(), touched.end());
    if (std::adjacent_find(touched.begin(), touched.end()) != touched.end())
        fail("a Rydberg pulse touches a qubit twice");

    // Every gate pair is co-located at a compute site.
    for (const auto &gate : pulse.gates) {
        const SiteId sa = positions[gate.a];
        const SiteId sb = positions[gate.b];
        if (sa != sb) {
            std::ostringstream os;
            os << "gate (" << gate.a << "," << gate.b
               << ") pair is not co-located at pulse time";
            fail(os.str());
        }
        if (machine.zoneOf(sa) != ZoneKind::Compute)
            fail("gate pair parked outside the compute zone at pulse time");
    }

    // Every co-located compute pair must be one of this pulse's gates;
    // anything else is an unwanted blockade interaction.
    std::vector<CzGate> sorted_gates;
    sorted_gates.reserve(pulse.gates.size());
    for (const auto &gate : pulse.gates)
        sorted_gates.push_back(gate.canonical());
    std::sort(sorted_gates.begin(), sorted_gates.end());
    for (SiteId site = 0; site < machine.numComputeSites(); ++site) {
        if (census.occupancy(site) != 2)
            continue;
        const auto &pair = census.occupantsOf(site);
        const CzGate found = CzGate{pair[0], pair[1]}.canonical();
        if (!std::binary_search(sorted_gates.begin(), sorted_gates.end(),
                                found)) {
            std::ostringstream os;
            os << "qubits " << found.a << " and " << found.b
               << " are co-located during a pulse without a scheduled gate";
            fail(os.str());
        }
    }
}

void
applyMoveBatch(const Machine &machine, std::vector<SiteId> &positions,
               const MoveBatchOp &op)
{
    std::vector<bool> moved(positions.size(), false);
    for (const auto &group : op.batch.groups) {
        if (group.moves.empty())
            fail("empty Coll-Move inside a batch");
        if (!isValidCollMove(machine, group))
            fail("Coll-Move violates AOD row/column order constraints");
        for (const auto &move : group.moves) {
            if (move.qubit >= positions.size())
                fail("move addresses an unknown qubit");
            if (moved[move.qubit])
                fail("qubit moved twice within one parallel batch");
            moved[move.qubit] = true;
            if (positions[move.qubit] != move.from) {
                std::ostringstream os;
                os << "move of qubit " << move.qubit << " departs from "
                   << machine.coordOf(move.from) << " but the qubit is at "
                   << machine.coordOf(positions[move.qubit]);
                fail(os.str());
            }
            if (move.to >= machine.numSites())
                fail("move targets a non-existent site");
        }
    }
    for (const auto &group : op.batch.groups) {
        for (const auto &move : group.moves)
            positions[move.qubit] = move.to;
    }
}

} // namespace

void
validateSchedule(const MachineSchedule &schedule)
{
    const Machine &machine = schedule.machine();
    std::vector<SiteId> positions = schedule.initialSites();
    if (positions.empty())
        fail("schedule has no qubits");

    Census(machine, positions).checkCapacity();

    for (const auto &instruction : schedule.instructions()) {
        if (const auto *pulse = std::get_if<RydbergOp>(&instruction)) {
            checkPulse(machine, positions, *pulse);
        } else if (const auto *batch = std::get_if<MoveBatchOp>(&instruction)) {
            applyMoveBatch(machine, positions, *batch);
        }
        // 1Q layers have no placement effect.
    }

    Census(machine, positions).checkCapacity();
}

void
validateAgainstCircuit(const MachineSchedule &schedule, const Circuit &circuit)
{
    validateSchedule(schedule);

    if (schedule.numQubits() != circuit.numQubits())
        fail("schedule and circuit disagree on qubit count");
    if (schedule.numOneQGates() != circuit.numOneQGates())
        fail("schedule drops or invents single-qubit gates");
    if (schedule.numCzGates() != circuit.numCzGates())
        fail("schedule drops or invents CZ gates");

    // Group pulse gates by source block and compare multisets.
    std::map<std::size_t, std::vector<CzGate>> by_block;
    std::size_t last_block = 0;
    bool first = true;
    for (const auto &instruction : schedule.instructions()) {
        const auto *pulse = std::get_if<RydbergOp>(&instruction);
        if (pulse == nullptr)
            continue;
        if (!first && pulse->block_index < last_block)
            fail("Rydberg pulses execute blocks out of order");
        first = false;
        last_block = pulse->block_index;
        auto &bucket = by_block[pulse->block_index];
        for (const auto &gate : pulse->gates)
            bucket.push_back(gate.canonical());
    }

    const auto blocks = circuit.blocks();
    if (by_block.size() != blocks.size())
        fail("schedule executes a different number of CZ blocks");
    for (std::size_t b = 0; b < blocks.size(); ++b) {
        const auto it = by_block.find(b);
        if (it == by_block.end())
            fail("block " + std::to_string(b) + " never executed");
        std::vector<CzGate> expected;
        expected.reserve(blocks[b]->gates.size());
        for (const auto &gate : blocks[b]->gates)
            expected.push_back(gate.canonical());
        std::sort(expected.begin(), expected.end());
        auto actual = it->second;
        std::sort(actual.begin(), actual.end());
        if (actual != expected)
            fail("block " + std::to_string(b) +
                 " executes a different gate multiset than the circuit");
    }
}

} // namespace powermove
