#include "isa/printer.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace powermove {

std::string
formatSchedule(const MachineSchedule &schedule, std::size_t max_instructions)
{
    const Machine &machine = schedule.machine();
    std::ostringstream os;
    os << "machine-schedule: " << schedule.numQubits() << " qubits, "
       << schedule.instructions().size() << " instructions, "
       << schedule.numPulses() << " pulses, " << schedule.numQubitMoves()
       << " moves\n";

    std::size_t index = 0;
    for (const auto &instruction : schedule.instructions()) {
        if (max_instructions != 0 && index >= max_instructions) {
            os << "  ... ("
               << schedule.instructions().size() - max_instructions
               << " more)\n";
            break;
        }
        os << "  [" << index << "] ";
        if (const auto *layer = std::get_if<OneQLayerOp>(&instruction)) {
            os << "1q-layer   gates=" << layer->gate_count
               << " depth=" << layer->depth << "\n";
        } else if (const auto *op = std::get_if<MoveBatchOp>(&instruction)) {
            os << "move-batch aods=" << op->batch.groups.size() << " t="
               << formatGeneral(op->batch.duration(machine).micros(), 4)
               << "us\n";
            for (std::size_t g = 0; g < op->batch.groups.size(); ++g) {
                os << "        aod" << g << ":";
                for (const auto &move : op->batch.groups[g].moves) {
                    os << " q" << move.qubit
                       << machine.coordOf(move.from) << "->"
                       << machine.coordOf(move.to);
                }
                os << "\n";
            }
        } else {
            const auto &pulse = std::get<RydbergOp>(instruction);
            os << "rydberg    block=" << pulse.block_index << " gates=";
            for (std::size_t g = 0; g < pulse.gates.size(); ++g) {
                os << (g == 0 ? "" : ",") << "(" << pulse.gates[g].a << ","
                   << pulse.gates[g].b << ")";
            }
            os << "\n";
        }
        ++index;
    }
    return os.str();
}

} // namespace powermove
