/**
 * @file
 * Human-readable rendering of machine schedules.
 */

#ifndef POWERMOVE_ISA_PRINTER_HPP
#define POWERMOVE_ISA_PRINTER_HPP

#include <string>

#include "isa/machine_schedule.hpp"

namespace powermove {

/**
 * Renders the instruction stream as indented text, one line per
 * operation (movement batches list their per-AOD Coll-Moves).
 *
 * @param schedule         the program to print
 * @param max_instructions truncate after this many instructions
 *                         (0 = no limit)
 */
std::string formatSchedule(const MachineSchedule &schedule,
                           std::size_t max_instructions = 0);

} // namespace powermove

#endif // POWERMOVE_ISA_PRINTER_HPP
