/**
 * @file
 * The low-level neutral-atom instruction set.
 *
 * A compiled program is a sequence of three operation kinds:
 *
 *  - OneQLayerOp: one layer of parallel Raman single-qubit gates; wall
 *    time is depth * t_1q where depth is the longest per-qubit gate chain
 *    in the layer.
 *  - MoveBatchOp: one parallel AOD batch — up to #AOD Coll-Moves running
 *    simultaneously, each a conflict-free set of 1Q relocations; wall
 *    time is 2 * t_transfer + the slowest member move.
 *  - RydbergOp: one global Rydberg pulse executing all CZ gates of one
 *    stage on the co-located pairs.
 */

#ifndef POWERMOVE_ISA_INSTRUCTION_HPP
#define POWERMOVE_ISA_INSTRUCTION_HPP

#include <cstdint>
#include <variant>
#include <vector>

#include "circuit/gate.hpp"
#include "collsched/multi_aod.hpp"

namespace powermove {

/** A layer of parallel single-qubit gates. */
struct OneQLayerOp
{
    /** Total gates in the layer (fidelity accounting). */
    std::size_t gate_count = 0;
    /** Longest per-qubit chain (wall-time accounting). */
    std::size_t depth = 0;
};

/** One parallel AOD movement batch. */
struct MoveBatchOp
{
    AodBatch batch;
};

/** One global Rydberg pulse executing a stage. */
struct RydbergOp
{
    std::vector<CzGate> gates;
    /** Index of the commutable CZ block this stage came from. */
    std::size_t block_index = 0;
};

/** Any machine operation. */
using Instruction = std::variant<OneQLayerOp, MoveBatchOp, RydbergOp>;

} // namespace powermove

#endif // POWERMOVE_ISA_INSTRUCTION_HPP
