/**
 * @file
 * The compiled machine program.
 *
 * A MachineSchedule couples an initial qubit placement with the ordered
 * instruction stream produced by a compiler. It is the single artifact
 * consumed by the validator (hardware legality + circuit completeness)
 * and by the fidelity/time evaluator, so both compilers — PowerMove and
 * the Enola baseline — are scored by exactly the same machinery.
 */

#ifndef POWERMOVE_ISA_MACHINE_SCHEDULE_HPP
#define POWERMOVE_ISA_MACHINE_SCHEDULE_HPP

#include <vector>

#include "arch/machine.hpp"
#include "isa/instruction.hpp"

namespace powermove {

/** An executable neutral-atom program. */
class MachineSchedule
{
  public:
    /**
     * @param machine       the target machine (must outlive the schedule)
     * @param initial_sites per-qubit starting site
     */
    MachineSchedule(const Machine &machine, std::vector<SiteId> initial_sites);

    const Machine &machine() const { return *machine_; }
    std::size_t numQubits() const { return initial_sites_.size(); }
    const std::vector<SiteId> &initialSites() const { return initial_sites_; }

    /** Appends a 1Q layer. */
    void addOneQLayer(std::size_t gate_count, std::size_t depth);
    /** Appends a parallel movement batch (empty batches are dropped). */
    void addMoveBatch(AodBatch batch);
    /** Appends a Rydberg pulse for stage @p gates of block @p block. */
    void addRydberg(std::vector<CzGate> gates, std::size_t block);

    const std::vector<Instruction> &instructions() const
    {
        return instructions_;
    }

    /** Number of Rydberg pulses (= executed stages). */
    std::size_t numPulses() const { return num_pulses_; }
    /** Number of individual qubit relocations. */
    std::size_t numQubitMoves() const { return num_qubit_moves_; }
    /** Number of trap transfers (pickup + drop per relocation). */
    std::size_t numTransfers() const { return 2 * num_qubit_moves_; }
    /** Number of movement batches. */
    std::size_t numMoveBatches() const { return num_batches_; }
    /** Total CZ gates executed. */
    std::size_t numCzGates() const { return num_cz_; }
    /** Total 1Q gates executed. */
    std::size_t numOneQGates() const { return num_one_q_; }

  private:
    const Machine *machine_;
    std::vector<SiteId> initial_sites_;
    std::vector<Instruction> instructions_;
    std::size_t num_pulses_ = 0;
    std::size_t num_qubit_moves_ = 0;
    std::size_t num_batches_ = 0;
    std::size_t num_cz_ = 0;
    std::size_t num_one_q_ = 0;
};

} // namespace powermove

#endif // POWERMOVE_ISA_MACHINE_SCHEDULE_HPP
