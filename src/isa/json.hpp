/**
 * @file
 * JSON serialization of compiled programs.
 *
 * Emits a self-contained, dependency-free JSON document describing the
 * machine shape, the initial placement, and the full instruction stream
 * — the interchange format for external visualizers and for diffing
 * schedules across compiler versions.
 */

#ifndef POWERMOVE_ISA_JSON_HPP
#define POWERMOVE_ISA_JSON_HPP

#include <string>

#include "isa/machine_schedule.hpp"

namespace powermove {

/**
 * Serializes @p schedule as a JSON object:
 *
 * {
 *   "machine": {"compute": [cols, rows], "storage": [cols, rows],
 *               "gap_rows": g, "pitch_um": p},
 *   "qubits": n,
 *   "initial_sites": [[x, y], ...],
 *   "instructions": [
 *     {"op": "1q", "gates": g, "depth": d},
 *     {"op": "move", "groups": [[{"q": id, "from": [x,y],
 *                                 "to": [x,y]}, ...], ...]},
 *     {"op": "rydberg", "block": b, "gates": [[a, b], ...]}
 *   ]
 * }
 */
std::string scheduleToJson(const MachineSchedule &schedule);

} // namespace powermove

#endif // POWERMOVE_ISA_JSON_HPP
