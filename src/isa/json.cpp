#include "isa/json.hpp"

#include <sstream>

namespace powermove {

namespace {

void
emitCoord(std::ostringstream &os, SiteCoord coord)
{
    os << "[" << coord.x << "," << coord.y << "]";
}

} // namespace

std::string
scheduleToJson(const MachineSchedule &schedule)
{
    const Machine &machine = schedule.machine();
    const auto &config = machine.config();
    std::ostringstream os;

    os << "{\n";
    os << "  \"machine\": {\"compute\": [" << config.compute_cols << ","
       << config.compute_rows << "], \"storage\": [" << config.storage_cols
       << "," << config.storage_rows << "], \"gap_rows\": "
       << config.gap_rows << ", \"pitch_um\": "
       << config.params.site_pitch.microns() << "},\n";
    os << "  \"qubits\": " << schedule.numQubits() << ",\n";

    os << "  \"initial_sites\": [";
    for (std::size_t q = 0; q < schedule.initialSites().size(); ++q) {
        if (q > 0)
            os << ",";
        emitCoord(os, machine.coordOf(schedule.initialSites()[q]));
    }
    os << "],\n";

    os << "  \"instructions\": [\n";
    bool first = true;
    for (const auto &instruction : schedule.instructions()) {
        if (!first)
            os << ",\n";
        first = false;
        os << "    ";
        if (const auto *layer = std::get_if<OneQLayerOp>(&instruction)) {
            os << "{\"op\": \"1q\", \"gates\": " << layer->gate_count
               << ", \"depth\": " << layer->depth << "}";
        } else if (const auto *op = std::get_if<MoveBatchOp>(&instruction)) {
            os << "{\"op\": \"move\", \"groups\": [";
            for (std::size_t g = 0; g < op->batch.groups.size(); ++g) {
                if (g > 0)
                    os << ",";
                os << "[";
                const auto &moves = op->batch.groups[g].moves;
                for (std::size_t m = 0; m < moves.size(); ++m) {
                    if (m > 0)
                        os << ",";
                    os << "{\"q\": " << moves[m].qubit << ", \"from\": ";
                    emitCoord(os, machine.coordOf(moves[m].from));
                    os << ", \"to\": ";
                    emitCoord(os, machine.coordOf(moves[m].to));
                    os << "}";
                }
                os << "]";
            }
            os << "]}";
        } else {
            const auto &pulse = std::get<RydbergOp>(instruction);
            os << "{\"op\": \"rydberg\", \"block\": " << pulse.block_index
               << ", \"gates\": [";
            for (std::size_t g = 0; g < pulse.gates.size(); ++g) {
                if (g > 0)
                    os << ",";
                os << "[" << pulse.gates[g].a << "," << pulse.gates[g].b
                   << "]";
            }
            os << "]}";
        }
    }
    os << "\n  ]\n}\n";
    return os.str();
}

} // namespace powermove
