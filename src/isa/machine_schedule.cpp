#include "isa/machine_schedule.hpp"

#include "common/error.hpp"

namespace powermove {

MachineSchedule::MachineSchedule(const Machine &machine,
                                 std::vector<SiteId> initial_sites)
    : machine_(&machine), initial_sites_(std::move(initial_sites))
{
    for (const SiteId site : initial_sites_)
        PM_ASSERT(site < machine.numSites(), "initial site out of range");
}

void
MachineSchedule::addOneQLayer(std::size_t gate_count, std::size_t depth)
{
    if (gate_count == 0)
        return;
    PM_ASSERT(depth > 0 && depth <= gate_count,
              "1Q layer depth must lie in [1, gate_count]");
    instructions_.emplace_back(OneQLayerOp{gate_count, depth});
    num_one_q_ += gate_count;
}

void
MachineSchedule::addMoveBatch(AodBatch batch)
{
    const std::size_t moved = batch.numMoves();
    if (moved == 0)
        return;
    num_qubit_moves_ += moved;
    ++num_batches_;
    instructions_.emplace_back(MoveBatchOp{std::move(batch)});
}

void
MachineSchedule::addRydberg(std::vector<CzGate> gates, std::size_t block)
{
    PM_ASSERT(!gates.empty(), "a Rydberg pulse needs at least one gate");
    num_cz_ += gates.size();
    ++num_pulses_;
    instructions_.emplace_back(RydbergOp{std::move(gates), block});
}

} // namespace powermove
