/**
 * @file
 * Machine-schedule validation.
 *
 * The validator replays a compiled program against the machine model and
 * enforces every hardware rule the compilers must respect:
 *
 *  - each Coll-Move is AOD-compatible (no row/column order changes);
 *  - every relocation starts from the qubit's actual current site;
 *  - a qubit moves at most once per parallel batch;
 *  - at every Rydberg pulse: gates act on disjoint qubits, every gate
 *    pair shares one compute-zone site, every co-located pair *is* a
 *    gate of that pulse (no unwanted blockade), compute sites hold at
 *    most two qubits and storage sites at most one.
 *
 * Site capacity is enforced at pulse boundaries and at program end;
 * transient co-residence while atoms ride an AOD mid-transition is
 * allowed (atoms in mobile traps hover independently of SLM occupancy).
 *
 * validateAgainstCircuit() additionally proves completeness: the pulses
 * execute exactly the source circuit's CZ gates, block by block and in
 * block order, and the 1Q gate count matches.
 */

#ifndef POWERMOVE_ISA_VALIDATOR_HPP
#define POWERMOVE_ISA_VALIDATOR_HPP

#include "circuit/circuit.hpp"
#include "isa/machine_schedule.hpp"

namespace powermove {

/** Replays @p schedule; throws ValidationError on any hardware violation. */
void validateSchedule(const MachineSchedule &schedule);

/**
 * Validates hardware legality and completeness against the source
 * circuit; throws ValidationError on any mismatch.
 */
void validateAgainstCircuit(const MachineSchedule &schedule,
                            const Circuit &circuit);

} // namespace powermove

#endif // POWERMOVE_ISA_VALIDATOR_HPP
