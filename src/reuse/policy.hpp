/**
 * @file
 * Pluggable compute-zone residency: the cache replacement policies.
 *
 * Reframing (ROADMAP item 3): the compute zone is a *cache of atoms*
 * over the storage zone. A resident atom serves its next gate without
 * the four-transfer storage round trip (two transfers out, two back,
 * plus two shuttle legs across the inter-zone gap); in exchange it
 * absorbs one excitation exposure per intervening Rydberg pulse and
 * idle dephasing the storage zone would have shielded. Which atoms to
 * keep resident is therefore a cache replacement question, and this
 * interface makes the answer pluggable behind the reuse router's step
 * 1 (`--residency=lookahead|lru|lti|fidelity`).
 *
 * Per stage transition the router hands the policy every idle-in-
 * compute qubit (the hold candidates) and the policy partitions them
 * into holds and releases. Policies are pure rankings over the shared
 * ReuseAnalysis next-use index, per-qubit recency stamps, or the
 * fidelity cost model — they never draw from the RNG, so every policy
 * is deterministic per (circuit, options).
 *
 * Lookahead reproduces the pre-policy router bit for bit and resets
 * residency at block boundaries; the other three let residency persist
 * across blocks: beginBlock() re-validation happens naturally at the
 * next transition, where every survivor is a candidate again and the
 * policy either re-holds it or finally parks it.
 */

#ifndef POWERMOVE_REUSE_POLICY_HPP
#define POWERMOVE_REUSE_POLICY_HPP

#include <cstddef>
#include <memory>
#include <vector>

#include "arch/params.hpp"
#include "circuit/gate.hpp"
#include "compiler/strategies.hpp"
#include "reuse/analysis.hpp"

namespace powermove {

/** Everything a residency policy may consult for one transition. */
struct ResidencyQuery
{
    /** Idle-in-compute hold candidates, ascending qubit id. */
    const std::vector<QubitId> &candidates;
    /** Block-local index of the stage being routed. */
    std::size_t stage;
    /** Program-global transition index (monotonic across blocks). */
    std::size_t global_stage;
    /** The current block's next-use index. */
    const ReuseAnalysis &analysis;
    /** The configured lookahead window (>= 1). */
    std::size_t lookahead;
    /**
     * Compute-zone pressure bound: compute sites left once this
     * stage's gate pairs have claimed theirs. Holding more residents
     * than this cannot succeed (each survivor needs a site of its
     * own), so the pressure-driven policies evict down to it.
     */
    std::size_t capacity;
};

/** One compute-zone cache replacement policy (see file comment). */
class ResidencyPolicyImpl
{
  public:
    virtual ~ResidencyPolicyImpl() = default;

    /** The enum value this implementation realizes. */
    virtual ResidencyPolicy kind() const = 0;

    /**
     * True when residents survive block boundaries: the router then
     * skips the forced release in beginBlock() and the next
     * transition re-validates every survivor through partition().
     */
    virtual bool persistsAcrossBlocks() const = 0;

    /**
     * Partitions @p query.candidates into holds and releases
     * (appended; both may arrive non-empty from the router's scratch
     * reuse — implementations only append). Only membership matters:
     * the router re-sorts both sides into its deterministic
     * farthest-from-storage order before planning moves.
     */
    virtual void partition(const ResidencyQuery &query,
                           std::vector<QubitId> &holds,
                           std::vector<QubitId> &releases) = 0;

    /** Sizes per-qubit state; called before every block announce. */
    virtual void beginProgram(std::size_t num_qubits) { (void)num_qubits; }

    /** Observes a gate on @p qubit at @p global_stage (LRU recency). */
    virtual void noteInteraction(QubitId qubit, std::size_t global_stage)
    {
        (void)qubit;
        (void)global_stage;
    }
};

/**
 * Factory for the selected policy. @p lookahead is the configured
 * window (Lookahead only); @p params prices the Fidelity policy's
 * stay-vs-round-trip comparison.
 */
std::unique_ptr<ResidencyPolicyImpl>
makeResidencyPolicy(ResidencyPolicy policy, std::size_t lookahead,
                    const HardwareParams &params);

/**
 * The Fidelity policy's break-even residency length, in stages: hold
 * an idle atom iff its next use lies within this many stages. Derived
 * from the Eq. (1) factors: staying resident costs
 * `-ln(f_excitation) + t_cz / T2` per intervening pulse, the avoided
 * storage round trip costs `4 * -ln(f_transfer)` plus the transit
 * dephasing of four transfers and two shuttle legs across the zone
 * gap. Exposed for tests and docs; the defaults of Table 1 put it
 * between 1 and 2 stages — reuse only pays for back-to-back use.
 */
double fidelityBreakEvenStages(const HardwareParams &params);

} // namespace powermove

#endif // POWERMOVE_REUSE_POLICY_HPP
