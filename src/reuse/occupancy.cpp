#include "reuse/occupancy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace powermove {

ZoneOccupancy::ZoneOccupancy(const Machine &machine)
    : machine_(machine), planned_(machine.numSites(), 0)
{}

void
ZoneOccupancy::beginTransition(const Layout &layout)
{
    planned_.assign(machine_.numSites(), 0);
    for (QubitId q = 0; q < layout.numQubits(); ++q)
        ++planned_[layout.siteOf(q)];
    total_planned_ = layout.numQubits();
}

void
ZoneOccupancy::depart(SiteId site)
{
    PM_ASSERT(site < planned_.size(), "site id out of range");
    PM_ASSERT(planned_[site] > 0, "departure from a planned-empty site");
    --planned_[site];
    --total_planned_;
}

void
ZoneOccupancy::arrive(SiteId site)
{
    PM_ASSERT(site < planned_.size(), "site id out of range");
    ++planned_[site];
    ++total_planned_;
}

void
ZoneOccupancy::resetResidency(std::size_t num_qubits, std::size_t end_stage)
{
    // Spans cut short by a block boundary still count as ended: the
    // qubit was resident from its hold stage through the block's last
    // stage (at least one stage even if end_stage is unknown).
    for (QubitId q = 0; q < resident_since_.size(); ++q) {
        if (resident_since_[q] != kNotResident) {
            ++stats_.holds_ended;
            stats_.resident_stages +=
                end_stage > resident_since_[q]
                    ? end_stage - resident_since_[q]
                    : 1;
        }
    }
    resident_since_.assign(num_qubits, kNotResident);
    num_residents_ = 0;
}

bool
ZoneOccupancy::isResident(QubitId qubit) const
{
    return qubit < resident_since_.size() &&
           resident_since_[qubit] != kNotResident;
}

void
ZoneOccupancy::holdResident(QubitId qubit, std::size_t stage)
{
    PM_ASSERT(qubit < resident_since_.size(),
              "resetResidency() must size the qubit table first");
    if (resident_since_[qubit] != kNotResident)
        return;
    resident_since_[qubit] = stage;
    ++num_residents_;
    ++stats_.holds_started;
    stats_.max_concurrent = std::max(stats_.max_concurrent, num_residents_);
}

void
ZoneOccupancy::releaseResident(QubitId qubit, std::size_t stage)
{
    if (!isResident(qubit))
        return;
    const std::size_t since = resident_since_[qubit];
    PM_ASSERT(stage >= since, "residency released before it started");
    resident_since_[qubit] = kNotResident;
    --num_residents_;
    ++stats_.holds_ended;
    stats_.resident_stages += stage - since;
}

} // namespace powermove
