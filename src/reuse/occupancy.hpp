/**
 * @file
 * Planned zone occupancy and compute-zone residency lifetimes.
 *
 * The reuse-aware router plans each stage transition against the
 * occupancy every site will have *after* the transition settles.
 * ZoneOccupancy owns that planned end-state: it is rebuilt from the
 * live Layout at the start of every transition, mutated through
 * depart()/arrive() as decisions are made, and exposed as the raw
 * per-site array the shared free-site searches consume.
 *
 * On top of the per-transition occupancy it tracks residency lifetimes
 * across the stage sequence: a qubit "held" in the compute zone between
 * two of its interactions is resident from the stage the hold started
 * until it is released (parked to storage, consumed by its next gate,
 * or the block ends). The lifetime counters feed the routing pass's
 * reuse profile and the subsystem's tests.
 */

#ifndef POWERMOVE_REUSE_OCCUPANCY_HPP
#define POWERMOVE_REUSE_OCCUPANCY_HPP

#include <cstdint>
#include <vector>

#include "arch/layout.hpp"
#include "arch/machine.hpp"

namespace powermove {

/** Cumulative residency statistics over a router's lifetime. */
struct ResidencyStats
{
    /** Hold spans started (one per qubit per contiguous residency). */
    std::uint64_t holds_started = 0;
    /** Hold spans ended, including those cut short by the block end. */
    std::uint64_t holds_ended = 0;
    /** Total stages spent resident, summed over ended spans. */
    std::uint64_t resident_stages = 0;
    /** Largest number of simultaneously resident qubits observed. */
    std::size_t max_concurrent = 0;
};

/** Planned end-state occupancy plus residency lifetimes. */
class ZoneOccupancy
{
  public:
    explicit ZoneOccupancy(const Machine &machine);

    /** Rebuilds the planned occupancy from the live @p layout. */
    void beginTransition(const Layout &layout);

    /** Planned number of qubits at @p site once the transition settles. */
    int plannedAt(SiteId site) const { return planned_[site]; }

    /** Records a planned departure from @p site. */
    void depart(SiteId site);

    /** Records a planned arrival at @p site. */
    void arrive(SiteId site);

    /** The raw planned array, for the shared free-site searches. */
    const std::vector<int> &planned() const { return planned_; }

    /** Sum of the planned occupancy (conserved across depart/arrive pairs). */
    std::size_t totalPlanned() const { return total_planned_; }

    // ---- residency lifetimes across the stage sequence ------------------

    /**
     * Forgets every residency (new block). Surviving spans are closed
     * as if released at @p end_stage — one past the closing block's
     * last stage — so their full length is credited to the stats.
     */
    void resetResidency(std::size_t num_qubits, std::size_t end_stage = 0);

    /** True if @p qubit is currently held resident in the compute zone. */
    bool isResident(QubitId qubit) const;

    /** Starts a residency span at @p stage. No-op if already resident. */
    void holdResident(QubitId qubit, std::size_t stage);

    /**
     * Ends a residency span at @p stage, crediting its length to the
     * stats. No-op if @p qubit is not resident.
     */
    void releaseResident(QubitId qubit, std::size_t stage);

    /** Number of currently resident qubits. */
    std::size_t numResidents() const { return num_residents_; }

    const ResidencyStats &stats() const { return stats_; }

  private:
    static constexpr std::size_t kNotResident = ~std::size_t{0};

    const Machine &machine_;
    std::vector<int> planned_;
    std::size_t total_planned_ = 0;
    std::vector<std::size_t> resident_since_; // qubit -> hold start stage
    std::size_t num_residents_ = 0;
    ResidencyStats stats_;
};

} // namespace powermove

#endif // POWERMOVE_REUSE_OCCUPANCY_HPP
