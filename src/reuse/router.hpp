/**
 * @file
 * The reuse-aware router: gate-aware atom reuse across stage transitions.
 *
 * The continuous router (route/router.hpp) parks *every* idle qubit in
 * the storage zone at every stage transition. Lin et al. ("Reuse-Aware
 * Compilation for Zoned Quantum Architectures Based on Neutral Atoms")
 * observe that when a qubit interacts again within a few stages, the
 * round trip to storage — two transfers out, two transfers back, plus
 * two shuttle legs across the inter-zone gap — costs more fidelity and
 * time than simply leaving the atom parked in the compute zone, where
 * it merely absorbs one excitation exposure per intervening pulse.
 *
 * Per stage transition this router:
 *
 *  - Step 1: hands the idle-in-compute qubits to the configured
 *    residency policy (reuse/policy.hpp), which partitions them into
 *    hold candidates and releases — the cache replacement decision.
 *    The default lookahead policy holds exactly the qubits whose next
 *    interaction lies within the window; the rest park in storage
 *    exactly like the continuous router's step 1.
 *  - Step 2: labels the interacting qubits (static / mobile /
 *    undecided) following the same Fig. 4 cases and the same RNG
 *    stream discipline as the continuous router. Interactions have
 *    priority: they are planned as if the holds were invisible.
 *  - Step 3: resolves undecided qubits onto planned-empty compute
 *    sites (held sites are planned-occupied, so they are never taken).
 *  - Step 4: settles the holds. A candidate whose site ends the
 *    transition alone keeps it without moving; one displaced by an
 *    interaction (or sharing a site with another idle atom, which
 *    would blockade during the pulse) relocates to the nearest
 *    planned-free compute site; if none survives, it is released to
 *    storage after all.
 *
 * The emitted TransitionPlan is consumed by the unchanged Coll-Move
 * grouping / ordering / AOD batching machinery; held qubits end every
 * transition alone at a compute site, which the hardware validator
 * accepts (a lone atom during a pulse is an excitation exposure, not
 * an illegal blockade pair).
 *
 * This strategy requires the storage zone; the pipeline falls back to
 * the continuous router in the storage-free configuration.
 */

#ifndef POWERMOVE_REUSE_ROUTER_HPP
#define POWERMOVE_REUSE_ROUTER_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/layout.hpp"
#include "arch/machine.hpp"
#include "common/rng.hpp"
#include "compiler/strategies.hpp"
#include "reuse/analysis.hpp"
#include "reuse/occupancy.hpp"
#include "reuse/policy.hpp"
#include "route/free_site_index.hpp"
#include "route/router.hpp"
#include "schedule/stage.hpp"

namespace powermove {

/** Reuse-aware router knobs. */
struct ReuseRouterOptions
{
    /**
     * Hold an idle qubit only if it interacts again within this many
     * stages (>= 1). Larger windows hold more atoms — saving more
     * storage round trips but accruing more excitation exposures.
     */
    std::size_t lookahead = 4;
    /** Seed for the randomized mobile/static choice (Fig. 4 case d). */
    std::uint64_t seed = 0xC0FFEE;
    /** Cache replacement policy answering the hold/release question. */
    ResidencyPolicy residency = ResidencyPolicy::Lookahead;
};

/** Plans stage transitions with gate-aware atom reuse. */
class ReuseAwareRouter
{
  public:
    ReuseAwareRouter(const Machine &machine, ReuseRouterOptions options = {});

    /** Draws randomized decisions from @p rng (must outlive the router). */
    ReuseAwareRouter(const Machine &machine, ReuseRouterOptions options,
                     Rng &rng);

    // rng_ may point at own_rng_, so a defaulted copy/move would leave
    // the new object drawing from the source's (possibly dead) stream.
    ReuseAwareRouter(const ReuseAwareRouter &) = delete;
    ReuseAwareRouter &operator=(const ReuseAwareRouter &) = delete;

    /**
     * Announces the ordered stages of the next block. Must be called
     * before routing the block's first stage; subsequent
     * planStageTransition() calls consume the stages in this order.
     * @p final_block marks the program's last block, where program end
     * acts as a virtual reuse event (see ReuseAnalysis::beginBlock).
     */
    void beginBlock(const std::vector<Stage> &stages, std::size_t num_qubits,
                    bool final_block = false);

    /**
     * Closes every still-open residency span at the current global
     * stage so the lifetime stats settle (holds_started ==
     * holds_ended). Must be called once after the program's last
     * transition; without it, spans surviving the final block would
     * never be credited (they used to leak until the next
     * beginBlock(), which never comes for the last block).
     */
    void endProgram();

    /**
     * Plans the transition bringing @p layout into a configuration
     * executing @p stage — which must be the next announced stage —
     * and applies it to @p layout.
     *
     * Post-conditions: every gate pair of the stage shares one compute
     * site; every held idle qubit sits alone at a compute site; every
     * other idle qubit sits in the storage zone.
     */
    TransitionPlan planStageTransition(Layout &layout, const Stage &stage);

    const ReuseRouterOptions &options() const { return options_; }

    /** Residency lifetime counters accumulated across all transitions. */
    const ResidencyStats &residencyStats() const { return occupancy_.stats(); }

    /** Number of currently resident (held) qubits. */
    std::size_t numResidents() const { return occupancy_.numResidents(); }

    /** True if @p qubit is currently held resident in the compute zone. */
    bool isResident(QubitId qubit) const { return occupancy_.isResident(qubit); }

  private:
    const Machine &machine_;
    ReuseRouterOptions options_;
    Rng own_rng_; // used unless an external stream was supplied
    Rng *rng_;    // &own_rng_ or the caller's stream

    ZoneOccupancy occupancy_;
    ReuseAnalysis analysis_;
    StorageSlotIndex storage_index_;
    std::unique_ptr<ResidencyPolicyImpl> policy_;
    std::size_t num_compute_sites_ = 0;
    std::size_t stage_cursor_ = 0;
    // Program-global transition counter: residency spans are stamped
    // with it so persistent policies can hold across block boundaries
    // without violating the span arithmetic (block-local indices would
    // run backwards at each block start).
    std::size_t global_stage_ = 0;
    std::size_t num_qubits_ = 0;
    bool residency_sized_ = false; // first beginBlock() sizes the tables

    // Scratch buffers reused across transitions (allocation-free
    // planning, matching the continuous router's compile-time story).
    std::vector<QubitId> partner_;
    std::vector<SiteId> target_;
    std::vector<MoveLabel> label_;
    std::vector<bool> labeled_;
    std::vector<int> statics_at_;
    std::vector<QubitId> follower_;
    std::vector<QubitId> undecided_order_;
    std::vector<QubitId> candidates_;
    std::vector<QubitId> holds_;
    std::vector<int> holds_at_; // per site: hold candidates parked there
    std::vector<QubitId> releases_;
    std::vector<QubitId> relocated_;
    std::vector<QubitId> denied_;
};

} // namespace powermove

#endif // POWERMOVE_REUSE_ROUTER_HPP
