/**
 * @file
 * The reuse-aware router: gate-aware atom reuse across stage transitions.
 *
 * The continuous router (route/router.hpp) parks *every* idle qubit in
 * the storage zone at every stage transition. Lin et al. ("Reuse-Aware
 * Compilation for Zoned Quantum Architectures Based on Neutral Atoms")
 * observe that when a qubit interacts again within a few stages, the
 * round trip to storage — two transfers out, two transfers back, plus
 * two shuttle legs across the inter-zone gap — costs more fidelity and
 * time than simply leaving the atom parked in the compute zone, where
 * it merely absorbs one excitation exposure per intervening pulse.
 *
 * Per stage transition this router:
 *
 *  - Step 1: splits the idle-in-compute qubits by the ReuseAnalysis
 *    lookahead — a qubit whose next interaction lies within the window
 *    becomes a hold candidate; the rest park in storage exactly like
 *    the continuous router's step 1.
 *  - Step 2: labels the interacting qubits (static / mobile /
 *    undecided) following the same Fig. 4 cases and the same RNG
 *    stream discipline as the continuous router. Interactions have
 *    priority: they are planned as if the holds were invisible.
 *  - Step 3: resolves undecided qubits onto planned-empty compute
 *    sites (held sites are planned-occupied, so they are never taken).
 *  - Step 4: settles the holds. A candidate whose site ends the
 *    transition alone keeps it without moving; one displaced by an
 *    interaction (or sharing a site with another idle atom, which
 *    would blockade during the pulse) relocates to the nearest
 *    planned-free compute site; if none survives, it is released to
 *    storage after all.
 *
 * The emitted TransitionPlan is consumed by the unchanged Coll-Move
 * grouping / ordering / AOD batching machinery; held qubits end every
 * transition alone at a compute site, which the hardware validator
 * accepts (a lone atom during a pulse is an excitation exposure, not
 * an illegal blockade pair).
 *
 * This strategy requires the storage zone; the pipeline falls back to
 * the continuous router in the storage-free configuration.
 */

#ifndef POWERMOVE_REUSE_ROUTER_HPP
#define POWERMOVE_REUSE_ROUTER_HPP

#include <cstdint>
#include <vector>

#include "arch/layout.hpp"
#include "arch/machine.hpp"
#include "common/rng.hpp"
#include "reuse/analysis.hpp"
#include "reuse/occupancy.hpp"
#include "route/free_site_index.hpp"
#include "route/router.hpp"
#include "schedule/stage.hpp"

namespace powermove {

/** Reuse-aware router knobs. */
struct ReuseRouterOptions
{
    /**
     * Hold an idle qubit only if it interacts again within this many
     * stages (>= 1). Larger windows hold more atoms — saving more
     * storage round trips but accruing more excitation exposures.
     */
    std::size_t lookahead = 4;
    /** Seed for the randomized mobile/static choice (Fig. 4 case d). */
    std::uint64_t seed = 0xC0FFEE;
};

/** Plans stage transitions with gate-aware atom reuse. */
class ReuseAwareRouter
{
  public:
    ReuseAwareRouter(const Machine &machine, ReuseRouterOptions options = {});

    /** Draws randomized decisions from @p rng (must outlive the router). */
    ReuseAwareRouter(const Machine &machine, ReuseRouterOptions options,
                     Rng &rng);

    // rng_ may point at own_rng_, so a defaulted copy/move would leave
    // the new object drawing from the source's (possibly dead) stream.
    ReuseAwareRouter(const ReuseAwareRouter &) = delete;
    ReuseAwareRouter &operator=(const ReuseAwareRouter &) = delete;

    /**
     * Announces the ordered stages of the next block. Must be called
     * before routing the block's first stage; subsequent
     * planStageTransition() calls consume the stages in this order.
     * @p final_block marks the program's last block, where program end
     * acts as a virtual reuse event (see ReuseAnalysis::beginBlock).
     */
    void beginBlock(const std::vector<Stage> &stages, std::size_t num_qubits,
                    bool final_block = false);

    /**
     * Plans the transition bringing @p layout into a configuration
     * executing @p stage — which must be the next announced stage —
     * and applies it to @p layout.
     *
     * Post-conditions: every gate pair of the stage shares one compute
     * site; every held idle qubit sits alone at a compute site; every
     * other idle qubit sits in the storage zone.
     */
    TransitionPlan planStageTransition(Layout &layout, const Stage &stage);

    const ReuseRouterOptions &options() const { return options_; }

    /** Residency lifetime counters accumulated across all transitions. */
    const ResidencyStats &residencyStats() const { return occupancy_.stats(); }

  private:
    const Machine &machine_;
    ReuseRouterOptions options_;
    Rng own_rng_; // used unless an external stream was supplied
    Rng *rng_;    // &own_rng_ or the caller's stream

    ZoneOccupancy occupancy_;
    ReuseAnalysis analysis_;
    StorageSlotIndex storage_index_;
    std::size_t stage_cursor_ = 0;

    // Scratch buffers reused across transitions (allocation-free
    // planning, matching the continuous router's compile-time story).
    std::vector<QubitId> partner_;
    std::vector<SiteId> target_;
    std::vector<MoveLabel> label_;
    std::vector<bool> labeled_;
    std::vector<int> statics_at_;
    std::vector<QubitId> follower_;
    std::vector<QubitId> undecided_order_;
    std::vector<QubitId> holds_;
    std::vector<int> holds_at_; // per site: hold candidates parked there
    std::vector<QubitId> releases_;
    std::vector<QubitId> relocated_;
    std::vector<QubitId> denied_;
};

} // namespace powermove

#endif // POWERMOVE_REUSE_ROUTER_HPP
