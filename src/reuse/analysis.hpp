/**
 * @file
 * Lookahead over the ordered stage sequence of one CZ block.
 *
 * Reuse-aware routing (Lin et al., "Reuse-Aware Compilation for Zoned
 * Quantum Architectures Based on Neutral Atoms") hinges on one
 * question per idle qubit per stage: does it interact again soon
 * enough that keeping it parked *in the compute zone* beats the round
 * trip to storage? ReuseAnalysis answers it from a per-qubit index of
 * interaction stages, built in one O(total gates) scan when the block's
 * ordered stages are announced and queried by binary search.
 *
 * The analysis is deliberately per-block: blocks are separated by
 * barriers or 1Q layers, stage order across blocks is fixed by program
 * order, and a qubit idle at a block boundary always returns to
 * storage, so no lookahead window may reach across.
 */

#ifndef POWERMOVE_REUSE_ANALYSIS_HPP
#define POWERMOVE_REUSE_ANALYSIS_HPP

#include <cstdint>
#include <vector>

#include "circuit/gate.hpp"
#include "schedule/stage.hpp"

namespace powermove {

/** Sentinel: the qubit never interacts again within the block. */
inline constexpr std::size_t kNoNextUse = ~std::size_t{0};

/** Per-block next-interaction index over the ordered stages. */
class ReuseAnalysis
{
  public:
    ReuseAnalysis() = default;

    /**
     * Indexes the ordered @p stages of the upcoming block. When
     * @p final_block is true the program ends with this block, and the
     * end of the stage sequence acts as a virtual reuse event: a qubit
     * with no further interaction may still be held to skip the final
     * park move (nothing excites it after the last pulse).
     */
    void beginBlock(const std::vector<Stage> &stages, std::size_t num_qubits,
                    bool final_block = false);

    /** Number of stages announced for the current block. */
    std::size_t numStages() const { return num_stages_; }

    /** True when the current block is the program's last. */
    bool finalBlock() const { return final_block_; }

    /**
     * Index of the first stage strictly after @p stage in which
     * @p qubit interacts, or kNoNextUse.
     */
    std::size_t nextUseAfter(std::size_t stage, QubitId qubit) const;

    /**
     * nextUseAfter() with the final-block convention applied: in the
     * program's last block a qubit with no further interaction gets
     * the virtual reuse event one past the last stage (holding it
     * skips the final park move and nothing excites it afterwards).
     * Residency policies and the miss classification share this view.
     */
    std::size_t effectiveNextUse(std::size_t stage, QubitId qubit) const;

    /**
     * The hold decision: a qubit idle in @p stage stays resident when
     * its next interaction lies within @p window stages (window >= 1;
     * a window of 1 holds only qubits needed in the very next stage).
     * In the final block, program end counts as a reuse event at one
     * past the last stage.
     */
    bool shouldHold(std::size_t stage, QubitId qubit,
                    std::size_t window) const;

  private:
    std::vector<std::vector<std::uint32_t>> uses_; // qubit -> stage indices
    std::size_t num_stages_ = 0;
    bool final_block_ = false;
};

} // namespace powermove

#endif // POWERMOVE_REUSE_ANALYSIS_HPP
