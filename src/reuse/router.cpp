#include "reuse/router.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace powermove {

ReuseAwareRouter::ReuseAwareRouter(const Machine &machine,
                                   ReuseRouterOptions options)
    : machine_(machine), options_(options), own_rng_(options.seed),
      rng_(&own_rng_), occupancy_(machine), storage_index_(machine),
      policy_(makeResidencyPolicy(options.residency, options.lookahead,
                                  machine.params())),
      num_compute_sites_(machine.computeSites().size())
{
    PM_ASSERT(options_.lookahead >= 1, "reuse lookahead must be >= 1");
}

ReuseAwareRouter::ReuseAwareRouter(const Machine &machine,
                                   ReuseRouterOptions options, Rng &rng)
    : machine_(machine), options_(options), own_rng_(options.seed),
      rng_(&rng), occupancy_(machine), storage_index_(machine),
      policy_(makeResidencyPolicy(options.residency, options.lookahead,
                                  machine.params())),
      num_compute_sites_(machine.computeSites().size())
{
    PM_ASSERT(options_.lookahead >= 1, "reuse lookahead must be >= 1");
}

void
ReuseAwareRouter::beginBlock(const std::vector<Stage> &stages,
                             std::size_t num_qubits, bool final_block)
{
    PM_ASSERT(!residency_sized_ || num_qubits == num_qubits_,
              "circuit width must not change across blocks");
    num_qubits_ = num_qubits;
    policy_->beginProgram(num_qubits);
    if (!residency_sized_ || !policy_->persistsAcrossBlocks()) {
        // Close the previous block's surviving residencies at its end
        // (the current global stage, one past its last transition).
        // Persistent policies skip this: their survivors stay resident
        // and are re-validated by partition() at the next transition.
        occupancy_.resetResidency(num_qubits, global_stage_);
        residency_sized_ = true;
    }
    analysis_.beginBlock(stages, num_qubits, final_block);
    stage_cursor_ = 0;
}

void
ReuseAwareRouter::endProgram()
{
    // Settle every span still open after the last transition; without
    // this, holds surviving the final block would never be credited to
    // the stats (the old code only settled them in the *next*
    // beginBlock(), which never comes for the last block).
    occupancy_.resetResidency(num_qubits_, global_stage_);
    residency_sized_ = false;
}

TransitionPlan
ReuseAwareRouter::planStageTransition(Layout &layout, const Stage &stage)
{
    PM_ASSERT(stage.qubitsDisjoint(), "stage gates must act on disjoint qubits");
    PM_ASSERT(layout.allPlaced(), "router requires a fully placed layout");
    PM_ASSERT(stage_cursor_ < analysis_.numStages(),
              "beginBlock() must announce the block's stages before routing");
    const std::size_t stage_index = stage_cursor_++;
    const std::size_t global_index = global_stage_++;

    const std::size_t num_qubits = layout.numQubits();
    auto &partner = partner_;
    partner.assign(num_qubits, kNoQubit);
    for (const auto &gate : stage.gates) {
        PM_ASSERT(gate.a < num_qubits && gate.b < num_qubits,
                  "stage gate outside circuit width");
        partner[gate.a] = gate.b;
        partner[gate.b] = gate.a;
        policy_->noteInteraction(gate.a, global_index);
        policy_->noteInteraction(gate.b, global_index);
    }

    occupancy_.beginTransition(layout);
    storage_index_.beginTransition();

    TransitionPlan plan;
    auto &target = target_;
    target.assign(num_qubits, kInvalidSite);

    // Farthest-from-storage-first order, shared by the parking loop and
    // the hold settlement (keeps both deterministic and AOD-friendly).
    const auto vertical_order = [&](QubitId a, QubitId b) {
        const auto ca = machine_.coordOf(layout.siteOf(a));
        const auto cb = machine_.coordOf(layout.siteOf(b));
        if (ca.y != cb.y)
            return ca.y < cb.y;
        if (ca.x != cb.x)
            return ca.x < cb.x;
        return a < b;
    };

    // ---- Step 1: the residency policy splits idle-in-compute qubits. -----
    // The policy sees the candidates in ascending qubit order and only
    // decides membership; both sides are re-sorted into the router's
    // deterministic order below, and no policy draws from the RNG, so
    // the default lookahead policy reproduces the pre-policy router
    // bit for bit.
    auto &candidates = candidates_;
    candidates.clear();
    for (QubitId q = 0; q < num_qubits; ++q) {
        if (partner[q] != kNoQubit || layout.zoneOf(q) != ZoneKind::Compute)
            continue;
        candidates.push_back(q);
    }
    auto &holds = holds_;
    holds.clear();
    auto &releases = releases_;
    releases.clear();
    const std::size_t gate_sites = stage.gates.size();
    const std::size_t capacity =
        num_compute_sites_ > gate_sites ? num_compute_sites_ - gate_sites : 0;
    const ResidencyQuery query{candidates,         stage_index, global_index,
                               analysis_,          options_.lookahead,
                               capacity};
    policy_->partition(query, holds, releases);
    PM_ASSERT(holds.size() + releases.size() == candidates.size(),
              "residency policy must partition every candidate");
    auto &holds_at = holds_at_;
    holds_at.assign(machine_.numSites(), 0);
    for (const QubitId q : holds)
        ++holds_at[layout.siteOf(q)];
    for (const QubitId q : releases) {
        // Classify the miss: a release with no further use in the
        // block is just correct parking; one with a known upcoming use
        // is a genuine window/pressure/cost miss.
        ++plan.num_lookahead_misses;
        if (analysis_.effectiveNextUse(stage_index, q) == kNoNextUse)
            ++plan.num_parked_no_reuse;
        else
            ++plan.num_window_misses;
    }
    std::sort(releases.begin(), releases.end(), vertical_order);
    for (const QubitId q : releases) {
        const SiteId from = layout.siteOf(q);
        const SiteId slot =
            storage_index_.claimSlot(machine_.coordOf(from),
                                     occupancy_.planned());
        occupancy_.depart(from);
        occupancy_.arrive(slot);
        target[q] = slot;
        plan.moves.push_back({q, from, slot});
        ++plan.num_parked;
        occupancy_.releaseResident(q, global_index);
    }

    // A hold that pays off: the qubit enters its next gate while still
    // resident, having skipped at least one storage round trip (for
    // persistent policies possibly a round trip across blocks).
    for (const auto &gate : stage.gates) {
        for (const QubitId q : {gate.a, gate.b}) {
            if (occupancy_.isResident(q)) {
                ++plan.num_reuse_hits;
                occupancy_.releaseResident(q, global_index);
            }
        }
    }

    // ---- Step 2: label the interacting qubits (Fig. 4 cases). ------------
    // Identical decision structure to the continuous router; holds are
    // invisible here — interactions are planned first and have priority.
    auto &label = label_;
    label.assign(num_qubits, MoveLabel::Static);
    auto &labeled = labeled_;
    labeled.assign(num_qubits, false);
    auto &statics_at = statics_at_;
    statics_at.assign(machine_.numSites(), 0);
    auto &undecided_order = undecided_order_;
    undecided_order.clear();
    auto &follower = follower_;
    follower.assign(num_qubits, kNoQubit);

    const auto set_label = [&](QubitId q, MoveLabel l) {
        PM_ASSERT(!labeled[q], "qubit labeled twice within one stage");
        label[q] = l;
        labeled[q] = true;
        plan.labels.emplace_back(q, l);
    };

    for (const auto &gate : stage.gates) {
        const QubitId qi = gate.a;
        const QubitId qj = gate.b;
        const SiteId si = layout.siteOf(qi);
        const SiteId sj = layout.siteOf(qj);
        const ZoneKind zi = machine_.zoneOf(si);
        const ZoneKind zj = machine_.zoneOf(sj);

        if (zi == ZoneKind::Storage && zj == ZoneKind::Storage) {
            // (b) Both in storage: the interaction site is found later.
            set_label(qi, MoveLabel::Mobile);
            set_label(qj, MoveLabel::Undecided);
            follower[qj] = qi;
            undecided_order.push_back(qj);
        } else if (zi != zj) {
            // (c) One in storage, one in the compute zone.
            const QubitId storage_q = zi == ZoneKind::Storage ? qi : qj;
            const QubitId compute_q = zi == ZoneKind::Storage ? qj : qi;
            set_label(storage_q, MoveLabel::Mobile);
            if (statics_at[layout.siteOf(compute_q)] > 0) {
                set_label(compute_q, MoveLabel::Undecided);
                follower[compute_q] = storage_q;
                undecided_order.push_back(compute_q);
            } else {
                set_label(compute_q, MoveLabel::Static);
                ++statics_at[layout.siteOf(compute_q)];
                target[storage_q] = layout.siteOf(compute_q);
            }
        } else {
            // (d) Both in the compute zone.
            if (si == sj) {
                // Already adjacent (repeated gate): nobody moves.
                set_label(qi, MoveLabel::Static);
                set_label(qj, MoveLabel::Static);
                statics_at[si] += 2;
                continue;
            }
            // Gate-aware mover choice: prefer to keep the pair at the
            // site hosting fewer held atoms, so holds are not displaced
            // by an avoidable static claim. The RNG decides only ties,
            // mirroring the continuous router's randomized case (d).
            const int holds_i = holds_at[si];
            const int holds_j = holds_at[sj];
            const bool pick_first = holds_i != holds_j
                                        ? holds_i > holds_j
                                        : rng_->nextBool(0.5);
            const QubitId mover = pick_first ? qi : qj;
            const QubitId stay = pick_first ? qj : qi;
            set_label(mover, MoveLabel::Mobile);
            if (statics_at[layout.siteOf(stay)] > 0) {
                set_label(stay, MoveLabel::Undecided);
                follower[stay] = mover;
                undecided_order.push_back(stay);
            } else {
                set_label(stay, MoveLabel::Static);
                ++statics_at[layout.siteOf(stay)];
                target[mover] = layout.siteOf(stay);
            }
        }
    }

    // ---- Occupancy bookkeeping before resolving open destinations. -------
    // Held qubits never departed, so their sites stay planned-occupied
    // and no open destination can land on top of them.
    for (QubitId q = 0; q < num_qubits; ++q) {
        if (labeled[q] && label[q] != MoveLabel::Static)
            occupancy_.depart(layout.siteOf(q));
    }
    for (QubitId q = 0; q < num_qubits; ++q) {
        if (labeled[q] && label[q] == MoveLabel::Mobile &&
            target[q] != kInvalidSite) {
            occupancy_.arrive(target[q]);
        }
    }

    // ---- Step 3: resolve undecided qubits, partners follow. --------------
    for (const QubitId undecided : undecided_order) {
        const SiteId site = findNearestFreeComputeSite(
            machine_, layout.siteOf(undecided), occupancy_.planned());
        if (site == kInvalidSite)
            fatal("compute zone has no free site; enlarge the machine");
        occupancy_.arrive(site);
        occupancy_.arrive(site);
        target[undecided] = site;
        const QubitId buddy = follower[undecided];
        PM_ASSERT(buddy != kNoQubit, "undecided qubit lost its partner");
        target[buddy] = site;
    }

    // ---- Step 4: settle the holds. ---------------------------------------
    // A hold survives in place only if its site ends the transition with
    // the held qubit alone; a site claimed by an interaction or shared
    // with another idle atom would blockade during the pulse.
    auto &relocated = relocated_;
    relocated.clear();
    auto &denied = denied_;
    denied.clear();
    std::sort(holds.begin(), holds.end(), vertical_order);
    for (const QubitId q : holds) {
        const SiteId site = layout.siteOf(q);
        if (occupancy_.plannedAt(site) == 1) {
            ++plan.num_held;
            occupancy_.holdResident(q, global_index);
            continue;
        }
        const SiteId dest =
            findNearestFreeComputeSite(machine_, site, occupancy_.planned());
        if (dest != kInvalidSite) {
            occupancy_.depart(site);
            occupancy_.arrive(dest);
            target[q] = dest;
            relocated.push_back(q);
            ++plan.num_held;
            ++plan.num_reuse_relocated;
            occupancy_.holdResident(q, global_index);
        } else {
            // No surviving compute site: the hold is denied and the
            // qubit parks after all.
            const SiteId slot = storage_index_.claimSlot(
                machine_.coordOf(site), occupancy_.planned());
            occupancy_.depart(site);
            occupancy_.arrive(slot);
            target[q] = slot;
            denied.push_back(q);
            ++plan.num_hold_denied;
            ++plan.num_parked;
            occupancy_.releaseResident(q, global_index);
        }
    }

    // ---- Emit gate-related and hold-settlement moves in decision order. --
    for (const auto &[q, l] : plan.labels) {
        if (l == MoveLabel::Static)
            continue;
        PM_ASSERT(target[q] != kInvalidSite, "mover without a destination");
        if (target[q] != layout.siteOf(q))
            plan.moves.push_back({q, layout.siteOf(q), target[q]});
    }
    for (const QubitId q : relocated)
        plan.moves.push_back({q, layout.siteOf(q), target[q]});
    for (const QubitId q : denied)
        plan.moves.push_back({q, layout.siteOf(q), target[q]});

    // ---- Apply transactionally (all departures, then all arrivals). ------
    for (const auto &move : plan.moves)
        layout.unplace(move.qubit);
    for (const auto &move : plan.moves)
        layout.place(move.qubit, move.to);

    for (const auto &gate : stage.gates) {
        PM_ASSERT(layout.siteOf(gate.a) == layout.siteOf(gate.b),
                  "router failed to co-locate a gate pair");
        PM_ASSERT(layout.zoneOf(gate.a) == ZoneKind::Compute,
                  "gate pair must sit in the compute zone");
    }
    for (QubitId q = 0; q < num_qubits; ++q) {
        if (partner[q] != kNoQubit)
            continue;
        if (occupancy_.isResident(q)) {
            PM_ASSERT(layout.zoneOf(q) == ZoneKind::Compute &&
                          layout.occupancy(layout.siteOf(q)) == 1,
                      "held qubit must end the transition alone in compute");
        } else {
            PM_ASSERT(layout.zoneOf(q) == ZoneKind::Storage,
                      "released idle qubit must end in storage");
        }
    }
    return plan;
}

} // namespace powermove
