#include "reuse/analysis.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace powermove {

void
ReuseAnalysis::beginBlock(const std::vector<Stage> &stages,
                          std::size_t num_qubits, bool final_block)
{
    uses_.assign(num_qubits, {});
    num_stages_ = stages.size();
    final_block_ = final_block;
    for (std::size_t s = 0; s < stages.size(); ++s) {
        for (const CzGate &gate : stages[s].gates) {
            PM_ASSERT(gate.a < num_qubits && gate.b < num_qubits,
                      "stage gate outside circuit width");
            // Stages arrive in order, so each per-qubit list stays
            // sorted without an explicit sort.
            uses_[gate.a].push_back(static_cast<std::uint32_t>(s));
            uses_[gate.b].push_back(static_cast<std::uint32_t>(s));
        }
    }
}

std::size_t
ReuseAnalysis::nextUseAfter(std::size_t stage, QubitId qubit) const
{
    PM_ASSERT(qubit < uses_.size(), "qubit outside the announced block");
    const auto &uses = uses_[qubit];
    const auto it = std::upper_bound(uses.begin(), uses.end(),
                                     static_cast<std::uint32_t>(stage));
    return it == uses.end() ? kNoNextUse : static_cast<std::size_t>(*it);
}

std::size_t
ReuseAnalysis::effectiveNextUse(std::size_t stage, QubitId qubit) const
{
    const std::size_t next = nextUseAfter(stage, qubit);
    // In the final block, program end is a reuse event one past the
    // last stage: a finished qubit held through the closing pulses
    // skips its final park move and is never excited afterwards.
    if (next == kNoNextUse && final_block_)
        return num_stages_;
    return next;
}

bool
ReuseAnalysis::shouldHold(std::size_t stage, QubitId qubit,
                          std::size_t window) const
{
    const std::size_t next = effectiveNextUse(stage, qubit);
    return next != kNoNextUse && next - stage <= window;
}

} // namespace powermove
