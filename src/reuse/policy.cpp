#include "reuse/policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace powermove {

namespace {

/**
 * The paper's fixed-window policy: hold iff the next interaction lies
 * within the lookahead window. Residency resets at block boundaries,
 * reproducing the pre-policy reuse router bit for bit (the default).
 */
class LookaheadPolicy final : public ResidencyPolicyImpl
{
  public:
    explicit LookaheadPolicy(std::size_t lookahead) : lookahead_(lookahead)
    {
        PM_ASSERT(lookahead_ >= 1, "reuse lookahead must be >= 1");
    }

    ResidencyPolicy kind() const override
    {
        return ResidencyPolicy::Lookahead;
    }

    bool persistsAcrossBlocks() const override { return false; }

    void
    partition(const ResidencyQuery &query, std::vector<QubitId> &holds,
              std::vector<QubitId> &releases) override
    {
        for (const QubitId q : query.candidates) {
            if (query.analysis.shouldHold(query.stage, q, lookahead_))
                holds.push_back(q);
            else
                releases.push_back(q);
        }
    }

  private:
    std::size_t lookahead_;
};

/**
 * Shared shape of the pressure-driven policies: hold every candidate
 * while the compute zone has room; above capacity, evict the worst-
 * ranked candidates. Subclasses supply the ranking.
 */
class PressurePolicy : public ResidencyPolicyImpl
{
  public:
    bool persistsAcrossBlocks() const override { return true; }

    void
    partition(const ResidencyQuery &query, std::vector<QubitId> &holds,
              std::vector<QubitId> &releases) override
    {
        wantsHolds(query, wanted_, releases);
        if (wanted_.size() <= query.capacity) {
            holds.insert(holds.end(), wanted_.begin(), wanted_.end());
            return;
        }
        // Over capacity: keep the best-ranked, evict the rest. The
        // sort key is policy-specific; ties keep the lower qubit id.
        rankForEviction(query, wanted_);
        const std::size_t evict = wanted_.size() - query.capacity;
        releases.insert(releases.end(), wanted_.begin(),
                        wanted_.begin() + static_cast<std::ptrdiff_t>(evict));
        holds.insert(holds.end(),
                     wanted_.begin() + static_cast<std::ptrdiff_t>(evict),
                     wanted_.end());
    }

  protected:
    /** Appends would-be holds to @p wanted, hard releases directly. */
    virtual void wantsHolds(const ResidencyQuery &query,
                            std::vector<QubitId> &wanted,
                            std::vector<QubitId> &releases) = 0;

    /** Orders @p wanted evict-first (worst residency value leads). */
    virtual void rankForEviction(const ResidencyQuery &query,
                                 std::vector<QubitId> &wanted) = 0;

  private:
    std::vector<QubitId> wanted_;
};

/**
 * Least-recently-used: every idle atom stays resident; under pressure
 * the atom whose last gate lies farthest in the past goes first —
 * pure recency, blind to the future.
 */
class LruPolicy final : public PressurePolicy
{
  public:
    ResidencyPolicy kind() const override { return ResidencyPolicy::Lru; }

    void
    beginProgram(std::size_t num_qubits) override
    {
        // Recency must survive block boundaries; only (re)size on a
        // new program (a router outlives exactly one circuit width).
        if (last_use_.size() != num_qubits)
            last_use_.assign(num_qubits, 0);
    }

    void
    noteInteraction(QubitId qubit, std::size_t global_stage) override
    {
        // +1 keeps 0 free for "never interacted" (always oldest).
        last_use_[qubit] = global_stage + 1;
    }

  protected:
    void
    wantsHolds(const ResidencyQuery &query, std::vector<QubitId> &wanted,
               std::vector<QubitId> &) override
    {
        wanted.assign(query.candidates.begin(), query.candidates.end());
    }

    void
    rankForEviction(const ResidencyQuery &, std::vector<QubitId> &wanted)
        override
    {
        std::sort(wanted.begin(), wanted.end(),
                  [this](QubitId a, QubitId b) {
                      if (last_use_[a] != last_use_[b])
                          return last_use_[a] < last_use_[b];
                      return a < b;
                  });
    }

  private:
    std::vector<std::size_t> last_use_;
};

/**
 * Longest-time-to-interaction (Belady over the known next-use index):
 * every idle atom stays resident; under pressure the atom whose next
 * use lies farthest in the future goes first, an unknown next use
 * (later block) counting as farthest. Optimal for the hit rate given
 * the per-block oracle, and the policy that buys cross-block reuse on
 * QSIM/QFT/BV.
 */
class LtiPolicy final : public PressurePolicy
{
  public:
    ResidencyPolicy kind() const override { return ResidencyPolicy::Lti; }

  protected:
    void
    wantsHolds(const ResidencyQuery &query, std::vector<QubitId> &wanted,
               std::vector<QubitId> &) override
    {
        wanted.assign(query.candidates.begin(), query.candidates.end());
    }

    void
    rankForEviction(const ResidencyQuery &query,
                    std::vector<QubitId> &wanted) override
    {
        constexpr std::size_t kFarthest =
            std::numeric_limits<std::size_t>::max();
        const auto distance = [&](QubitId q) {
            const std::size_t next =
                query.analysis.effectiveNextUse(query.stage, q);
            return next == kNoNextUse ? kFarthest : next - query.stage;
        };
        std::sort(wanted.begin(), wanted.end(),
                  [&](QubitId a, QubitId b) {
                      const std::size_t da = distance(a);
                      const std::size_t db = distance(b);
                      if (da != db)
                          return da > db;
                      return a < b;
                  });
    }
};

/**
 * Fidelity-weighted replacement: price both sides of the trade with
 * the Eq. (1) factors and hold only when staying resident is cheaper
 * than the storage round trip it avoids. See fidelityBreakEvenStages()
 * for the cost model; with Table 1 numbers the break-even sits between
 * one and two stages, so this policy is the conservative end of the
 * spectrum — it reuses only across back-to-back interactions (within
 * or across blocks) where the four transfers can never pay for
 * themselves.
 */
class FidelityPolicy final : public PressurePolicy
{
  public:
    explicit FidelityPolicy(const HardwareParams &params)
    {
        const double t2_us = params.t2.micros();
        const auto dephasing = [t2_us](double idle_us) {
            return t2_us > 0.0 ? idle_us / t2_us : 0.0;
        };
        // Cost of one resident stage: the excitation exposure of the
        // intervening pulse plus dephasing for its duration. (Movement
        // time between pulses is unknown at decision time and hits
        // both sides; the pulse term is the stable lower bound.)
        stage_cost_ = -std::log(params.f_excitation) +
                      dephasing(params.t_cz.micros());
        // A full round trip: two transfers out + two back, plus the
        // transit dephasing of the transfers and two shuttle legs
        // across the inter-zone gap.
        const double shuttle_us =
            params
                .moveDuration(Distance::microns(
                    params.zone_gap.microns() + params.site_pitch.microns()))
                .micros();
        round_trip_cost_ =
            4.0 * -std::log(params.f_transfer) +
            dephasing(4.0 * params.t_transfer.micros() + 2.0 * shuttle_us);
        // The final-block virtual reuse event only ever saves the park
        // half of the trip (nothing retrieves the atom afterwards).
        park_cost_ = round_trip_cost_ / 2.0;
    }

    ResidencyPolicy kind() const override
    {
        return ResidencyPolicy::Fidelity;
    }

  protected:
    void
    wantsHolds(const ResidencyQuery &query, std::vector<QubitId> &wanted,
               std::vector<QubitId> &releases) override
    {
        wanted.clear();
        for (const QubitId q : query.candidates) {
            const double margin = holdMargin(query, q);
            if (margin >= 0.0) {
                wanted.push_back(q);
                if (margin_of_.size() <= q)
                    margin_of_.resize(q + 1, 0.0);
                margin_of_[q] = margin;
            } else {
                releases.push_back(q);
            }
        }
    }

    void
    rankForEviction(const ResidencyQuery &,
                    std::vector<QubitId> &wanted) override
    {
        // Evict the smallest benefit first.
        std::sort(wanted.begin(), wanted.end(),
                  [this](QubitId a, QubitId b) {
                      if (margin_of_[a] != margin_of_[b])
                          return margin_of_[a] < margin_of_[b];
                      return a < b;
                  });
    }

  private:
    /** Projected savings minus projected residency cost (log scale). */
    double
    holdMargin(const ResidencyQuery &query, QubitId q) const
    {
        const std::size_t next =
            query.analysis.nextUseAfter(query.stage, q);
        std::size_t distance;
        double savings;
        if (next != kNoNextUse) {
            distance = next - query.stage;
            savings = round_trip_cost_;
        } else if (query.analysis.finalBlock()) {
            // Virtual reuse event: exposures until program end buy
            // only the avoided park.
            distance = query.analysis.numStages() - query.stage;
            savings = park_cost_;
        } else {
            // Cross-block bet: assume the earliest possible reuse, the
            // first stage of the next block. Pays on back-to-back
            // single-stage blocks (QSIM-style CX brackets) and prices
            // longer idles out naturally.
            distance = query.analysis.numStages() - query.stage;
            savings = round_trip_cost_;
        }
        return savings - static_cast<double>(distance) * stage_cost_;
    }

    double stage_cost_ = 0.0;
    double round_trip_cost_ = 0.0;
    double park_cost_ = 0.0;
    std::vector<double> margin_of_;
};

} // namespace

double
fidelityBreakEvenStages(const HardwareParams &params)
{
    // Same formulas as FidelityPolicy's constructor, collapsed to the
    // one number docs and tests cite.
    const double t2_us = params.t2.micros();
    const double stage_cost =
        -std::log(params.f_excitation) +
        (t2_us > 0.0 ? params.t_cz.micros() / t2_us : 0.0);
    const double shuttle_us =
        params
            .moveDuration(Distance::microns(params.zone_gap.microns() +
                                            params.site_pitch.microns()))
            .micros();
    const double round_trip =
        4.0 * -std::log(params.f_transfer) +
        (t2_us > 0.0
             ? (4.0 * params.t_transfer.micros() + 2.0 * shuttle_us) / t2_us
             : 0.0);
    return stage_cost > 0.0
               ? round_trip / stage_cost
               : std::numeric_limits<double>::infinity();
}

std::unique_ptr<ResidencyPolicyImpl>
makeResidencyPolicy(ResidencyPolicy policy, std::size_t lookahead,
                    const HardwareParams &params)
{
    switch (policy) {
    case ResidencyPolicy::Lookahead:
        return std::make_unique<LookaheadPolicy>(lookahead);
    case ResidencyPolicy::Lru:
        return std::make_unique<LruPolicy>();
    case ResidencyPolicy::Lti:
        return std::make_unique<LtiPolicy>();
    case ResidencyPolicy::Fidelity:
        return std::make_unique<FidelityPolicy>(params);
    }
    panic("unknown residency policy");
}

} // namespace powermove
