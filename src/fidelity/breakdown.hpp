/**
 * @file
 * Output-fidelity accounting (paper Sec. 2.2, Eq. 1).
 *
 * The output fidelity decomposes into five factors:
 *
 *   f = f1^g1 * f2^g2 * f_exc^(sum_i n_i) * f_trans^N_trans
 *       * prod_q (1 - T_q / T2)
 *
 * where g1/g2 count gates, n_i counts compute-zone qubits not acted on
 * by CZ gates during the i-th Rydberg excitation, N_trans counts trap
 * transfers, and T_q is qubit q's idle time outside the storage zone.
 * Following the paper, comparisons omit the 1Q term by default since 1Q
 * layers are identical across compilers.
 */

#ifndef POWERMOVE_FIDELITY_BREAKDOWN_HPP
#define POWERMOVE_FIDELITY_BREAKDOWN_HPP

#include <cstddef>
#include <string>

#include "common/units.hpp"

namespace powermove {

/** Per-factor fidelity decomposition of one compiled program. */
struct FidelityBreakdown
{
    /** Executed single-qubit gates (g1). */
    std::size_t one_q_gates = 0;
    /** Executed CZ gates (g2). */
    std::size_t cz_gates = 0;
    /** Total idle-qubit exposures across all Rydberg pulses (sum n_i). */
    std::size_t excitation_exposures = 0;
    /** Trap transfers (N_trans; pickup + drop per relocation). */
    std::size_t transfers = 0;
    /** Number of Rydberg pulses (S). */
    std::size_t pulses = 0;

    /** End-to-end execution wall time (T_exe). */
    Duration exec_time;
    /** Sum over qubits of unprotected idle time (sum_q T_q). */
    Duration total_idle;

    /** f1^g1. */
    double one_q_factor = 1.0;
    /** f2^g2. */
    double two_q_factor = 1.0;
    /** f_exc^(sum n_i). */
    double excitation_factor = 1.0;
    /** f_trans^N_trans. */
    double transfer_factor = 1.0;
    /** prod_q max(0, 1 - T_q/T2). */
    double decoherence_factor = 1.0;

    /**
     * Total output fidelity per Eq. (1). The 1Q term is excluded unless
     * @p include_one_q is set (paper convention, Sec. 2.2).
     */
    double fidelity(bool include_one_q = false) const;

    /** One-line summary for logs and harness output. */
    std::string toString() const;
};

} // namespace powermove

#endif // POWERMOVE_FIDELITY_BREAKDOWN_HPP
