#include "fidelity/breakdown.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace powermove {

double
FidelityBreakdown::fidelity(bool include_one_q) const
{
    double product = two_q_factor * excitation_factor * transfer_factor *
                     decoherence_factor;
    if (include_one_q)
        product *= one_q_factor;
    return product;
}

std::string
FidelityBreakdown::toString() const
{
    std::ostringstream os;
    os << "fidelity=" << formatFidelity(fidelity())
       << " (2q=" << formatFidelity(two_q_factor)
       << " exc=" << formatFidelity(excitation_factor)
       << " trans=" << formatFidelity(transfer_factor)
       << " deco=" << formatFidelity(decoherence_factor) << ")"
       << " T_exe=" << formatGeneral(exec_time.micros(), 6) << "us"
       << " pulses=" << pulses << " transfers=" << transfers;
    return os.str();
}

} // namespace powermove
