#include "fidelity/evaluator.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace powermove {

namespace {

/** Integer power of a fidelity factor, numerically stable in log space. */
double
fidelityPower(double base, std::size_t exponent)
{
    if (exponent == 0)
        return 1.0;
    return std::exp(static_cast<double>(exponent) * std::log(base));
}

} // namespace

FidelityBreakdown
evaluateSchedule(const MachineSchedule &schedule)
{
    const Machine &machine = schedule.machine();
    const HardwareParams &params = machine.params();
    const std::size_t num_qubits = schedule.numQubits();

    std::vector<SiteId> positions = schedule.initialSites();
    std::vector<double> idle_us(num_qubits, 0.0);

    FidelityBreakdown result;

    const auto in_storage = [&](QubitId q) {
        return machine.zoneOf(positions[q]) == ZoneKind::Storage;
    };

    for (const auto &instruction : schedule.instructions()) {
        if (const auto *layer = std::get_if<OneQLayerOp>(&instruction)) {
            const Duration t = params.t_one_q * static_cast<double>(layer->depth);
            result.exec_time += t;
            result.one_q_gates += layer->gate_count;
            // Raman layers address every qubit in parallel; no idle time.
        } else if (const auto *op = std::get_if<MoveBatchOp>(&instruction)) {
            const Duration t = op->batch.duration(machine);
            result.exec_time += t;
            result.transfers += 2 * op->batch.numMoves();

            std::vector<bool> stored_before(num_qubits);
            for (QubitId q = 0; q < num_qubits; ++q)
                stored_before[q] = in_storage(q);
            for (const auto &group : op->batch.groups) {
                for (const auto &move : group.moves) {
                    PM_ASSERT(positions[move.qubit] == move.from,
                              "evaluator replay diverged from schedule");
                    positions[move.qubit] = move.to;
                }
            }
            for (QubitId q = 0; q < num_qubits; ++q) {
                if (!(stored_before[q] && in_storage(q)))
                    idle_us[q] += t.micros();
            }
        } else {
            const auto &pulse = std::get<RydbergOp>(instruction);
            result.exec_time += params.t_cz;
            ++result.pulses;
            result.cz_gates += pulse.gates.size();

            std::vector<bool> active(num_qubits, false);
            for (const auto &gate : pulse.gates) {
                active[gate.a] = true;
                active[gate.b] = true;
            }
            for (QubitId q = 0; q < num_qubits; ++q) {
                if (active[q])
                    continue;
                if (in_storage(q))
                    continue;
                // Idle in the compute zone: excited and re-lowered by the
                // global pulse (paper: f_exc = 99.75% per exposure).
                ++result.excitation_exposures;
                idle_us[q] += params.t_cz.micros();
            }
        }
    }

    result.one_q_factor = fidelityPower(params.f_one_q, result.one_q_gates);
    result.two_q_factor = fidelityPower(params.f_cz, result.cz_gates);
    result.excitation_factor =
        fidelityPower(params.f_excitation, result.excitation_exposures);
    result.transfer_factor =
        fidelityPower(params.f_transfer, result.transfers);

    double decoherence = 1.0;
    double total_idle_us = 0.0;
    for (QubitId q = 0; q < num_qubits; ++q) {
        total_idle_us += idle_us[q];
        const double survival = 1.0 - idle_us[q] / params.t2.micros();
        decoherence *= std::max(0.0, survival);
    }
    result.decoherence_factor = decoherence;
    result.total_idle = Duration::micros(total_idle_us);
    return result;
}

} // namespace powermove
