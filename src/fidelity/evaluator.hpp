/**
 * @file
 * The schedule evaluator: replays a machine program and produces the
 * Eq. (1) fidelity breakdown plus the execution-time metric.
 *
 * Timing model (paper Table 1 and Sec. 6.2):
 *  - 1Q layer:        depth * t_1q, all qubits considered busy;
 *  - movement batch:  2 * t_transfer + slowest member move;
 *  - Rydberg pulse:   t_cz.
 *
 * Idle (decoherence-accruing) time for qubit q is the duration of every
 * instruction during which q is neither executing a gate nor protected
 * by the storage zone; a qubit in transit counts as unprotected, and a
 * qubit only counts as stored during an instruction when it is in
 * storage both before and after it.
 */

#ifndef POWERMOVE_FIDELITY_EVALUATOR_HPP
#define POWERMOVE_FIDELITY_EVALUATOR_HPP

#include "fidelity/breakdown.hpp"
#include "isa/machine_schedule.hpp"

namespace powermove {

/** Replays @p schedule and computes its fidelity/time breakdown. */
FidelityBreakdown evaluateSchedule(const MachineSchedule &schedule);

} // namespace powermove

#endif // POWERMOVE_FIDELITY_EVALUATOR_HPP
