#include "fidelity/trace.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace powermove {

double
ScheduleTrace::storageUtilization() const
{
    if (storage_dwell.empty() || total.micros() <= 0.0)
        return 0.0;
    double sum = 0.0;
    for (const auto &dwell : storage_dwell)
        sum += dwell / total;
    return sum / static_cast<double>(storage_dwell.size());
}

double
ScheduleTrace::movementShare() const
{
    if (total.micros() <= 0.0)
        return 0.0;
    return moving / total;
}

ScheduleTrace
traceSchedule(const MachineSchedule &schedule)
{
    const Machine &machine = schedule.machine();
    const HardwareParams &params = machine.params();
    const std::size_t num_qubits = schedule.numQubits();

    ScheduleTrace trace;
    trace.storage_dwell.assign(num_qubits, Duration::micros(0.0));

    std::vector<SiteId> positions = schedule.initialSites();
    Duration clock = Duration::micros(0.0);

    const auto credit_storage = [&](Duration span) {
        for (QubitId q = 0; q < num_qubits; ++q) {
            if (machine.zoneOf(positions[q]) == ZoneKind::Storage)
                trace.storage_dwell[q] += span;
        }
    };

    for (const auto &instruction : schedule.instructions()) {
        InstructionTrace entry;
        entry.start = clock;
        if (const auto *layer = std::get_if<OneQLayerOp>(&instruction)) {
            entry.kind = TraceKind::OneQ;
            entry.duration =
                params.t_one_q * static_cast<double>(layer->depth);
            entry.involved = layer->gate_count;
            credit_storage(entry.duration);
        } else if (const auto *op = std::get_if<MoveBatchOp>(&instruction)) {
            entry.kind = TraceKind::Move;
            entry.duration = op->batch.duration(machine);
            entry.involved = op->batch.numMoves();
            trace.moving += entry.duration;
            trace.max_batch_moves =
                std::max(trace.max_batch_moves, entry.involved);
            // Movers in transit are not stored; stationary qubits keep
            // their zone for the whole batch.
            credit_storage(entry.duration);
            for (const auto &group : op->batch.groups) {
                for (const auto &move : group.moves) {
                    PM_ASSERT(positions[move.qubit] == move.from,
                              "trace replay diverged from schedule");
                    trace.total_move_distance =
                        trace.total_move_distance +
                        machine.distanceBetween(move.from, move.to);
                    // Subtract transit credit when departing storage.
                    if (machine.zoneOf(move.from) == ZoneKind::Storage) {
                        trace.storage_dwell[move.qubit] -= entry.duration;
                    }
                    positions[move.qubit] = move.to;
                }
            }
        } else {
            const auto &pulse = std::get<RydbergOp>(instruction);
            entry.kind = TraceKind::Rydberg;
            entry.duration = params.t_cz;
            entry.involved = pulse.gates.size() * 2;
            credit_storage(entry.duration);
        }
        clock += entry.duration;
        trace.instructions.push_back(entry);
    }
    trace.total = clock;
    return trace;
}

} // namespace powermove
