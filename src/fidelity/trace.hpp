/**
 * @file
 * Timeline traces of compiled programs.
 *
 * Where the evaluator reduces a schedule to the Eq. (1) scalars, the
 * trace keeps the time axis: per-instruction start times and durations,
 * per-qubit storage dwell, and movement statistics. Used by the
 * examples, by the ablation analysis, and wherever "where does the time
 * go?" needs an answer.
 */

#ifndef POWERMOVE_FIDELITY_TRACE_HPP
#define POWERMOVE_FIDELITY_TRACE_HPP

#include <cstdint>
#include <vector>

#include "isa/machine_schedule.hpp"

namespace powermove {

/** Kind tags for traced instructions. */
enum class TraceKind : std::uint8_t { OneQ, Move, Rydberg };

/** One instruction on the wall-clock axis. */
struct InstructionTrace
{
    TraceKind kind = TraceKind::OneQ;
    Duration start;
    Duration duration;
    /** Moved qubits (Move) or touched qubits (Rydberg); empty for 1Q. */
    std::size_t involved = 0;
};

/** A full program timeline. */
struct ScheduleTrace
{
    std::vector<InstructionTrace> instructions;
    /** Wall time per qubit spent inside the storage zone. */
    std::vector<Duration> storage_dwell;
    /** End-to-end makespan. */
    Duration total;
    /** Wall time spent moving atoms (sum of batch durations). */
    Duration moving;
    /** Summed point-to-point distance over all relocations. */
    Distance total_move_distance;
    /** Largest number of qubits carried by one batch. */
    std::size_t max_batch_moves = 0;

    /** Mean fraction of the makespan spent in storage, over qubits. */
    double storageUtilization() const;
    /** Fraction of the makespan spent on movement. */
    double movementShare() const;
};

/** Replays @p schedule and extracts its timeline. */
ScheduleTrace traceSchedule(const MachineSchedule &schedule);

} // namespace powermove

#endif // POWERMOVE_FIDELITY_TRACE_HPP
