/**
 * @file
 * Async job service: priorities, deadlines, admission control, and
 * fingerprint-sharded worker pools over the compile/cache core.
 *
 * Where CompilationService is a batch front-end (submit, block on the
 * future), JobService is the production server shape: submit() returns
 * immediately with a job ID plus a future, every lifecycle transition
 * lands in a queryable per-job timeline (service/timeline.hpp), and the
 * service pushes back instead of buffering unboundedly.
 *
 *  - Priority: higher-priority jobs pop first within their shard; ties
 *    run in submission order. A duplicate submission of an in-flight
 *    fingerprint at a higher priority promotes the queued job
 *    (priority inheritance), so a cheap duplicate can never be starved
 *    behind the original's low priority.
 *  - Deadlines: a job's optional deadline bounds its *queue wait*. A
 *    job still queued when its deadline passes is Expired and its
 *    future fails; once a compilation started (or the job attached to
 *    one already running), it completes. Expiry is detected when a
 *    worker pops the job — there is no timer thread.
 *  - Admission control: each shard accepts at most
 *    JobServiceOptions::max_queue queued (not yet running) jobs;
 *    beyond that, submissions are Rejected and their future fails with
 *    RejectedError immediately, so overload surfaces as backpressure
 *    at the edge instead of unbounded memory growth.
 *  - Sharding: jobs land on shard (fingerprint % num_shards). Each
 *    shard owns its queue, mutex, worker threads, in-memory LRU cache,
 *    and machine interning, so jobs for independent machine configs
 *    never contend on one queue or one cache lock. All shards share
 *    one persistent DiskCache (its index lock covers bookkeeping only,
 *    never file I/O or deserialization).
 *
 * Determinism matches CompilationService: each job compiles with the
 * deriveJobSeed() rule, so results are independent of shard count,
 * worker count, priority order, and cache state — effectiveOptions()
 * replays any job bit-identically outside the service, and a result
 * served from disk is byte-identical to a fresh compile.
 */

#ifndef POWERMOVE_SERVICE_JOB_SERVICE_HPP
#define POWERMOVE_SERVICE_JOB_SERVICE_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "service/disk_cache.hpp"
#include "service/observe.hpp"
#include "service/service.hpp"
#include "service/timeline.hpp"

namespace powermove::service {

/** Thrown through the future of a job refused by admission control. */
class RejectedError : public Error
{
  public:
    explicit RejectedError(const std::string &what) : Error(what) {}
};

/** Thrown through the future of a job whose deadline passed in queue. */
class ExpiredError : public Error
{
  public:
    explicit ExpiredError(const std::string &what) : Error(what) {}
};

/** Server-assigned job identifier; unique within one JobService. */
using JobId = std::uint64_t;

/** One async submission: the compile job plus its scheduling class. */
struct JobRequest
{
    CompileJob job;
    /** Larger runs earlier within the shard; may be negative. */
    int priority = 0;
    /**
     * Queue-wait bound in milliseconds from submission; 0 (the
     * default) means no deadline.
     */
    double deadline_ms = 0.0;
};

/** What submit() hands back. */
struct JobTicket
{
    JobId id = 0;
    /** Resolves to the result, or throws (Rejected/Expired/compile). */
    std::future<JobResult> result;
};

/** A point-in-time copy of one job's record; queryable forever. */
struct JobStatus
{
    JobId id = 0;
    std::uint64_t fingerprint = 0;
    int priority = 0;
    JobState state = JobState::Queued;
    /** Full transition history with timestamps. */
    Timeline timeline;
    /** Failure/rejection/expiry description; empty on success paths. */
    std::string error;
};

/** Service construction knobs. */
struct JobServiceOptions
{
    /** Worker-pool shards; 0 picks min(hardware threads, 4). */
    std::size_t num_shards = 0;
    /**
     * Worker threads per shard; 0 spreads one hardware thread per
     * worker across shards (at least 1 per shard).
     */
    std::size_t workers_per_shard = 0;
    /** Per-shard in-memory result cache entries; 0 disables. */
    std::size_t cache_capacity = 128;
    /**
     * Admission bound: maximum queued (admitted, not yet running) jobs
     * per shard; 0 means unbounded. Submissions beyond it are Rejected.
     */
    std::size_t max_queue = 1024;
    /** Persistent disk cache directory; empty disables the disk tier. */
    std::string cache_dir;
    /** Disk-cache byte budget. */
    std::uint64_t disk_cache_bytes = 256ull << 20;
    /** Apply the deriveJobSeed() rule (see ServiceOptions). */
    bool derive_job_seeds = true;
    /**
     * Finished-job records retained for status() queries; the oldest
     * finished records are forgotten beyond this. 0 keeps every record
     * for the service's lifetime.
     */
    std::size_t max_finished_records = 1 << 20;
    /**
     * Observability bundle shared with the disk cache; null (the
     * default) leaves the service uninstrumented — the disabled path
     * costs one pointer check per site.
     */
    std::shared_ptr<obs::Observability> obs;
    /**
     * Jobs whose submit-to-terminal wall time is at least this many
     * milliseconds log one warn-level slow_job line; 0 disables.
     */
    double slow_job_ms = 0.0;
};

/** Counters snapshot; all cumulative except queued. */
struct JobServiceStats
{
    std::size_t submitted = 0;
    /** Refused by admission control. */
    std::size_t rejected = 0;
    /** Deadline passed while queued. */
    std::size_t expired = 0;
    /** Attached to an identical in-flight job. */
    std::size_t coalesced = 0;
    /** Served from a shard's memory cache at submit. */
    std::size_t memory_hits = 0;
    /** Served from the persistent disk cache by a worker. */
    std::size_t disk_hits = 0;
    /** Compiled fresh (full miss), successfully. */
    std::size_t compiled = 0;
    /** Compilation threw. */
    std::size_t failed = 0;
    /** Jobs currently admitted but not yet resolved, across shards. */
    std::size_t queued = 0;
    std::size_t num_shards = 0;
    std::size_t workers_per_shard = 0;
    /** Disk-tier counters; all zero without a cache_dir. */
    DiskCacheStats disk;
};

/** Async, sharded, admission-controlled compilation server. */
class JobService
{
  public:
    explicit JobService(JobServiceOptions options = {});

    /** Drains every admitted job (expiring overdue ones), then joins. */
    ~JobService();

    JobService(const JobService &) = delete;
    JobService &operator=(const JobService &) = delete;

    /**
     * Submits one job. Never blocks on compilation: the returned future
     * resolves later (or is already resolved for cache hits, rejections
     * and the degenerate already-expired deadline).
     */
    JobTicket submit(JobRequest request);

    /** Convenience overload building the request in place. */
    JobTicket submit(CompileJob job, int priority = 0,
                     double deadline_ms = 0.0);

    /**
     * The record of @p id, or nullopt for an unknown/forgotten job.
     * Finished jobs stay queryable (bounded by max_finished_records).
     */
    std::optional<JobStatus> status(JobId id) const;

    /** Blocks until no admitted job remains in any shard. */
    void waitIdle();

    /** Point-in-time counters aggregated over all shards. */
    JobServiceStats stats() const;

    /** The options this service resolved at construction. */
    const JobServiceOptions &options() const { return options_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Waiter
    {
        JobId id = 0;
        std::promise<JobResult> promise;
        /** Meaningful only when has_deadline. */
        Clock::time_point deadline;
        bool has_deadline = false;
    };

    struct PendingJob
    {
        CompileJob job;
        int priority = 0;
        std::uint64_t seq = 0;
        bool running = false;
        std::vector<Waiter> waiters;
    };

    /** Max-priority, then FIFO; stale entries are skipped on pop. */
    struct QueueEntry
    {
        int priority = 0;
        std::uint64_t seq = 0;
        std::uint64_t fingerprint = 0;

        bool
        operator<(const QueueEntry &other) const
        {
            if (priority != other.priority)
                return priority < other.priority;
            return seq > other.seq; // earlier submissions first
        }
    };

    struct Shard
    {
        mutable std::mutex mutex;
        std::condition_variable work_ready;
        std::condition_variable idle;
        bool stopping = false;
        std::priority_queue<QueueEntry> queue;
        std::unordered_map<std::uint64_t, PendingJob> pending;
        /** Admitted jobs not yet running (the admission-control gauge). */
        std::size_t queued_jobs = 0;
        CompileCache cache;
        std::unordered_map<std::uint64_t, std::weak_ptr<const Machine>>
            machines;
        std::vector<std::thread> workers;
        /** powermove_shard_queue_depth{shard=...}; null when obs is off. */
        obs::Gauge *depth_gauge = nullptr;

        explicit Shard(std::size_t cache_capacity) : cache(cache_capacity) {}
    };

    Shard &shardFor(std::uint64_t fingerprint);
    void workerLoop(Shard &shard);

    /** Interned machine for @p config within @p shard (builds on miss). */
    std::shared_ptr<const Machine>
    internMachine(Shard &shard, const MachineConfig &config,
                  std::unique_lock<std::mutex> &lock);

    /** Creates the record for a new job in state Queued. */
    void createRecord(JobId id, std::uint64_t fingerprint, int priority);

    /**
     * Appends @p state (and optional error) to @p id's record. @p detail
     * refines the timeline event (e.g. "memory" vs "disk" for Cached).
     * Feeds the state counters and, on terminal states, the wait/run
     * latency histograms and the slow-job log.
     */
    void recordState(JobId id, JobState state, std::string error = {},
                     std::string detail = {});

    /**
     * Stitches @p id's timeline into the trace collector (see
     * appendJobTrace); no-op when observability is off. @p source
     * annotates the terminal marker with the serving tier.
     */
    void traceJob(JobId id, std::string_view source,
                  const std::vector<PassProfile> *passes = nullptr,
                  const JobTraceIo *io = nullptr);

    JobServiceOptions options_;
    /** Aliases options_.obs; null when observability is off. */
    std::shared_ptr<obs::Observability> obs_;
    /** Resolved metric handles; null exactly when obs_ is null. */
    std::unique_ptr<ServiceMetricHandles> metric_;
    std::shared_ptr<DiskCache> disk_;
    std::vector<std::unique_ptr<Shard>> shards_;

    mutable std::mutex records_mutex_;
    std::unordered_map<JobId, JobStatus> records_;
    /** Finished ids in finish order, for max_finished_records pruning. */
    std::deque<JobId> finished_order_;
    std::atomic<JobId> next_id_{1};
    std::atomic<std::uint64_t> next_seq_{1};

    mutable std::mutex stats_mutex_;
    std::size_t submitted_ = 0;
    std::size_t rejected_ = 0;
    std::size_t expired_ = 0;
    std::size_t coalesced_ = 0;
    std::size_t memory_hits_ = 0;
    std::size_t disk_hits_ = 0;
    std::size_t compiled_ = 0;
    std::size_t failed_ = 0;
};

} // namespace powermove::service

#endif // POWERMOVE_SERVICE_JOB_SERVICE_HPP
