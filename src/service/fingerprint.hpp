/**
 * @file
 * Content-addressed fingerprints of compilation jobs.
 *
 * The batch service deduplicates work by hashing everything that
 * determines a compilation's outcome: the circuit's gate list, the
 * machine shape (including every hardware parameter), and the compiler
 * options. Two jobs with equal fingerprints produce bit-identical
 * CompileResults, so a fingerprint can address a result cache.
 *
 * The hash is 64-bit FNV-1a over a canonical little-endian byte
 * encoding. Deliberately *excluded* from circuit fingerprints is the
 * circuit's display name: renaming a benchmark must still hit the
 * cache. Floating-point fields are hashed by bit pattern, so -0.0 and
 * 0.0 differ — acceptable for a cache (a spurious miss, never a wrong
 * hit).
 */

#ifndef POWERMOVE_SERVICE_FINGERPRINT_HPP
#define POWERMOVE_SERVICE_FINGERPRINT_HPP

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "arch/machine.hpp"
#include "circuit/circuit.hpp"
#include "compiler/options.hpp"

namespace powermove::service {

/** Incremental 64-bit FNV-1a hasher over canonical byte encodings. */
class Fnv1a
{
  public:
    /** FNV-1a 64-bit offset basis. */
    static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
    /** FNV-1a 64-bit prime. */
    static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

    /** Feeds raw bytes. */
    void
    addBytes(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < size; ++i) {
            hash_ ^= bytes[i];
            hash_ *= kPrime;
        }
    }

    /** Feeds a 64-bit value as eight little-endian bytes. */
    void
    add(std::uint64_t value)
    {
        unsigned char bytes[8];
        for (int i = 0; i < 8; ++i)
            bytes[i] = static_cast<unsigned char>(value >> (8 * i));
        addBytes(bytes, sizeof(bytes));
    }

    /** Feeds a signed value through its two's-complement bit pattern. */
    void add(std::int64_t value) { add(static_cast<std::uint64_t>(value)); }

    /** Feeds a double by IEEE-754 bit pattern. */
    void add(double value) { add(std::bit_cast<std::uint64_t>(value)); }

    /** Feeds a boolean as one byte. */
    void
    add(bool value)
    {
        const unsigned char byte = value ? 1 : 0;
        addBytes(&byte, 1);
    }

    /** Feeds a length-prefixed string. */
    void
    add(std::string_view text)
    {
        add(static_cast<std::uint64_t>(text.size()));
        addBytes(text.data(), text.size());
    }

    /**
     * Forwards string literals to the string_view overload — without
     * this, overload resolution would silently prefer the built-in
     * const char* -> bool conversion and hash a single byte.
     */
    void add(const char *text) { add(std::string_view(text)); }

    /** Current digest. */
    std::uint64_t digest() const { return hash_; }

  private:
    std::uint64_t hash_ = kOffsetBasis;
};

/**
 * Fingerprint of a circuit's gate content: qubit count plus the full
 * alternating moment sequence. The display name is ignored.
 */
std::uint64_t fingerprintCircuit(const Circuit &circuit);

/** Fingerprint of a machine shape including all hardware parameters. */
std::uint64_t fingerprintMachineConfig(const MachineConfig &config);

/** Fingerprint of the full compiler option set (base seed included). */
std::uint64_t fingerprintOptions(const CompilerOptions &options);

/**
 * Fingerprint of one compilation job — the content address used by the
 * service's result cache and in-flight deduplication.
 */
std::uint64_t fingerprintJob(const Circuit &circuit,
                             const MachineConfig &config,
                             const CompilerOptions &options);

/**
 * The job fingerprint used for seed derivation: fingerprintJob() with
 * the schedule-neutral option fields normalized to canonical values.
 *
 * profile_passes participates in the cache address (a profiled and an
 * unprofiled run carry different result payloads) but must not reach
 * the derived seed: profiling never changes the schedule a compilation
 * emits, so a job profiled once for analysis and re-run unprofiled in
 * production has to draw the same randomized-decision stream.
 * RoutingStrategy::Fast is normalized to Continuous for the same
 * reason: the fast path is bit-identical to the reference router at
 * equal seeds (differential-tested), so `--routing=fast` must draw the
 * same stream and reproduce the reference schedule exactly — the CLI
 * end-to-end job cmp's the emitted ISA JSON of both paths.
 */
std::uint64_t seedFingerprintJob(const Circuit &circuit,
                                 const MachineConfig &config,
                                 const CompilerOptions &options);

/**
 * The on-disk cache address of a job. The persistent cache is shared
 * across processes, and two services may disagree on
 * ServiceOptions::derive_job_seeds — the same job fingerprint then
 * names two *different* schedules (derived vs. verbatim seed). The
 * seeding rule therefore participates in the disk key, while the
 * in-memory key stays the plain fingerprint (one service applies one
 * rule consistently).
 */
std::uint64_t diskCacheKey(std::uint64_t job_fingerprint,
                           bool derive_job_seeds);

/**
 * Derives the RNG seed a batched job actually compiles with.
 *
 * Rule (see CompilerOptions::seed): a job's randomized decisions must
 * depend only on (base seed, job content), never on which worker thread
 * runs it or in what order jobs are popped from the queue. The derived
 * seed mixes the user's base seed with the job fingerprint through
 * SplitMix64 so distinct jobs get decorrelated streams while identical
 * jobs — and therefore serial vs. 8-worker runs — reproduce bit-
 * identical results.
 */
std::uint64_t deriveJobSeed(std::uint64_t base_seed,
                            std::uint64_t job_fingerprint);

} // namespace powermove::service

#endif // POWERMOVE_SERVICE_FINGERPRINT_HPP
