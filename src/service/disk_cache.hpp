/**
 * @file
 * Persistent content-addressed on-disk compile cache.
 *
 * Schedules are expensive to compute, deterministic, and addressed by
 * the service's FNV-1a job fingerprints — exactly the profile of an
 * artifact worth caching durably. The DiskCache spills binary-serialized
 * CompileResults into one file per fingerprint (`<dir>/<fp hex>.pmc`) so
 * results survive process restarts and are shared between concurrent
 * service instances pointed at the same directory.
 *
 * Durability contract:
 *
 *  - Every entry is a versioned header (magic, format version,
 *    fingerprint, payload size, FNV-1a payload checksum) followed by the
 *    serialized result. load() re-checks all five; any mismatch — a
 *    truncated write, a flipped bit, a stale format — is treated as a
 *    miss and the offending file is deleted. Corruption can cost a
 *    recompile, never a wrong schedule and never a crash.
 *  - store() writes to a unique temp file in the cache directory and
 *    renames it into place, so readers (in this process or another) only
 *    ever observe complete entries; a torn write leaves at most a stale
 *    temp file that the next construction sweeps up.
 *  - The resident set is LRU-bounded by a byte budget. Construction
 *    scans the directory (recency seeded from file mtimes) so the bound
 *    holds across restarts too.
 *
 * Determinism contract: serialization is exact — doubles travel as
 * IEEE-754 bit patterns, and deserialization rebuilds the MachineSchedule
 * by replaying its instruction stream — so a result served from disk is
 * byte-identical to the freshly compiled one (disk_cache_test locks
 * this).
 *
 * Thread safety: every public member may be called from any thread. The
 * index mutex is held only for map bookkeeping; serialization and file
 * I/O run outside it, so shards of a JobService sharing one DiskCache do
 * not serialize their loads behind a single lock.
 */

#ifndef POWERMOVE_SERVICE_DISK_CACHE_HPP
#define POWERMOVE_SERVICE_DISK_CACHE_HPP

#include <cstdint>
#include <filesystem>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "arch/machine.hpp"
#include "compiler/result.hpp"
#include "obs/observability.hpp"

namespace powermove::service {

/** Disk-cache construction knobs. */
struct DiskCacheOptions
{
    /** Cache directory; created (with parents) if absent. */
    std::string dir;
    /** Resident byte budget across all entries; 0 disables storing. */
    std::uint64_t max_bytes = 256ull << 20;
    /** Observability bundle; null leaves the cache uninstrumented. */
    std::shared_ptr<obs::Observability> obs;
};

/** Counters snapshot; cumulative since construction except residency. */
struct DiskCacheStats
{
    /** load() calls that returned a result. */
    std::size_t hits = 0;
    /** load() calls that found nothing servable. */
    std::size_t misses = 0;
    /** Entries written (temp-file + rename completed). */
    std::size_t stores = 0;
    /** Entries dropped because a header/checksum/decode check failed. */
    std::size_t corrupt = 0;
    /** Entries dropped to respect the byte budget. */
    std::size_t evictions = 0;
    /** Currently indexed entries. */
    std::size_t entries = 0;
    /** Currently indexed payload+header bytes. */
    std::uint64_t bytes = 0;
};

/** Persistent fingerprint-addressed store of CompileResults. */
class DiskCache
{
  public:
    /** On-disk format version; bump on any serialization change. */
    static constexpr std::uint32_t kFormatVersion = 1;

    /**
     * Opens (creating if needed) the cache at @p options.dir and indexes
     * the entries already present, oldest-mtime first, evicting down to
     * the byte budget. Stale temp files from torn writes are removed.
     * Throws ConfigError when the directory cannot be created.
     */
    explicit DiskCache(DiskCacheOptions options);

    DiskCache(const DiskCache &) = delete;
    DiskCache &operator=(const DiskCache &) = delete;

    /**
     * Loads the entry for @p fingerprint, reconstructing its schedule
     * against @p machine (which must be the machine of the job that
     * produced the fingerprint). Returns nullptr on a miss; a corrupt or
     * truncated entry counts as a miss and is deleted.
     */
    std::shared_ptr<const CompileResult> load(std::uint64_t fingerprint,
                                              const Machine &machine);

    /**
     * Persists @p result under @p fingerprint (atomic temp + rename),
     * then evicts least-recently-used entries beyond the byte budget.
     * Failures to write are swallowed: the disk tier is an accelerator,
     * never a correctness dependency.
     */
    void store(std::uint64_t fingerprint, const CompileResult &result);

    /** True if @p fingerprint is currently indexed (no I/O). */
    bool contains(std::uint64_t fingerprint) const;

    /** Point-in-time counters. */
    DiskCacheStats stats() const;

    /** The resolved cache directory. */
    const std::filesystem::path &dir() const { return dir_; }

  private:
    /** `<dir>/<16-digit hex fingerprint>.pmc`. */
    std::filesystem::path entryPath(std::uint64_t fingerprint) const;

    /** Indexes @p fingerprint at @p bytes as most recently used. */
    void indexEntry(std::uint64_t fingerprint, std::uint64_t bytes,
                    std::unique_lock<std::mutex> &lock);

    /** Drops @p fingerprint from the index (file deletion is external). */
    void dropIndexEntry(std::uint64_t fingerprint);

    /**
     * Collects eviction victims beyond the byte budget; the caller
     * deletes the files outside the lock.
     */
    std::vector<std::filesystem::path>
    collectEvictions(std::unique_lock<std::mutex> &lock);

    /** Publishes residency gauges; no-op when observability is off. */
    void publishResidency(std::size_t entries, std::uint64_t bytes);

    std::filesystem::path dir_;
    std::uint64_t max_bytes_;

    /** Null when observability is off; handles resolved at construction. */
    std::shared_ptr<obs::Observability> obs_;
    struct MetricHandles
    {
        obs::Counter *hits = nullptr;
        obs::Counter *misses = nullptr;
        obs::Counter *stores = nullptr;
        obs::Counter *corrupt = nullptr;
        obs::Counter *evictions = nullptr;
        obs::Counter *read_bytes = nullptr;
        obs::Counter *write_bytes = nullptr;
        obs::Gauge *entries = nullptr;
        obs::Gauge *resident_bytes = nullptr;
    };
    MetricHandles metric_;

    mutable std::mutex mutex_;
    struct IndexEntry
    {
        std::uint64_t bytes = 0;
        std::list<std::uint64_t>::iterator position;
    };
    std::list<std::uint64_t> order_; // front = most recently used
    std::unordered_map<std::uint64_t, IndexEntry> index_;
    std::uint64_t resident_bytes_ = 0;
    std::uint64_t temp_counter_ = 0;

    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::size_t stores_ = 0;
    std::size_t corrupt_ = 0;
    std::size_t evictions_ = 0;
};

/**
 * Serializes @p result into the cache's canonical little-endian byte
 * encoding (payload only, no header). Exposed for tests and tooling.
 */
std::string serializeCompileResult(const CompileResult &result);

/**
 * The canonical encoding of @p result's *deterministic* content only:
 * the schedule, fidelity metrics, stage/move counts, and pass-profile
 * invocations and counters — wall-clock measurements (compile time,
 * per-pass wall times) are excluded. Two independent compilations of
 * the same job are bit-identical iff their witnesses are equal, which
 * is exactly the equality the determinism tests assert across the
 * compiled/memory/disk serving tiers.
 */
std::string serializeResultWitness(const CompileResult &result);

/**
 * Decodes a serializeCompileResult() payload against @p machine.
 * Returns nullptr on any structural violation (truncation, out-of-range
 * site or qubit ids, counts exceeding the payload) — never throws on
 * malformed bytes and never fabricates a partial result.
 */
std::shared_ptr<const CompileResult>
deserializeCompileResult(std::string_view payload, const Machine &machine);

} // namespace powermove::service

#endif // POWERMOVE_SERVICE_DISK_CACHE_HPP
