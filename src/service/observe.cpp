#include "service/observe.hpp"

#include <string>

namespace powermove::service {

std::string_view
tierName(TierIndex tier)
{
    switch (tier) {
    case TierIndex::Coalesced:
        return "coalesced";
    case TierIndex::Memory:
        return "memory";
    case TierIndex::Disk:
        return "disk";
    case TierIndex::Miss:
        return "miss";
    }
    return "unknown";
}

std::size_t
priorityClassIndex(int priority)
{
    if (priority < 0)
        return 0;
    return priority == 0 ? 1 : 2;
}

std::string_view
priorityClassName(int priority)
{
    static constexpr std::string_view kNames[kNumPriorityClasses] = {
        "low", "normal", "high"};
    return kNames[priorityClassIndex(priority)];
}

ServiceMetricHandles::ServiceMetricHandles(obs::MetricsRegistry &registry)
{
    submitted = &registry.counter("powermove_jobs_submitted_total");
    for (std::size_t s = 0; s < state_total.size(); ++s)
        state_total[s] = &registry.counter(
            "powermove_job_states_total",
            {{"state",
              std::string(jobStateName(static_cast<JobState>(s)))}});
    for (std::size_t t = 0; t < kNumTiers; ++t)
        tier_total[t] = &registry.counter(
            "powermove_jobs_tier_total",
            {{"tier", std::string(tierName(static_cast<TierIndex>(t)))}});
    static constexpr int kClassRepresentative[kNumPriorityClasses] = {-1, 0,
                                                                      1};
    for (std::size_t p = 0; p < kNumPriorityClasses; ++p) {
        const std::string cls(priorityClassName(kClassRepresentative[p]));
        wait_us[p] = &registry.histogram("powermove_job_wait_us",
                                         obs::defaultLatencyBoundsUs(),
                                         {{"priority", cls}});
        run_us[p] = &registry.histogram("powermove_job_run_us",
                                        obs::defaultLatencyBoundsUs(),
                                        {{"priority", cls}});
    }
    for (std::size_t p = 0; p < kNumPasses; ++p) {
        const std::string pass(passName(static_cast<PassId>(p)));
        pass_wall_us[p] = &registry.histogram("powermove_pass_wall_us",
                                              obs::passWallBoundsUs(),
                                              {{"pass", pass}});
        pass_invocations[p] = &registry.counter(
            "powermove_pass_invocations_total", {{"pass", pass}});
    }
    memory_cache_evictions =
        &registry.counter("powermove_memory_cache_evictions_total");
    shard_imbalance = &registry.gauge("powermove_shard_imbalance");
}

void
ServiceMetricHandles::foldPassProfiles(
    obs::MetricsRegistry &registry, const std::vector<PassProfile> &profiles)
{
    for (const PassProfile &profile : profiles) {
        const std::size_t index = static_cast<std::size_t>(profile.pass);
        if (index >= kNumPasses)
            continue;
        pass_wall_us[index]->observe(profile.wall_time.micros());
        pass_invocations[index]->add(profile.invocations);
        const std::string pass(passName(profile.pass));
        for (const PassCounter &counter : profile.counters)
            registry
                .counter("powermove_pass_counter_total",
                         {{"pass", pass}, {"counter", counter.name}})
                .add(counter.value);
    }
}

void
appendJobTrace(obs::TraceCollector &trace, std::uint64_t job_id,
               const Timeline &timeline,
               const std::vector<PassProfile> *passes,
               std::string_view source, const JobTraceIo *io)
{
    const std::vector<TimelineEvent> &events = timeline.events();
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TimelineEvent &event = events[i];
        std::vector<std::pair<std::string, std::string>> args;
        if (!event.detail.empty())
            args.emplace_back("detail", event.detail);
        if (jobStateIsTerminal(event.state)) {
            if (!source.empty())
                args.emplace_back("source", std::string(source));
            trace.addInstant(std::string(jobStateName(event.state)), "job",
                             job_id, event.at, std::move(args));
            continue;
        }
        // A non-terminal state occupies the lane until the next event;
        // a dangling non-terminal tail (snapshot of a live job) gets a
        // zero-length span rather than a fabricated end.
        const auto end = i + 1 < events.size() ? events[i + 1].at : event.at;
        trace.addComplete(std::string(jobStateName(event.state)), "job",
                          job_id, event.at, end, std::move(args));
    }

    if (passes != nullptr) {
        if (const TimelineEvent *running = timeline.find(JobState::Running)) {
            // Profiles carry total wall time per pass, not start/stop
            // stamps: lay the passes out sequentially from the start of
            // `running` so the lane shows measured durations at
            // synthetic offsets.
            auto cursor = running->at;
            for (const PassProfile &profile : *passes) {
                const auto width =
                    std::chrono::duration_cast<
                        obs::TraceCollector::Clock::duration>(
                        std::chrono::duration<double, std::micro>(
                            profile.wall_time.micros()));
                std::vector<std::pair<std::string, std::string>> args;
                args.emplace_back("invocations",
                                  std::to_string(profile.invocations));
                args.emplace_back("offsets", "synthetic");
                for (const PassCounter &counter : profile.counters)
                    args.emplace_back(counter.name,
                                      std::to_string(counter.value));
                trace.addComplete(std::string(passName(profile.pass)),
                                  "pass", job_id, cursor, cursor + width,
                                  std::move(args));
                cursor += width;
            }
        }
    }

    if (io != nullptr) {
        if (io->read)
            trace.addComplete("disk-read", "cache", job_id, io->read_start,
                              io->read_end,
                              {{"tier", "disk"},
                               {"hit", io->read_hit ? "true" : "false"}});
        if (io->write)
            trace.addComplete("disk-write", "cache", job_id, io->write_start,
                              io->write_end, {{"tier", "disk"}});
    }
}

} // namespace powermove::service
