/**
 * @file
 * Content-addressed LRU cache of compilation results.
 *
 * Keys are job fingerprints (service/fingerprint.hpp); values are
 * shared, immutable CompileResults, so evicting an entry never
 * invalidates a result already handed to a client. The cache is a plain
 * data structure with *no internal locking* — CompilationService
 * guards it with its own mutex so that lookup-miss / mark-in-flight can
 * be one atomic step. Hit, miss, and eviction counters feed
 * ServiceStats.
 */

#ifndef POWERMOVE_SERVICE_CACHE_HPP
#define POWERMOVE_SERVICE_CACHE_HPP

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "arch/machine.hpp"
#include "compiler/result.hpp"

namespace powermove::service {

/**
 * One cached compilation. The machine rides along because a
 * MachineSchedule references its Machine by raw pointer: the cache
 * entry must keep the referent alive for as long as the result is
 * servable, so that evicting an interned machine elsewhere can never
 * dangle a cached schedule.
 */
struct CachedCompile
{
    std::shared_ptr<const CompileResult> result;
    std::shared_ptr<const Machine> machine;

    explicit operator bool() const { return result != nullptr; }
};

/** Bounded LRU map: job fingerprint -> shared compile result. */
class CompileCache
{
  public:
    /**
     * @param capacity maximum resident entries; 0 disables caching
     *                 (every lookup misses, inserts are dropped)
     */
    explicit CompileCache(std::size_t capacity) : capacity_(capacity) {}

    /**
     * The cached entry for @p key, refreshing its recency; falsy on a
     * miss. Counts one hit or one miss.
     */
    CachedCompile
    lookup(std::uint64_t key)
    {
        const auto it = slots_.find(key);
        if (it == slots_.end()) {
            ++misses_;
            return {};
        }
        ++hits_;
        order_.splice(order_.begin(), order_, it->second.position);
        return it->second.value;
    }

    /**
     * Inserts (or refreshes) @p key, evicting least-recently-used
     * entries beyond capacity.
     */
    void
    insert(std::uint64_t key, CachedCompile value)
    {
        if (capacity_ == 0)
            return;
        if (const auto it = slots_.find(key); it != slots_.end()) {
            it->second.value = std::move(value);
            order_.splice(order_.begin(), order_, it->second.position);
            return;
        }
        order_.push_front(key);
        slots_.emplace(key, Slot{std::move(value), order_.begin()});
        while (slots_.size() > capacity_) {
            slots_.erase(order_.back());
            order_.pop_back();
            ++evictions_;
        }
    }

    /** Drops every entry (counters are kept). */
    void
    clear()
    {
        slots_.clear();
        order_.clear();
    }

    std::size_t size() const { return slots_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Lookups that found a resident entry. */
    std::size_t hits() const { return hits_; }
    /** Lookups that found nothing. */
    std::size_t misses() const { return misses_; }
    /** Entries dropped to respect the capacity bound. */
    std::size_t evictions() const { return evictions_; }

  private:
    struct Slot
    {
        CachedCompile value;
        std::list<std::uint64_t>::iterator position;
    };

    std::size_t capacity_;
    std::list<std::uint64_t> order_; // front = most recently used
    std::unordered_map<std::uint64_t, Slot> slots_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    std::size_t evictions_ = 0;
};

} // namespace powermove::service

#endif // POWERMOVE_SERVICE_CACHE_HPP
