/**
 * @file
 * Job lifecycle states and per-job timelines for the async JobService.
 *
 * Every job the JobService accepts moves through a small state machine:
 *
 *   Queued ──► Rejected                    (admission control: queue full)
 *   Queued ──► Cached                      (memory hit at submit)
 *   Queued ──► Admitted ──► Cached         (disk hit on a worker)
 *   Queued ──► Admitted ──► Expired        (deadline passed before start)
 *   Queued ──► Admitted ──► Running ──► Done | Failed
 *
 * Each transition is recorded with a steady-clock timestamp into the
 * job's Timeline, which stays queryable (JobService::status()) after the
 * job finished — the record is how callers attribute latency to queue
 * wait vs. compilation vs. cache service.
 *
 * Terminal states are Cached, Done, Failed, Rejected, and Expired;
 * exactly one of them ends every timeline.
 */

#ifndef POWERMOVE_SERVICE_TIMELINE_HPP
#define POWERMOVE_SERVICE_TIMELINE_HPP

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/units.hpp"

namespace powermove::service {

/** Lifecycle state of one async job. */
enum class JobState : std::uint8_t
{
    /** Received by submit(); the initial state of every job. */
    Queued,
    /** Passed admission control and entered a shard queue. */
    Admitted,
    /** Compiling on a worker thread. */
    Running,
    /** Served from the memory or disk cache without compiling (terminal). */
    Cached,
    /** Compiled successfully (terminal). */
    Done,
    /** Compilation threw (terminal). */
    Failed,
    /** Refused by admission control: the shard queue was full (terminal). */
    Rejected,
    /** Deadline passed while still waiting in the queue (terminal). */
    Expired,
};

/** Number of JobState values. */
inline constexpr std::size_t kNumJobStates = 8;

/** Stable lower-case state name, e.g. "running". */
std::string_view jobStateName(JobState state);

/** True for states that end a timeline. */
bool jobStateIsTerminal(JobState state);

/** One recorded state transition. */
struct TimelineEvent
{
    JobState state = JobState::Queued;
    std::chrono::steady_clock::time_point at;
    /**
     * Optional refinement of the state, e.g. which tier produced a
     * Cached record: "memory" (LRU hit at submit) vs "disk" (a worker
     * deserialized the persistent entry). Empty when the state needs no
     * qualification.
     */
    std::string detail;
};

/**
 * The ordered state history of one job. Records are append-only; the
 * JobService guards each job's timeline with its record lock, so copies
 * handed out by status() are consistent snapshots.
 */
class Timeline
{
  public:
    /** Appends @p state stamped with the current steady clock. */
    void record(JobState state, std::string detail = {});

    /** Appends @p state at an explicit instant (testing / replay). */
    void record(JobState state, std::chrono::steady_clock::time_point at,
                std::string detail = {});

    /** All transitions, in record order. Never empty after a record(). */
    const std::vector<TimelineEvent> &events() const { return events_; }

    /** First event recorded in @p state; nullptr when absent. */
    const TimelineEvent *find(JobState state) const;

    /** The most recently recorded state; Queued for an empty timeline. */
    JobState current() const;

    /** True once a terminal state was recorded. */
    bool finished() const;

    /**
     * Wall time between the first occurrence of @p from and the first
     * occurrence of @p to at or after it; zero when either is absent.
     */
    Duration between(JobState from, JobState to) const;

    /** Wall time from the first event to the last (zero if < 2 events). */
    Duration total() const;

  private:
    std::vector<TimelineEvent> events_;
};

} // namespace powermove::service

#endif // POWERMOVE_SERVICE_TIMELINE_HPP
