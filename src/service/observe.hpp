/**
 * @file
 * The bridge between the service layer and the observability planes:
 * the service-wide metric catalog, pass-profile folding, and per-job
 * trace-span stitching.
 *
 * Metric catalog (all series pre-registered by ServiceMetricHandles so
 * an export always covers every cache tier, pipeline pass, and job
 * state, even at zero):
 *
 *   powermove_jobs_submitted_total           counter
 *   powermove_job_states_total{state=...}    counter, all 8 JobStates
 *   powermove_jobs_tier_total{tier=...}      counter, the 4 serving
 *                                            tiers: coalesced / memory
 *                                            / disk / miss
 *   powermove_job_wait_us{priority=...}      histogram of queue wait,
 *                                            per priority class
 *                                            (low / normal / high)
 *   powermove_job_run_us{priority=...}       histogram of on-worker
 *                                            compile time
 *   powermove_pass_wall_us{pass=...}         histogram, per-job wall
 *                                            time of each of the 6
 *                                            pipeline passes
 *   powermove_pass_invocations_total{pass=.} counter
 *   powermove_pass_counter_total{pass=.,counter=.}
 *                                            counter, folded from the
 *                                            PassProfile counters
 *   powermove_shard_queue_depth{shard=...}   gauge (JobService)
 *   powermove_queue_depth                    gauge (CompilationService)
 *   powermove_shard_imbalance                gauge, max-min queue depth
 *   powermove_memory_cache_evictions_total   counter
 *   powermove_disk_cache_*                   see service/disk_cache.cpp
 *
 * Trace-span hierarchy (one tid lane per job, Chrome trace JSON):
 *
 *   queued    [span]  submit -> admission outcome
 *   admitted  [span]  shard queue wait
 *   running   [span]  on-worker compilation
 *     <pass>  [span]  one per pipeline pass, laid out sequentially
 *                     inside `running` from the pass's profiled wall
 *                     time (synthetic offsets, measured durations)
 *   disk-read / disk-write [span]  real-timestamped cache-tier I/O
 *   done/cached/failed/rejected/expired [instant]  terminal marker
 */

#ifndef POWERMOVE_SERVICE_OBSERVE_HPP
#define POWERMOVE_SERVICE_OBSERVE_HPP

#include <array>
#include <chrono>
#include <cstdint>
#include <string_view>
#include <vector>

#include "compiler/profile.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/timeline.hpp"

namespace powermove::service {

/** Number of serving tiers a submission can resolve to. */
inline constexpr std::size_t kNumTiers = 4;

/** Tier index for the tier-attribution counters. */
enum class TierIndex : std::size_t
{
    Coalesced = 0,
    Memory = 1,
    Disk = 2,
    Miss = 3,
};

/** Stable tier label, e.g. "memory". */
std::string_view tierName(TierIndex tier);

/** Number of priority classes the latency histograms distinguish. */
inline constexpr std::size_t kNumPriorityClasses = 3;

/** 0 = low (< 0), 1 = normal (0), 2 = high (> 0). */
std::size_t priorityClassIndex(int priority);

/** Stable priority-class label, e.g. "normal". */
std::string_view priorityClassName(int priority);

/**
 * Every service-layer metric handle, registered and resolved once at
 * service construction so the instrumented paths touch only atomics.
 * Registering twice against the same registry returns the same
 * underlying series (both service front-ends may share one registry).
 */
struct ServiceMetricHandles
{
    explicit ServiceMetricHandles(obs::MetricsRegistry &registry);

    obs::Counter *submitted;
    /** Indexed by static_cast<size_t>(JobState). */
    std::array<obs::Counter *, kNumJobStates> state_total;
    /** Indexed by static_cast<size_t>(TierIndex). */
    std::array<obs::Counter *, kNumTiers> tier_total;
    std::array<obs::Histogram *, kNumPriorityClasses> wait_us;
    std::array<obs::Histogram *, kNumPriorityClasses> run_us;
    std::array<obs::Histogram *, kNumPasses> pass_wall_us;
    std::array<obs::Counter *, kNumPasses> pass_invocations;
    obs::Counter *memory_cache_evictions;
    obs::Gauge *shard_imbalance;

    /**
     * Folds one compiled job's PassProfiles in: per pass, the wall time
     * becomes one histogram observation, invocations accumulate, and
     * every profile counter lands on
     * powermove_pass_counter_total{pass, counter}. @p registry must be
     * the registry the handles were resolved from (profile counters are
     * registered by name on first sight).
     */
    void foldPassProfiles(obs::MetricsRegistry &registry,
                          const std::vector<PassProfile> &profiles);
};

/** Real-timestamped disk-tier I/O of the worker that resolved a job. */
struct JobTraceIo
{
    using Clock = std::chrono::steady_clock;

    bool read = false;
    Clock::time_point read_start;
    Clock::time_point read_end;
    bool read_hit = false;

    bool write = false;
    Clock::time_point write_start;
    Clock::time_point write_end;
};

/**
 * Stitches one job's record into trace spans on @p trace (tid = job
 * id): one span per non-terminal timeline state, an instant marker for
 * the terminal state, one synthetic-offset span per pipeline pass when
 * @p passes is non-null (the compiled job only), and real disk
 * read/write spans from @p io. @p source annotates the terminal marker
 * with the serving tier.
 */
void appendJobTrace(obs::TraceCollector &trace, std::uint64_t job_id,
                    const Timeline &timeline,
                    const std::vector<PassProfile> *passes,
                    std::string_view source,
                    const JobTraceIo *io = nullptr);

} // namespace powermove::service

#endif // POWERMOVE_SERVICE_OBSERVE_HPP
