#include "service/job_service.hpp"

#include <algorithm>

#include "compiler/powermove.hpp"
#include "service/fingerprint.hpp"

namespace powermove::service {

JobService::JobService(JobServiceOptions options) : options_(std::move(options))
{
    const unsigned hw_raw = std::thread::hardware_concurrency();
    const std::size_t hw = hw_raw == 0 ? 1 : hw_raw;
    if (options_.num_shards == 0)
        options_.num_shards = std::min<std::size_t>(hw, 4);
    if (options_.workers_per_shard == 0)
        options_.workers_per_shard =
            std::max<std::size_t>(1, hw / options_.num_shards);

    if (!options_.cache_dir.empty())
        disk_ = std::make_shared<DiskCache>(DiskCacheOptions{
            options_.cache_dir, options_.disk_cache_bytes});

    shards_.reserve(options_.num_shards);
    for (std::size_t s = 0; s < options_.num_shards; ++s)
        shards_.push_back(std::make_unique<Shard>(options_.cache_capacity));
    // Workers start only after every shard exists: a worker touches no
    // shard but its own, so construction order cannot race.
    for (const auto &shard : shards_) {
        shard->workers.reserve(options_.workers_per_shard);
        for (std::size_t w = 0; w < options_.workers_per_shard; ++w)
            shard->workers.emplace_back(
                [this, &shard_ref = *shard] { workerLoop(shard_ref); });
    }
}

JobService::~JobService()
{
    for (const auto &shard : shards_) {
        {
            const std::lock_guard<std::mutex> lock(shard->mutex);
            shard->stopping = true;
        }
        shard->work_ready.notify_all();
    }
    for (const auto &shard : shards_)
        for (std::thread &worker : shard->workers)
            worker.join();
}

JobService::Shard &
JobService::shardFor(std::uint64_t fingerprint)
{
    return *shards_[fingerprint % shards_.size()];
}

JobTicket
JobService::submit(CompileJob job, int priority, double deadline_ms)
{
    return submit(JobRequest{std::move(job), priority, deadline_ms});
}

JobTicket
JobService::submit(JobRequest request)
{
    const std::uint64_t fingerprint = jobFingerprint(request.job);
    const JobId id = next_id_.fetch_add(1, std::memory_order_relaxed);
    {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++submitted_;
    }
    createRecord(id, fingerprint, request.priority);

    Waiter waiter;
    waiter.id = id;
    std::future<JobResult> future = waiter.promise.get_future();
    if (request.deadline_ms > 0.0) {
        waiter.has_deadline = true;
        waiter.deadline =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    request.deadline_ms));
    }

    Shard &shard = shardFor(fingerprint);
    std::unique_lock<std::mutex> lock(shard.mutex);
    if (shard.stopping)
        fatal("submit on a stopping JobService");

    // An identical job is queued or compiling: attach, and promote the
    // queued entry if this duplicate outranks it.
    if (const auto it = shard.pending.find(fingerprint);
        it != shard.pending.end()) {
        PendingJob &pending = it->second;
        if (!pending.running && request.priority > pending.priority) {
            pending.priority = request.priority;
            // The old heap entry goes stale (priority mismatch on pop).
            shard.queue.push(
                QueueEntry{pending.priority, pending.seq, fingerprint});
        }
        pending.waiters.push_back(std::move(waiter));
        lock.unlock();
        {
            const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            ++coalesced_;
        }
        recordState(id, JobState::Admitted);
        shard.work_ready.notify_one();
        return JobTicket{id, std::move(future)};
    }

    // Shard-local memory cache: answer at submit, no worker involved.
    if (auto cached = shard.cache.lookup(fingerprint)) {
        lock.unlock();
        {
            const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            ++memory_hits_;
        }
        recordState(id, JobState::Cached);
        waiter.promise.set_value(JobResult{std::move(cached.machine),
                                           std::move(cached.result),
                                           fingerprint, true,
                                           ResultSource::Memory});
        return JobTicket{id, std::move(future)};
    }

    // Admission control: beyond the queue bound the service pushes
    // back instead of buffering, so overload degrades loudly.
    if (options_.max_queue != 0 && shard.queued_jobs >= options_.max_queue) {
        lock.unlock();
        {
            const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            ++rejected_;
        }
        const std::string reason =
            "rejected: shard queue full (" +
            std::to_string(options_.max_queue) + " jobs queued)";
        recordState(id, JobState::Rejected, reason);
        waiter.promise.set_exception(
            std::make_exception_ptr(RejectedError(reason)));
        return JobTicket{id, std::move(future)};
    }

    PendingJob pending;
    pending.job = std::move(request.job);
    pending.priority = request.priority;
    pending.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    pending.waiters.push_back(std::move(waiter));
    shard.queue.push(QueueEntry{pending.priority, pending.seq, fingerprint});
    shard.pending.emplace(fingerprint, std::move(pending));
    ++shard.queued_jobs;
    lock.unlock();

    recordState(id, JobState::Admitted);
    shard.work_ready.notify_one();
    return JobTicket{id, std::move(future)};
}

std::optional<JobStatus>
JobService::status(JobId id) const
{
    const std::lock_guard<std::mutex> lock(records_mutex_);
    const auto it = records_.find(id);
    if (it == records_.end())
        return std::nullopt;
    return it->second;
}

void
JobService::waitIdle()
{
    for (const auto &shard : shards_) {
        std::unique_lock<std::mutex> lock(shard->mutex);
        shard->idle.wait(lock, [&] { return shard->pending.empty(); });
    }
}

JobServiceStats
JobService::stats() const
{
    JobServiceStats stats;
    {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        stats.submitted = submitted_;
        stats.rejected = rejected_;
        stats.expired = expired_;
        stats.coalesced = coalesced_;
        stats.memory_hits = memory_hits_;
        stats.disk_hits = disk_hits_;
        stats.compiled = compiled_;
        stats.failed = failed_;
    }
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        stats.queued += shard->pending.size();
    }
    stats.num_shards = options_.num_shards;
    stats.workers_per_shard = options_.workers_per_shard;
    if (disk_)
        stats.disk = disk_->stats();
    return stats;
}

void
JobService::createRecord(JobId id, std::uint64_t fingerprint, int priority)
{
    JobStatus record;
    record.id = id;
    record.fingerprint = fingerprint;
    record.priority = priority;
    record.state = JobState::Queued;
    record.timeline.record(JobState::Queued);
    const std::lock_guard<std::mutex> lock(records_mutex_);
    records_.emplace(id, std::move(record));
}

void
JobService::recordState(JobId id, JobState state, std::string error)
{
    const std::lock_guard<std::mutex> lock(records_mutex_);
    const auto it = records_.find(id);
    if (it == records_.end())
        return; // already pruned
    it->second.state = state;
    it->second.timeline.record(state);
    if (!error.empty())
        it->second.error = std::move(error);
    if (!jobStateIsTerminal(state))
        return;
    finished_order_.push_back(id);
    if (options_.max_finished_records == 0)
        return;
    while (finished_order_.size() > options_.max_finished_records) {
        records_.erase(finished_order_.front());
        finished_order_.pop_front();
    }
}

std::shared_ptr<const Machine>
JobService::internMachine(Shard &shard, const MachineConfig &config,
                          std::unique_lock<std::mutex> &lock)
{
    const std::uint64_t key = fingerprintMachineConfig(config);
    if (const auto it = shard.machines.find(key); it != shard.machines.end()) {
        if (auto machine = it->second.lock())
            return machine;
    }
    std::erase_if(shard.machines,
                  [](const auto &entry) { return entry.second.expired(); });

    // Build outside the lock: machine construction is O(sites) and must
    // not stall submitters or sibling workers of this shard.
    lock.unlock();
    std::shared_ptr<const Machine> machine;
    try {
        machine = std::make_shared<const Machine>(config);
    } catch (...) {
        lock.lock();
        throw;
    }
    lock.lock();
    auto &slot = shard.machines[key];
    if (auto existing = slot.lock())
        return existing;
    slot = machine;
    return machine;
}

void
JobService::workerLoop(Shard &shard)
{
    std::unique_lock<std::mutex> lock(shard.mutex);
    for (;;) {
        shard.work_ready.wait(
            lock, [&] { return shard.stopping || !shard.queue.empty(); });
        if (shard.queue.empty()) {
            if (shard.stopping)
                return; // drained: every admitted job was resolved
            continue;
        }
        const QueueEntry entry = shard.queue.top();
        shard.queue.pop();

        const auto it = shard.pending.find(entry.fingerprint);
        // Stale heap entries: the job already ran, or a promotion
        // superseded this entry (the fresher one carries the higher
        // priority). Skip without touching anything.
        if (it == shard.pending.end() || it->second.running ||
            it->second.priority != entry.priority)
            continue;

        const std::uint64_t fingerprint = entry.fingerprint;
        // The map reference stays valid while unlocked: only this
        // worker erases this entry once running, rehashing never
        // invalidates references, and concurrent submits only append
        // waiters under the lock — never touch the job payload.
        PendingJob &pending = it->second;
        pending.running = true;
        --shard.queued_jobs;

        // Deadlines bound queue wait: anyone overdue by now expires
        // before the compilation starts.
        const Clock::time_point now = Clock::now();
        std::vector<Waiter> expired_waiters;
        std::vector<Waiter> live;
        for (Waiter &waiter : pending.waiters) {
            if (waiter.has_deadline && waiter.deadline < now)
                expired_waiters.push_back(std::move(waiter));
            else
                live.push_back(std::move(waiter));
        }
        pending.waiters = std::move(live);

        if (pending.waiters.empty()) {
            // Everyone expired: skip the compilation entirely.
            shard.pending.erase(it);
            const bool now_idle = shard.pending.empty();
            lock.unlock();
            {
                const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
                expired_ += expired_waiters.size();
            }
            for (Waiter &waiter : expired_waiters) {
                recordState(waiter.id, JobState::Expired,
                            "expired: deadline passed while queued");
                waiter.promise.set_exception(std::make_exception_ptr(
                    ExpiredError("deadline passed while queued")));
            }
            if (now_idle)
                shard.idle.notify_all();
            lock.lock();
            continue;
        }

        std::vector<JobId> live_ids;
        live_ids.reserve(pending.waiters.size());
        for (const Waiter &waiter : pending.waiters)
            live_ids.push_back(waiter.id);

        std::shared_ptr<const Machine> machine;
        std::shared_ptr<const CompileResult> result;
        std::exception_ptr error;
        bool from_disk = false;
        try {
            machine = internMachine(shard, pending.job.machine, lock);
            CompilerOptions options = pending.job.options;
            const Circuit &circuit = pending.job.circuit;
            lock.unlock();

            if (!expired_waiters.empty()) {
                const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
                expired_ += expired_waiters.size();
            }
            for (Waiter &waiter : expired_waiters) {
                recordState(waiter.id, JobState::Expired,
                            "expired: deadline passed while queued");
                waiter.promise.set_exception(std::make_exception_ptr(
                    ExpiredError("deadline passed while queued")));
            }
            expired_waiters.clear();

            if (disk_)
                result = disk_->load(
                    diskCacheKey(fingerprint, options_.derive_job_seeds),
                    *machine);
            if (result) {
                from_disk = true;
            } else {
                for (const JobId job_id : live_ids)
                    recordState(job_id, JobState::Running);
                if (options_.derive_job_seeds)
                    options.seed = deriveJobSeed(
                        options.seed,
                        seedFingerprintJob(circuit, pending.job.machine,
                                           options));
                const PowerMoveCompiler compiler(*machine, options);
                result = std::make_shared<const CompileResult>(
                    compiler.compile(circuit));
                if (disk_)
                    disk_->store(
                        diskCacheKey(fingerprint,
                                     options_.derive_job_seeds),
                        *result);
            }
            lock.lock();
        } catch (...) {
            error = std::current_exception();
            if (!lock.owns_lock())
                lock.lock();
        }

        if (result)
            shard.cache.insert(fingerprint, {result, machine});
        std::vector<Waiter> waiters = std::move(pending.waiters);
        shard.pending.erase(fingerprint);
        const bool now_idle = shard.pending.empty();
        lock.unlock();

        // Account before fulfilling any promise: a waiter that observes
        // its result (or exception) must already see it in stats().
        {
            const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            expired_ += expired_waiters.size();
            if (error)
                ++failed_;
            else if (from_disk)
                ++disk_hits_;
            else
                ++compiled_;
        }

        // Leftover expired waiters exist only on the error path (the
        // unlock above never ran); resolve them as Expired, not Failed.
        for (Waiter &waiter : expired_waiters) {
            recordState(waiter.id, JobState::Expired,
                        "expired: deadline passed while queued");
            waiter.promise.set_exception(std::make_exception_ptr(
                ExpiredError("deadline passed while queued")));
        }

        std::string error_text;
        if (error) {
            try {
                std::rethrow_exception(error);
            } catch (const std::exception &e) {
                error_text = e.what();
            } catch (...) {
                error_text = "unknown error";
            }
        }

        JobResult outcome{machine, result, fingerprint, from_disk,
                          from_disk ? ResultSource::Disk
                                    : ResultSource::Compiled};
        for (std::size_t w = 0; w < waiters.size(); ++w) {
            Waiter &waiter = waiters[w];
            if (error) {
                recordState(waiter.id, JobState::Failed, error_text);
                waiter.promise.set_exception(error);
                continue;
            }
            recordState(waiter.id,
                        from_disk ? JobState::Cached : JobState::Done);
            outcome.source = from_disk ? ResultSource::Disk
                             : w == 0  ? ResultSource::Compiled
                                       : ResultSource::Coalesced;
            waiter.promise.set_value(outcome);
        }

        if (now_idle)
            shard.idle.notify_all();
        lock.lock();
    }
}

} // namespace powermove::service
