#include "service/job_service.hpp"

#include <algorithm>
#include <limits>

#include "compiler/powermove.hpp"
#include "service/fingerprint.hpp"

namespace powermove::service {

JobService::JobService(JobServiceOptions options) : options_(std::move(options))
{
    const unsigned hw_raw = std::thread::hardware_concurrency();
    const std::size_t hw = hw_raw == 0 ? 1 : hw_raw;
    if (options_.num_shards == 0)
        options_.num_shards = std::min<std::size_t>(hw, 4);
    if (options_.workers_per_shard == 0)
        options_.workers_per_shard =
            std::max<std::size_t>(1, hw / options_.num_shards);

    obs_ = options_.obs;
    if (obs_ != nullptr)
        metric_ = std::make_unique<ServiceMetricHandles>(obs_->metrics);

    if (!options_.cache_dir.empty())
        disk_ = std::make_shared<DiskCache>(DiskCacheOptions{
            options_.cache_dir, options_.disk_cache_bytes, obs_});

    shards_.reserve(options_.num_shards);
    for (std::size_t s = 0; s < options_.num_shards; ++s) {
        shards_.push_back(std::make_unique<Shard>(options_.cache_capacity));
        if (obs_ != nullptr)
            shards_.back()->depth_gauge = &obs_->metrics.gauge(
                "powermove_shard_queue_depth", {{"shard", std::to_string(s)}});
    }
    if (obs_ != nullptr)
        obs_->log.info("job_service_start",
                       {{"shards", options_.num_shards},
                        {"workers_per_shard", options_.workers_per_shard},
                        {"max_queue", options_.max_queue},
                        {"cache_dir", options_.cache_dir}});
    // Workers start only after every shard exists: a worker touches no
    // shard but its own, so construction order cannot race.
    for (const auto &shard : shards_) {
        shard->workers.reserve(options_.workers_per_shard);
        for (std::size_t w = 0; w < options_.workers_per_shard; ++w)
            shard->workers.emplace_back(
                [this, &shard_ref = *shard] { workerLoop(shard_ref); });
    }
}

JobService::~JobService()
{
    for (const auto &shard : shards_) {
        {
            const std::lock_guard<std::mutex> lock(shard->mutex);
            shard->stopping = true;
        }
        shard->work_ready.notify_all();
    }
    for (const auto &shard : shards_)
        for (std::thread &worker : shard->workers)
            worker.join();
}

JobService::Shard &
JobService::shardFor(std::uint64_t fingerprint)
{
    return *shards_[fingerprint % shards_.size()];
}

JobTicket
JobService::submit(CompileJob job, int priority, double deadline_ms)
{
    return submit(JobRequest{std::move(job), priority, deadline_ms});
}

JobTicket
JobService::submit(JobRequest request)
{
    const std::uint64_t fingerprint = jobFingerprint(request.job);
    const JobId id = next_id_.fetch_add(1, std::memory_order_relaxed);
    {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++submitted_;
    }
    if (metric_ != nullptr)
        metric_->submitted->add(1);
    createRecord(id, fingerprint, request.priority);

    Waiter waiter;
    waiter.id = id;
    std::future<JobResult> future = waiter.promise.get_future();
    if (request.deadline_ms > 0.0) {
        waiter.has_deadline = true;
        waiter.deadline =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double, std::milli>(
                    request.deadline_ms));
    }

    Shard &shard = shardFor(fingerprint);
    std::unique_lock<std::mutex> lock(shard.mutex);
    if (shard.stopping)
        fatal("submit on a stopping JobService");

    // An identical job is queued or compiling: attach, and promote the
    // queued entry if this duplicate outranks it.
    if (const auto it = shard.pending.find(fingerprint);
        it != shard.pending.end()) {
        PendingJob &pending = it->second;
        if (!pending.running && request.priority > pending.priority) {
            pending.priority = request.priority;
            // The old heap entry goes stale (priority mismatch on pop).
            shard.queue.push(
                QueueEntry{pending.priority, pending.seq, fingerprint});
        }
        pending.waiters.push_back(std::move(waiter));
        lock.unlock();
        {
            const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            ++coalesced_;
        }
        if (metric_ != nullptr)
            metric_->tier_total[static_cast<std::size_t>(
                                    TierIndex::Coalesced)]
                ->add(1);
        recordState(id, JobState::Admitted);
        shard.work_ready.notify_one();
        return JobTicket{id, std::move(future)};
    }

    // Shard-local memory cache: answer at submit, no worker involved.
    if (auto cached = shard.cache.lookup(fingerprint)) {
        lock.unlock();
        {
            const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            ++memory_hits_;
        }
        if (metric_ != nullptr)
            metric_->tier_total[static_cast<std::size_t>(TierIndex::Memory)]
                ->add(1);
        recordState(id, JobState::Cached, {}, "memory");
        traceJob(id, "memory");
        waiter.promise.set_value(JobResult{std::move(cached.machine),
                                           std::move(cached.result),
                                           fingerprint, true,
                                           ResultSource::Memory});
        return JobTicket{id, std::move(future)};
    }

    // Admission control: beyond the queue bound the service pushes
    // back instead of buffering, so overload degrades loudly.
    if (options_.max_queue != 0 && shard.queued_jobs >= options_.max_queue) {
        lock.unlock();
        {
            const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            ++rejected_;
        }
        const std::string reason =
            "rejected: shard queue full (" +
            std::to_string(options_.max_queue) + " jobs queued)";
        recordState(id, JobState::Rejected, reason);
        traceJob(id, {});
        waiter.promise.set_exception(
            std::make_exception_ptr(RejectedError(reason)));
        return JobTicket{id, std::move(future)};
    }

    PendingJob pending;
    pending.job = std::move(request.job);
    pending.priority = request.priority;
    pending.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
    pending.waiters.push_back(std::move(waiter));
    shard.queue.push(QueueEntry{pending.priority, pending.seq, fingerprint});
    shard.pending.emplace(fingerprint, std::move(pending));
    ++shard.queued_jobs;
    if (shard.depth_gauge != nullptr)
        shard.depth_gauge->set(static_cast<double>(shard.queued_jobs));
    lock.unlock();

    recordState(id, JobState::Admitted);
    shard.work_ready.notify_one();
    return JobTicket{id, std::move(future)};
}

std::optional<JobStatus>
JobService::status(JobId id) const
{
    const std::lock_guard<std::mutex> lock(records_mutex_);
    const auto it = records_.find(id);
    if (it == records_.end())
        return std::nullopt;
    return it->second;
}

void
JobService::waitIdle()
{
    for (const auto &shard : shards_) {
        std::unique_lock<std::mutex> lock(shard->mutex);
        shard->idle.wait(lock, [&] { return shard->pending.empty(); });
    }
}

JobServiceStats
JobService::stats() const
{
    JobServiceStats stats;
    {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        stats.submitted = submitted_;
        stats.rejected = rejected_;
        stats.expired = expired_;
        stats.coalesced = coalesced_;
        stats.memory_hits = memory_hits_;
        stats.disk_hits = disk_hits_;
        stats.compiled = compiled_;
        stats.failed = failed_;
    }
    std::size_t min_depth = std::numeric_limits<std::size_t>::max();
    std::size_t max_depth = 0;
    for (const auto &shard : shards_) {
        const std::lock_guard<std::mutex> lock(shard->mutex);
        stats.queued += shard->pending.size();
        min_depth = std::min(min_depth, shard->queued_jobs);
        max_depth = std::max(max_depth, shard->queued_jobs);
    }
    if (metric_ != nullptr)
        metric_->shard_imbalance->set(
            static_cast<double>(max_depth - min_depth));
    stats.num_shards = options_.num_shards;
    stats.workers_per_shard = options_.workers_per_shard;
    if (disk_)
        stats.disk = disk_->stats();
    return stats;
}

void
JobService::createRecord(JobId id, std::uint64_t fingerprint, int priority)
{
    JobStatus record;
    record.id = id;
    record.fingerprint = fingerprint;
    record.priority = priority;
    record.state = JobState::Queued;
    record.timeline.record(JobState::Queued);
    if (metric_ != nullptr)
        metric_->state_total[static_cast<std::size_t>(JobState::Queued)]
            ->add(1);
    const std::lock_guard<std::mutex> lock(records_mutex_);
    records_.emplace(id, std::move(record));
}

void
JobService::recordState(JobId id, JobState state, std::string error,
                        std::string detail)
{
    const bool terminal = jobStateIsTerminal(state);
    int priority = 0;
    double wait_us = 0.0;
    double run_us = -1.0;
    double total_ms = 0.0;
    std::string log_error;
    if (obs_ != nullptr)
        log_error = error;
    {
        const std::lock_guard<std::mutex> lock(records_mutex_);
        const auto it = records_.find(id);
        if (it == records_.end())
            return; // already pruned
        it->second.state = state;
        it->second.timeline.record(state, std::move(detail));
        if (!error.empty())
            it->second.error = std::move(error);
        if (terminal) {
            priority = it->second.priority;
            if (obs_ != nullptr) {
                // Wait covers the queue (submit to Running, or the
                // whole record when the job never ran); run covers the
                // worker (Running to terminal).
                const Timeline &timeline = it->second.timeline;
                if (timeline.find(JobState::Running) != nullptr) {
                    wait_us = timeline
                                  .between(JobState::Queued,
                                           JobState::Running)
                                  .micros();
                    run_us =
                        timeline.between(JobState::Running, state).micros();
                } else {
                    wait_us = timeline.total().micros();
                }
                total_ms = timeline.total().micros() / 1000.0;
            }
            finished_order_.push_back(id);
            if (options_.max_finished_records != 0) {
                while (finished_order_.size() >
                       options_.max_finished_records) {
                    records_.erase(finished_order_.front());
                    finished_order_.pop_front();
                }
            }
        }
    }
    if (obs_ == nullptr)
        return;
    metric_->state_total[static_cast<std::size_t>(state)]->add(1);
    if (!terminal)
        return;
    const std::size_t cls = priorityClassIndex(priority);
    metric_->wait_us[cls]->observe(wait_us);
    if (run_us >= 0.0)
        metric_->run_us[cls]->observe(run_us);
    if (options_.slow_job_ms > 0.0 && total_ms >= options_.slow_job_ms)
        obs_->log.warn("slow_job", {{"job", id},
                                    {"state", jobStateName(state)},
                                    {"total_ms", total_ms},
                                    {"priority", priority}});
    if (obs_->log.enabled(obs::LogLevel::Debug)) {
        if (log_error.empty())
            obs_->log.debug("job_finished",
                            {{"job", id},
                             {"state", jobStateName(state)},
                             {"total_ms", total_ms}});
        else
            obs_->log.debug("job_finished",
                            {{"job", id},
                             {"state", jobStateName(state)},
                             {"total_ms", total_ms},
                             {"error", log_error}});
    }
}

void
JobService::traceJob(JobId id, std::string_view source,
                     const std::vector<PassProfile> *passes,
                     const JobTraceIo *io)
{
    if (obs_ == nullptr)
        return;
    Timeline timeline;
    {
        const std::lock_guard<std::mutex> lock(records_mutex_);
        const auto it = records_.find(id);
        if (it == records_.end())
            return; // pruned before its trace was stitched
        timeline = it->second.timeline;
    }
    appendJobTrace(obs_->trace, id, timeline, passes, source, io);
}

std::shared_ptr<const Machine>
JobService::internMachine(Shard &shard, const MachineConfig &config,
                          std::unique_lock<std::mutex> &lock)
{
    const std::uint64_t key = fingerprintMachineConfig(config);
    if (const auto it = shard.machines.find(key); it != shard.machines.end()) {
        if (auto machine = it->second.lock())
            return machine;
    }
    std::erase_if(shard.machines,
                  [](const auto &entry) { return entry.second.expired(); });

    // Build outside the lock: machine construction is O(sites) and must
    // not stall submitters or sibling workers of this shard.
    lock.unlock();
    std::shared_ptr<const Machine> machine;
    try {
        machine = std::make_shared<const Machine>(config);
    } catch (...) {
        lock.lock();
        throw;
    }
    lock.lock();
    auto &slot = shard.machines[key];
    if (auto existing = slot.lock())
        return existing;
    slot = machine;
    return machine;
}

void
JobService::workerLoop(Shard &shard)
{
    std::unique_lock<std::mutex> lock(shard.mutex);
    for (;;) {
        shard.work_ready.wait(
            lock, [&] { return shard.stopping || !shard.queue.empty(); });
        if (shard.queue.empty()) {
            if (shard.stopping)
                return; // drained: every admitted job was resolved
            continue;
        }
        const QueueEntry entry = shard.queue.top();
        shard.queue.pop();

        const auto it = shard.pending.find(entry.fingerprint);
        // Stale heap entries: the job already ran, or a promotion
        // superseded this entry (the fresher one carries the higher
        // priority). Skip without touching anything.
        if (it == shard.pending.end() || it->second.running ||
            it->second.priority != entry.priority)
            continue;

        const std::uint64_t fingerprint = entry.fingerprint;
        // The map reference stays valid while unlocked: only this
        // worker erases this entry once running, rehashing never
        // invalidates references, and concurrent submits only append
        // waiters under the lock — never touch the job payload.
        PendingJob &pending = it->second;
        pending.running = true;
        --shard.queued_jobs;
        if (shard.depth_gauge != nullptr)
            shard.depth_gauge->set(static_cast<double>(shard.queued_jobs));

        // Deadlines bound queue wait: anyone overdue by now expires
        // before the compilation starts.
        const Clock::time_point now = Clock::now();
        std::vector<Waiter> expired_waiters;
        std::vector<Waiter> live;
        for (Waiter &waiter : pending.waiters) {
            if (waiter.has_deadline && waiter.deadline < now)
                expired_waiters.push_back(std::move(waiter));
            else
                live.push_back(std::move(waiter));
        }
        pending.waiters = std::move(live);

        if (pending.waiters.empty()) {
            // Everyone expired: skip the compilation entirely.
            shard.pending.erase(it);
            const bool now_idle = shard.pending.empty();
            lock.unlock();
            {
                const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
                expired_ += expired_waiters.size();
            }
            for (Waiter &waiter : expired_waiters) {
                recordState(waiter.id, JobState::Expired,
                            "expired: deadline passed while queued");
                traceJob(waiter.id, {});
                waiter.promise.set_exception(std::make_exception_ptr(
                    ExpiredError("deadline passed while queued")));
            }
            if (now_idle)
                shard.idle.notify_all();
            lock.lock();
            continue;
        }

        std::vector<JobId> live_ids;
        live_ids.reserve(pending.waiters.size());
        for (const Waiter &waiter : pending.waiters)
            live_ids.push_back(waiter.id);

        std::shared_ptr<const Machine> machine;
        std::shared_ptr<const CompileResult> result;
        std::exception_ptr error;
        bool from_disk = false;
        JobTraceIo io;
        try {
            machine = internMachine(shard, pending.job.machine, lock);
            CompilerOptions options = pending.job.options;
            const Circuit &circuit = pending.job.circuit;
            lock.unlock();

            if (!expired_waiters.empty()) {
                const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
                expired_ += expired_waiters.size();
            }
            for (Waiter &waiter : expired_waiters) {
                recordState(waiter.id, JobState::Expired,
                            "expired: deadline passed while queued");
                traceJob(waiter.id, {});
                waiter.promise.set_exception(std::make_exception_ptr(
                    ExpiredError("deadline passed while queued")));
            }
            expired_waiters.clear();

            if (disk_) {
                if (obs_ != nullptr) {
                    io.read = true;
                    io.read_start = JobTraceIo::Clock::now();
                }
                result = disk_->load(
                    diskCacheKey(fingerprint, options_.derive_job_seeds),
                    *machine);
                if (obs_ != nullptr) {
                    io.read_end = JobTraceIo::Clock::now();
                    io.read_hit = result != nullptr;
                }
            }
            if (result) {
                from_disk = true;
            } else {
                for (const JobId job_id : live_ids)
                    recordState(job_id, JobState::Running);
                if (options_.derive_job_seeds)
                    options.seed = deriveJobSeed(
                        options.seed,
                        seedFingerprintJob(circuit, pending.job.machine,
                                           options));
                const PowerMoveCompiler compiler(*machine, options);
                result = std::make_shared<const CompileResult>(
                    compiler.compile(circuit));
                if (disk_) {
                    if (obs_ != nullptr) {
                        io.write = true;
                        io.write_start = JobTraceIo::Clock::now();
                    }
                    disk_->store(
                        diskCacheKey(fingerprint,
                                     options_.derive_job_seeds),
                        *result);
                    if (obs_ != nullptr)
                        io.write_end = JobTraceIo::Clock::now();
                }
            }
            lock.lock();
        } catch (...) {
            error = std::current_exception();
            if (!lock.owns_lock())
                lock.lock();
        }

        if (result) {
            const std::size_t evictions_before = shard.cache.evictions();
            shard.cache.insert(fingerprint, {result, machine});
            if (metric_ != nullptr &&
                shard.cache.evictions() > evictions_before)
                metric_->memory_cache_evictions->add(
                    shard.cache.evictions() - evictions_before);
        }
        std::vector<Waiter> waiters = std::move(pending.waiters);
        shard.pending.erase(fingerprint);
        const bool now_idle = shard.pending.empty();
        lock.unlock();

        // Account before fulfilling any promise: a waiter that observes
        // its result (or exception) must already see it in stats().
        {
            const std::lock_guard<std::mutex> stats_lock(stats_mutex_);
            expired_ += expired_waiters.size();
            if (error)
                ++failed_;
            else if (from_disk)
                ++disk_hits_;
            else
                ++compiled_;
        }
        if (metric_ != nullptr) {
            // Tier attribution for the job that reached a worker: the
            // disk tier answered, or it was a full miss (compiled fresh
            // or failed). Coalesced/memory were attributed at submit.
            metric_->tier_total[static_cast<std::size_t>(
                                    from_disk && !error ? TierIndex::Disk
                                                        : TierIndex::Miss)]
                ->add(1);
            if (!error && !from_disk)
                metric_->foldPassProfiles(obs_->metrics,
                                          result->pass_profiles);
        }

        // Leftover expired waiters exist only on the error path (the
        // unlock above never ran); resolve them as Expired, not Failed.
        for (Waiter &waiter : expired_waiters) {
            recordState(waiter.id, JobState::Expired,
                        "expired: deadline passed while queued");
            traceJob(waiter.id, {});
            waiter.promise.set_exception(std::make_exception_ptr(
                ExpiredError("deadline passed while queued")));
        }

        std::string error_text;
        if (error) {
            try {
                std::rethrow_exception(error);
            } catch (const std::exception &e) {
                error_text = e.what();
            } catch (...) {
                error_text = "unknown error";
            }
        }

        JobResult outcome{machine, result, fingerprint, from_disk,
                          from_disk ? ResultSource::Disk
                                    : ResultSource::Compiled};
        for (std::size_t w = 0; w < waiters.size(); ++w) {
            Waiter &waiter = waiters[w];
            if (error) {
                recordState(waiter.id, JobState::Failed, error_text);
                traceJob(waiter.id, {}, nullptr, w == 0 ? &io : nullptr);
                waiter.promise.set_exception(error);
                continue;
            }
            recordState(waiter.id,
                        from_disk ? JobState::Cached : JobState::Done, {},
                        from_disk ? "disk" : std::string());
            // The first waiter's lane carries the per-pass spans and the
            // real disk I/O spans; coalesced lanes show lifecycle only.
            if (from_disk)
                traceJob(waiter.id, "disk", nullptr,
                         w == 0 ? &io : nullptr);
            else if (w == 0)
                traceJob(waiter.id, "compiled", &result->pass_profiles,
                         &io);
            else
                traceJob(waiter.id, "coalesced");
            outcome.source = from_disk ? ResultSource::Disk
                             : w == 0  ? ResultSource::Compiled
                                       : ResultSource::Coalesced;
            waiter.promise.set_value(outcome);
        }

        if (now_idle)
            shard.idle.notify_all();
        lock.lock();
    }
}

} // namespace powermove::service
