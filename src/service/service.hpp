/**
 * @file
 * Batch compilation service: a thread-pooled job queue fronted by a
 * content-addressed result cache.
 *
 * Clients submit (circuit, machine config, compiler options) jobs and
 * receive std::futures. Internally:
 *
 *  - submit() fingerprints the job (service/fingerprint.hpp) and, under
 *    one lock, resolves it against the fast tiers: an identical job
 *    already *in flight* (the new future attaches to it — no duplicate
 *    work), a memory-cached result (the future is ready immediately),
 *    or a fresh entry pushed onto the worker queue.
 *  - A fixed pool of std::thread workers pops jobs, consults the
 *    optional persistent disk cache (ServiceOptions::cache_dir,
 *    service/disk_cache.hpp) and only compiles with PowerMoveCompiler
 *    on a full miss, then fulfills every attached future. Successful
 *    results enter the LRU memory cache and the disk cache; failures
 *    propagate as exceptions through each waiting future and are never
 *    cached. ServiceStats attributes every submission to its serving
 *    tier (coalesced / memory / disk / compiled), so throughput numbers
 *    are attributable.
 *  - Machines are interned by config fingerprint and handed out as
 *    shared_ptrs, because a MachineSchedule references its Machine: a
 *    JobResult keeps its machine alive no matter what the service does
 *    afterwards.
 *
 * Determinism: each job compiles with a seed derived from (base seed,
 * profile-normalized job fingerprint) — see deriveJobSeed() and
 * seedFingerprintJob() — so results are reproducible regardless of
 * worker count or queue interleaving, and toggling pass profiling
 * never changes a job's schedule. effectiveOptions()
 * exposes the exact options a job runs with, letting callers replay any
 * batched compilation single-threadedly.
 *
 * Thread safety: every public member function may be called from any
 * thread. The Machine, Circuit, and CompileResult objects handed out
 * are immutable and safe to read concurrently.
 */

#ifndef POWERMOVE_SERVICE_SERVICE_HPP
#define POWERMOVE_SERVICE_SERVICE_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "arch/machine.hpp"
#include "circuit/circuit.hpp"
#include "compiler/options.hpp"
#include "compiler/result.hpp"
#include "service/cache.hpp"
#include "service/disk_cache.hpp"
#include "service/observe.hpp"

namespace powermove::service {

/** One unit of work: compile @p circuit for @p machine under @p options. */
struct CompileJob
{
    Circuit circuit;
    MachineConfig machine;
    CompilerOptions options;
};

/** Which tier produced a JobResult. */
enum class ResultSource : std::uint8_t
{
    /** A worker compiled it fresh (full cache miss). */
    Compiled,
    /** Attached to an identical in-flight job another submission owns. */
    Coalesced,
    /** Served from the in-memory LRU cache at submit time. */
    Memory,
    /** Deserialized from the persistent disk cache by a worker. */
    Disk,
};

/** What a submitted job's future resolves to. */
struct JobResult
{
    /** The interned target machine; keeps the schedule's referent alive. */
    std::shared_ptr<const Machine> machine;
    /** The (possibly shared) compilation outcome. */
    std::shared_ptr<const CompileResult> result;
    /** Content address of the job (cache key). */
    std::uint64_t fingerprint = 0;
    /** True if a cache (memory or disk) answered without compiling. */
    bool from_cache = false;
    /** Exact serving tier. */
    ResultSource source = ResultSource::Compiled;
};

/** One entry of a compileBatch() response. */
struct BatchEntry
{
    /** Valid only when ok(). */
    JobResult result;
    /** Failure description (exception message); empty on success. */
    std::string error;

    bool ok() const { return error.empty(); }
};

/** Service construction knobs. */
struct ServiceOptions
{
    /** Worker threads; 0 means one per hardware thread (at least 1). */
    std::size_t num_workers = 0;
    /** Result-cache capacity in entries; 0 disables caching. */
    std::size_t cache_capacity = 128;
    /**
     * Apply the deriveJobSeed() rule (the default). Disable to compile
     * every job with its verbatim CompilerOptions::seed, matching a
     * direct PowerMoveCompiler invocation.
     */
    bool derive_job_seeds = true;
    /**
     * Directory of the persistent content-addressed disk cache; empty
     * (the default) disables the disk tier. Results stored there
     * survive restarts and are shared with any other service instance
     * — in this process or another — pointed at the same directory.
     */
    std::string cache_dir;
    /** Disk-cache byte budget (see DiskCacheOptions::max_bytes). */
    std::uint64_t disk_cache_bytes = 256ull << 20;
    /**
     * Observability bundle shared with the disk cache; null (the
     * default) leaves the service uninstrumented.
     */
    std::shared_ptr<obs::Observability> obs;
};

/** Counters snapshot; all values are cumulative since construction. */
struct ServiceStats
{
    std::size_t jobs_submitted = 0;
    /** Jobs that ran to completion on a worker (cache hits excluded). */
    std::size_t jobs_completed = 0;
    /** Jobs whose compilation threw. */
    std::size_t jobs_failed = 0;
    /**
     * Cache-tier attribution. Every submission resolves to exactly one
     * of: coalesced (attached to an identical in-flight job), a memory
     * hit (answered at submit from the LRU cache), a disk hit (a worker
     * deserialized the persistent entry instead of compiling), or a
     * miss (a worker compiled it — successfully or not). In-flight
     * jobs are attributed once their worker resolves them.
     */
    std::size_t memory_hits = 0;
    /** Submissions a worker served from the persistent disk cache. */
    std::size_t disk_hits = 0;
    /** Submissions that missed every tier and compiled fresh. */
    std::size_t misses = 0;
    /** Submissions attached to an identical in-flight job. */
    std::size_t coalesced = 0;
    /** Memory-cache entries dropped by the LRU bound. */
    std::size_t cache_evictions = 0;
    /** Currently resident memory-cache entries. */
    std::size_t cache_entries = 0;
    /** Disk-tier counters; all zero when no cache_dir is configured. */
    DiskCacheStats disk;
    /**
     * Machines constructed so far. Machines are interned by config for
     * as long as any result (cached or client-held) references them; a
     * config whose machines all died is rebuilt on next use, counting
     * again.
     */
    std::size_t machines_built = 0;
    /** Pool size. */
    std::size_t num_workers = 0;
    /**
     * Per-pass profiles aggregated over every job compiled on a worker
     * (cache hits re-run nothing and add nothing), in pipeline order.
     * Empty until a profiled job completes.
     */
    std::vector<PassProfile> pass_totals;
};

/** Thread-pooled, cache-fronted batch compiler. */
class CompilationService
{
  public:
    explicit CompilationService(ServiceOptions options = {});

    /**
     * Drains the queue: every already-submitted job still completes and
     * fulfills its futures before the workers join.
     */
    ~CompilationService();

    CompilationService(const CompilationService &) = delete;
    CompilationService &operator=(const CompilationService &) = delete;

    /** Submits one job; the future reports success or rethrows. */
    std::future<JobResult> submit(CompileJob job);

    /** Convenience overload building the job in place. */
    std::future<JobResult> submit(Circuit circuit, MachineConfig machine,
                                  CompilerOptions options = {});

    /**
     * Submits every job, waits for all of them, and reports per-job
     * outcomes — a failure in one job never hides the others' results.
     */
    std::vector<BatchEntry> compileBatch(std::vector<CompileJob> jobs);

    /** Blocks until no job is queued or running. */
    void waitIdle();

    /** Point-in-time counters. */
    ServiceStats stats() const;

    /** The options this service was built with (workers resolved). */
    const ServiceOptions &options() const { return options_; }

  private:
    struct PendingJob
    {
        CompileJob job;
        std::vector<std::promise<JobResult>> waiters;
    };

    void workerLoop();

    /** Interned machine for @p config, building it on first use. */
    std::shared_ptr<const Machine>
    internMachine(const MachineConfig &config,
                  std::unique_lock<std::mutex> &lock);

    ServiceOptions options_;
    /** Aliases options_.obs; null when observability is off. */
    std::shared_ptr<obs::Observability> obs_;
    /** Resolved metric handles; null exactly when obs_ is null. */
    std::unique_ptr<ServiceMetricHandles> metric_;
    /** powermove_queue_depth; null when obs is off. */
    obs::Gauge *depth_gauge_ = nullptr;

    mutable std::mutex mutex_;
    std::condition_variable work_ready_;
    std::condition_variable idle_;
    bool stopping_ = false;

    std::deque<std::uint64_t> queue_; // fingerprints with a PendingJob
    std::unordered_map<std::uint64_t, PendingJob> pending_;
    // Weak interning: a machine lives exactly as long as some cache
    // entry or client JobResult holds it, so the map cannot grow
    // unboundedly with distinct configs over a long-lived service.
    std::unordered_map<std::uint64_t, std::weak_ptr<const Machine>>
        machines_;
    CompileCache cache_;
    /** Persistent tier; null when ServiceOptions::cache_dir is empty. */
    std::shared_ptr<DiskCache> disk_;
    std::size_t machines_built_ = 0;

    std::size_t jobs_submitted_ = 0;
    std::size_t jobs_completed_ = 0;
    std::size_t jobs_failed_ = 0;
    std::size_t coalesced_ = 0;
    std::size_t disk_hits_ = 0;
    std::size_t misses_ = 0;
    std::vector<PassProfile> pass_totals_;

    std::vector<std::thread> workers_;
};

/** Content address of @p job (the service's cache key). */
std::uint64_t jobFingerprint(const CompileJob &job);

/**
 * The options @p job actually compiles with under the service's
 * deterministic-seeding rule: the base seed is replaced by
 * deriveJobSeed(base, fingerprint). Compile with these directly to
 * replay any batched job bit-identically outside the service.
 */
CompilerOptions effectiveOptions(const CompileJob &job);

} // namespace powermove::service

#endif // POWERMOVE_SERVICE_SERVICE_HPP
