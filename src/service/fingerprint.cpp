#include "service/fingerprint.hpp"

#include "common/rng.hpp"

namespace powermove::service {

namespace {

// Domain-separation tags so that e.g. a circuit fingerprint can never
// collide with a config fingerprint of the same byte content.
constexpr std::uint64_t kCircuitTag = 0x504d2d63697263ULL;  // "PM-circ"
constexpr std::uint64_t kConfigTag = 0x504d2d636f6e66ULL;   // "PM-conf"
constexpr std::uint64_t kOptionsTag = 0x504d2d6f707473ULL;  // "PM-opts"
constexpr std::uint64_t kJobTag = 0x504d2d6a6f62ULL;        // "PM-job"
constexpr std::uint64_t kOneQMomentTag = 1;
constexpr std::uint64_t kCzMomentTag = 2;

} // namespace

std::uint64_t
fingerprintCircuit(const Circuit &circuit)
{
    Fnv1a hash;
    hash.add(kCircuitTag);
    hash.add(static_cast<std::uint64_t>(circuit.numQubits()));
    hash.add(static_cast<std::uint64_t>(circuit.moments().size()));
    for (const Moment &moment : circuit.moments()) {
        if (const auto *one_q = std::get_if<OneQLayer>(&moment)) {
            hash.add(kOneQMomentTag);
            hash.add(static_cast<std::uint64_t>(one_q->gates.size()));
            for (const OneQGate &gate : one_q->gates) {
                hash.add(static_cast<std::uint64_t>(gate.kind));
                hash.add(static_cast<std::uint64_t>(gate.qubit));
                // Only angle-carrying kinds hash their angle so that the
                // unused 0.0 payload of e.g. an H gate cannot differ.
                if (oneQKindHasAngle(gate.kind))
                    hash.add(gate.angle);
            }
        } else {
            const auto &block = std::get<CzBlock>(moment);
            hash.add(kCzMomentTag);
            hash.add(static_cast<std::uint64_t>(block.gates.size()));
            for (const CzGate &gate : block.gates) {
                hash.add(static_cast<std::uint64_t>(gate.a));
                hash.add(static_cast<std::uint64_t>(gate.b));
            }
        }
    }
    return hash.digest();
}

std::uint64_t
fingerprintMachineConfig(const MachineConfig &config)
{
    Fnv1a hash;
    hash.add(kConfigTag);
    hash.add(static_cast<std::int64_t>(config.compute_cols));
    hash.add(static_cast<std::int64_t>(config.compute_rows));
    hash.add(static_cast<std::int64_t>(config.storage_cols));
    hash.add(static_cast<std::int64_t>(config.storage_rows));
    hash.add(static_cast<std::int64_t>(config.gap_rows));

    const HardwareParams &p = config.params;
    hash.add(p.f_one_q);
    hash.add(p.f_cz);
    hash.add(p.f_excitation);
    hash.add(p.f_transfer);
    hash.add(p.t_one_q.micros());
    hash.add(p.t_cz.micros());
    hash.add(p.t_transfer.micros());
    hash.add(p.t2.micros());
    hash.add(p.site_pitch.microns());
    hash.add(p.zone_gap.microns());
    hash.add(p.rydberg_radius.microns());
    hash.add(p.min_idle_separation.microns());
    hash.add(p.max_acceleration);
    hash.add(p.move_t_ref.micros());
    hash.add(p.move_d_ref.microns());
    return hash.digest();
}

// Completeness guard: every CompilerOptions field must be hashed below,
// or two different configurations could silently share a cache entry.
// A new field usually changes the struct's size on LP64 platforms,
// tripping this assertion until both the hash and the expected size are
// updated; when padding absorbs the addition instead (as it did for the
// one-byte stage_partition and residency enums), the structured-binding
// probe in fingerprint_test.cpp still catches the unhashed field by
// count.
static_assert(sizeof(void *) != 8 || sizeof(CompilerOptions) == 64,
              "CompilerOptions changed: extend fingerprintOptions() with the "
              "new field, then update this expected size");

std::uint64_t
fingerprintOptions(const CompilerOptions &options)
{
    Fnv1a hash;
    hash.add(kOptionsTag);
    hash.add(options.use_storage);
    hash.add(static_cast<std::uint64_t>(options.num_aods));
    hash.add(options.stage_order_alpha);
    hash.add(options.seed);
    hash.add(static_cast<std::uint64_t>(options.placement));
    hash.add(static_cast<std::uint64_t>(options.placement_refine_iters));
    hash.add(static_cast<std::uint64_t>(options.stage_partition));
    hash.add(static_cast<std::uint64_t>(options.stage_order));
    hash.add(static_cast<std::uint64_t>(options.coll_move_order));
    hash.add(static_cast<std::uint64_t>(options.aod_batch_policy));
    hash.add(static_cast<std::uint64_t>(options.routing));
    hash.add(static_cast<std::uint64_t>(options.reuse_lookahead));
    hash.add(static_cast<std::uint64_t>(options.residency));
    hash.add(static_cast<std::uint64_t>(options.routing_window));
    // profile_passes never changes the emitted schedule, but it changes
    // the CompileResult payload (pass_profiles present or empty), so it
    // is addressed too: a spurious miss beats handing a caller a cached
    // result whose profiles do not match their request. Seed derivation
    // must NOT see this field — see seedFingerprintJob().
    hash.add(options.profile_passes);
    return hash.digest();
}

std::uint64_t
fingerprintJob(const Circuit &circuit, const MachineConfig &config,
               const CompilerOptions &options)
{
    Fnv1a hash;
    hash.add(kJobTag);
    hash.add(fingerprintCircuit(circuit));
    hash.add(fingerprintMachineConfig(config));
    hash.add(fingerprintOptions(options));
    return hash.digest();
}

std::uint64_t
seedFingerprintJob(const Circuit &circuit, const MachineConfig &config,
                   const CompilerOptions &options)
{
    CompilerOptions canonical = options;
    canonical.profile_passes = CompilerOptions{}.profile_passes;
    // The fast path is bit-identical to the reference router at equal
    // seeds, so it must draw the same seed.
    if (canonical.routing == RoutingStrategy::Fast)
        canonical.routing = RoutingStrategy::Continuous;
    return fingerprintJob(circuit, config, canonical);
}

std::uint64_t
diskCacheKey(std::uint64_t job_fingerprint, bool derive_job_seeds)
{
    if (derive_job_seeds)
        return job_fingerprint;
    Fnv1a hash;
    hash.add("verbatim-seed");
    hash.add(job_fingerprint);
    return hash.digest();
}

std::uint64_t
deriveJobSeed(std::uint64_t base_seed, std::uint64_t job_fingerprint)
{
    // hash_combine-style fold of the fingerprint into the base seed,
    // finished with a SplitMix64 round for avalanche.
    std::uint64_t state = base_seed;
    state ^= job_fingerprint + 0x9e3779b97f4a7c15ULL + (state << 6) +
             (state >> 2);
    return splitMix64(state);
}

} // namespace powermove::service
