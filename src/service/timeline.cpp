#include "service/timeline.hpp"

namespace powermove::service {

std::string_view
jobStateName(JobState state)
{
    switch (state) {
    case JobState::Queued:
        return "queued";
    case JobState::Admitted:
        return "admitted";
    case JobState::Running:
        return "running";
    case JobState::Cached:
        return "cached";
    case JobState::Done:
        return "done";
    case JobState::Failed:
        return "failed";
    case JobState::Rejected:
        return "rejected";
    case JobState::Expired:
        return "expired";
    }
    return "unknown";
}

bool
jobStateIsTerminal(JobState state)
{
    switch (state) {
    case JobState::Cached:
    case JobState::Done:
    case JobState::Failed:
    case JobState::Rejected:
    case JobState::Expired:
        return true;
    case JobState::Queued:
    case JobState::Admitted:
    case JobState::Running:
        return false;
    }
    return false;
}

void
Timeline::record(JobState state, std::string detail)
{
    record(state, std::chrono::steady_clock::now(), std::move(detail));
}

void
Timeline::record(JobState state, std::chrono::steady_clock::time_point at,
                 std::string detail)
{
    events_.push_back(TimelineEvent{state, at, std::move(detail)});
}

const TimelineEvent *
Timeline::find(JobState state) const
{
    for (const TimelineEvent &event : events_)
        if (event.state == state)
            return &event;
    return nullptr;
}

JobState
Timeline::current() const
{
    return events_.empty() ? JobState::Queued : events_.back().state;
}

bool
Timeline::finished() const
{
    return !events_.empty() && jobStateIsTerminal(events_.back().state);
}

Duration
Timeline::between(JobState from, JobState to) const
{
    const TimelineEvent *start = nullptr;
    for (const TimelineEvent &event : events_) {
        if (start == nullptr) {
            if (event.state == from)
                start = &event;
        } else if (event.state == to) {
            return Duration::micros(
                std::chrono::duration<double, std::micro>(event.at - start->at)
                    .count());
        }
    }
    return Duration::micros(0.0);
}

Duration
Timeline::total() const
{
    if (events_.size() < 2)
        return Duration::micros(0.0);
    return Duration::micros(std::chrono::duration<double, std::micro>(
                                events_.back().at - events_.front().at)
                                .count());
}

} // namespace powermove::service
