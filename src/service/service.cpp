#include "service/service.hpp"

#include "common/error.hpp"
#include "compiler/powermove.hpp"
#include "service/fingerprint.hpp"

namespace powermove::service {

std::uint64_t
jobFingerprint(const CompileJob &job)
{
    return fingerprintJob(job.circuit, job.machine, job.options);
}

CompilerOptions
effectiveOptions(const CompileJob &job)
{
    CompilerOptions options = job.options;
    options.seed = deriveJobSeed(
        options.seed,
        seedFingerprintJob(job.circuit, job.machine, job.options));
    return options;
}

CompilationService::CompilationService(ServiceOptions options)
    : options_(std::move(options)), cache_(options_.cache_capacity)
{
    if (options_.num_workers == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        options_.num_workers = hw == 0 ? 1 : hw;
    }
    obs_ = options_.obs;
    if (obs_ != nullptr) {
        metric_ = std::make_unique<ServiceMetricHandles>(obs_->metrics);
        depth_gauge_ = &obs_->metrics.gauge("powermove_queue_depth");
    }
    if (!options_.cache_dir.empty())
        disk_ = std::make_shared<DiskCache>(DiskCacheOptions{
            options_.cache_dir, options_.disk_cache_bytes, obs_});
    workers_.reserve(options_.num_workers);
    for (std::size_t i = 0; i < options_.num_workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

CompilationService::~CompilationService()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

std::future<JobResult>
CompilationService::submit(CompileJob job)
{
    const std::uint64_t fingerprint = jobFingerprint(job);
    std::promise<JobResult> promise;
    std::future<JobResult> future = promise.get_future();

    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_)
        fatal("submit on a stopping CompilationService");
    ++jobs_submitted_;
    if (metric_ != nullptr)
        metric_->submitted->add(1);

    // Tier 1: an identical job is already queued or compiling — attach.
    if (const auto it = pending_.find(fingerprint); it != pending_.end()) {
        ++coalesced_;
        if (metric_ != nullptr)
            metric_->tier_total[static_cast<std::size_t>(
                                    TierIndex::Coalesced)]
                ->add(1);
        it->second.waiters.push_back(std::move(promise));
        return future;
    }

    // Tier 2: the result is in memory — answer without touching the pool.
    if (auto cached = cache_.lookup(fingerprint)) {
        lock.unlock();
        if (metric_ != nullptr)
            metric_->tier_total[static_cast<std::size_t>(TierIndex::Memory)]
                ->add(1);
        promise.set_value(JobResult{std::move(cached.machine),
                                    std::move(cached.result), fingerprint,
                                    true, ResultSource::Memory});
        return future;
    }

    // Tier 3: fresh work.
    PendingJob entry;
    entry.job = std::move(job);
    entry.waiters.push_back(std::move(promise));
    pending_.emplace(fingerprint, std::move(entry));
    queue_.push_back(fingerprint);
    if (depth_gauge_ != nullptr)
        depth_gauge_->set(static_cast<double>(queue_.size()));
    lock.unlock();
    work_ready_.notify_one();
    return future;
}

std::future<JobResult>
CompilationService::submit(Circuit circuit, MachineConfig machine,
                           CompilerOptions options)
{
    return submit(CompileJob{std::move(circuit), machine, options});
}

std::vector<BatchEntry>
CompilationService::compileBatch(std::vector<CompileJob> jobs)
{
    std::vector<std::future<JobResult>> futures;
    futures.reserve(jobs.size());
    for (CompileJob &job : jobs)
        futures.push_back(submit(std::move(job)));

    std::vector<BatchEntry> entries(futures.size());
    for (std::size_t i = 0; i < futures.size(); ++i) {
        try {
            entries[i].result = futures[i].get();
        } catch (const std::exception &e) {
            entries[i].error = e.what();
        } catch (...) {
            entries[i].error = "unknown error";
        }
    }
    return entries;
}

void
CompilationService::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [&] { return pending_.empty(); });
}

ServiceStats
CompilationService::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ServiceStats stats;
    stats.jobs_submitted = jobs_submitted_;
    stats.jobs_completed = jobs_completed_;
    stats.jobs_failed = jobs_failed_;
    stats.memory_hits = cache_.hits();
    stats.disk_hits = disk_hits_;
    stats.misses = misses_;
    stats.cache_evictions = cache_.evictions();
    stats.cache_entries = cache_.size();
    stats.coalesced = coalesced_;
    if (disk_)
        stats.disk = disk_->stats();
    stats.machines_built = machines_built_;
    stats.num_workers = workers_.size();
    stats.pass_totals = pass_totals_;
    return stats;
}

std::shared_ptr<const Machine>
CompilationService::internMachine(const MachineConfig &config,
                                  std::unique_lock<std::mutex> &lock)
{
    const std::uint64_t key = fingerprintMachineConfig(config);
    if (const auto it = machines_.find(key); it != machines_.end()) {
        if (auto machine = it->second.lock())
            return machine;
    }
    // Miss: sweep entries whose machines have died so the map tracks
    // live configs only.
    std::erase_if(machines_,
                  [](const auto &entry) { return entry.second.expired(); });

    // Build outside the lock: machine construction is O(sites) and must
    // not stall submitters or other workers.
    lock.unlock();
    std::shared_ptr<const Machine> machine;
    try {
        machine = std::make_shared<const Machine>(config);
    } catch (...) {
        lock.lock();
        throw;
    }
    lock.lock();
    ++machines_built_;
    // Another thread may have interned the same config meanwhile; reuse
    // its instance so every client shares one machine per config.
    auto &slot = machines_[key];
    if (auto existing = slot.lock())
        return existing;
    slot = machine;
    return machine;
}

void
CompilationService::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_ready_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_)
                return; // drained: every queued job ran before shutdown
            continue;
        }
        const std::uint64_t fingerprint = queue_.front();
        queue_.pop_front();
        if (depth_gauge_ != nullptr)
            depth_gauge_->set(static_cast<double>(queue_.size()));

        // The map reference stays valid while unlocked: only this worker
        // erases this entry, rehashing never invalidates references, and
        // concurrent submits only touch the waiters vector (under the
        // lock) — never the job payload we read from.
        PendingJob &entry = pending_.at(fingerprint);

        std::shared_ptr<const Machine> machine;
        std::shared_ptr<const CompileResult> result;
        std::exception_ptr error;
        bool from_disk = false;
        try {
            machine = internMachine(entry.job.machine, lock);
            CompilerOptions options = entry.job.options;
            const Circuit &circuit = entry.job.circuit;
            lock.unlock();
            // Tier 3: the persistent disk cache — deserializing a
            // stored schedule skips compilation entirely.
            if (disk_)
                result = disk_->load(
                    diskCacheKey(fingerprint, options_.derive_job_seeds),
                    *machine);
            if (result) {
                from_disk = true;
            } else {
                // Seeds derive from the profile-normalized fingerprint
                // (not the cache key) so that toggling profiling can
                // never alter a job's schedule; hashed outside the lock
                // since it walks the whole circuit.
                if (options_.derive_job_seeds)
                    options.seed = deriveJobSeed(
                        options.seed, seedFingerprintJob(circuit,
                                                         entry.job.machine,
                                                         options));
                const PowerMoveCompiler compiler(*machine, options);
                result = std::make_shared<const CompileResult>(
                    compiler.compile(circuit));
                if (disk_)
                    disk_->store(
                        diskCacheKey(fingerprint,
                                     options_.derive_job_seeds),
                        *result);
            }
            lock.lock();
        } catch (...) {
            error = std::current_exception();
            if (!lock.owns_lock())
                lock.lock();
        }

        if (result) {
            const std::size_t evictions_before = cache_.evictions();
            cache_.insert(fingerprint, {result, machine});
            if (metric_ != nullptr && cache_.evictions() > evictions_before)
                metric_->memory_cache_evictions->add(cache_.evictions() -
                                                     evictions_before);
            if (from_disk) {
                ++disk_hits_;
                if (metric_ != nullptr)
                    metric_->tier_total[static_cast<std::size_t>(
                                            TierIndex::Disk)]
                        ->add(1);
            } else {
                ++misses_;
                ++jobs_completed_;
                mergePassProfiles(pass_totals_, result->pass_profiles);
                if (metric_ != nullptr) {
                    metric_->tier_total[static_cast<std::size_t>(
                                            TierIndex::Miss)]
                        ->add(1);
                    metric_->foldPassProfiles(obs_->metrics,
                                              result->pass_profiles);
                }
            }
        } else {
            ++misses_;
            ++jobs_failed_;
            if (metric_ != nullptr)
                metric_->tier_total[static_cast<std::size_t>(
                                        TierIndex::Miss)]
                    ->add(1);
        }
        std::vector<std::promise<JobResult>> waiters =
            std::move(entry.waiters);
        pending_.erase(fingerprint);
        const bool now_idle = pending_.empty();
        lock.unlock();

        JobResult outcome{std::move(machine), std::move(result),
                          fingerprint, from_disk,
                          from_disk ? ResultSource::Disk
                                    : ResultSource::Compiled};
        for (std::size_t w = 0; w < waiters.size(); ++w) {
            // waiters[0] is the submission that created the entry; every
            // later one attached to it and is attributed as coalesced.
            outcome.source = w == 0 ? (from_disk ? ResultSource::Disk
                                                 : ResultSource::Compiled)
                                    : ResultSource::Coalesced;
            std::promise<JobResult> &waiter = waiters[w];
            if (error)
                waiter.set_exception(error);
            else
                waiter.set_value(outcome);
        }
        if (now_idle)
            idle_.notify_all();
        lock.lock();
    }
}

} // namespace powermove::service
