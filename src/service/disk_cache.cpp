#include "service/disk_cache.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <system_error>
#include <vector>

#include "common/error.hpp"
#include "service/fingerprint.hpp"

namespace powermove::service {

namespace {

/*
 * Payload encoding: little-endian u64 for every integer, IEEE-754 bit
 * patterns for doubles, length-prefixed bytes for strings, one tag byte
 * per instruction. The encoding is canonical — one result has exactly
 * one serialization — which is what lets the tests use byte equality of
 * serializations as the "bit-identical schedule" witness.
 */

class ByteWriter
{
  public:
    void
    u8(std::uint8_t value)
    {
        buffer_.push_back(static_cast<char>(value));
    }

    void
    u64(std::uint64_t value)
    {
        for (int i = 0; i < 8; ++i)
            buffer_.push_back(static_cast<char>(value >> (8 * i)));
    }

    void f64(double value) { u64(std::bit_cast<std::uint64_t>(value)); }

    void
    str(std::string_view text)
    {
        u64(text.size());
        buffer_.append(text.data(), text.size());
    }

    std::string take() { return std::move(buffer_); }

  private:
    std::string buffer_;
};

/** Bounds-checked reader: every getter reports failure instead of
 *  reading past the end, so truncated payloads decode to "corrupt". */
class ByteReader
{
  public:
    explicit ByteReader(std::string_view data) : data_(data) {}

    bool
    u8(std::uint8_t &out)
    {
        if (pos_ + 1 > data_.size())
            return false;
        out = static_cast<std::uint8_t>(data_[pos_++]);
        return true;
    }

    bool
    u64(std::uint64_t &out)
    {
        if (pos_ + 8 > data_.size())
            return false;
        out = 0;
        for (int i = 0; i < 8; ++i)
            out |= static_cast<std::uint64_t>(
                       static_cast<unsigned char>(data_[pos_ + i]))
                   << (8 * i);
        pos_ += 8;
        return true;
    }

    bool
    f64(double &out)
    {
        std::uint64_t bits = 0;
        if (!u64(bits))
            return false;
        out = std::bit_cast<double>(bits);
        return true;
    }

    bool
    str(std::string &out)
    {
        std::uint64_t size = 0;
        if (!u64(size) || size > remaining())
            return false;
        out.assign(data_.data() + pos_, static_cast<std::size_t>(size));
        pos_ += static_cast<std::size_t>(size);
        return true;
    }

    /**
     * Reads an element count that must leave at least @p min_elem_bytes
     * of payload per element — rejecting absurd counts before any
     * allocation sized by them.
     */
    bool
    count(std::uint64_t &out, std::size_t min_elem_bytes)
    {
        if (!u64(out))
            return false;
        return min_elem_bytes == 0 ||
               out <= remaining() / min_elem_bytes;
    }

    std::size_t remaining() const { return data_.size() - pos_; }
    bool done() const { return pos_ == data_.size(); }

  private:
    std::string_view data_;
    std::size_t pos_ = 0;
};

constexpr std::uint8_t kTagOneQLayer = 1;
constexpr std::uint8_t kTagMoveBatch = 2;
constexpr std::uint8_t kTagRydberg = 3;

void
writeBreakdown(ByteWriter &out, const FidelityBreakdown &metrics)
{
    out.u64(metrics.one_q_gates);
    out.u64(metrics.cz_gates);
    out.u64(metrics.excitation_exposures);
    out.u64(metrics.transfers);
    out.u64(metrics.pulses);
    out.f64(metrics.exec_time.micros());
    out.f64(metrics.total_idle.micros());
    out.f64(metrics.one_q_factor);
    out.f64(metrics.two_q_factor);
    out.f64(metrics.excitation_factor);
    out.f64(metrics.transfer_factor);
    out.f64(metrics.decoherence_factor);
}

bool
readBreakdown(ByteReader &in, FidelityBreakdown &metrics)
{
    std::uint64_t counts[5];
    for (std::uint64_t &value : counts)
        if (!in.u64(value))
            return false;
    metrics.one_q_gates = static_cast<std::size_t>(counts[0]);
    metrics.cz_gates = static_cast<std::size_t>(counts[1]);
    metrics.excitation_exposures = static_cast<std::size_t>(counts[2]);
    metrics.transfers = static_cast<std::size_t>(counts[3]);
    metrics.pulses = static_cast<std::size_t>(counts[4]);

    double micros = 0.0;
    if (!in.f64(micros))
        return false;
    metrics.exec_time = Duration::micros(micros);
    if (!in.f64(micros))
        return false;
    metrics.total_idle = Duration::micros(micros);
    return in.f64(metrics.one_q_factor) && in.f64(metrics.two_q_factor) &&
           in.f64(metrics.excitation_factor) &&
           in.f64(metrics.transfer_factor) &&
           in.f64(metrics.decoherence_factor);
}

void
writeSchedule(ByteWriter &out, const MachineSchedule &schedule)
{
    out.u64(schedule.initialSites().size());
    for (const SiteId site : schedule.initialSites())
        out.u64(site);

    out.u64(schedule.instructions().size());
    for (const Instruction &instruction : schedule.instructions()) {
        if (const auto *one_q = std::get_if<OneQLayerOp>(&instruction)) {
            out.u8(kTagOneQLayer);
            out.u64(one_q->gate_count);
            out.u64(one_q->depth);
        } else if (const auto *batch = std::get_if<MoveBatchOp>(&instruction)) {
            out.u8(kTagMoveBatch);
            out.u64(batch->batch.groups.size());
            for (const CollMove &group : batch->batch.groups) {
                out.u64(group.moves.size());
                for (const QubitMove &move : group.moves) {
                    out.u64(move.qubit);
                    out.u64(move.from);
                    out.u64(move.to);
                }
            }
        } else {
            const auto &rydberg = std::get<RydbergOp>(instruction);
            out.u8(kTagRydberg);
            out.u64(rydberg.gates.size());
            for (const CzGate &gate : rydberg.gates) {
                out.u64(gate.a);
                out.u64(gate.b);
            }
            out.u64(rydberg.block_index);
        }
    }
}

/**
 * Rebuilds the schedule by replaying its instruction stream through the
 * MachineSchedule mutators, which re-derives every cached counter the
 * same way the compiler originally did. Returns false on any structural
 * violation.
 */
bool
readSchedule(ByteReader &in, const Machine &machine,
             std::unique_ptr<MachineSchedule> &out)
{
    const std::uint64_t num_sites = machine.numSites();
    const std::uint64_t num_qubits_limit = num_sites;

    std::uint64_t num_qubits = 0;
    if (!in.count(num_qubits, 8) || num_qubits > num_qubits_limit)
        return false;
    std::vector<SiteId> initial_sites;
    initial_sites.reserve(static_cast<std::size_t>(num_qubits));
    for (std::uint64_t q = 0; q < num_qubits; ++q) {
        std::uint64_t site = 0;
        if (!in.u64(site) || site >= num_sites)
            return false;
        initial_sites.push_back(static_cast<SiteId>(site));
    }
    out = std::make_unique<MachineSchedule>(machine,
                                            std::move(initial_sites));

    std::uint64_t num_instructions = 0;
    if (!in.count(num_instructions, 1))
        return false;
    for (std::uint64_t i = 0; i < num_instructions; ++i) {
        std::uint8_t tag = 0;
        if (!in.u8(tag))
            return false;
        if (tag == kTagOneQLayer) {
            std::uint64_t gate_count = 0;
            std::uint64_t depth = 0;
            if (!in.u64(gate_count) || !in.u64(depth))
                return false;
            // addOneQLayer() asserts these; a violation is corruption.
            if (gate_count == 0 || depth == 0 || depth > gate_count)
                return false;
            out->addOneQLayer(static_cast<std::size_t>(gate_count),
                              static_cast<std::size_t>(depth));
        } else if (tag == kTagMoveBatch) {
            std::uint64_t num_groups = 0;
            if (!in.count(num_groups, 8))
                return false;
            AodBatch batch;
            batch.groups.reserve(static_cast<std::size_t>(num_groups));
            std::size_t moved = 0;
            for (std::uint64_t g = 0; g < num_groups; ++g) {
                std::uint64_t num_moves = 0;
                if (!in.count(num_moves, 24))
                    return false;
                CollMove group;
                group.moves.reserve(static_cast<std::size_t>(num_moves));
                for (std::uint64_t m = 0; m < num_moves; ++m) {
                    std::uint64_t qubit = 0, from = 0, to = 0;
                    if (!in.u64(qubit) || !in.u64(from) || !in.u64(to))
                        return false;
                    if (qubit >= num_qubits || from >= num_sites ||
                        to >= num_sites)
                        return false;
                    group.moves.push_back(
                        QubitMove{static_cast<QubitId>(qubit),
                                  static_cast<SiteId>(from),
                                  static_cast<SiteId>(to)});
                }
                moved += group.moves.size();
                batch.groups.push_back(std::move(group));
            }
            // addMoveBatch() silently drops empty batches; a serialized
            // schedule never contains one, so treat it as corruption
            // rather than altering the instruction count.
            if (moved == 0)
                return false;
            out->addMoveBatch(std::move(batch));
        } else if (tag == kTagRydberg) {
            std::uint64_t num_gates = 0;
            if (!in.count(num_gates, 16) || num_gates == 0)
                return false;
            std::vector<CzGate> gates;
            gates.reserve(static_cast<std::size_t>(num_gates));
            for (std::uint64_t g = 0; g < num_gates; ++g) {
                std::uint64_t a = 0, b = 0;
                if (!in.u64(a) || !in.u64(b))
                    return false;
                if (a >= num_qubits || b >= num_qubits)
                    return false;
                gates.push_back(CzGate{static_cast<QubitId>(a),
                                       static_cast<QubitId>(b)});
            }
            std::uint64_t block_index = 0;
            if (!in.u64(block_index))
                return false;
            out->addRydberg(std::move(gates),
                            static_cast<std::size_t>(block_index));
        } else {
            return false;
        }
    }
    return true;
}

void
writeProfiles(ByteWriter &out, const std::vector<PassProfile> &profiles)
{
    out.u64(profiles.size());
    for (const PassProfile &profile : profiles) {
        out.u8(static_cast<std::uint8_t>(profile.pass));
        out.f64(profile.wall_time.micros());
        out.u64(profile.invocations);
        out.u64(profile.counters.size());
        for (const PassCounter &counter : profile.counters) {
            out.str(counter.name);
            out.u64(counter.value);
        }
    }
}

bool
readProfiles(ByteReader &in, std::vector<PassProfile> &profiles)
{
    std::uint64_t num_profiles = 0;
    if (!in.count(num_profiles, 25))
        return false;
    profiles.reserve(static_cast<std::size_t>(num_profiles));
    for (std::uint64_t p = 0; p < num_profiles; ++p) {
        PassProfile profile;
        std::uint8_t pass = 0;
        if (!in.u8(pass) || pass >= kNumPasses)
            return false;
        profile.pass = static_cast<PassId>(pass);
        double micros = 0.0;
        std::uint64_t invocations = 0;
        std::uint64_t num_counters = 0;
        if (!in.f64(micros) || !in.u64(invocations) ||
            !in.count(num_counters, 16))
            return false;
        profile.wall_time = Duration::micros(micros);
        profile.invocations = static_cast<std::size_t>(invocations);
        profile.counters.reserve(static_cast<std::size_t>(num_counters));
        for (std::uint64_t c = 0; c < num_counters; ++c) {
            PassCounter counter;
            if (!in.str(counter.name) || !in.u64(counter.value))
                return false;
            profile.counters.push_back(std::move(counter));
        }
        profiles.push_back(std::move(profile));
    }
    return true;
}

/*
 * Entry file layout: a 36-byte header followed by the payload.
 *
 *   offset  size  field
 *        0     4  magic "PMDC"
 *        4     4  format version (little-endian u32)
 *        8     8  job fingerprint
 *       16     8  payload size in bytes
 *       24     8  payload checksum (4-lane FNV-1a, payloadChecksum())
 *       32     4  reserved (zero)
 */
constexpr char kMagic[4] = {'P', 'M', 'D', 'C'};
constexpr std::size_t kHeaderSize = 36;

/*
 * Payload checksum: four FNV-1a-64 lanes fed 8-byte little-endian words
 * round-robin, folded (with the total size) by a final FNV pass. Plain
 * FNV-1a is one dependent multiply per byte — a megabyte payload stalls
 * the multiplier pipeline for milliseconds, and the checksum sits on
 * the warm path of every disk-cache load. Four word-wide lanes keep the
 * multiplies independent and cut the critical path by ~32x.
 */
std::uint64_t
payloadChecksum(std::string_view payload)
{
    std::uint64_t lanes[4] = {
        Fnv1a::kOffsetBasis ^ 1, Fnv1a::kOffsetBasis ^ 2,
        Fnv1a::kOffsetBasis ^ 3, Fnv1a::kOffsetBasis ^ 4};
    const std::size_t words = payload.size() / 8;
    const char *cursor = payload.data();
    for (std::size_t w = 0; w < words; ++w, cursor += 8) {
        std::uint64_t word = 0; // canonical LE (a plain load on LE hosts)
        for (int b = 0; b < 8; ++b)
            word |= static_cast<std::uint64_t>(
                        static_cast<unsigned char>(cursor[b]))
                    << (8 * b);
        lanes[w & 3] = (lanes[w & 3] ^ word) * Fnv1a::kPrime;
    }
    Fnv1a fold;
    fold.addBytes(cursor, payload.size() - 8 * words); // tail bytes
    for (const std::uint64_t lane : lanes)
        fold.add(lane);
    fold.add(payload.size());
    return fold.digest();
}

void
writeU32(char *out, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<char>(value >> (8 * i));
}

void
writeU64(char *out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<char>(value >> (8 * i));
}

std::uint32_t
readU32(const char *in)
{
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[i]))
                 << (8 * i);
    return value;
}

std::uint64_t
readU64(const char *in)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[i]))
                 << (8 * i);
    return value;
}

} // namespace

std::string
serializeCompileResult(const CompileResult &result)
{
    ByteWriter out;
    writeSchedule(out, result.schedule);
    writeBreakdown(out, result.metrics);
    out.f64(result.compile_time.micros());
    out.u64(result.num_stages);
    out.u64(result.num_coll_moves);
    writeProfiles(out, result.pass_profiles);
    return out.take();
}

std::string
serializeResultWitness(const CompileResult &result)
{
    ByteWriter out;
    writeSchedule(out, result.schedule);
    writeBreakdown(out, result.metrics);
    out.u64(result.num_stages);
    out.u64(result.num_coll_moves);
    // Profiles without their wall times: invocation counts and pass
    // counters are deterministic, the clock readings are not.
    out.u64(result.pass_profiles.size());
    for (const PassProfile &profile : result.pass_profiles) {
        out.u8(static_cast<std::uint8_t>(profile.pass));
        out.u64(profile.invocations);
        out.u64(profile.counters.size());
        for (const PassCounter &counter : profile.counters) {
            out.str(counter.name);
            out.u64(counter.value);
        }
    }
    return out.take();
}

std::shared_ptr<const CompileResult>
deserializeCompileResult(std::string_view payload, const Machine &machine)
{
    ByteReader in(payload);
    std::unique_ptr<MachineSchedule> schedule;
    FidelityBreakdown metrics;
    double compile_micros = 0.0;
    std::uint64_t num_stages = 0;
    std::uint64_t num_coll_moves = 0;
    std::vector<PassProfile> profiles;
    try {
        if (!readSchedule(in, machine, schedule) ||
            !readBreakdown(in, metrics) || !in.f64(compile_micros) ||
            !in.u64(num_stages) || !in.u64(num_coll_moves) ||
            !readProfiles(in, profiles) || !in.done())
            return nullptr;
    } catch (...) {
        // Replay tripped a schedule invariant the field checks missed;
        // corrupt data must read as a miss, never as an exception.
        return nullptr;
    }
    return std::make_shared<const CompileResult>(CompileResult{
        std::move(*schedule), metrics, Duration::micros(compile_micros),
        static_cast<std::size_t>(num_stages),
        static_cast<std::size_t>(num_coll_moves), std::move(profiles)});
}

DiskCache::DiskCache(DiskCacheOptions options)
    : dir_(options.dir), max_bytes_(options.max_bytes),
      obs_(std::move(options.obs))
{
    if (dir_.empty())
        throw ConfigError("disk cache directory must not be empty");
    if (obs_ != nullptr) {
        obs::MetricsRegistry &reg = obs_->metrics;
        metric_.hits = &reg.counter("powermove_disk_cache_hits_total");
        metric_.misses = &reg.counter("powermove_disk_cache_misses_total");
        metric_.stores = &reg.counter("powermove_disk_cache_stores_total");
        metric_.corrupt = &reg.counter("powermove_disk_cache_corrupt_total");
        metric_.evictions =
            &reg.counter("powermove_disk_cache_evictions_total");
        metric_.read_bytes =
            &reg.counter("powermove_disk_cache_read_bytes_total");
        metric_.write_bytes =
            &reg.counter("powermove_disk_cache_write_bytes_total");
        metric_.entries = &reg.gauge("powermove_disk_cache_entries");
        metric_.resident_bytes =
            &reg.gauge("powermove_disk_cache_resident_bytes");
    }
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    if (ec)
        throw ConfigError("cannot create disk cache directory '" +
                          dir_.string() + "': " + ec.message());

    // Index the survivors of previous processes, oldest first so the
    // in-memory LRU order continues where the last run left off, and
    // sweep temp files a torn write may have stranded.
    struct Found
    {
        std::uint64_t fingerprint;
        std::uint64_t bytes;
        std::filesystem::file_time_type mtime;
    };
    std::vector<Found> found;
    for (const auto &entry : std::filesystem::directory_iterator(dir_, ec)) {
        if (!entry.is_regular_file(ec))
            continue;
        const std::filesystem::path &path = entry.path();
        if (path.extension() == ".tmp") {
            std::filesystem::remove(path, ec);
            continue;
        }
        if (path.extension() != ".pmc")
            continue;
        const std::string stem = path.stem().string();
        char *end = nullptr;
        const std::uint64_t fingerprint =
            std::strtoull(stem.c_str(), &end, 16);
        if (end == stem.c_str() || *end != '\0')
            continue;
        found.push_back(Found{fingerprint,
                              static_cast<std::uint64_t>(entry.file_size(ec)),
                              entry.last_write_time(ec)});
    }
    std::sort(found.begin(), found.end(),
              [](const Found &a, const Found &b) { return a.mtime < b.mtime; });

    std::unique_lock<std::mutex> lock(mutex_);
    for (const Found &entry : found)
        indexEntry(entry.fingerprint, entry.bytes, lock);
    const std::vector<std::filesystem::path> victims = collectEvictions(lock);
    const std::size_t entries = index_.size();
    const std::uint64_t resident = resident_bytes_;
    lock.unlock();
    for (const std::filesystem::path &victim : victims)
        std::filesystem::remove(victim, ec);
    if (obs_ != nullptr) {
        if (!victims.empty())
            metric_.evictions->add(victims.size());
        publishResidency(entries, resident);
        obs_->log.info("disk_cache_open",
                       {{"dir", dir_.string()},
                        {"entries", entries},
                        {"bytes", resident},
                        {"swept", victims.size()}});
    }
}

std::filesystem::path
DiskCache::entryPath(std::uint64_t fingerprint) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.pmc",
                  static_cast<unsigned long long>(fingerprint));
    return dir_ / name;
}

std::shared_ptr<const CompileResult>
DiskCache::load(std::uint64_t fingerprint, const Machine &machine)
{
    const std::filesystem::path path = entryPath(fingerprint);

    // All file I/O runs outside the index lock; a concurrent eviction
    // just makes the open fail, which reads as a miss.
    std::string blob;
    {
        std::FILE *file = std::fopen(path.c_str(), "rb");
        if (file == nullptr) {
            if (obs_ != nullptr)
                metric_.misses->add(1);
            const std::lock_guard<std::mutex> lock(mutex_);
            ++misses_;
            return nullptr;
        }
        char buffer[1 << 16];
        std::size_t got = 0;
        while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
            blob.append(buffer, got);
        std::fclose(file);
    }

    bool ok = blob.size() >= kHeaderSize &&
              std::memcmp(blob.data(), kMagic, sizeof(kMagic)) == 0 &&
              readU32(blob.data() + 4) == kFormatVersion &&
              readU64(blob.data() + 8) == fingerprint;
    std::shared_ptr<const CompileResult> result;
    if (ok) {
        const std::uint64_t payload_size = readU64(blob.data() + 16);
        const std::uint64_t checksum = readU64(blob.data() + 24);
        const std::string_view payload(blob.data() + kHeaderSize,
                                       blob.size() - kHeaderSize);
        ok = payload_size == payload.size() &&
             checksum == payloadChecksum(payload);
        if (ok) {
            result = deserializeCompileResult(payload, machine);
            ok = result != nullptr;
        }
    }

    std::unique_lock<std::mutex> lock(mutex_);
    if (!ok) {
        ++misses_;
        ++corrupt_;
        dropIndexEntry(fingerprint);
        const std::size_t entries = index_.size();
        const std::uint64_t resident = resident_bytes_;
        lock.unlock();
        std::error_code ec;
        std::filesystem::remove(path, ec);
        if (obs_ != nullptr) {
            metric_.misses->add(1);
            metric_.corrupt->add(1);
            metric_.read_bytes->add(blob.size());
            publishResidency(entries, resident);
            obs_->log.warn("disk_cache_corrupt",
                           {{"path", path.string()},
                            {"bytes", blob.size()}});
        }
        return nullptr;
    }
    ++hits_;
    // Refresh recency (and adopt entries another process wrote).
    indexEntry(fingerprint, blob.size(), lock);
    const std::size_t entries = index_.size();
    const std::uint64_t resident = resident_bytes_;
    lock.unlock();
    if (obs_ != nullptr) {
        metric_.hits->add(1);
        metric_.read_bytes->add(blob.size());
        publishResidency(entries, resident);
    }
    return result;
}

void
DiskCache::store(std::uint64_t fingerprint, const CompileResult &result)
{
    if (max_bytes_ == 0)
        return;

    const std::string payload = serializeCompileResult(result);
    std::string blob(kHeaderSize, '\0');
    std::memcpy(blob.data(), kMagic, sizeof(kMagic));
    writeU32(blob.data() + 4, kFormatVersion);
    writeU64(blob.data() + 8, fingerprint);
    writeU64(blob.data() + 16, payload.size());
    writeU64(blob.data() + 24, payloadChecksum(payload));
    blob += payload;

    std::uint64_t temp_id = 0;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        temp_id = ++temp_counter_;
    }
    char temp_name[64];
    std::snprintf(temp_name, sizeof(temp_name), "w%016llx-%llu.tmp",
                  static_cast<unsigned long long>(fingerprint),
                  static_cast<unsigned long long>(temp_id));
    const std::filesystem::path temp_path = dir_ / temp_name;

    std::FILE *file = std::fopen(temp_path.c_str(), "wb");
    if (file == nullptr)
        return;
    const bool wrote =
        std::fwrite(blob.data(), 1, blob.size(), file) == blob.size();
    const bool closed = std::fclose(file) == 0;
    std::error_code ec;
    if (!wrote || !closed) {
        std::filesystem::remove(temp_path, ec);
        return;
    }

    // rename() is atomic within one filesystem: readers in any process
    // see either the old entry or the complete new one, never a torn
    // intermediate.
    std::filesystem::rename(temp_path, entryPath(fingerprint), ec);
    if (ec) {
        std::filesystem::remove(temp_path, ec);
        return;
    }

    std::unique_lock<std::mutex> lock(mutex_);
    ++stores_;
    indexEntry(fingerprint, blob.size(), lock);
    const std::vector<std::filesystem::path> victims = collectEvictions(lock);
    const std::size_t entries = index_.size();
    const std::uint64_t resident = resident_bytes_;
    lock.unlock();
    for (const std::filesystem::path &victim : victims)
        std::filesystem::remove(victim, ec);
    if (obs_ != nullptr) {
        metric_.stores->add(1);
        metric_.write_bytes->add(blob.size());
        if (!victims.empty()) {
            metric_.evictions->add(victims.size());
            obs_->log.debug("disk_cache_evict",
                            {{"victims", victims.size()},
                             {"bytes", resident}});
        }
        publishResidency(entries, resident);
    }
}

bool
DiskCache::contains(std::uint64_t fingerprint) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return index_.find(fingerprint) != index_.end();
}

DiskCacheStats
DiskCache::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    DiskCacheStats stats;
    stats.hits = hits_;
    stats.misses = misses_;
    stats.stores = stores_;
    stats.corrupt = corrupt_;
    stats.evictions = evictions_;
    stats.entries = index_.size();
    stats.bytes = resident_bytes_;
    return stats;
}

void
DiskCache::indexEntry(std::uint64_t fingerprint, std::uint64_t bytes,
                      std::unique_lock<std::mutex> &)
{
    if (const auto it = index_.find(fingerprint); it != index_.end()) {
        resident_bytes_ += bytes - it->second.bytes;
        it->second.bytes = bytes;
        order_.splice(order_.begin(), order_, it->second.position);
        return;
    }
    order_.push_front(fingerprint);
    index_.emplace(fingerprint, IndexEntry{bytes, order_.begin()});
    resident_bytes_ += bytes;
}

void
DiskCache::dropIndexEntry(std::uint64_t fingerprint)
{
    const auto it = index_.find(fingerprint);
    if (it == index_.end())
        return;
    resident_bytes_ -= it->second.bytes;
    order_.erase(it->second.position);
    index_.erase(it);
}

void
DiskCache::publishResidency(std::size_t entries, std::uint64_t bytes)
{
    if (obs_ == nullptr)
        return;
    metric_.entries->set(static_cast<double>(entries));
    metric_.resident_bytes->set(static_cast<double>(bytes));
}

std::vector<std::filesystem::path>
DiskCache::collectEvictions(std::unique_lock<std::mutex> &)
{
    std::vector<std::filesystem::path> victims;
    // Keep at least the most recent entry resident: a single result
    // larger than the whole budget must still be servable, or a warm
    // restart could never hit.
    while (resident_bytes_ > max_bytes_ && index_.size() > 1) {
        const std::uint64_t victim = order_.back();
        victims.push_back(entryPath(victim));
        dropIndexEntry(victim);
        ++evictions_;
    }
    return victims;
}

} // namespace powermove::service
