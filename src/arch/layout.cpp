#include "arch/layout.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace powermove {

Layout::Layout(const Machine &machine, std::size_t num_qubits)
    : machine_(machine),
      site_of_(num_qubits, kInvalidSite),
      site_qubits_(machine.numSites(), {kNoQubit, kNoQubit}),
      site_count_(machine.numSites(), 0)
{}

SiteId
Layout::siteOf(QubitId qubit) const
{
    PM_ASSERT(qubit < site_of_.size(), "qubit id out of range");
    return site_of_[qubit];
}

bool
Layout::allPlaced() const
{
    return std::all_of(site_of_.begin(), site_of_.end(),
                       [](SiteId s) { return s != kInvalidSite; });
}

std::size_t
Layout::occupancy(SiteId site) const
{
    PM_ASSERT(site < site_count_.size(), "site id out of range");
    return site_count_[site];
}

std::array<QubitId, 2>
Layout::occupants(SiteId site) const
{
    PM_ASSERT(site < site_qubits_.size(), "site id out of range");
    return site_qubits_[site];
}

std::size_t
Layout::capacityOf(SiteId site) const
{
    return machine_.zoneOf(site) == ZoneKind::Compute ? 2 : 1;
}

void
Layout::insertAt(QubitId qubit, SiteId site)
{
    PM_ASSERT(site_count_[site] < capacityOf(site),
              "site capacity exceeded (2 per compute site, 1 per storage)");
    auto &slots = site_qubits_[site];
    if (slots[0] == kNoQubit)
        slots[0] = qubit;
    else
        slots[1] = qubit;
    ++site_count_[site];
    site_of_[qubit] = site;
}

void
Layout::removeFrom(QubitId qubit, SiteId site)
{
    auto &slots = site_qubits_[site];
    if (slots[0] == qubit) {
        slots[0] = slots[1];
        slots[1] = kNoQubit;
    } else {
        PM_ASSERT(slots[1] == qubit, "qubit not present at its own site");
        slots[1] = kNoQubit;
    }
    --site_count_[site];
    site_of_[qubit] = kInvalidSite;
}

void
Layout::place(QubitId qubit, SiteId site)
{
    PM_ASSERT(qubit < site_of_.size(), "qubit id out of range");
    PM_ASSERT(site < site_count_.size(), "site id out of range");
    PM_ASSERT(site_of_[qubit] == kInvalidSite,
              "place() requires an unplaced qubit; use moveTo()");
    insertAt(qubit, site);
}

void
Layout::moveTo(QubitId qubit, SiteId site)
{
    PM_ASSERT(qubit < site_of_.size(), "qubit id out of range");
    PM_ASSERT(site < site_count_.size(), "site id out of range");
    const SiteId from = site_of_[qubit];
    PM_ASSERT(from != kInvalidSite, "moveTo() requires a placed qubit");
    if (from == site)
        return;
    removeFrom(qubit, from);
    insertAt(qubit, site);
}

void
Layout::unplace(QubitId qubit)
{
    PM_ASSERT(qubit < site_of_.size(), "qubit id out of range");
    const SiteId from = site_of_[qubit];
    PM_ASSERT(from != kInvalidSite, "unplace() requires a placed qubit");
    removeFrom(qubit, from);
}

void
Layout::assignFrom(const Layout &other)
{
    PM_ASSERT(&machine_ == &other.machine_,
              "assignFrom() requires layouts over the same machine");
    PM_ASSERT(site_of_.size() == other.site_of_.size(),
              "assignFrom() requires layouts of the same width");
    site_of_ = other.site_of_;
    site_qubits_ = other.site_qubits_;
    site_count_ = other.site_count_;
}

ZoneKind
Layout::zoneOf(QubitId qubit) const
{
    const SiteId site = siteOf(qubit);
    PM_ASSERT(site != kInvalidSite, "qubit is unplaced");
    return machine_.zoneOf(site);
}

std::size_t
Layout::countInZone(ZoneKind zone) const
{
    std::size_t count = 0;
    for (const SiteId site : site_of_) {
        if (site != kInvalidSite && machine_.zoneOf(site) == zone)
            ++count;
    }
    return count;
}

namespace {

/** Zone site list (row-major), checked to hold every layout qubit. */
std::vector<SiteId>
zoneSitesChecked(const Layout &layout, ZoneKind zone)
{
    const auto &machine = layout.machine();
    auto sites = zone == ZoneKind::Compute ? machine.computeSites()
                                           : machine.storageSites();
    if (layout.numQubits() > sites.size())
        fatal("zone too small to hold " + std::to_string(layout.numQubits()) +
              " qubits (" + std::to_string(sites.size()) + " sites)");
    return sites;
}

} // namespace

void
placeRowMajor(Layout &layout, ZoneKind zone)
{
    const auto sites = zoneSitesChecked(layout, zone);
    for (QubitId q = 0; q < layout.numQubits(); ++q)
        layout.place(q, sites[q]);
}

void
placeColumnInterleaved(Layout &layout, ZoneKind zone)
{
    const auto sites = zoneSitesChecked(layout, zone);
    const auto &config = layout.machine().config();
    const auto cols = static_cast<std::size_t>(
        zone == ZoneKind::Compute ? config.compute_cols
                                  : config.storage_cols);
    PM_ASSERT(cols > 0, "zone has no columns");
    const std::size_t rows = sites.size() / cols;
    for (QubitId q = 0; q < layout.numQubits(); ++q) {
        // Column-major walk: (row = q mod rows, col = q / rows) mapped
        // into the row-major site list.
        const std::size_t index = (q % rows) * cols + q / rows;
        layout.place(q, sites[index]);
    }
}

void
placeByUsageFrequency(Layout &layout, ZoneKind zone,
                      const std::vector<std::size_t> &weights)
{
    PM_ASSERT(weights.size() == layout.numQubits(),
              "one weight per qubit required");
    const auto sites = zoneSitesChecked(layout, zone);
    std::vector<QubitId> ranked(layout.numQubits());
    for (QubitId q = 0; q < layout.numQubits(); ++q)
        ranked[q] = q;
    std::stable_sort(ranked.begin(), ranked.end(),
                     [&](QubitId a, QubitId b) {
                         return weights[a] > weights[b];
                     });
    for (std::size_t rank = 0; rank < ranked.size(); ++rank)
        layout.place(ranked[rank], sites[rank]);
}

} // namespace powermove
