/**
 * @file
 * Hardware parameters of the neutral-atom machine.
 *
 * Defaults follow Table 1 of the PowerMove paper, which in turn collects
 * the latest experimental numbers (Bluvstein et al. 2022/2024, Evered et
 * al. 2023): 99.99% / 1 us single-qubit gates, 99.5% / 270 ns CZ gates,
 * 99.75% excitation fidelity for idle qubits under the Rydberg pulse,
 * 99.9% / 15 us SLM<->AOD transfers, T2 = 1.5 s, and the square-root
 * movement-time law calibrated to "100 us (200 us) for 27.5 um (110 um)".
 */

#ifndef POWERMOVE_ARCH_PARAMS_HPP
#define POWERMOVE_ARCH_PARAMS_HPP

#include "common/units.hpp"

namespace powermove {

/** Physical machine parameters (paper Table 1 and Sec. 5.1). */
struct HardwareParams
{
    /** Single-qubit gate fidelity. */
    double f_one_q = 0.9999;
    /** CZ gate fidelity. */
    double f_cz = 0.995;
    /** Fidelity of a non-interacting qubit exposed to a Rydberg pulse. */
    double f_excitation = 0.9975;
    /** Fidelity of one SLM<->AOD transfer (one direction). */
    double f_transfer = 0.999;

    /** Single-qubit gate duration. */
    Duration t_one_q = Duration::micros(1.0);
    /** CZ gate (Rydberg pulse) duration. */
    Duration t_cz = Duration::nanos(270.0);
    /** One-directional trap transfer duration. */
    Duration t_transfer = Duration::micros(15.0);
    /** Coherence time T2 of a qubit outside the storage zone. */
    Duration t2 = Duration::seconds(1.5);

    /** Lattice pitch between adjacent sites. */
    Distance site_pitch = Distance::microns(15.0);
    /** Vertical separation between compute and storage zones. */
    Distance zone_gap = Distance::microns(30.0);
    /** Rydberg blockade radius (interacting pairs sit within it). */
    Distance rydberg_radius = Distance::microns(6.0);
    /** Minimum separation of non-interacting qubits during a pulse. */
    Distance min_idle_separation = Distance::microns(10.0);

    /** Maximum AOD acceleration preserving fidelity (m/s^2). */
    double max_acceleration = 2750.0;

    /** Reference duration of the movement-time law. */
    Duration move_t_ref = Duration::micros(200.0);
    /** Reference distance of the movement-time law. */
    Distance move_d_ref = Distance::microns(110.0);

    /**
     * Wall time of an AOD move covering @p distance:
     * t(d) = move_t_ref * sqrt(d / move_d_ref). Zero distance is free.
     */
    Duration moveDuration(Distance distance) const;
};

} // namespace powermove

#endif // POWERMOVE_ARCH_PARAMS_HPP
