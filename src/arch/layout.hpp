/**
 * @file
 * Dynamic qubit-to-site occupancy.
 *
 * A site holds at most two qubits (an interacting pair during a Rydberg
 * stage) in the compute zone and at most one qubit in the storage zone
 * (paper Sec. 5.1). Layout tracks occupancy and enforces those capacity
 * limits eagerly so routing bugs surface at the point of mutation.
 */

#ifndef POWERMOVE_ARCH_LAYOUT_HPP
#define POWERMOVE_ARCH_LAYOUT_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "arch/machine.hpp"
#include "circuit/gate.hpp"

namespace powermove {

/** Mutable assignment of qubits to machine sites. */
class Layout
{
  public:
    /** Creates a layout with every qubit unplaced. */
    Layout(const Machine &machine, std::size_t num_qubits);

    std::size_t numQubits() const { return site_of_.size(); }

    /** Site currently holding @p qubit (kInvalidSite if unplaced). */
    SiteId siteOf(QubitId qubit) const;

    /** True once every qubit has been placed. */
    bool allPlaced() const;

    /** Number of qubits at @p site. */
    std::size_t occupancy(SiteId site) const;

    /** The (up to two) qubits at @p site. */
    std::array<QubitId, 2> occupants(SiteId site) const;

    /** True if @p site holds no qubit. */
    bool isEmpty(SiteId site) const { return occupancy(site) == 0; }

    /**
     * Places an unplaced qubit at @p site. Capacity checked: two per
     * compute site, one per storage site.
     */
    void place(QubitId qubit, SiteId site);

    /** Moves a placed qubit to @p site (same capacity rules). */
    void moveTo(QubitId qubit, SiteId site);

    /**
     * Removes a qubit from its site, leaving it unplaced. Together with
     * place() this applies a whole transition transactionally: all
     * departures first, then all arrivals, so capacity is checked against
     * the settled end state rather than an arbitrary intermediate order.
     */
    void unplace(QubitId qubit);

    /**
     * Overwrites this layout with @p other's occupancy. Both layouts
     * must share one machine and qubit count (the implicit copy
     * assignment is deleted by the machine reference). Lets a scratch
     * layout be re-synced to a live one without reallocating — the
     * windowed router resets its candidate scratch this way once per
     * candidate ordering.
     */
    void assignFrom(const Layout &other);

    /** Zone of the site holding @p qubit. */
    ZoneKind zoneOf(QubitId qubit) const;

    /** Number of qubits currently in the given zone. */
    std::size_t countInZone(ZoneKind zone) const;

    const Machine &machine() const { return machine_; }

  private:
    void insertAt(QubitId qubit, SiteId site);
    void removeFrom(QubitId qubit, SiteId site);
    std::size_t capacityOf(SiteId site) const;

    const Machine &machine_;
    std::vector<SiteId> site_of_;                       // qubit -> site
    std::vector<std::array<QubitId, 2>> site_qubits_;   // site -> occupants
    std::vector<std::uint8_t> site_count_;              // site -> #occupants
};

/**
 * Places qubits row-major into the given zone starting from its top-left
 * site, one qubit per site. This is the paper's initial layout: entirely
 * in storage for the zoned flow (Sec. 4.2), entirely in the compute zone
 * for the storage-free flow and for the Enola baseline.
 */
void placeRowMajor(Layout &layout, ZoneKind zone);

/**
 * Places qubits column by column (the transpose of placeRowMajor):
 * qubit q takes row q mod rows of column q / rows, one per site.
 * Consecutive qubit ids — which circuit generators tend to couple —
 * share a column, so their storage parking and retrieval moves run
 * vertically along one column instead of spreading across a row.
 */
void placeColumnInterleaved(Layout &layout, ZoneKind zone);

/**
 * Places qubits into the zone's row-major site order by descending
 * @p weights (ties toward the lower qubit id), one per site. Since the
 * storage zone's row-major order starts at the row closest to the
 * compute zone, the most-weighted qubits get the shortest shuttle
 * across the inter-zone gap. @p weights must have one entry per qubit.
 */
void placeByUsageFrequency(Layout &layout, ZoneKind zone,
                           const std::vector<std::size_t> &weights);

} // namespace powermove

#endif // POWERMOVE_ARCH_LAYOUT_HPP
