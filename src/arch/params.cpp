#include "arch/params.hpp"

#include <cmath>

namespace powermove {

Duration
HardwareParams::moveDuration(Distance distance) const
{
    if (distance.microns() <= 0.0)
        return Duration::micros(0.0);
    return move_t_ref * std::sqrt(distance / move_d_ref);
}

} // namespace powermove
