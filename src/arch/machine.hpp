/**
 * @file
 * Zoned machine geometry: compute zone, inter-zone gap, storage zone.
 *
 * The trap plane is a lattice with 15 um pitch. The compute zone occupies
 * the top rows (smaller y), the storage zone the bottom rows, separated by
 * a 30 um gap (two empty rows). The paper's default configuration for an
 * n-qubit program is a ceil(sqrt(n)) x ceil(sqrt(n)) compute grid and a
 * ceil(sqrt(n)) x 2*ceil(sqrt(n)) storage grid (Sec. 7.1, Table 2).
 */

#ifndef POWERMOVE_ARCH_MACHINE_HPP
#define POWERMOVE_ARCH_MACHINE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "arch/params.hpp"
#include "common/geometry.hpp"

namespace powermove {

/** The two functional zones of the machine. */
enum class ZoneKind : std::uint8_t { Compute, Storage };

/** Short human-readable zone name. */
std::string zoneKindName(ZoneKind kind);

/** Static machine shape. */
struct MachineConfig
{
    /** Compute zone width, in sites. */
    std::int32_t compute_cols = 0;
    /** Compute zone height, in sites. */
    std::int32_t compute_rows = 0;
    /** Storage zone width, in sites. */
    std::int32_t storage_cols = 0;
    /** Storage zone height, in sites. */
    std::int32_t storage_rows = 0;
    /** Empty lattice rows between the zones (2 rows = 30 um). */
    std::int32_t gap_rows = 2;
    /** Physical parameters. */
    HardwareParams params;

    /**
     * The paper's default zone shape for an @p num_qubits-qubit program:
     * compute ceil(sqrt(n))^2 sites, storage ceil(sqrt(n)) * 2ceil(sqrt(n)).
     */
    static MachineConfig forQubits(std::size_t num_qubits);

    /** Compute zone footprint in um^2 (e.g. "90 x 90" for n = 30). */
    std::string computeZoneExtent() const;
    /** Inter-zone footprint in um^2. */
    std::string interZoneExtent() const;
    /** Storage zone footprint in um^2. */
    std::string storageZoneExtent() const;
};

/** Dense identifier of a trap site. */
using SiteId = std::uint32_t;

/** Sentinel for "no site". */
inline constexpr SiteId kInvalidSite = ~SiteId{0};

/**
 * The zoned trap lattice. Provides site <-> coordinate mapping, zone
 * classification, and physical distances. Sites are immutable; dynamic
 * occupancy lives in Layout.
 */
class Machine
{
  public:
    explicit Machine(MachineConfig config);

    const MachineConfig &config() const { return config_; }
    const HardwareParams &params() const { return config_.params; }

    /** Total number of sites (compute + storage). */
    std::size_t numSites() const { return sites_.size(); }
    /** Number of compute-zone sites. */
    std::size_t numComputeSites() const { return num_compute_sites_; }
    /** Number of storage-zone sites. */
    std::size_t numStorageSites() const
    {
        return sites_.size() - num_compute_sites_;
    }

    /** Zone containing @p site. */
    ZoneKind
    zoneOf(SiteId site) const
    {
        return site < num_compute_sites_ ? ZoneKind::Compute : ZoneKind::Storage;
    }

    /** Lattice coordinate of @p site. */
    SiteCoord coordOf(SiteId site) const;

    /** Physical position of @p site in micrometers. */
    PhysCoord physOf(SiteId site) const;

    /** True if a site exists at @p coord. */
    bool isSite(SiteCoord coord) const;

    /** Site at @p coord; must exist. */
    SiteId siteAt(SiteCoord coord) const;

    /** Euclidean physical distance between two sites. */
    Distance distanceBetween(SiteId a, SiteId b) const;

    /** All compute-zone sites, row-major (top-left first). */
    std::vector<SiteId> computeSites() const;
    /** All storage-zone sites, row-major (closest-to-compute row first). */
    std::vector<SiteId> storageSites() const;

    /** First lattice row of the storage zone. */
    std::int32_t storageTopRow() const { return storage_top_row_; }
    /** One past the last compute row. */
    std::int32_t computeBottomRow() const { return config_.compute_rows; }

  private:
    MachineConfig config_;
    std::vector<SiteCoord> sites_;       // site id -> coordinate
    std::size_t num_compute_sites_ = 0;
    std::int32_t storage_top_row_ = 0;
    // coord -> site id lookup, row-major over the bounding box
    std::vector<SiteId> coord_to_site_;
    std::int32_t bbox_cols_ = 0;
    std::int32_t bbox_rows_ = 0;

    std::size_t bboxIndex(SiteCoord coord) const;
};

} // namespace powermove

#endif // POWERMOVE_ARCH_MACHINE_HPP
