#include "arch/machine.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace powermove {

std::string
zoneKindName(ZoneKind kind)
{
    return kind == ZoneKind::Compute ? "compute" : "storage";
}

MachineConfig
MachineConfig::forQubits(std::size_t num_qubits)
{
    if (num_qubits == 0)
        fatal("machine requires at least one qubit");
    const auto side = static_cast<std::int32_t>(
        std::ceil(std::sqrt(static_cast<double>(num_qubits))));
    MachineConfig config;
    config.compute_cols = side;
    config.compute_rows = side;
    config.storage_cols = side;
    config.storage_rows = 2 * side;
    config.gap_rows = 2;
    return config;
}

namespace {

std::string
extentString(double w_um, double h_um)
{
    std::ostringstream os;
    os << w_um << " x " << h_um;
    return os.str();
}

} // namespace

std::string
MachineConfig::computeZoneExtent() const
{
    const double pitch = params.site_pitch.microns();
    return extentString(pitch * compute_cols, pitch * compute_rows);
}

std::string
MachineConfig::interZoneExtent() const
{
    const double pitch = params.site_pitch.microns();
    return extentString(pitch * compute_cols, pitch * gap_rows);
}

std::string
MachineConfig::storageZoneExtent() const
{
    const double pitch = params.site_pitch.microns();
    return extentString(pitch * storage_cols, pitch * storage_rows);
}

Machine::Machine(MachineConfig config) : config_(config)
{
    if (config_.compute_cols <= 0 || config_.compute_rows <= 0)
        fatal("machine compute zone must be non-empty");
    if (config_.storage_cols < 0 || config_.storage_rows < 0 ||
        config_.gap_rows < 0) {
        fatal("machine zone dimensions must be non-negative");
    }

    storage_top_row_ = config_.compute_rows + config_.gap_rows;
    bbox_cols_ = std::max(config_.compute_cols, config_.storage_cols);
    bbox_rows_ = storage_top_row_ + config_.storage_rows;
    coord_to_site_.assign(
        static_cast<std::size_t>(bbox_cols_) * static_cast<std::size_t>(bbox_rows_),
        kInvalidSite);

    // Compute sites first (ids 0 .. C-1), row-major from the top.
    for (std::int32_t y = 0; y < config_.compute_rows; ++y) {
        for (std::int32_t x = 0; x < config_.compute_cols; ++x) {
            const SiteCoord coord{x, y};
            coord_to_site_[bboxIndex(coord)] =
                static_cast<SiteId>(sites_.size());
            sites_.push_back(coord);
        }
    }
    num_compute_sites_ = sites_.size();

    // Storage sites below the gap, row-major; the first storage row is the
    // one nearest to the compute zone.
    for (std::int32_t r = 0; r < config_.storage_rows; ++r) {
        const std::int32_t y = storage_top_row_ + r;
        for (std::int32_t x = 0; x < config_.storage_cols; ++x) {
            const SiteCoord coord{x, y};
            coord_to_site_[bboxIndex(coord)] =
                static_cast<SiteId>(sites_.size());
            sites_.push_back(coord);
        }
    }
}

std::size_t
Machine::bboxIndex(SiteCoord coord) const
{
    PM_ASSERT(coord.x >= 0 && coord.x < bbox_cols_ && coord.y >= 0 &&
                  coord.y < bbox_rows_,
              "coordinate outside machine bounding box");
    return static_cast<std::size_t>(coord.y) *
               static_cast<std::size_t>(bbox_cols_) +
           static_cast<std::size_t>(coord.x);
}

SiteCoord
Machine::coordOf(SiteId site) const
{
    PM_ASSERT(site < sites_.size(), "site id out of range");
    return sites_[site];
}

PhysCoord
Machine::physOf(SiteId site) const
{
    const auto coord = coordOf(site);
    const double pitch = config_.params.site_pitch.microns();
    double y_um = coord.y * pitch;
    if (coord.y >= storage_top_row_) {
        // The gap between zones is zone_gap um regardless of how many
        // lattice rows it nominally spans.
        y_um = config_.compute_rows * pitch + config_.params.zone_gap.microns() +
               (coord.y - storage_top_row_) * pitch;
    }
    return PhysCoord{coord.x * pitch, y_um};
}

bool
Machine::isSite(SiteCoord coord) const
{
    if (coord.x < 0 || coord.x >= bbox_cols_ || coord.y < 0 ||
        coord.y >= bbox_rows_) {
        return false;
    }
    return coord_to_site_[bboxIndex(coord)] != kInvalidSite;
}

SiteId
Machine::siteAt(SiteCoord coord) const
{
    PM_ASSERT(isSite(coord), "no site at requested coordinate");
    return coord_to_site_[bboxIndex(coord)];
}

Distance
Machine::distanceBetween(SiteId a, SiteId b) const
{
    return euclidean(physOf(a), physOf(b));
}

std::vector<SiteId>
Machine::computeSites() const
{
    std::vector<SiteId> sites(num_compute_sites_);
    for (SiteId s = 0; s < num_compute_sites_; ++s)
        sites[s] = s;
    return sites;
}

std::vector<SiteId>
Machine::storageSites() const
{
    std::vector<SiteId> sites;
    sites.reserve(numStorageSites());
    for (SiteId s = static_cast<SiteId>(num_compute_sites_); s < sites_.size();
         ++s) {
        sites.push_back(s);
    }
    return sites;
}

} // namespace powermove
