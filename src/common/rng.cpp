#include "common/rng.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace powermove {

namespace {

constexpr std::uint64_t
rotl(std::uint64_t value, int shift)
{
    return (value << shift) | (value >> (64 - shift));
}

} // namespace

std::uint64_t
splitMix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : state_)
        word = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    PM_ASSERT(bound > 0, "nextBelow requires a positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        const std::uint64_t value = next();
        if (value >= threshold)
            return value % bound;
    }
}

std::int64_t
Rng::nextInRange(std::int64_t lo, std::int64_t hi)
{
    PM_ASSERT(lo <= hi, "nextInRange requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(nextBelow(span));
}

double
Rng::nextDouble()
{
    // 53 high-quality bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

std::vector<std::size_t>
Rng::sampleIndices(std::size_t n, std::size_t k)
{
    PM_ASSERT(k <= n, "cannot sample more indices than available");
    // Floyd's algorithm keeps this O(k) in expectation for small k.
    std::vector<std::size_t> picked;
    picked.reserve(k);
    for (std::size_t j = n - k; j < n; ++j) {
        const auto t =
            static_cast<std::size_t>(nextBelow(static_cast<std::uint64_t>(j + 1)));
        if (std::find(picked.begin(), picked.end(), t) == picked.end())
            picked.push_back(t);
        else
            picked.push_back(j);
    }
    std::sort(picked.begin(), picked.end());
    return picked;
}

} // namespace powermove
