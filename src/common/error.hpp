/**
 * @file
 * Error types and invariant checks.
 *
 * Following the gem5 convention, we distinguish *user* errors (bad input:
 * malformed QASM, impossible machine configuration) from *internal* errors
 * (broken invariants, i.e. library bugs). Both are reported as exceptions
 * since this is a library, not a process: ConfigError/ParseError for user
 * mistakes and InternalError for panics.
 */

#ifndef POWERMOVE_COMMON_ERROR_HPP
#define POWERMOVE_COMMON_ERROR_HPP

#include <sstream>
#include <stdexcept>
#include <string>

namespace powermove {

/** Base class of every exception thrown by the library. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what) : std::runtime_error(what) {}
};

/** The user supplied an inconsistent or unsupported configuration. */
class ConfigError : public Error
{
  public:
    explicit ConfigError(const std::string &what) : Error(what) {}
};

/** An input program could not be parsed. */
class ParseError : public Error
{
  public:
    ParseError(const std::string &what, std::size_t line, std::size_t column)
        : Error(formatMessage(what, line, column)), line_(line), column_(column)
    {}

    /** 1-based source line of the offending token. */
    std::size_t line() const { return line_; }
    /** 1-based source column of the offending token. */
    std::size_t column() const { return column_; }

  private:
    static std::string
    formatMessage(const std::string &what, std::size_t line, std::size_t column)
    {
        std::ostringstream os;
        os << "parse error at " << line << ":" << column << ": " << what;
        return os.str();
    }

    std::size_t line_;
    std::size_t column_;
};

/** A compiled machine schedule violated a hardware rule (validator). */
class ValidationError : public Error
{
  public:
    explicit ValidationError(const std::string &what) : Error(what) {}
};

/** A library invariant was broken: this is a PowerMove bug. */
class InternalError : public Error
{
  public:
    explicit InternalError(const std::string &what) : Error(what) {}
};

/**
 * Reports a broken internal invariant (the library's equivalent of gem5's
 * panic()). Never returns.
 */
[[noreturn]] inline void
panic(const std::string &message)
{
    throw InternalError("internal error: " + message);
}

/**
 * Reports an unrecoverable user error (the library's equivalent of gem5's
 * fatal()). Never returns.
 */
[[noreturn]] inline void
fatal(const std::string &message)
{
    throw ConfigError(message);
}

} // namespace powermove

/**
 * Checks an internal invariant; throws InternalError when violated. Active
 * in all build types because compilation correctness depends on it.
 */
#define PM_ASSERT(cond, msg)                                                  \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::powermove::panic(std::string(msg) + " [" #cond "]");            \
        }                                                                     \
    } while (false)

#endif // POWERMOVE_COMMON_ERROR_HPP
