/**
 * @file
 * A small undirected graph library.
 *
 * Used in two roles: (1) the CZ *interaction graph* whose vertices are
 * gates and whose edges join gates sharing a qubit (stage partitioning
 * colors this graph, paper Alg. 1), and (2) problem graphs for workload
 * generation (random d-regular graphs for QAOA, G(n, p) for QAOA-random).
 */

#ifndef POWERMOVE_COMMON_GRAPH_HPP
#define POWERMOVE_COMMON_GRAPH_HPP

#include <cstdint>
#include <utility>
#include <vector>

namespace powermove {

class Rng;

/** An undirected simple graph stored as adjacency lists. */
class Graph
{
  public:
    using Vertex = std::uint32_t;

    Graph() = default;

    /** Creates a graph with @p num_vertices vertices and no edges. */
    explicit Graph(std::size_t num_vertices);

    /** Number of vertices. */
    std::size_t numVertices() const { return adjacency_.size(); }

    /** Number of edges. */
    std::size_t numEdges() const { return num_edges_; }

    /**
     * Adds the undirected edge {u, v}.
     *
     * @return true if the edge was added, false if it already existed or
     *         is a self loop.
     */
    bool addEdge(Vertex u, Vertex v);

    /** True if the undirected edge {u, v} is present. */
    bool hasEdge(Vertex u, Vertex v) const;

    /** Neighbors of @p v. */
    const std::vector<Vertex> &adjacents(Vertex v) const;

    /** Degree of @p v. */
    std::size_t degree(Vertex v) const { return adjacents(v).size(); }

    /** Maximum vertex degree (0 for an empty graph). */
    std::size_t maxDegree() const;

    /** All edges as (min, max) vertex pairs, in insertion order. */
    const std::vector<std::pair<Vertex, Vertex>> &edges() const
    {
        return edge_list_;
    }

  private:
    std::vector<std::vector<Vertex>> adjacency_;
    std::vector<std::pair<Vertex, Vertex>> edge_list_;
    std::size_t num_edges_ = 0;
};

/** Vertices sorted by descending degree (ties by ascending index). */
std::vector<Graph::Vertex> verticesByDegreeDesc(const Graph &graph);

/**
 * Greedy coloring that processes vertices in the given order, assigning
 * each the smallest color unused among its neighbors (core of paper
 * Alg. 1).
 *
 * @return one color per vertex, colors are dense starting at 0.
 */
std::vector<std::uint32_t> greedyColoring(
    const Graph &graph, const std::vector<Graph::Vertex> &order);

/** Number of distinct colors in a coloring. */
std::uint32_t numColors(const std::vector<std::uint32_t> &coloring);

/** True if no edge of @p graph joins two equal colors. */
bool isProperColoring(const Graph &graph,
                      const std::vector<std::uint32_t> &coloring);

/**
 * Generates a random d-regular simple graph via the configuration model
 * with rejection (retrying on self loops / parallel edges).
 *
 * Requires n * d even and d < n.
 */
Graph randomRegularGraph(std::size_t n, std::size_t d, Rng &rng);

/** Generates an Erdos-Renyi G(n, p) graph. */
Graph randomGnp(std::size_t n, double p, Rng &rng);

} // namespace powermove

#endif // POWERMOVE_COMMON_GRAPH_HPP
