/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workload generation must be reproducible across runs and platforms, so we
 * ship our own xoshiro256** generator (public-domain algorithm by Blackman
 * and Vigna) seeded through SplitMix64 instead of relying on the standard
 * library's unspecified distributions.
 */

#ifndef POWERMOVE_COMMON_RNG_HPP
#define POWERMOVE_COMMON_RNG_HPP

#include <array>
#include <cstdint>
#include <vector>

namespace powermove {

/** SplitMix64 step; used to expand a single seed into generator state. */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * A small, fast, deterministic random number generator (xoshiro256**).
 *
 * All randomized algorithms in the library take an explicit Rng so that
 * benchmark circuits and heuristics are reproducible from a single seed.
 */
class Rng
{
  public:
    /** Creates a generator from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound), bound > 0, without modulo bias. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextInRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with success probability p. */
    bool nextBool(double p);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        if (values.empty())
            return;
        for (std::size_t i = values.size() - 1; i > 0; --i) {
            const auto j =
                static_cast<std::size_t>(nextBelow(static_cast<std::uint64_t>(i + 1)));
            std::swap(values[i], values[j]);
        }
    }

    /** Samples k distinct indices from [0, n) in increasing order. */
    std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k);

  private:
    std::array<std::uint64_t, 4> state_;
};

} // namespace powermove

#endif // POWERMOVE_COMMON_RNG_HPP
