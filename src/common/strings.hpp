/**
 * @file
 * Small string formatting helpers shared by the report writers and tests.
 */

#ifndef POWERMOVE_COMMON_STRINGS_HPP
#define POWERMOVE_COMMON_STRINGS_HPP

#include <string>
#include <string_view>
#include <vector>

namespace powermove {

/** Formats a double with @p digits significant digits (general format). */
std::string formatGeneral(double value, int digits = 4);

/**
 * Formats a probability-like value the way the paper prints fidelities:
 * fixed point with two decimals when >= 0.01, scientific otherwise.
 */
std::string formatFidelity(double value);

/** Formats a ratio like "3.46x". */
std::string formatRatio(double value);

/** Joins string pieces with a separator. */
std::string join(const std::vector<std::string> &pieces, std::string_view sep);

/** Removes leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view text);

/** Splits on a separator character, keeping empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** True if @p text starts with @p prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

} // namespace powermove

#endif // POWERMOVE_COMMON_STRINGS_HPP
