/**
 * @file
 * Strong unit types used throughout the library.
 *
 * All wall-clock quantities are carried in microseconds and all lengths in
 * micrometers, matching the units used by the PowerMove paper (Table 1).
 * The wrappers are intentionally thin: they exist to make interfaces
 * self-documenting and to prevent accidental mixing of site-grid
 * coordinates with physical lengths.
 */

#ifndef POWERMOVE_COMMON_UNITS_HPP
#define POWERMOVE_COMMON_UNITS_HPP

#include <compare>
#include <cstdint>

namespace powermove {

/** A span of wall-clock time, stored in microseconds. */
class Duration
{
  public:
    constexpr Duration() = default;

    /** Constructs a duration from a value in microseconds. */
    static constexpr Duration
    micros(double us)
    {
        return Duration(us);
    }

    /** Constructs a duration from a value in nanoseconds. */
    static constexpr Duration
    nanos(double ns)
    {
        return Duration(ns * 1e-3);
    }

    /** Constructs a duration from a value in seconds. */
    static constexpr Duration
    seconds(double s)
    {
        return Duration(s * 1e6);
    }

    /** Value in microseconds. */
    constexpr double micros() const { return us_; }
    /** Value in seconds. */
    constexpr double seconds() const { return us_ * 1e-6; }

    constexpr Duration
    operator+(Duration other) const
    {
        return Duration(us_ + other.us_);
    }

    constexpr Duration
    operator-(Duration other) const
    {
        return Duration(us_ - other.us_);
    }

    constexpr Duration
    operator*(double k) const
    {
        return Duration(us_ * k);
    }

    constexpr double
    operator/(Duration other) const
    {
        return us_ / other.us_;
    }

    constexpr Duration &
    operator+=(Duration other)
    {
        us_ += other.us_;
        return *this;
    }

    constexpr Duration &
    operator-=(Duration other)
    {
        us_ -= other.us_;
        return *this;
    }

    constexpr auto operator<=>(const Duration &) const = default;

  private:
    explicit constexpr Duration(double us) : us_(us) {}

    double us_ = 0.0;
};

/** A physical length, stored in micrometers. */
class Distance
{
  public:
    constexpr Distance() = default;

    /** Constructs a distance from a value in micrometers. */
    static constexpr Distance
    microns(double um)
    {
        return Distance(um);
    }

    /** Value in micrometers. */
    constexpr double microns() const { return um_; }

    constexpr Distance
    operator+(Distance other) const
    {
        return Distance(um_ + other.um_);
    }

    constexpr Distance
    operator-(Distance other) const
    {
        return Distance(um_ - other.um_);
    }

    constexpr Distance
    operator*(double k) const
    {
        return Distance(um_ * k);
    }

    constexpr double
    operator/(Distance other) const
    {
        return um_ / other.um_;
    }

    constexpr auto operator<=>(const Distance &) const = default;

  private:
    explicit constexpr Distance(double um) : um_(um) {}

    double um_ = 0.0;
};

namespace literals {

constexpr Duration operator""_us(long double v)
{
    return Duration::micros(static_cast<double>(v));
}

constexpr Duration operator""_us(unsigned long long v)
{
    return Duration::micros(static_cast<double>(v));
}

constexpr Distance operator""_um(long double v)
{
    return Distance::microns(static_cast<double>(v));
}

constexpr Distance operator""_um(unsigned long long v)
{
    return Distance::microns(static_cast<double>(v));
}

} // namespace literals

} // namespace powermove

#endif // POWERMOVE_COMMON_UNITS_HPP
