#include "common/graph.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace powermove {

Graph::Graph(std::size_t num_vertices) : adjacency_(num_vertices) {}

bool
Graph::addEdge(Vertex u, Vertex v)
{
    PM_ASSERT(u < adjacency_.size() && v < adjacency_.size(),
              "edge endpoint out of range");
    if (u == v || hasEdge(u, v))
        return false;
    adjacency_[u].push_back(v);
    adjacency_[v].push_back(u);
    edge_list_.emplace_back(std::min(u, v), std::max(u, v));
    ++num_edges_;
    return true;
}

bool
Graph::hasEdge(Vertex u, Vertex v) const
{
    PM_ASSERT(u < adjacency_.size() && v < adjacency_.size(),
              "edge endpoint out of range");
    const auto &smaller =
        adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u] : adjacency_[v];
    const Vertex needle = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
    return std::find(smaller.begin(), smaller.end(), needle) != smaller.end();
}

const std::vector<Graph::Vertex> &
Graph::adjacents(Vertex v) const
{
    PM_ASSERT(v < adjacency_.size(), "vertex out of range");
    return adjacency_[v];
}

std::size_t
Graph::maxDegree() const
{
    std::size_t best = 0;
    for (const auto &nbrs : adjacency_)
        best = std::max(best, nbrs.size());
    return best;
}

std::vector<Graph::Vertex>
verticesByDegreeDesc(const Graph &graph)
{
    std::vector<Graph::Vertex> order(graph.numVertices());
    std::iota(order.begin(), order.end(), Graph::Vertex{0});
    std::stable_sort(order.begin(), order.end(),
                     [&graph](Graph::Vertex a, Graph::Vertex b) {
                         return graph.degree(a) > graph.degree(b);
                     });
    return order;
}

std::vector<std::uint32_t>
greedyColoring(const Graph &graph, const std::vector<Graph::Vertex> &order)
{
    PM_ASSERT(order.size() == graph.numVertices(),
              "coloring order must cover every vertex");
    constexpr std::uint32_t kUncolored = ~std::uint32_t{0};
    std::vector<std::uint32_t> color(graph.numVertices(), kUncolored);
    // Greedy coloring uses at most maxDegree + 1 colors.
    std::vector<bool> available(graph.maxDegree() + 1, true);
    for (const auto vertex : order) {
        std::fill(available.begin(), available.end(), true);
        for (const auto neighbor : graph.adjacents(vertex)) {
            const auto c = color[neighbor];
            if (c != kUncolored && c < available.size())
                available[c] = false;
        }
        for (std::uint32_t c = 0; c < available.size(); ++c) {
            if (available[c]) {
                color[vertex] = c;
                break;
            }
        }
        PM_ASSERT(color[vertex] != kUncolored, "greedy coloring ran out of colors");
    }
    return color;
}

std::uint32_t
numColors(const std::vector<std::uint32_t> &coloring)
{
    std::uint32_t top = 0;
    for (const auto c : coloring)
        top = std::max(top, c + 1);
    return top;
}

bool
isProperColoring(const Graph &graph, const std::vector<std::uint32_t> &coloring)
{
    if (coloring.size() != graph.numVertices())
        return false;
    for (const auto &[u, v] : graph.edges()) {
        if (coloring[u] == coloring[v])
            return false;
    }
    return true;
}

Graph
randomRegularGraph(std::size_t n, std::size_t d, Rng &rng)
{
    if (d >= n)
        fatal("randomRegularGraph: degree must be smaller than vertex count");
    if ((n * d) % 2 != 0)
        fatal("randomRegularGraph: n * d must be even");

    constexpr int kMaxAttempts = 1000;
    for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
        // Configuration model: pair up n*d stubs uniformly at random and
        // reject the sample whenever it produces a loop or parallel edge.
        std::vector<Graph::Vertex> stubs;
        stubs.reserve(n * d);
        for (std::size_t v = 0; v < n; ++v) {
            for (std::size_t k = 0; k < d; ++k)
                stubs.push_back(static_cast<Graph::Vertex>(v));
        }
        rng.shuffle(stubs);

        Graph graph(n);
        bool ok = true;
        for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
            if (!graph.addEdge(stubs[i], stubs[i + 1])) {
                ok = false;
                break;
            }
        }
        if (ok)
            return graph;
    }
    panic("randomRegularGraph failed to converge; parameters too tight");
}

Graph
randomGnp(std::size_t n, double p, Rng &rng)
{
    Graph graph(n);
    for (std::size_t u = 0; u < n; ++u) {
        for (std::size_t v = u + 1; v < n; ++v) {
            if (rng.nextBool(p)) {
                graph.addEdge(static_cast<Graph::Vertex>(u),
                              static_cast<Graph::Vertex>(v));
            }
        }
    }
    return graph;
}

} // namespace powermove
