#include "common/strings.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace powermove {

std::string
formatGeneral(double value, int digits)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*g", digits, value);
    return buffer;
}

std::string
formatFidelity(double value)
{
    char buffer[64];
    if (value != 0.0 && std::fabs(value) < 0.01) {
        std::snprintf(buffer, sizeof(buffer), "%.2e", value);
    } else {
        std::snprintf(buffer, sizeof(buffer), "%.2f", value);
    }
    return buffer;
}

std::string
formatRatio(double value)
{
    char buffer[64];
    if (value >= 100.0)
        std::snprintf(buffer, sizeof(buffer), "%.1fx", value);
    else
        std::snprintf(buffer, sizeof(buffer), "%.2fx", value);
    return buffer;
}

std::string
join(const std::vector<std::string> &pieces, std::string_view sep)
{
    std::ostringstream os;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        if (i > 0)
            os << sep;
        os << pieces[i];
    }
    return os.str();
}

std::string_view
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            fields.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return fields;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

} // namespace powermove
