/**
 * @file
 * Grid and physical-plane geometry primitives.
 *
 * The machine is modeled as a 2D lattice of trap sites. Site coordinates
 * are integers in units of the lattice pitch; physical coordinates are in
 * micrometers. y grows *downwards*: the compute zone occupies the top rows
 * and the storage zone the bottom rows, so "moving down into storage"
 * increases y (the paper draws the same layout with the axis flipped).
 */

#ifndef POWERMOVE_COMMON_GEOMETRY_HPP
#define POWERMOVE_COMMON_GEOMETRY_HPP

#include <cmath>
#include <compare>
#include <cstdint>
#include <functional>
#include <ostream>

#include "common/units.hpp"

namespace powermove {

/** A site-grid coordinate (integer lattice position). */
struct SiteCoord
{
    std::int32_t x = 0;
    std::int32_t y = 0;

    constexpr auto operator<=>(const SiteCoord &) const = default;
};

/** A physical position on the atom plane, in micrometers. */
struct PhysCoord
{
    double x = 0.0;
    double y = 0.0;

    constexpr auto operator<=>(const PhysCoord &) const = default;
};

/** Euclidean distance between two physical positions. */
inline Distance
euclidean(PhysCoord a, PhysCoord b)
{
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    return Distance::microns(std::sqrt(dx * dx + dy * dy));
}

/** Manhattan distance between two site coordinates, in pitch units. */
inline std::int64_t
manhattan(SiteCoord a, SiteCoord b)
{
    return std::int64_t{std::abs(a.x - b.x)} + std::int64_t{std::abs(a.y - b.y)};
}

/** Chebyshev (L-infinity) distance between two site coordinates. */
inline std::int64_t
chebyshev(SiteCoord a, SiteCoord b)
{
    return std::max<std::int64_t>(std::abs(a.x - b.x), std::abs(a.y - b.y));
}

inline std::ostream &
operator<<(std::ostream &os, SiteCoord c)
{
    return os << "(" << c.x << "," << c.y << ")";
}

inline std::ostream &
operator<<(std::ostream &os, PhysCoord c)
{
    return os << "(" << c.x << "um," << c.y << "um)";
}

} // namespace powermove

template <>
struct std::hash<powermove::SiteCoord>
{
    std::size_t
    operator()(const powermove::SiteCoord &c) const noexcept
    {
        const auto ux = static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.x));
        const auto uy = static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.y));
        return std::hash<std::uint64_t>{}((ux << 32) ^ uy);
    }
};

#endif // POWERMOVE_COMMON_GEOMETRY_HPP
