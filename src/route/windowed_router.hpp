/**
 * @file
 * Windowed high-quality routing (opt-in, --routing=windowed).
 *
 * In the spirit of Stade et al., "Search Smarter, Not Harder" (see
 * PAPERS.md): the continuous router's plan quality depends on the order
 * it examines a stage's gates — the order fixes which qubit of a
 * compute-compute pair stays static, which sites fill first, and hence
 * how far the remaining movers travel. Instead of committing to the
 * partition's order, the windowed router evaluates a bounded window of
 * candidate gate orderings per stage transition — the original order
 * plus window-1 random shuffles — each routed on a scratch layout, and
 * commits the plan with the smallest total move distance (ties broken
 * toward fewer moves, then the earliest candidate, so the search is
 * deterministic given the pipeline RNG stream).
 *
 * Compile time scales linearly with the window; planned-move quality is
 * what the extra time buys. The window size lives in
 * CompilerOptions::routing_window and is part of the job fingerprint.
 */

#ifndef POWERMOVE_ROUTE_WINDOWED_ROUTER_HPP
#define POWERMOVE_ROUTE_WINDOWED_ROUTER_HPP

#include <cstdint>
#include <optional>

#include "arch/layout.hpp"
#include "arch/machine.hpp"
#include "common/rng.hpp"
#include "route/router.hpp"
#include "schedule/stage.hpp"

namespace powermove {

/** Bounded search over gate orderings around ContinuousRouter. */
class WindowedRouter
{
  public:
    /**
     * Evaluates @p window candidate orderings per transition
     * (window >= 1; window == 1 degenerates to the continuous router
     * on the original order). Draws exactly one value per transition
     * from @p rng — the pipeline stream — to seed the candidate
     * shuffles and the per-candidate routing randomness, so results
     * are reproducible from CompilerOptions::seed alone. @p rng must
     * outlive the router.
     */
    WindowedRouter(const Machine &machine, RouterOptions options,
                   std::uint32_t window, Rng &rng);

    WindowedRouter(const WindowedRouter &) = delete;
    WindowedRouter &operator=(const WindowedRouter &) = delete;

    /**
     * Plans the best-of-window transition into @p stage and applies it
     * to @p layout. The returned plan carries num_candidates and
     * num_window_wins accounting.
     */
    TransitionPlan planStageTransition(Layout &layout, const Stage &stage);

    const RouterOptions &options() const { return options_; }
    std::uint32_t window() const { return window_; }

  private:
    const Machine &machine_;
    RouterOptions options_;
    std::uint32_t window_;
    Rng *rng_; // the pipeline stream; one draw per transition

    // The inner router draws its randomized decisions from
    // candidate_rng_, reseeded before every candidate so each ordering
    // is routed under an independent, reproducible stream.
    Rng candidate_rng_;
    ContinuousRouter inner_;
    std::optional<Layout> scratch_; // sized lazily to the circuit width
    Stage candidate_stage_;         // reused gate-permutation buffer
};

} // namespace powermove

#endif // POWERMOVE_ROUTE_WINDOWED_ROUTER_HPP
