#include "route/move.hpp"

namespace powermove {

Distance
CollMove::maxDistance(const Machine &machine) const
{
    Distance longest = Distance::microns(0.0);
    for (const auto &move : moves)
        longest = std::max(longest, machine.distanceBetween(move.from, move.to));
    return longest;
}

std::size_t
CollMove::countMoveIns(const Machine &machine) const
{
    std::size_t count = 0;
    for (const auto &move : moves) {
        if (machine.zoneOf(move.from) == ZoneKind::Compute &&
            machine.zoneOf(move.to) == ZoneKind::Storage) {
            ++count;
        }
    }
    return count;
}

std::size_t
CollMove::countMoveOuts(const Machine &machine) const
{
    std::size_t count = 0;
    for (const auto &move : moves) {
        if (machine.zoneOf(move.from) == ZoneKind::Storage &&
            machine.zoneOf(move.to) == ZoneKind::Compute) {
            ++count;
        }
    }
    return count;
}

} // namespace powermove
