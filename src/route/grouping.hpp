/**
 * @file
 * Distance-aware collective-movement grouping (paper Sec. 5.3).
 *
 * The 1Q moves of one stage transition are packed into Coll-Moves, each
 * executable by a single AOD array. Moves are considered in ascending
 * distance order and greedily appended to the first group they do not
 * conflict with (first-fit). Processing by distance clusters moves of
 * similar length, which suppresses the per-group maximum distance — and
 * with it the group's wall time, since a Coll-Move takes as long as its
 * longest member.
 */

#ifndef POWERMOVE_ROUTE_GROUPING_HPP
#define POWERMOVE_ROUTE_GROUPING_HPP

#include <vector>

#include "arch/machine.hpp"
#include "route/move.hpp"

namespace powermove {

/**
 * Groups @p moves into AOD-compatible Coll-Moves (first-fit over moves
 * sorted by ascending distance; deterministic tie-break on qubit id).
 */
std::vector<CollMove> groupMoves(const Machine &machine,
                                 std::vector<QubitMove> moves);

} // namespace powermove

#endif // POWERMOVE_ROUTE_GROUPING_HPP
