/**
 * @file
 * The Continuous Router (paper Sec. 5).
 *
 * Instead of reverting to a fixed home layout between Rydberg stages (as
 * Enola does), the continuous router transitions the current layout
 * *directly* into a layout executing the next stage. For one transition
 * it decides a single 1Q move per affected qubit:
 *
 *  - Step 1: qubits idle in the next stage are parked in the storage
 *    zone, farthest-from-storage qubits choosing first, each taking the
 *    closest empty storage site below its column (Sec. 5.2 step 1).
 *  - Step 2: interacting qubits get labels (static / mobile / undecided)
 *    following the four current-location cases of Fig. 4.
 *  - Step 3: undecided qubits claim the nearest compute site that will
 *    be empty after all planned departures; their partners follow.
 *
 * In the storage-free configuration (paper's "non-storage" rows) no
 * parking happens; instead idle qubits that would be co-located with a
 * static qubit or with another idle qubit during the pulse are evicted
 * to the nearest free compute site, which is exactly the clustering
 * hazard of Fig. 3 that forces Enola to revert.
 */

#ifndef POWERMOVE_ROUTE_ROUTER_HPP
#define POWERMOVE_ROUTE_ROUTER_HPP

#include <cstdint>
#include <utility>
#include <vector>

#include "arch/layout.hpp"
#include "arch/machine.hpp"
#include "common/rng.hpp"
#include "route/free_site_index.hpp"
#include "route/move.hpp"
#include "schedule/stage.hpp"

namespace powermove {

/** Continuous-router knobs. */
struct RouterOptions
{
    /** Park idle qubits in the storage zone (zoned-architecture mode). */
    bool use_storage = true;
    /** Seed for the random mobile/static choice in Fig. 4 case (d). */
    std::uint64_t seed = 0xC0FFEE;
};

/** The planned transition into one stage. */
struct TransitionPlan
{
    /** All 1Q moves of the transition, in decision order. */
    std::vector<QubitMove> moves;
    /** Labels assigned to interacting qubits, in assignment order. */
    std::vector<std::pair<QubitId, MoveLabel>> labels;
    /** Idle qubits parked into storage (step 1). */
    std::size_t num_parked = 0;
    /** Idle qubits evicted to dodge clustering (storage-free mode). */
    std::size_t num_evicted = 0;

    // Reuse-strategy accounting (always zero for the continuous router;
    // see reuse/router.hpp for the strategy that fills these in).
    /** Idle qubits kept resident in the compute zone this transition. */
    std::size_t num_held = 0;
    /** Held qubits relocated within the compute zone to dodge a pair. */
    std::size_t num_reuse_relocated = 0;
    /** Hold candidates denied a surviving site, released to storage. */
    std::size_t num_hold_denied = 0;
    /** Interacting qubits that entered the stage already held resident. */
    std::size_t num_reuse_hits = 0;
    /** Idle qubits released to storage by the residency policy. */
    std::size_t num_lookahead_misses = 0;
    /**
     * Split of num_lookahead_misses (the two always sum to it): releases
     * with no further use in the block — parking is simply correct —
     * versus genuine misses whose next use the policy declined to wait
     * for (window too small, pressure eviction, or cost model said park).
     */
    std::size_t num_parked_no_reuse = 0;
    std::size_t num_window_misses = 0;

    // Windowed-strategy accounting (always zero except under
    // --routing=windowed; see route/windowed_router.hpp).
    /** Candidate gate orderings evaluated for this transition. */
    std::size_t num_candidates = 0;
    /** Shuffled orderings that beat the original-order incumbent. */
    std::size_t num_window_wins = 0;
};

/** Plans direct layout-to-layout transitions (paper Sec. 5). */
class ContinuousRouter
{
  public:
    ContinuousRouter(const Machine &machine, RouterOptions options = {});

    /**
     * Uses @p rng for the randomized mobile/static choice instead of an
     * internally seeded stream (options.seed is then ignored). The
     * pipeline threads its PipelineContext RNG through here so every
     * randomized decision of a compilation draws from one stream.
     * @p rng must outlive the router.
     */
    ContinuousRouter(const Machine &machine, RouterOptions options, Rng &rng);

    // rng_ may point at own_rng_, so a defaulted copy/move would leave
    // the new object drawing from the source's (possibly dead) stream.
    ContinuousRouter(const ContinuousRouter &) = delete;
    ContinuousRouter &operator=(const ContinuousRouter &) = delete;

    /**
     * Plans the transition bringing @p layout into a configuration that
     * executes @p stage, and applies it to @p layout.
     *
     * Post-conditions (validated downstream): every gate pair of the
     * stage shares one compute site; no other two qubits share a site;
     * in storage mode every idle qubit sits in the storage zone.
     */
    TransitionPlan planStageTransition(Layout &layout, const Stage &stage);

    const RouterOptions &options() const { return options_; }

  private:
    /**
     * Nearest compute site that will be empty once all planned departures
     * and arrivals settle (Sec. 5.2 step 3); fatal when the zone is full.
     */
    SiteId findEmptyComputeSite(SiteId origin,
                                const std::vector<int> &planned) const;

    const Machine &machine_;
    RouterOptions options_;
    Rng own_rng_;  // used unless an external stream was supplied
    Rng *rng_;     // &own_rng_ or the caller's stream
    StorageSlotIndex storage_index_; // incremental Sec. 5.2 step 1 search

    // Scratch buffers reused across transitions to keep the planning
    // pass allocation-free (the compile-time story of Sec. 7.2 depends
    // on the router staying near-linear per stage).
    std::vector<QubitId> partner_;
    std::vector<int> planned_;
    std::vector<SiteId> target_;
    std::vector<MoveLabel> label_;
    std::vector<bool> labeled_;
    std::vector<int> statics_at_;
    std::vector<QubitId> follower_;
    std::vector<QubitId> first_idle_at_;
    std::vector<QubitId> idle_in_compute_;
    std::vector<QubitId> undecided_order_;
    std::vector<QubitId> evicted_;
};

} // namespace powermove

#endif // POWERMOVE_ROUTE_ROUTER_HPP
