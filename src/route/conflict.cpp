#include "route/conflict.hpp"

namespace powermove {

namespace {

int
sign(std::int32_t value)
{
    return (value > 0) - (value < 0);
}

} // namespace

bool
movesConflict(const Machine &machine, const QubitMove &m1, const QubitMove &m2)
{
    const SiteCoord s1 = machine.coordOf(m1.from);
    const SiteCoord e1 = machine.coordOf(m1.to);
    const SiteCoord s2 = machine.coordOf(m2.from);
    const SiteCoord e2 = machine.coordOf(m2.to);

    // Column order must be preserved exactly (no crossing, no merging,
    // no splitting of co-located columns) and likewise for rows.
    if (sign(s1.x - s2.x) != sign(e1.x - e2.x))
        return true;
    if (sign(s1.y - s2.y) != sign(e1.y - e2.y))
        return true;
    return false;
}

bool
conflictsWithGroup(const Machine &machine, const CollMove &group,
                   const QubitMove &candidate)
{
    for (const auto &member : group.moves) {
        if (movesConflict(machine, member, candidate))
            return true;
    }
    return false;
}

bool
isValidCollMove(const Machine &machine, const CollMove &group)
{
    for (std::size_t i = 0; i < group.moves.size(); ++i) {
        for (std::size_t j = i + 1; j < group.moves.size(); ++j) {
            if (movesConflict(machine, group.moves[i], group.moves[j]))
                return false;
        }
    }
    return true;
}

} // namespace powermove
