/**
 * @file
 * Free-site searches shared by the routing strategies.
 *
 * Every router repeatedly asks "which planned-free site is closest?"
 * against a planned-occupancy array that settles once per stage
 * transition. Two searches exist:
 *
 *  - StorageSlotIndex answers the storage-parking query (Sec. 5.2
 *    step 1: minimal column distance, then shallowest row) with one
 *    forward-only cursor per storage column. Within a transition the
 *    storage zone only ever gains planned occupants while parking runs,
 *    so a row found occupied stays occupied and the cursor never
 *    rewinds; the per-call row rescan this replaces was flagged by
 *    bench/micro_passes as part of the routing hot path.
 *  - findNearestFreeComputeSite keeps the expanding Chebyshev-ring
 *    search for the euclidean-nearest planned-empty compute site.
 */

#ifndef POWERMOVE_ROUTE_FREE_SITE_INDEX_HPP
#define POWERMOVE_ROUTE_FREE_SITE_INDEX_HPP

#include <cstdint>
#include <vector>

#include "arch/machine.hpp"

namespace powermove {

/**
 * Incremental first-free-row index over the storage zone.
 *
 * Cursors are reset per transition and only advance past rows observed
 * occupied, so a burst of parkings costs O(storage sites) row visits per
 * transition in total instead of per parked qubit. A slot freed *after*
 * its row was skipped in the same transition (possible only on the
 * reuse router's fallback-release path, which runs after storage
 * departures are planned) may make the index return a deeper slot,
 * never an occupied one — claimSlot() re-checks planned occupancy at
 * the cursor on every call, and rewinds every cursor for one full
 * rescan before declaring the zone full.
 */
class StorageSlotIndex
{
  public:
    explicit StorageSlotIndex(const Machine &machine);

    /** Rewinds every column cursor; call once per stage transition. */
    void beginTransition();

    /**
     * Closest planned-empty storage slot for a qubit at @p origin:
     * lexicographic minimum of (|dx|, y, x), exactly the Sec. 5.2
     * step 1 order. The caller records the claim in @p planned; fatal
     * when the storage zone has no planned-free slot.
     */
    SiteId claimSlot(SiteCoord origin, const std::vector<int> &planned);

  private:
    /** First planned-free row of @p column, or -1; advances the cursor. */
    std::int32_t firstFreeRow(std::int32_t column,
                              const std::vector<int> &planned);

    const Machine &machine_;
    std::vector<std::int32_t> cursor_; // per column: first maybe-free row
};

/**
 * Expanding-ring search for the euclidean-nearest planned-empty compute
 * site as seen from @p origin (ties broken by (y, x)); @p origin may lie
 * in either zone. Returns kInvalidSite when the compute zone has no
 * planned-free site.
 */
SiteId findNearestFreeComputeSite(const Machine &machine, SiteId origin,
                                  const std::vector<int> &planned);

} // namespace powermove

#endif // POWERMOVE_ROUTE_FREE_SITE_INDEX_HPP
