/**
 * @file
 * Movement primitives shared by the router and the schedulers.
 */

#ifndef POWERMOVE_ROUTE_MOVE_HPP
#define POWERMOVE_ROUTE_MOVE_HPP

#include <cstdint>
#include <vector>

#include "arch/machine.hpp"
#include "circuit/gate.hpp"

namespace powermove {

/** The router's per-qubit decision for a stage transition (Sec. 5.2). */
enum class MoveLabel : std::uint8_t
{
    /** Stays at its current site, waiting for a partner to arrive. */
    Static,
    /** Moves to an already-known target site. */
    Mobile,
    /** Must move, destination resolved later (step 3). */
    Undecided,
};

/** A single-qubit relocation between two sites. */
struct QubitMove
{
    QubitId qubit = 0;
    SiteId from = kInvalidSite;
    SiteId to = kInvalidSite;

    auto operator<=>(const QubitMove &) const = default;
};

/**
 * A collective movement: 1Q moves executable simultaneously by a single
 * AOD array (pairwise conflict-free, Sec. 5.3).
 */
struct CollMove
{
    std::vector<QubitMove> moves;

    /** Longest member distance; determines the move's wall time. */
    Distance maxDistance(const Machine &machine) const;

    /** Members ending in the storage zone. */
    std::size_t countMoveIns(const Machine &machine) const;

    /** Members leaving the storage zone. */
    std::size_t countMoveOuts(const Machine &machine) const;
};

} // namespace powermove

#endif // POWERMOVE_ROUTE_MOVE_HPP
