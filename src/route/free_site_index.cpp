#include "route/free_site_index.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace powermove {

StorageSlotIndex::StorageSlotIndex(const Machine &machine)
    : machine_(machine),
      cursor_(static_cast<std::size_t>(machine.config().storage_cols), 0)
{}

void
StorageSlotIndex::beginTransition()
{
    cursor_.assign(cursor_.size(), 0);
}

std::int32_t
StorageSlotIndex::firstFreeRow(std::int32_t column,
                               const std::vector<int> &planned)
{
    const std::int32_t top = machine_.storageTopRow();
    const std::int32_t rows = machine_.config().storage_rows;
    std::int32_t r = cursor_[static_cast<std::size_t>(column)];
    while (r < rows &&
           planned[machine_.siteAt(SiteCoord{column, top + r})] != 0) {
        ++r;
    }
    cursor_[static_cast<std::size_t>(column)] = r;
    return r < rows ? top + r : -1;
}

SiteId
StorageSlotIndex::claimSlot(SiteCoord origin, const std::vector<int> &planned)
{
    // Prefer a vertical drop (same column), then the shallowest row:
    // lexicographic minimum of (|dx|, y, x). Scanning columns outward
    // from the origin lets the first hit at column distance dx settle
    // the answer after comparing both sides.
    //
    // Two attempts: if every cursor is exhausted, rewind them and scan
    // once more before declaring the zone full — a slot freed *behind*
    // a cursor in the same transition (the reuse router's fallback-
    // release path runs after storage departures are planned) is only
    // visible to a fresh scan. During monotonic parking a rescan sees
    // the same full zone, so the continuous router's behavior is
    // unchanged.
    const std::int32_t cols = machine_.config().storage_cols;
    for (int attempt = 0; attempt < 2; ++attempt) {
        if (attempt > 0)
            beginTransition();
        for (std::int32_t dx = 0; dx < cols + std::abs(origin.x); ++dx) {
            SiteId best = kInvalidSite;
            SiteCoord best_coord{0, 0};
            for (const std::int32_t x : {origin.x - dx, origin.x + dx}) {
                if (x < 0 || x >= cols || (dx == 0 && x != origin.x))
                    continue;
                const std::int32_t y = firstFreeRow(x, planned);
                if (y < 0)
                    continue;
                const SiteCoord coord{x, y};
                if (best == kInvalidSite || coord.y < best_coord.y ||
                    (coord.y == best_coord.y && coord.x < best_coord.x)) {
                    best = machine_.siteAt(coord);
                    best_coord = coord;
                }
            }
            if (best != kInvalidSite)
                return best;
        }
    }
    fatal("storage zone is full; enlarge the machine");
}

SiteId
findNearestFreeComputeSite(const Machine &machine, SiteId origin,
                           const std::vector<int> &planned)
{
    // Expanding Chebyshev-ring search for the euclidean-nearest planned-
    // empty compute site (ties broken by (y, x)). A candidate at ring r
    // can only be beaten by sites within euclidean distance best_dist,
    // so the search stops once r * pitch exceeds the incumbent.
    const PhysCoord from = machine.physOf(origin);
    const auto &config = machine.config();
    const std::int32_t cols = config.compute_cols;
    const std::int32_t rows = config.compute_rows;
    const double pitch = machine.params().site_pitch.microns();
    const SiteCoord center = machine.coordOf(origin);
    // The origin may sit in the storage zone (Fig. 4b), so the ring
    // radius must be able to span the whole lattice height.
    const std::int32_t max_ring =
        cols + rows + config.gap_rows + config.storage_rows;

    SiteId best = kInvalidSite;
    double best_dist = std::numeric_limits<double>::infinity();
    SiteCoord best_coord{0, 0};

    const auto consider = [&](std::int32_t x, std::int32_t y) {
        if (x < 0 || x >= cols || y < 0 || y >= rows)
            return;
        const SiteId site = machine.siteAt(SiteCoord{x, y});
        if (planned[site] != 0)
            return;
        const double dist = euclidean(from, machine.physOf(site)).microns();
        const SiteCoord coord{x, y};
        const bool better =
            dist < best_dist ||
            (dist == best_dist &&
             (coord.y < best_coord.y ||
              (coord.y == best_coord.y && coord.x < best_coord.x)));
        if (best == kInvalidSite || better) {
            best = site;
            best_dist = dist;
            best_coord = coord;
        }
    };

    for (std::int32_t ring = 0; ring <= max_ring; ++ring) {
        if (best != kInvalidSite &&
            (static_cast<double>(ring) - 1.0) * pitch > best_dist) {
            break;
        }
        if (ring == 0) {
            consider(center.x, center.y);
            continue;
        }
        for (std::int32_t x = center.x - ring; x <= center.x + ring; ++x) {
            consider(x, center.y - ring);
            consider(x, center.y + ring);
        }
        for (std::int32_t y = center.y - ring + 1; y <= center.y + ring - 1;
             ++y) {
            consider(center.x - ring, y);
            consider(center.x + ring, y);
        }
    }
    return best;
}

} // namespace powermove
