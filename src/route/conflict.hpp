/**
 * @file
 * AOD movement-compatibility test (paper Sec. 5.3, Fig. 5).
 *
 * Within one AOD array, rows and columns move in tandem and may stretch
 * or contract but never cross or merge. Two 1Q moves therefore conflict
 * when the relative order of their x- or y-coordinates changes between
 * start and end: sign(x1s - x2s) != sign(x1e - x2e) (and likewise for
 * y). This strict form also rejects the end-coordinate merge shown in
 * the third panel of Fig. 5 and keeps co-started columns locked
 * together.
 */

#ifndef POWERMOVE_ROUTE_CONFLICT_HPP
#define POWERMOVE_ROUTE_CONFLICT_HPP

#include "arch/machine.hpp"
#include "route/move.hpp"

namespace powermove {

/** True if two 1Q moves cannot share one AOD array. */
bool movesConflict(const Machine &machine, const QubitMove &m1,
                   const QubitMove &m2);

/** True if @p candidate conflicts with any member of @p group. */
bool conflictsWithGroup(const Machine &machine, const CollMove &group,
                        const QubitMove &candidate);

/** True if all members of @p group are pairwise compatible. */
bool isValidCollMove(const Machine &machine, const CollMove &group);

} // namespace powermove

#endif // POWERMOVE_ROUTE_CONFLICT_HPP
