#include "route/fast_router.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"
#include "common/geometry.hpp"

namespace powermove {

namespace {

constexpr std::uint64_t kAllOnes = ~std::uint64_t{0};

// Packed idle-sort key widths: (y << 42) | (x << 21) | qubit sorts
// ascending exactly like the reference comparator (y, x, id).
constexpr std::uint32_t kKeyBits = 21;
constexpr std::uint64_t kKeyMask = (std::uint64_t{1} << kKeyBits) - 1;

} // namespace

FastContinuousRouter::FastContinuousRouter(const Machine &machine,
                                           RouterOptions options)
    : machine_(machine), options_(options), own_rng_(options.seed),
      rng_(&own_rng_)
{
    initGeometry();
}

FastContinuousRouter::FastContinuousRouter(const Machine &machine,
                                           RouterOptions options, Rng &rng)
    : machine_(machine), options_(options), own_rng_(options.seed), rng_(&rng)
{
    initGeometry();
}

void
FastContinuousRouter::initGeometry()
{
    const auto &config = machine_.config();
    compute_cols_ = config.compute_cols;
    compute_rows_ = config.compute_rows;
    storage_cols_ = config.storage_cols;
    storage_rows_ = config.storage_rows;
    storage_top_row_ = machine_.storageTopRow();
    num_compute_ = machine_.numComputeSites();
    num_sites_ = machine_.numSites();

    coord_x_.resize(num_sites_);
    coord_y_.resize(num_sites_);
    phys_x_.resize(num_sites_);
    phys_y_.resize(num_sites_);
    for (SiteId s = 0; s < num_sites_; ++s) {
        const SiteCoord coord = machine_.coordOf(s);
        coord_x_[s] = coord.x;
        coord_y_[s] = coord.y;
        const PhysCoord phys = machine_.physOf(s);
        phys_x_[s] = phys.x;
        phys_y_[s] = phys.y;
    }
    PM_ASSERT(static_cast<std::uint64_t>(
                  std::max(compute_cols_, storage_cols_)) < kKeyMask &&
                  static_cast<std::uint64_t>(storage_top_row_ +
                                             storage_rows_) < kKeyMask,
              "machine too large for the packed idle-sort keys");

    row_words_ = static_cast<std::size_t>((compute_cols_ + 63) / 64);
    col_words_ = static_cast<std::size_t>((storage_rows_ + 63) / 64);
}

void
FastContinuousRouter::initFrom(const Layout &layout)
{
    const std::size_t num_qubits = layout.numQubits();
    PM_ASSERT(num_qubits < kKeyMask,
              "circuit too wide for the packed idle-sort keys");

    planned_.assign(num_sites_, 0);
    site_of_.assign(num_qubits, kInvalidSite);
    residents_.clear();
    resident_pos_.assign(num_qubits, kNpos);

    // Every in-range bit starts free; occupied sites clear theirs below.
    free_rows_.assign(row_words_ * static_cast<std::size_t>(compute_rows_), 0);
    for (std::int32_t y = 0; y < compute_rows_; ++y) {
        for (std::int32_t x = 0; x < compute_cols_; ++x) {
            free_rows_[static_cast<std::size_t>(y) * row_words_ +
                       static_cast<std::size_t>(x) / 64] |=
                std::uint64_t{1} << (x % 64);
        }
    }
    free_cols_.assign(col_words_ * static_cast<std::size_t>(storage_cols_), 0);
    for (std::int32_t x = 0; x < storage_cols_; ++x) {
        for (std::int32_t r = 0; r < storage_rows_; ++r) {
            free_cols_[static_cast<std::size_t>(x) * col_words_ +
                       static_cast<std::size_t>(r) / 64] |=
                std::uint64_t{1} << (r % 64);
        }
    }

    for (QubitId q = 0; q < num_qubits; ++q) {
        const SiteId site = layout.siteOf(q);
        PM_ASSERT(site != kInvalidSite,
                  "router requires a fully placed layout");
        site_of_[q] = site;
        if (++planned_[site] == 1)
            clearFreeBit(site);
        if (site < num_compute_)
            addResident(q);
    }

    epoch_ = 0;
    partner_epoch_.assign(num_qubits, 0);
    partner_.assign(num_qubits, kNoQubit);
    labeled_epoch_.assign(num_qubits, 0);
    target_epoch_.assign(num_qubits, 0);
    target_.assign(num_qubits, kInvalidSite);
    follower_epoch_.assign(num_qubits, 0);
    follower_.assign(num_qubits, kNoQubit);
    statics_epoch_.assign(num_sites_, 0);
    statics_at_.assign(num_sites_, 0);
    first_idle_epoch_.assign(num_sites_, 0);

    initialized_ = true;
}

// ---------------------------------------------------- bitmask maintenance

void
FastContinuousRouter::setFreeBit(SiteId site)
{
    if (site < num_compute_) {
        const std::size_t y = site / static_cast<std::size_t>(compute_cols_);
        const std::size_t x = site % static_cast<std::size_t>(compute_cols_);
        free_rows_[y * row_words_ + x / 64] |= std::uint64_t{1} << (x % 64);
    } else {
        const std::size_t index = site - num_compute_;
        const std::size_t r = index / static_cast<std::size_t>(storage_cols_);
        const std::size_t x = index % static_cast<std::size_t>(storage_cols_);
        free_cols_[x * col_words_ + r / 64] |= std::uint64_t{1} << (r % 64);
    }
}

void
FastContinuousRouter::clearFreeBit(SiteId site)
{
    if (site < num_compute_) {
        const std::size_t y = site / static_cast<std::size_t>(compute_cols_);
        const std::size_t x = site % static_cast<std::size_t>(compute_cols_);
        free_rows_[y * row_words_ + x / 64] &=
            ~(std::uint64_t{1} << (x % 64));
    } else {
        const std::size_t index = site - num_compute_;
        const std::size_t r = index / static_cast<std::size_t>(storage_cols_);
        const std::size_t x = index % static_cast<std::size_t>(storage_cols_);
        free_cols_[x * col_words_ + r / 64] &=
            ~(std::uint64_t{1} << (r % 64));
    }
}

bool
FastContinuousRouter::freeBit(SiteId site) const
{
    if (site < num_compute_) {
        const std::size_t y = site / static_cast<std::size_t>(compute_cols_);
        const std::size_t x = site % static_cast<std::size_t>(compute_cols_);
        return (free_rows_[y * row_words_ + x / 64] >> (x % 64)) & 1;
    }
    const std::size_t index = site - num_compute_;
    const std::size_t r = index / static_cast<std::size_t>(storage_cols_);
    const std::size_t x = index % static_cast<std::size_t>(storage_cols_);
    return (free_cols_[x * col_words_ + r / 64] >> (r % 64)) & 1;
}

void
FastContinuousRouter::plannedInc(SiteId site)
{
    if (planned_[site]++ == 0)
        clearFreeBit(site);
}

void
FastContinuousRouter::plannedDec(SiteId site)
{
    if (--planned_[site] == 0)
        setFreeBit(site);
}

// -------------------------------------------------------- free-site search

std::int32_t
FastContinuousRouter::firstFreeStorageRow(std::int32_t column) const
{
    const std::uint64_t *words =
        &free_cols_[static_cast<std::size_t>(column) * col_words_];
    for (std::size_t w = 0; w < col_words_; ++w) {
        if (words[w] != 0) {
            return static_cast<std::int32_t>(w * 64 +
                                             std::countr_zero(words[w]));
        }
    }
    return -1;
}

SiteId
FastContinuousRouter::claimStorageSlot(std::int32_t origin_x) const
{
    // Lexicographic minimum of (|dx|, y, x) over planned-free storage
    // slots, scanning columns outward so the first hit at column
    // distance dx settles the answer after comparing both sides — the
    // same selection claimSlot() makes with its forward cursors (during
    // monotonic parking a cursor scan equals a fresh scan).
    const std::int32_t cols = storage_cols_;
    const std::int32_t span = cols + std::abs(origin_x);
    for (std::int32_t dx = 0; dx < span; ++dx) {
        std::int32_t best_x = -1;
        std::int32_t best_r = 0;
        for (int side = 0; side < 2; ++side) {
            if (side == 1 && dx == 0)
                continue;
            const std::int32_t x = side == 0 ? origin_x - dx : origin_x + dx;
            if (x < 0 || x >= cols)
                continue;
            const std::int32_t r = firstFreeStorageRow(x);
            if (r < 0)
                continue;
            if (best_x < 0 || r < best_r || (r == best_r && x < best_x)) {
                best_x = x;
                best_r = r;
            }
        }
        if (best_x >= 0) {
            return static_cast<SiteId>(
                num_compute_ +
                static_cast<std::size_t>(best_r) *
                    static_cast<std::size_t>(cols) +
                static_cast<std::size_t>(best_x));
        }
    }
    fatal("storage zone is full; enlarge the machine");
}

namespace {

/** Largest set bit index <= @p c over @p words, or -1. */
std::int32_t
nearestSetBitAtOrBelow(const std::uint64_t *words, std::int32_t c)
{
    std::size_t wi = static_cast<std::size_t>(c) / 64;
    std::uint64_t w = words[wi] & (kAllOnes >> (63 - c % 64));
    while (true) {
        if (w != 0) {
            return static_cast<std::int32_t>(wi * 64 + 63 -
                                             std::countl_zero(w));
        }
        if (wi == 0)
            return -1;
        w = words[--wi];
    }
}

/** Smallest set bit index >= @p c over @p num_words words, or -1. */
std::int32_t
nearestSetBitAtOrAbove(const std::uint64_t *words, std::int32_t c,
                       std::size_t num_words)
{
    std::size_t wi = static_cast<std::size_t>(c) / 64;
    std::uint64_t w = words[wi] & (kAllOnes << (c % 64));
    while (true) {
        if (w != 0)
            return static_cast<std::int32_t>(wi * 64 + std::countr_zero(w));
        if (++wi >= num_words)
            return -1;
        w = words[wi];
    }
}

} // namespace

SiteId
FastContinuousRouter::findNearestFreeCompute(SiteId origin) const
{
    // The reference ring search returns the unique argmin of
    // (euclidean distance, y, x) over planned-free compute sites —
    // visit order never matters, only that the argmin is visited. This
    // walk enumerates rows by growing |dy| in both directions; per row
    // the distance-minimal candidates are the nearest free columns on
    // either side of the origin column (distance is monotone in |dx|
    // within a row), found by two bit scans. Both finalists go through
    // the reference comparator on the same euclidean doubles.
    const double from_x = phys_x_[origin];
    const double from_y = phys_y_[origin];
    const std::int32_t origin_col = coord_x_[origin];
    const std::int32_t origin_row = coord_y_[origin];
    const std::int32_t rows = compute_rows_;
    const std::int32_t cols = compute_cols_;

    SiteId best = kInvalidSite;
    double best_dist = std::numeric_limits<double>::infinity();
    std::int32_t best_y = 0;
    std::int32_t best_x = 0;

    const auto consider = [&](std::int32_t x, std::int32_t y) {
        const SiteId site = static_cast<SiteId>(
            static_cast<std::size_t>(y) * static_cast<std::size_t>(cols) +
            static_cast<std::size_t>(x));
        const double dist =
            euclidean(PhysCoord{from_x, from_y},
                      PhysCoord{phys_x_[site], phys_y_[site]})
                .microns();
        const bool better =
            dist < best_dist ||
            (dist == best_dist &&
             (y < best_y || (y == best_y && x < best_x)));
        if (best == kInvalidSite || better) {
            best = site;
            best_dist = dist;
            best_y = y;
            best_x = x;
        }
    };

    const auto scan_row = [&](std::int32_t y) {
        const std::uint64_t *words =
            &free_rows_[static_cast<std::size_t>(y) * row_words_];
        const std::int32_t left =
            nearestSetBitAtOrBelow(words, std::min(origin_col, cols - 1));
        if (left >= 0)
            consider(left, y);
        // A storage-zone origin can sit right of the last compute
        // column; every candidate is then on the "left" side already.
        if (origin_col < cols) {
            const std::int32_t right = nearestSetBitAtOrAbove(
                words, std::max(origin_col, 0), row_words_);
            if (right >= 0 && right != left)
                consider(right, y);
        }
    };

    // Every candidate in row y satisfies dist >= |row phys y - from_y|
    // up to two rounding errors (one in the squared sum, one in the
    // sqrt), so the bound shifted down two ulps prunes conservatively:
    // a row it rejects cannot contain the argmin.
    const auto row_lower_bound = [&](std::int32_t y) {
        const double row_y =
            phys_y_[static_cast<std::size_t>(y) *
                    static_cast<std::size_t>(cols)];
        double bound = std::abs(row_y - from_y);
        bound = std::nextafter(bound,
                               -std::numeric_limits<double>::infinity());
        bound = std::nextafter(bound,
                               -std::numeric_limits<double>::infinity());
        return bound;
    };

    // Walk rows outward from the origin row: "up" decreases y from the
    // nearest in-zone row, "down" increases it; a storage-zone origin
    // sits below every compute row, so only "up" is live. Each
    // direction visits rows in non-decreasing real |dy| and stops once
    // its next row's lower bound exceeds the incumbent distance.
    std::int32_t up = std::min(origin_row, rows - 1);
    std::int32_t down = origin_row < rows ? origin_row + 1 : rows;
    while (up >= 0 || down < rows) {
        if (up >= 0) {
            if (best != kInvalidSite && row_lower_bound(up) > best_dist) {
                up = -1;
            } else {
                scan_row(up);
                --up;
            }
        }
        if (down < rows) {
            if (best != kInvalidSite && row_lower_bound(down) > best_dist) {
                down = rows;
            } else {
                scan_row(down);
                ++down;
            }
        }
    }
    return best;
}

// -------------------------------------------------------------- residents

void
FastContinuousRouter::addResident(QubitId qubit)
{
    resident_pos_[qubit] = residents_.size();
    residents_.push_back(qubit);
}

void
FastContinuousRouter::removeResident(QubitId qubit)
{
    const std::size_t pos = resident_pos_[qubit];
    PM_ASSERT(pos != kNpos, "qubit is not a compute-zone resident");
    const QubitId last = residents_.back();
    residents_[pos] = last;
    resident_pos_[last] = pos;
    residents_.pop_back();
    resident_pos_[qubit] = kNpos;
}

// ------------------------------------------------------------------- plan

TransitionPlan
FastContinuousRouter::planStageTransition(Layout &layout, const Stage &stage)
{
    PM_ASSERT(stage.qubitsDisjoint(), "stage gates must act on disjoint qubits");
    if (!initialized_ || site_of_.size() != layout.numQubits())
        initFrom(layout);
    const std::size_t num_qubits = site_of_.size();
    ++epoch_;
    const std::uint64_t epoch = epoch_;

    for (const auto &gate : stage.gates) {
        PM_ASSERT(gate.a < num_qubits && gate.b < num_qubits,
                  "stage gate outside circuit width");
        partner_[gate.a] = gate.b;
        partner_epoch_[gate.a] = epoch;
        partner_[gate.b] = gate.a;
        partner_epoch_[gate.b] = epoch;
    }

    TransitionPlan plan;

    // ---- Step 1: park next-stage idle qubits in storage. -----------------
    if (options_.use_storage) {
        idle_keys_.clear();
        for (const QubitId q : residents_) {
            if (partner_epoch_[q] == epoch)
                continue;
            const SiteId site = site_of_[q];
            idle_keys_.push_back(
                (static_cast<std::uint64_t>(coord_y_[site]) << (2 * kKeyBits)) |
                (static_cast<std::uint64_t>(coord_x_[site]) << kKeyBits) | q);
        }
        // Ascending packed (y, x, id) keys reproduce the reference
        // farthest-from-storage parking order exactly.
        std::sort(idle_keys_.begin(), idle_keys_.end());
        for (const std::uint64_t key : idle_keys_) {
            const QubitId q = static_cast<QubitId>(key & kKeyMask);
            const SiteId from = site_of_[q];
            const SiteId slot = claimStorageSlot(coord_x_[from]);
            plannedDec(from);
            plannedInc(slot);
            plan.moves.push_back({q, from, slot});
            ++plan.num_parked;
        }
    }

    // ---- Step 2: label the interacting qubits (Fig. 4 cases). ------------
    const auto statics_at = [&](SiteId site) {
        return statics_epoch_[site] == epoch ? statics_at_[site] : 0;
    };
    const auto bump_statics = [&](SiteId site, int by) {
        if (statics_epoch_[site] != epoch) {
            statics_epoch_[site] = epoch;
            statics_at_[site] = by;
        } else {
            statics_at_[site] += by;
        }
    };
    const auto set_target = [&](QubitId q, SiteId site) {
        target_[q] = site;
        target_epoch_[q] = epoch;
    };
    const auto set_label = [&](QubitId q, MoveLabel l) {
        PM_ASSERT(labeled_epoch_[q] != epoch,
                  "qubit labeled twice within one stage");
        labeled_epoch_[q] = epoch;
        plan.labels.emplace_back(q, l);
    };

    undecided_order_.clear();
    for (const auto &gate : stage.gates) {
        const QubitId qi = gate.a;
        const QubitId qj = gate.b;
        const SiteId si = site_of_[qi];
        const SiteId sj = site_of_[qj];
        const bool storage_i = si >= num_compute_;
        const bool storage_j = sj >= num_compute_;

        if (storage_i && storage_j) {
            // (b) Both in storage: the interaction site is found later.
            set_label(qi, MoveLabel::Mobile);
            set_label(qj, MoveLabel::Undecided);
            follower_[qj] = qi;
            follower_epoch_[qj] = epoch;
            undecided_order_.push_back(qj);
        } else if (storage_i != storage_j) {
            // (c) One in storage, one in the compute zone.
            const QubitId storage_q = storage_i ? qi : qj;
            const QubitId compute_q = storage_i ? qj : qi;
            const SiteId compute_site = storage_i ? sj : si;
            set_label(storage_q, MoveLabel::Mobile);
            if (statics_at(compute_site) > 0) {
                set_label(compute_q, MoveLabel::Undecided);
                follower_[compute_q] = storage_q;
                follower_epoch_[compute_q] = epoch;
                undecided_order_.push_back(compute_q);
            } else {
                set_label(compute_q, MoveLabel::Static);
                bump_statics(compute_site, 1);
                set_target(storage_q, compute_site);
            }
        } else {
            // (d) Both in the compute zone.
            if (si == sj) {
                // Already adjacent (repeated gate): nobody moves.
                set_label(qi, MoveLabel::Static);
                set_label(qj, MoveLabel::Static);
                bump_statics(si, 2);
                continue;
            }
            const bool pick_first = rng_->nextBool(0.5);
            const QubitId mover = pick_first ? qi : qj;
            const QubitId stay = pick_first ? qj : qi;
            const SiteId stay_site = pick_first ? sj : si;
            set_label(mover, MoveLabel::Mobile);
            if (statics_at(stay_site) > 0) {
                set_label(stay, MoveLabel::Undecided);
                follower_[stay] = mover;
                follower_epoch_[stay] = epoch;
                undecided_order_.push_back(stay);
            } else {
                set_label(stay, MoveLabel::Static);
                bump_statics(stay_site, 1);
                set_target(mover, stay_site);
            }
        }
    }

    // ---- Step 2.5 (storage-free mode): evict clustered idle qubits. ------
    evicted_.clear();
    if (!options_.use_storage) {
        for (QubitId q = 0; q < num_qubits; ++q) {
            if (partner_epoch_[q] == epoch)
                continue;
            const SiteId site = site_of_[q];
            if (statics_at(site) > 0) {
                evicted_.push_back(q);
            } else if (first_idle_epoch_[site] == epoch) {
                evicted_.push_back(q);
            } else {
                first_idle_epoch_[site] = epoch;
            }
        }
    }

    // ---- Occupancy bookkeeping before resolving open destinations. -------
    // Iterating plan.labels instead of every qubit is order-irrelevant:
    // planned is only read again once all three loops settle.
    for (const auto &[q, l] : plan.labels) {
        if (l != MoveLabel::Static)
            plannedDec(site_of_[q]);
    }
    for (const QubitId q : evicted_)
        plannedDec(site_of_[q]);
    for (const auto &[q, l] : plan.labels) {
        if (l == MoveLabel::Mobile && target_epoch_[q] == epoch)
            plannedInc(target_[q]);
    }

    // ---- Step 3: resolve undecided qubits, partners follow. --------------
    for (const QubitId undecided : undecided_order_) {
        const SiteId site = findNearestFreeCompute(site_of_[undecided]);
        if (site == kInvalidSite)
            fatal("compute zone has no free site; enlarge the machine");
        plannedInc(site);
        plannedInc(site);
        set_target(undecided, site);
        PM_ASSERT(follower_epoch_[undecided] == epoch &&
                      follower_[undecided] != kNoQubit,
                  "undecided qubit lost its partner");
        set_target(follower_[undecided], site);
    }

    // Evicted idle qubits scatter after interaction sites are fixed.
    for (const QubitId q : evicted_) {
        const SiteId site = findNearestFreeCompute(site_of_[q]);
        if (site == kInvalidSite)
            fatal("compute zone has no free site; enlarge the machine");
        plannedInc(site);
        set_target(q, site);
        ++plan.num_evicted;
    }

    // ---- Emit gate-related and eviction moves in decision order. ---------
    for (const auto &[q, l] : plan.labels) {
        if (l == MoveLabel::Static)
            continue;
        PM_ASSERT(target_epoch_[q] == epoch, "mover without a destination");
        if (target_[q] != site_of_[q])
            plan.moves.push_back({q, site_of_[q], target_[q]});
    }
    for (const QubitId q : evicted_)
        plan.moves.push_back({q, site_of_[q], target_[q]});

    // ---- Apply transactionally (all departures, then all arrivals). ------
    for (const auto &move : plan.moves)
        layout.unplace(move.qubit);
    for (const auto &move : plan.moves)
        layout.place(move.qubit, move.to);

    // Each qubit moves at most once per transition (parked, labeled,
    // and evicted are mutually exclusive), so one pass keeps the site
    // mirror and the resident list in sync with the applied layout; the
    // planned array already equals the settled occupancy by the
    // inc/dec bookkeeping above.
    for (const auto &move : plan.moves) {
        site_of_[move.qubit] = move.to;
        const bool was_compute = move.from < num_compute_;
        const bool is_compute = move.to < num_compute_;
        if (was_compute && !is_compute)
            removeResident(move.qubit);
        else if (!was_compute && is_compute)
            addResident(move.qubit);
    }

    for (const auto &gate : stage.gates) {
        PM_ASSERT(layout.siteOf(gate.a) == layout.siteOf(gate.b),
                  "router failed to co-locate a gate pair");
        PM_ASSERT(layout.zoneOf(gate.a) == ZoneKind::Compute,
                  "gate pair must sit in the compute zone");
    }
    return plan;
}

// ------------------------------------------------------------------ audit

bool
FastContinuousRouter::auditAgainstLayout(const Layout &layout,
                                         std::string *why) const
{
    const auto fail = [&](const std::string &message) {
        if (why != nullptr)
            *why = message;
        return false;
    };
    if (!initialized_)
        return fail("router has no incremental state yet");
    if (layout.numQubits() != site_of_.size())
        return fail("qubit count mismatch against the audited layout");

    std::vector<int> expected(num_sites_, 0);
    std::size_t expected_residents = 0;
    for (QubitId q = 0; q < site_of_.size(); ++q) {
        const SiteId site = layout.siteOf(q);
        if (site == kInvalidSite)
            return fail("layout qubit " + std::to_string(q) + " is unplaced");
        if (site_of_[q] != site) {
            return fail("site mirror diverged at qubit " + std::to_string(q));
        }
        ++expected[site];
        if (site < num_compute_)
            ++expected_residents;
    }
    if (expected != planned_)
        return fail("planned occupancy diverged from the layout");

    if (residents_.size() != expected_residents)
        return fail("resident count diverged from the layout");
    for (std::size_t i = 0; i < residents_.size(); ++i) {
        const QubitId q = residents_[i];
        if (resident_pos_[q] != i)
            return fail("resident position index diverged at slot " +
                        std::to_string(i));
        if (site_of_[q] >= num_compute_)
            return fail("storage-zone qubit " + std::to_string(q) +
                        " sits in the resident list");
    }

    for (SiteId site = 0; site < num_sites_; ++site) {
        if (freeBit(site) != (planned_[site] == 0)) {
            return fail("free bitmask diverged at site " +
                        std::to_string(site));
        }
    }
    return true;
}

} // namespace powermove
