#include "route/windowed_router.hpp"

#include <limits>
#include <utility>

#include "common/error.hpp"

namespace powermove {

WindowedRouter::WindowedRouter(const Machine &machine, RouterOptions options,
                               std::uint32_t window, Rng &rng)
    : machine_(machine), options_(options), window_(window), rng_(&rng),
      candidate_rng_(options.seed), inner_(machine, options, candidate_rng_)
{
    PM_ASSERT(window_ >= 1, "routing window must be at least 1");
}

TransitionPlan
WindowedRouter::planStageTransition(Layout &layout, const Stage &stage)
{
    if (!scratch_ || scratch_->numQubits() != layout.numQubits())
        scratch_.emplace(machine_, layout.numQubits());

    // One draw from the pipeline stream per transition, independent of
    // the window size: all per-candidate randomness (the shuffles and
    // the inner router's mobile/static coin flips) derives from it, so
    // a window change alters candidate quality, never how much of the
    // shared stream later passes consume.
    std::uint64_t derive_state = rng_->next();

    TransitionPlan best;
    double best_distance = std::numeric_limits<double>::infinity();
    std::size_t best_moves = 0;
    bool have_best = false;
    std::size_t window_wins = 0;

    for (std::uint32_t k = 0; k < window_; ++k) {
        const std::uint64_t route_seed = splitMix64(derive_state);
        const std::uint64_t shuffle_seed = splitMix64(derive_state);

        candidate_stage_.gates = stage.gates;
        if (k > 0) {
            Rng shuffle_rng(shuffle_seed);
            shuffle_rng.shuffle(candidate_stage_.gates);
        }

        scratch_->assignFrom(layout);
        candidate_rng_ = Rng(route_seed);
        TransitionPlan plan =
            inner_.planStageTransition(*scratch_, candidate_stage_);

        double distance = 0.0;
        for (const auto &move : plan.moves)
            distance += machine_.distanceBetween(move.from, move.to).microns();

        const bool better =
            !have_best || distance < best_distance ||
            (distance == best_distance && plan.moves.size() < best_moves);
        if (better) {
            if (have_best && k > 0)
                ++window_wins;
            best = std::move(plan);
            best_distance = distance;
            best_moves = best.moves.size();
            have_best = true;
        }
    }

    // The winner was planned against an exact copy of the live layout,
    // so replaying its moves transactionally lands in the same state
    // the inner router validated on the scratch.
    for (const auto &move : best.moves)
        layout.unplace(move.qubit);
    for (const auto &move : best.moves)
        layout.place(move.qubit, move.to);

    best.num_candidates = window_;
    best.num_window_wins = window_wins;
    return best;
}

} // namespace powermove
