#include "route/grouping.hpp"

#include <algorithm>

#include "route/conflict.hpp"

namespace powermove {

std::vector<CollMove>
groupMoves(const Machine &machine, std::vector<QubitMove> moves)
{
    std::sort(moves.begin(), moves.end(),
              [&machine](const QubitMove &a, const QubitMove &b) {
                  const auto da = machine.distanceBetween(a.from, a.to);
                  const auto db = machine.distanceBetween(b.from, b.to);
                  if (da != db)
                      return da < db;
                  return a.qubit < b.qubit;
              });

    std::vector<CollMove> groups;
    for (const auto &move : moves) {
        bool assigned = false;
        for (auto &group : groups) {
            if (!conflictsWithGroup(machine, group, move)) {
                group.moves.push_back(move);
                assigned = true;
                break;
            }
        }
        if (!assigned)
            groups.push_back(CollMove{{move}});
    }
    return groups;
}

} // namespace powermove
