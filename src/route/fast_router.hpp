/**
 * @file
 * The continuous router's incremental fast path.
 *
 * FastContinuousRouter plans bit-identical TransitionPlans to
 * ContinuousRouter (route/router.hpp) — same moves, same labels, same
 * RNG consumption — while replacing every per-transition O(qubits) or
 * O(sites) rebuild with incrementally maintained state:
 *
 *  - The planned-occupancy array persists across transitions. After a
 *    transition settles, planned occupancy equals the applied layout's
 *    occupancy (every mover was decremented at its origin and
 *    incremented at its destination), so the next transition starts
 *    from it directly instead of re-counting every qubit.
 *  - Free-site bitmasks (one word-packed row per compute row, one
 *    column per storage column) are kept in lockstep with the planned
 *    array, turning both free-site searches — the expanding-ring
 *    nearest-compute-site scan and the storage-slot column walk of
 *    free_site_index.hpp — into a handful of bit scans over contiguous
 *    words. The nearest-site replacement evaluates the *same* euclidean
 *    doubles with the same comparator as the reference search, so the
 *    chosen site is identical, not merely equivalent (the row pruning
 *    bound carries a two-ulp slack to stay conservative under floating-
 *    point rounding).
 *  - A resident list of compute-zone qubits replaces the O(qubits)
 *    idle scan of parking step 1: in storage mode the compute zone only
 *    ever holds the previous stage's interacting qubits, so the scan is
 *    O(previous stage width), not O(circuit width).
 *  - Per-qubit and per-site scratch (partner, labels, targets, statics
 *    counts) is epoch-stamped instead of re-assigned, so a transition
 *    touches only the entries it actually writes.
 *  - Site coordinates and physical positions are mirrored into SoA
 *    arrays at construction, keeping the hot loops free of the
 *    assertion-checked Machine lookups.
 *
 * The mirrors assume the layout is mutated only through this router
 * between calls (the pipeline guarantees this: placement runs before
 * the first transition and nothing else moves qubits). Call reset()
 * if the layout was changed externally; auditAgainstLayout() verifies
 * every incremental structure against a from-scratch rebuild and backs
 * the churn property test (fast_router_state_test.cpp).
 */

#ifndef POWERMOVE_ROUTE_FAST_ROUTER_HPP
#define POWERMOVE_ROUTE_FAST_ROUTER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "arch/layout.hpp"
#include "arch/machine.hpp"
#include "common/rng.hpp"
#include "route/move.hpp"
#include "route/router.hpp"
#include "schedule/stage.hpp"

namespace powermove {

/** Incremental drop-in for ContinuousRouter (same plans, faster). */
class FastContinuousRouter
{
  public:
    FastContinuousRouter(const Machine &machine, RouterOptions options = {});

    /**
     * Uses @p rng for the randomized mobile/static choice instead of an
     * internally seeded stream (options.seed is then ignored), exactly
     * as ContinuousRouter does; @p rng must outlive the router.
     */
    FastContinuousRouter(const Machine &machine, RouterOptions options,
                         Rng &rng);

    // rng_ may point at own_rng_ (see ContinuousRouter).
    FastContinuousRouter(const FastContinuousRouter &) = delete;
    FastContinuousRouter &operator=(const FastContinuousRouter &) = delete;

    /**
     * Plans the transition bringing @p layout into a configuration that
     * executes @p stage and applies it; bit-identical to
     * ContinuousRouter::planStageTransition on the same inputs and RNG
     * stream. The first call (or the first after reset()) initializes
     * the incremental state from @p layout; later calls require that
     * the layout was not mutated outside this router in between.
     */
    TransitionPlan planStageTransition(Layout &layout, const Stage &stage);

    /** Drops the incremental state; the next plan rebuilds it. */
    void reset() { initialized_ = false; }

    /**
     * Debug/property-test hook: rebuilds planned occupancy, the free
     * bitmasks, the site mirror, and the resident list from @p layout
     * and compares them to the incrementally maintained versions.
     * Returns false (and fills @p why) on the first divergence.
     */
    bool auditAgainstLayout(const Layout &layout,
                            std::string *why = nullptr) const;

    const RouterOptions &options() const { return options_; }

  private:
    void initGeometry();
    void initFrom(const Layout &layout);

    // planned-occupancy maintenance; keeps the free bitmasks in sync.
    void plannedInc(SiteId site);
    void plannedDec(SiteId site);
    void setFreeBit(SiteId site);
    void clearFreeBit(SiteId site);
    bool freeBit(SiteId site) const;

    /** First planned-free storage row of @p column, or -1. */
    std::int32_t firstFreeStorageRow(std::int32_t column) const;

    /**
     * Bitmask reimplementation of StorageSlotIndex::claimSlot for the
     * continuous router's monotonic parking phase: the lexicographic
     * (|dx|, y, x) minimum over planned-free storage slots. Identical
     * to the cursor-based search because storage occupancy only grows
     * while parking runs. Fatal when the zone is full.
     */
    SiteId claimStorageSlot(std::int32_t origin_x) const;

    /**
     * Bitmask replacement for findNearestFreeComputeSite: the unique
     * (euclidean distance, y, x) argmin over planned-free compute
     * sites, computed from the same doubles with the same comparator.
     * Returns kInvalidSite when the compute zone has no free site.
     */
    SiteId findNearestFreeCompute(SiteId origin) const;

    // resident-list maintenance (compute-zone qubits).
    void addResident(QubitId qubit);
    void removeResident(QubitId qubit);

    static constexpr std::size_t kNpos = ~std::size_t{0};

    const Machine &machine_;
    RouterOptions options_;
    Rng own_rng_; // used unless an external stream was supplied
    Rng *rng_;    // &own_rng_ or the caller's stream

    // Immutable geometry mirrors (SoA; filled once at construction).
    std::int32_t compute_cols_ = 0;
    std::int32_t compute_rows_ = 0;
    std::int32_t storage_cols_ = 0;
    std::int32_t storage_rows_ = 0;
    std::int32_t storage_top_row_ = 0;
    std::size_t num_compute_ = 0;
    std::size_t num_sites_ = 0;
    std::vector<std::int32_t> coord_x_; // site -> lattice x
    std::vector<std::int32_t> coord_y_; // site -> lattice y
    std::vector<double> phys_x_;        // site -> physical x (um)
    std::vector<double> phys_y_;        // site -> physical y (um)

    // Persistent incremental state (valid while initialized_).
    bool initialized_ = false;
    std::vector<int> planned_;            // site -> settled occupancy
    std::vector<std::uint64_t> free_rows_; // compute: per-row free bits
    std::vector<std::uint64_t> free_cols_; // storage: per-col free bits
    std::size_t row_words_ = 0;
    std::size_t col_words_ = 0;
    std::vector<SiteId> site_of_;         // qubit -> site mirror
    std::vector<QubitId> residents_;      // compute-zone qubits
    std::vector<std::size_t> resident_pos_; // qubit -> residents_ index

    // Epoch-stamped per-transition scratch (entry valid iff its stamp
    // equals epoch_; bumping the epoch "clears" every array in O(1)).
    std::uint64_t epoch_ = 0;
    std::vector<std::uint64_t> partner_epoch_;
    std::vector<QubitId> partner_;
    std::vector<std::uint64_t> labeled_epoch_;
    std::vector<std::uint64_t> target_epoch_;
    std::vector<SiteId> target_;
    std::vector<std::uint64_t> follower_epoch_;
    std::vector<QubitId> follower_;
    std::vector<std::uint64_t> statics_epoch_;
    std::vector<int> statics_at_;
    std::vector<std::uint64_t> first_idle_epoch_;

    // Plain per-transition scratch.
    std::vector<std::uint64_t> idle_keys_; // packed (y, x, qubit)
    std::vector<QubitId> undecided_order_;
    std::vector<QubitId> evicted_;
};

} // namespace powermove

#endif // POWERMOVE_ROUTE_FAST_ROUTER_HPP
