#include "route/router.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace powermove {

ContinuousRouter::ContinuousRouter(const Machine &machine, RouterOptions options)
    : machine_(machine), options_(options), own_rng_(options.seed),
      rng_(&own_rng_), storage_index_(machine)
{}

ContinuousRouter::ContinuousRouter(const Machine &machine,
                                   RouterOptions options, Rng &rng)
    : machine_(machine), options_(options), own_rng_(options.seed), rng_(&rng),
      storage_index_(machine)
{}

SiteId
ContinuousRouter::findEmptyComputeSite(SiteId origin,
                                       const std::vector<int> &planned) const
{
    const SiteId best = findNearestFreeComputeSite(machine_, origin, planned);
    if (best == kInvalidSite)
        fatal("compute zone has no free site; enlarge the machine");
    return best;
}

TransitionPlan
ContinuousRouter::planStageTransition(Layout &layout, const Stage &stage)
{
    PM_ASSERT(stage.qubitsDisjoint(), "stage gates must act on disjoint qubits");
    PM_ASSERT(layout.allPlaced(), "router requires a fully placed layout");

    const std::size_t num_qubits = layout.numQubits();
    auto &partner = partner_;
    partner.assign(num_qubits, kNoQubit);
    for (const auto &gate : stage.gates) {
        PM_ASSERT(gate.a < num_qubits && gate.b < num_qubits,
                  "stage gate outside circuit width");
        partner[gate.a] = gate.b;
        partner[gate.b] = gate.a;
    }

    // Planned occupancy of every site once the whole transition settles.
    auto &planned = planned_;
    planned.assign(machine_.numSites(), 0);
    for (QubitId q = 0; q < num_qubits; ++q)
        ++planned[layout.siteOf(q)];

    TransitionPlan plan;
    auto &target = target_;
    target.assign(num_qubits, kInvalidSite);

    // ---- Step 1: park next-stage idle qubits in storage. -----------------
    if (options_.use_storage) {
        storage_index_.beginTransition();
        auto &idle_in_compute = idle_in_compute_;
        idle_in_compute.clear();
        for (QubitId q = 0; q < num_qubits; ++q) {
            if (partner[q] == kNoQubit &&
                layout.zoneOf(q) == ZoneKind::Compute) {
                idle_in_compute.push_back(q);
            }
        }
        // Farthest-from-storage qubits choose their slots first: with y
        // growing toward storage this is ascending current y. Keeping the
        // vertical order also keeps the parking moves AOD-compatible.
        std::sort(idle_in_compute.begin(), idle_in_compute.end(),
                  [&](QubitId a, QubitId b) {
                      const auto ca = machine_.coordOf(layout.siteOf(a));
                      const auto cb = machine_.coordOf(layout.siteOf(b));
                      if (ca.y != cb.y)
                          return ca.y < cb.y;
                      if (ca.x != cb.x)
                          return ca.x < cb.x;
                      return a < b;
                  });
        for (const QubitId q : idle_in_compute) {
            const SiteId from = layout.siteOf(q);
            const SiteId slot =
                storage_index_.claimSlot(machine_.coordOf(from), planned);
            --planned[from];
            ++planned[slot];
            target[q] = slot;
            plan.moves.push_back({q, from, slot});
            ++plan.num_parked;
        }
    }

    // ---- Step 2: label the interacting qubits (Fig. 4 cases). ------------
    auto &label = label_;
    label.assign(num_qubits, MoveLabel::Static);
    auto &labeled = labeled_;
    labeled.assign(num_qubits, false);
    auto &statics_at = statics_at_;
    statics_at.assign(machine_.numSites(), 0);
    auto &undecided_order = undecided_order_;
    undecided_order.clear();
    auto &follower = follower_;
    follower.assign(num_qubits, kNoQubit);

    const auto set_label = [&](QubitId q, MoveLabel l) {
        PM_ASSERT(!labeled[q], "qubit labeled twice within one stage");
        label[q] = l;
        labeled[q] = true;
        plan.labels.emplace_back(q, l);
    };

    for (const auto &gate : stage.gates) {
        const QubitId qi = gate.a;
        const QubitId qj = gate.b;
        const SiteId si = layout.siteOf(qi);
        const SiteId sj = layout.siteOf(qj);
        const ZoneKind zi = machine_.zoneOf(si);
        const ZoneKind zj = machine_.zoneOf(sj);

        if (zi == ZoneKind::Storage && zj == ZoneKind::Storage) {
            // (b) Both in storage: the interaction site is found later.
            set_label(qi, MoveLabel::Mobile);
            set_label(qj, MoveLabel::Undecided);
            follower[qj] = qi;
            undecided_order.push_back(qj);
        } else if (zi != zj) {
            // (c) One in storage, one in the compute zone.
            const QubitId storage_q = zi == ZoneKind::Storage ? qi : qj;
            const QubitId compute_q = zi == ZoneKind::Storage ? qj : qi;
            set_label(storage_q, MoveLabel::Mobile);
            if (statics_at[layout.siteOf(compute_q)] > 0) {
                set_label(compute_q, MoveLabel::Undecided);
                follower[compute_q] = storage_q;
                undecided_order.push_back(compute_q);
            } else {
                set_label(compute_q, MoveLabel::Static);
                ++statics_at[layout.siteOf(compute_q)];
                target[storage_q] = layout.siteOf(compute_q);
            }
        } else {
            // (d) Both in the compute zone.
            if (si == sj) {
                // Already adjacent (repeated gate): nobody moves.
                set_label(qi, MoveLabel::Static);
                set_label(qj, MoveLabel::Static);
                statics_at[si] += 2;
                continue;
            }
            const bool pick_first = rng_->nextBool(0.5);
            const QubitId mover = pick_first ? qi : qj;
            const QubitId stay = pick_first ? qj : qi;
            set_label(mover, MoveLabel::Mobile);
            if (statics_at[layout.siteOf(stay)] > 0) {
                set_label(stay, MoveLabel::Undecided);
                follower[stay] = mover;
                undecided_order.push_back(stay);
            } else {
                set_label(stay, MoveLabel::Static);
                ++statics_at[layout.siteOf(stay)];
                target[mover] = layout.siteOf(stay);
            }
        }
    }

    // ---- Step 2.5 (storage-free mode): evict clustered idle qubits. ------
    // An idle qubit co-located with a static qubit (its site is about to
    // host an interaction) or with another idle qubit (unwanted blockade
    // pair during the pulse) must scatter to a free site.
    auto &evicted = evicted_;
    evicted.clear();
    if (!options_.use_storage) {
        auto &first_idle_at = first_idle_at_;
        first_idle_at.assign(machine_.numSites(), kNoQubit);
        for (QubitId q = 0; q < num_qubits; ++q) {
            if (partner[q] != kNoQubit)
                continue;
            const SiteId site = layout.siteOf(q);
            if (statics_at[site] > 0) {
                evicted.push_back(q);
            } else if (first_idle_at[site] != kNoQubit) {
                evicted.push_back(q);
            } else {
                first_idle_at[site] = q;
            }
        }
    }

    // ---- Occupancy bookkeeping before resolving open destinations. -------
    for (QubitId q = 0; q < num_qubits; ++q) {
        if (labeled[q] && label[q] != MoveLabel::Static)
            --planned[layout.siteOf(q)];
    }
    for (const QubitId q : evicted)
        --planned[layout.siteOf(q)];
    for (QubitId q = 0; q < num_qubits; ++q) {
        if (labeled[q] && label[q] == MoveLabel::Mobile &&
            target[q] != kInvalidSite) {
            ++planned[target[q]];
        }
    }

    // ---- Step 3: resolve undecided qubits, partners follow. --------------
    for (const QubitId undecided : undecided_order) {
        const SiteId site =
            findEmptyComputeSite(layout.siteOf(undecided), planned);
        planned[site] += 2;
        target[undecided] = site;
        const QubitId buddy = follower[undecided];
        PM_ASSERT(buddy != kNoQubit, "undecided qubit lost its partner");
        target[buddy] = site;
    }

    // Evicted idle qubits scatter after interaction sites are fixed.
    for (const QubitId q : evicted) {
        const SiteId site = findEmptyComputeSite(layout.siteOf(q), planned);
        planned[site] += 1;
        target[q] = site;
        ++plan.num_evicted;
    }

    // ---- Emit gate-related and eviction moves in decision order. ---------
    for (const auto &[q, l] : plan.labels) {
        if (l == MoveLabel::Static)
            continue;
        PM_ASSERT(target[q] != kInvalidSite, "mover without a destination");
        if (target[q] != layout.siteOf(q))
            plan.moves.push_back({q, layout.siteOf(q), target[q]});
    }
    for (const QubitId q : evicted)
        plan.moves.push_back({q, layout.siteOf(q), target[q]});

    // ---- Apply transactionally (all departures, then all arrivals). ------
    for (const auto &move : plan.moves)
        layout.unplace(move.qubit);
    for (const auto &move : plan.moves)
        layout.place(move.qubit, move.to);

    for (const auto &gate : stage.gates) {
        PM_ASSERT(layout.siteOf(gate.a) == layout.siteOf(gate.b),
                  "router failed to co-locate a gate pair");
        PM_ASSERT(layout.zoneOf(gate.a) == ZoneKind::Compute,
                  "gate pair must sit in the compute zone");
    }
    return plan;
}

} // namespace powermove
