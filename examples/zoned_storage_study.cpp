/**
 * @file
 * A deep dive into the zoned architecture: drives the Continuous Router
 * stage by stage on a QSim workload and tracks how many qubits each
 * stage keeps in storage, how many inter-zone moves the transition
 * needs, and what that buys in fidelity. Demonstrates the lower-level
 * library API (stage partition + router) below the one-call compiler.
 */

#include <cstdio>

#include "arch/layout.hpp"
#include "compiler/powermove.hpp"
#include "report/layout_vis.hpp"
#include "route/router.hpp"
#include "schedule/stage_order.hpp"
#include "schedule/stage_partition.hpp"
#include "workloads/qsim.hpp"

int
main()
{
    using namespace powermove;

    const std::size_t num_qubits = 16;
    const Circuit circuit = makeQsim(num_qubits, 0.3, 4, 99);
    const Machine machine(MachineConfig::forQubits(num_qubits));

    std::printf("QSim workload: %zu qubits, %zu CZ gates in %zu sequential "
                "blocks\n\n",
                num_qubits, circuit.numCzGates(), circuit.numBlocks());

    // Drive the router manually, stage by stage.
    Layout layout(machine, num_qubits);
    placeRowMajor(layout, ZoneKind::Storage);
    ContinuousRouter router(machine, {true, 7});

    std::printf("initial layout (everything parked in storage):\n%s\n",
                renderLayout(layout).c_str());

    std::printf("%-6s %-6s %-9s %-9s %-8s %-8s\n", "stage", "gates",
                "inStorage", "inCompute", "parked", "moves");
    std::size_t stage_index = 0;
    for (const auto *block : circuit.blocks()) {
        auto stages = orderStages(
            partitionIntoStages(*block, num_qubits), StageOrderOptions{});
        for (const auto &stage : stages) {
            const auto plan = router.planStageTransition(layout, stage);
            std::printf("%-6zu %-6zu %-9zu %-9zu %-8zu %-8zu\n", stage_index,
                        stage.gates.size(),
                        layout.countInZone(ZoneKind::Storage),
                        layout.countInZone(ZoneKind::Compute),
                        plan.num_parked, plan.moves.size());
            if (stage_index == 0) {
                std::printf("\nlayout at the first pulse ('@' = interacting "
                            "pair):\n%s\n",
                            renderLayout(layout).c_str());
            }
            ++stage_index;
        }
    }

    // And the headline effect, via the one-call API.
    const auto with =
        PowerMoveCompiler(machine, {true, 1}).compile(circuit);
    const auto without =
        PowerMoveCompiler(machine, {false, 1}).compile(circuit);
    std::printf("\nwith storage:    fidelity %.4f (excitation factor %.4f, "
                "%zu exposures)\n",
                with.metrics.fidelity(), with.metrics.excitation_factor,
                with.metrics.excitation_exposures);
    std::printf("without storage: fidelity %.4f (excitation factor %.4f, "
                "%zu exposures)\n",
                without.metrics.fidelity(),
                without.metrics.excitation_factor,
                without.metrics.excitation_exposures);
    return 0;
}
