/**
 * @file
 * Quickstart: build a small circuit, compile it for a zoned neutral-atom
 * machine, inspect the emitted instruction stream, and read the Eq. (1)
 * fidelity breakdown. This is the example from the README.
 */

#include <cstdio>

#include "compiler/powermove.hpp"
#include "isa/printer.hpp"
#include "isa/validator.hpp"

int
main()
{
    using namespace powermove;

    // A 6-qubit toy program: one commutable CZ block (three disjoint
    // gates), a mixer layer, then a second block that re-pairs qubits —
    // exactly the Fig. 3 motivating scenario from the paper.
    Circuit circuit(6, "quickstart");
    for (QubitId q = 0; q < 6; ++q)
        circuit.append(OneQGate{OneQKind::H, q, 0.0});
    circuit.append(CzGate{0, 1});
    circuit.append(CzGate{2, 3});
    circuit.append(CzGate{4, 5});
    for (QubitId q = 0; q < 6; ++q)
        circuit.append(OneQGate{OneQKind::Rx, q, 0.42});
    circuit.append(CzGate{1, 2});
    circuit.append(CzGate{3, 4});

    // The paper's default machine shape for 6 qubits: a 3x3 compute
    // grid, a 30 um gap, and a 3x6 storage grid below it.
    const Machine machine(MachineConfig::forQubits(circuit.numQubits()));

    // Compile with the full zoned pipeline (storage on, one AOD).
    const PowerMoveCompiler compiler(machine, CompilerOptions{});
    const CompileResult result = compiler.compile(circuit);

    // The validator replays the program and checks every hardware rule.
    validateAgainstCircuit(result.schedule, circuit);

    std::printf("%s\n", formatSchedule(result.schedule).c_str());
    std::printf("metrics: %s\n", result.metrics.toString().c_str());
    std::printf("compiled in %.1f us; %zu stages, %zu coll-moves\n",
                result.compile_time.micros(), result.num_stages,
                result.num_coll_moves);
    return 0;
}
