/**
 * @file
 * Multi-AOD scaling study (paper Sec. 6.2 / Fig. 7): sweeps the number
 * of independent AOD arrays and reports execution time, movement time
 * share, and fidelity for a decoherence-heavy QAOA workload.
 */

#include <cstdio>

#include "common/strings.hpp"
#include "compiler/powermove.hpp"
#include "report/table.hpp"
#include "workloads/qaoa.hpp"

int
main(int argc, char **argv)
{
    using namespace powermove;

    const std::size_t num_qubits =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 100;
    const Circuit circuit = makeQaoaRegular(num_qubits, 3, 1, 11);
    const Machine machine(MachineConfig::forQubits(num_qubits));

    std::printf("Multi-AOD scaling on QAOA-regular3-%zu (%zu CZ gates)\n\n",
                num_qubits, circuit.numCzGates());

    TextTable table({"#AOD", "Texe (us)", "Speedup", "Move batches",
                     "Fidelity", "Decoherence factor"});
    double base = 0.0;
    for (std::size_t aods = 1; aods <= 8; aods *= 2) {
        const PowerMoveCompiler compiler(machine, {true, aods});
        const auto result = compiler.compile(circuit);
        const double texe = result.metrics.exec_time.micros();
        if (aods == 1)
            base = texe;
        table.addRow({std::to_string(aods), formatGeneral(texe, 6),
                      formatRatio(base / texe),
                      std::to_string(result.schedule.numMoveBatches()),
                      formatFidelity(result.metrics.fidelity()),
                      formatFidelity(result.metrics.decoherence_factor)});
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\nTransfers (and hence the transfer-error factor) are "
                "unchanged; only wall time and decoherence shrink.\n");
    return 0;
}
