/**
 * @file
 * Exports a compiled schedule as JSON (for external visualizers) and
 * prints the timeline trace: where the wall-clock goes, how long qubits
 * dwell in storage, and how far atoms travel in total.
 *
 * Usage: schedule_export [benchmark-name] [out.json]
 */

#include <cstdio>
#include <fstream>

#include "compiler/powermove.hpp"
#include "fidelity/trace.hpp"
#include "isa/json.hpp"
#include "workloads/suite.hpp"

int
main(int argc, char **argv)
{
    using namespace powermove;

    const std::string name = argc > 1 ? argv[1] : "QSIM-rand-0.3-10";
    const auto spec = findBenchmark(name);
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    const auto result = PowerMoveCompiler(machine).compile(circuit);
    const auto trace = traceSchedule(result.schedule);

    std::printf("benchmark %s: %zu instructions, makespan %.1f us\n",
                name.c_str(), trace.instructions.size(),
                trace.total.micros());
    std::printf("  movement share:      %.1f%% (%.1f us across %zu "
                "batches, max %zu qubits per batch)\n",
                100.0 * trace.movementShare(), trace.moving.micros(),
                result.schedule.numMoveBatches(), trace.max_batch_moves);
    std::printf("  storage utilization: %.1f%% of qubit-time\n",
                100.0 * trace.storageUtilization());
    std::printf("  total move distance: %.1f um over %zu relocations\n",
                trace.total_move_distance.microns(),
                result.schedule.numQubitMoves());

    const std::string json = scheduleToJson(result.schedule);
    if (argc > 2) {
        std::ofstream out(argv[2]);
        out << json;
        std::printf("wrote %zu bytes of JSON to %s\n", json.size(), argv[2]);
    } else {
        std::printf("\nfirst 400 bytes of the JSON export:\n%.400s...\n",
                    json.c_str());
    }
    return 0;
}
