/**
 * @file
 * Domain example: compiling QAOA for MaxCut on a random 3-regular graph
 * — the workload class the paper's introduction motivates. Compares the
 * Enola baseline against PowerMove with and without the storage zone
 * and prints where each error factor goes.
 */

#include <cstdio>

#include "common/graph.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "compiler/powermove.hpp"
#include "enola/enola.hpp"
#include "report/table.hpp"
#include "workloads/qaoa.hpp"

int
main(int argc, char **argv)
{
    using namespace powermove;

    const std::size_t num_qubits =
        argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 40;
    const std::size_t rounds =
        argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 1;

    // MaxCut instance: a random 3-regular graph; each edge becomes one
    // ZZ interaction per QAOA round.
    Rng rng(2026);
    const Graph problem = randomRegularGraph(num_qubits, 3, rng);
    const Circuit circuit =
        makeQaoaFromGraph(problem, rounds, "maxcut-qaoa");
    std::printf("MaxCut QAOA: %zu qubits, %zu edges, %zu round(s), %zu CZ "
                "gates\n\n",
                num_qubits, problem.numEdges(), rounds,
                circuit.numCzGates());

    const Machine machine(MachineConfig::forQubits(num_qubits));

    TextTable table({"Compiler", "Fidelity", "2Q", "Excitation", "Transfer",
                     "Decoherence", "Texe (us)"});
    const auto report = [&table](const char *name,
                                 const CompileResult &result) {
        const auto &m = result.metrics;
        table.addRow({name, formatFidelity(m.fidelity()),
                      formatFidelity(m.two_q_factor),
                      formatFidelity(m.excitation_factor),
                      formatFidelity(m.transfer_factor),
                      formatFidelity(m.decoherence_factor),
                      formatGeneral(m.exec_time.micros(), 6)});
    };

    report("Enola", EnolaCompiler(machine).compile(circuit));
    report("PowerMove (no storage)",
           PowerMoveCompiler(machine, {false, 1}).compile(circuit));
    report("PowerMove (zoned)",
           PowerMoveCompiler(machine, {true, 1}).compile(circuit));

    std::printf("%s", table.toString().c_str());
    std::printf("\nThe zoned pipeline removes the excitation factor "
                "entirely (idle qubits sit in storage during every "
                "Rydberg pulse).\n");
    return 0;
}
