/**
 * @file
 * Command-line QASM compiler: loads an OpenQASM 2.0 file, lowers it to
 * the {1Q, CZ} basis, compiles it for the paper's default machine
 * shape, validates the result, and reports the metrics.
 *
 * Usage: qasm_compile [file.qasm] [--no-storage] [--aods N] [--fuse]
 * Without a file argument it compiles data/ghz.qasm relative to the
 * repository root (falling back to a built-in GHZ program).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "circuit/fuse.hpp"
#include "compiler/powermove.hpp"
#include "isa/validator.hpp"
#include "qasm/converter.hpp"

namespace {

const char *kFallbackGhz = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[8];
creg c[8];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];
cx q[4],q[5];
cx q[5],q[6];
cx q[6],q[7];
measure q -> c;
)";

} // namespace

int
main(int argc, char **argv)
{
    using namespace powermove;

    std::string path;
    CompilerOptions options;
    bool fuse = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-storage") == 0) {
            options.use_storage = false;
        } else if (std::strcmp(argv[i], "--aods") == 0 && i + 1 < argc) {
            options.num_aods = static_cast<std::size_t>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--fuse") == 0) {
            fuse = true;
        } else {
            path = argv[i];
        }
    }

    qasm::ConvertResult loaded = [&] {
        if (!path.empty())
            return qasm::loadQasmFile(path);
        if (std::ifstream probe("data/ghz.qasm"); probe.good())
            return qasm::loadQasmFile("data/ghz.qasm");
        std::printf("(no input file; compiling the built-in GHZ program)\n");
        return qasm::loadQasm(kFallbackGhz, "ghz-8");
    }();

    Circuit circuit = loaded.circuit;
    std::printf("loaded '%s': %zu qubits, %zu 1Q gates, %zu CZ gates in %zu "
                "blocks; %zu measured qubits\n",
                circuit.name().c_str(), circuit.numQubits(),
                circuit.numOneQGates(), circuit.numCzGates(),
                circuit.numBlocks(), loaded.measured.size());
    if (fuse) {
        circuit = fuseCommutableBlocks(circuit);
        std::printf("after block fusion: %zu blocks\n", circuit.numBlocks());
    }

    const Machine machine(MachineConfig::forQubits(circuit.numQubits()));
    const PowerMoveCompiler compiler(machine, options);
    const CompileResult result = compiler.compile(circuit);
    validateAgainstCircuit(result.schedule, circuit);

    std::printf("machine: compute %s um^2, storage %s um^2, %zu AOD(s), "
                "storage %s\n",
                machine.config().computeZoneExtent().c_str(),
                machine.config().storageZoneExtent().c_str(),
                options.num_aods, options.use_storage ? "on" : "off");
    std::printf("schedule: %zu stages, %zu coll-moves, %zu transfers\n",
                result.num_stages, result.num_coll_moves,
                result.schedule.numTransfers());
    std::printf("metrics: %s\n", result.metrics.toString().c_str());
    std::printf("compile time: %.1f us\n", result.compile_time.micros());
    return 0;
}
