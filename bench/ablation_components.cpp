/**
 * @file
 * Component ablation for PowerMove's design choices (DESIGN.md):
 *
 *  - Stage Scheduler (Sec. 4.2): zone-aware stage order on/off, plus an
 *    alpha sweep of the asymmetric transition cost;
 *  - Coll-Move Scheduler (Sec. 6.1): storage-dwell ordering on/off;
 *  - Enola upgrades: MIS movement batching and annealed placement, to
 *    separate how much of the gap is the revert scheme itself.
 */

#include <cstdio>
#include <vector>

#include "common/strings.hpp"
#include "compiler/powermove.hpp"
#include "enola/enola.hpp"
#include "report/table.hpp"
#include "workloads/suite.hpp"

int
main()
{
    using namespace powermove;

    const std::vector<std::string> benchmarks = {
        "QAOA-regular3-50", "QSIM-rand-0.3-20", "BV-50", "QFT-18",
    };

    std::printf("=== Component ablation ===\n\n");

    TextTable table({"Benchmark", "Variant", "Fidelity", "Texe (us)"});
    for (const auto &name : benchmarks) {
        const auto spec = findBenchmark(name);
        const Machine machine(spec.machine_config);
        const Circuit circuit = spec.build();

        const auto run = [&](const char *variant, CompilerOptions options) {
            const auto result =
                PowerMoveCompiler(machine, options).compile(circuit);
            table.addRow({name, variant,
                          formatFidelity(result.metrics.fidelity()),
                          formatGeneral(result.metrics.exec_time.micros(),
                                        6)});
        };

        run("full", {});
        CompilerOptions no_stage_order;
        no_stage_order.stage_order = StageOrderStrategy::AsPartitioned;
        run("no stage scheduler", no_stage_order);
        CompilerOptions no_cm_order;
        no_cm_order.coll_move_order = CollMoveOrderStrategy::AsGrouped;
        run("no coll-move order", no_cm_order);
        for (const double alpha : {0.1, 1.0}) {
            CompilerOptions options;
            options.stage_order_alpha = alpha;
            run(alpha < 0.5 ? "alpha = 0.1" : "alpha = 1.0", options);
        }

        const auto run_enola = [&](const char *variant,
                                   EnolaOptions options) {
            const auto result =
                EnolaCompiler(machine, options).compile(circuit);
            table.addRow({name, variant,
                          formatFidelity(result.metrics.fidelity()),
                          formatGeneral(result.metrics.exec_time.micros(),
                                        6)});
        };
        run_enola("enola (paper baseline)", {});
        EnolaOptions upgraded;
        upgraded.movement = EnolaMovement::Mis;
        run_enola("enola + MIS batching", upgraded);
        upgraded.anneal_placement = true;
        run_enola("enola + MIS + annealing", upgraded);
        EnolaOptions with_storage;
        with_storage.use_storage = true;
        run_enola("enola + storage (Fig 3e/f)", with_storage);
        CompilerOptions balanced;
        balanced.num_aods = 4;
        run("full, 4 AODs (in-order)", balanced);
        balanced.aod_batch_policy = AodBatchPolicy::DurationBalanced;
        run("full, 4 AODs (balanced)", balanced);
    }
    std::printf("%s", table.toString().c_str());
    return 0;
}
