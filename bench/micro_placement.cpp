/**
 * @file
 * Placement-strategy comparison and the CI benchmark-regression gate.
 *
 * Compiles every Table 2 benchmark — plus depth-2 VQE ansatze, the
 * canonical multi-block workload (see micro_reuse.cpp) — under every
 * PlacementStrategy crossed with both RoutingStrategy values, validates
 * every schedule, and prints per-entry planned moves and total move
 * distance. The summary reports how often routing-aware placement
 * (src/placement/) beats usage-frequency on move distance, the claim
 * the Stade et al. extension makes.
 *
 * Flags:
 *   --smoke                 one small entry per family (CI mode)
 *   --json PATH             machine-readable summary (BENCH_ci.json)
 *   --baseline PATH         gate planned moves against a baseline map;
 *                           exits 1 on any regression beyond tolerance
 *   --tolerance PCT         regression tolerance in percent (default 5)
 *   --write-baseline PATH   emit the baseline map for the current tree
 *
 * Planned moves are deterministic for a fixed (circuit, machine,
 * options) triple — the compiler's RNG is seeded, never wall-clock —
 * so the baseline gate is exact; only the timing columns are noisy
 * (min-of-N on steady_clock, bench/harness.hpp).
 *
 * Standalone main (no Google Benchmark dependency); exits nonzero if
 * any schedule fails hardware validation or the baseline gate trips.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "compiler/powermove.hpp"
#include "harness.hpp"
#include "isa/validator.hpp"
#include "report/table.hpp"
#include "workloads/suite.hpp"
#include "workloads/vqe.hpp"

namespace {

using namespace powermove;

struct Entry
{
    std::string name;
    std::string family;
    bool table2 = true;
    MachineConfig machine_config;
    Circuit circuit;
};

std::vector<Entry>
makeEntries(bool smoke)
{
    std::vector<Entry> entries;
    std::map<std::string, int> seen;
    for (const BenchmarkSpec &spec : table2Suite()) {
        if (smoke && seen[spec.family]++ > 0)
            continue;
        entries.push_back(
            {spec.name, spec.family, true, spec.machine_config, spec.build()});
    }
    // Depth-2 VQE: the multi-block workload where placement and reuse
    // routing interact (Table 2's VQE rows are single-block chains).
    for (const std::size_t n : smoke ? std::vector<std::size_t>{30}
                                     : std::vector<std::size_t>{30, 50}) {
        entries.push_back({"VQE-depth2-" + std::to_string(n), "VQE-depth2",
                           false, MachineConfig::forQubits(n),
                           makeVqe(n, 2, VqeEntanglement::Linear, 0xF00D + n)});
    }
    return entries;
}

constexpr PlacementStrategy kPlacements[] = {
    PlacementStrategy::RowMajor,
    PlacementStrategy::ColumnInterleaved,
    PlacementStrategy::UsageFrequency,
    PlacementStrategy::RoutingAware,
};

constexpr RoutingStrategy kRoutings[] = {
    RoutingStrategy::Continuous,
    RoutingStrategy::Reuse,
};

struct Run
{
    std::size_t moves = 0;
    double distance_um = 0.0;
    double compile_us = 0.0;
};

/** Sum of per-qubit move distances over every emitted move batch. */
double
totalMoveDistanceMicrons(const Machine &machine, const MachineSchedule &schedule)
{
    double total = 0.0;
    for (const Instruction &instruction : schedule.instructions()) {
        const auto *op = std::get_if<MoveBatchOp>(&instruction);
        if (op == nullptr)
            continue;
        for (const CollMove &group : op->batch.groups) {
            for (const QubitMove &move : group.moves)
                total += machine.distanceBetween(move.from, move.to).microns();
        }
    }
    return total;
}

Run
compileOne(const Machine &machine, const Circuit &circuit,
           RoutingStrategy routing, PlacementStrategy placement)
{
    CompilerOptions options = bench::timingOptions(true, 1);
    options.routing = routing;
    options.placement = placement;
    const PowerMoveCompiler compiler(machine, options);
    const CompileResult result = compiler.compile(circuit);
    validateAgainstCircuit(result.schedule, circuit);

    Run run;
    run.moves = result.schedule.numQubitMoves();
    run.distance_um = totalMoveDistanceMicrons(machine, result.schedule);
    // Timing is informational only (the gate is on planned moves):
    // min-of-N wall clock over whole repeat compiles, on the monotonic
    // clock, so the JSON trend stays readable on shared runners.
    run.compile_us =
        bench::minOfNWallMicros([&] { compiler.compile(circuit); });
    return run;
}

using bench::fmt;

/** "name|routing|placement" — the baseline and JSON entry key. */
std::string
entryKey(const std::string &name, RoutingStrategy routing,
         PlacementStrategy placement)
{
    return name + "|" + std::string(routingStrategyName(routing)) + "|" +
           std::string(placementStrategyName(placement));
}

/**
 * Parses a flat {"key": integer, ...} JSON map as written by
 * --write-baseline. Anything that is not a quoted key followed by an
 * integer is skipped, so the parser tolerates whitespace and braces but
 * is NOT a general JSON reader.
 */
bool
loadBaseline(const std::string &path, std::map<std::string, long long> &out)
{
    std::ifstream file(path);
    if (!file)
        return false;
    std::stringstream buffer;
    buffer << file.rdbuf();
    const std::string text = buffer.str();

    std::size_t i = 0;
    while (i < text.size()) {
        if (text[i] != '"') {
            ++i;
            continue;
        }
        const std::size_t key_end = text.find('"', i + 1);
        if (key_end == std::string::npos)
            break;
        const std::string key = text.substr(i + 1, key_end - i - 1);
        i = key_end + 1;
        while (i < text.size() &&
               (std::isspace(static_cast<unsigned char>(text[i])) ||
                text[i] == ':'))
            ++i;
        char *end = nullptr;
        const long long value = std::strtoll(text.c_str() + i, &end, 10);
        if (end != text.c_str() + i) {
            out[key] = value;
            i = static_cast<std::size_t>(end - text.c_str());
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path;
    std::string baseline_path;
    std::string write_baseline_path;
    double tolerance_pct = 5.0;
    for (int i = 1; i < argc; ++i) {
        const auto value = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "micro_placement: %s needs a value\n",
                             flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json") == 0)
            json_path = value("--json");
        else if (std::strcmp(argv[i], "--baseline") == 0)
            baseline_path = value("--baseline");
        else if (std::strcmp(argv[i], "--write-baseline") == 0)
            write_baseline_path = value("--write-baseline");
        else if (std::strcmp(argv[i], "--tolerance") == 0)
            tolerance_pct = std::atof(value("--tolerance"));
        else {
            std::fprintf(stderr, "micro_placement: unknown flag '%s'\n",
                         argv[i]);
            return 2;
        }
    }

    std::printf("=== Placement strategies x routing strategies%s ===\n\n",
                smoke ? " (smoke subset)" : "");

    struct Record
    {
        std::string key;
        std::size_t moves;
        double distance_um;
        double compile_us;
    };
    std::vector<Record> records;
    int failures = 0;

    // Per-routing tallies of the routing-aware vs usage-frequency claim,
    // Table 2 entries only (the acceptance bar the README quotes).
    std::map<RoutingStrategy, std::pair<int, int>> dist_wins; // wins, total
    std::map<RoutingStrategy, std::pair<int, int>> move_wins;

    const std::vector<Entry> entries = makeEntries(smoke);
    for (const RoutingStrategy routing : kRoutings) {
        TextTable table({"Benchmark", "RM moves", "CI moves", "UF moves",
                         "RA moves", "UF dist(um)", "RA dist(um)",
                         "RA vs UF dist%"});
        for (const Entry &entry : entries) {
            const Machine machine(entry.machine_config);
            std::map<PlacementStrategy, Run> runs;
            try {
                for (const PlacementStrategy placement : kPlacements) {
                    runs[placement] =
                        compileOne(machine, entry.circuit, routing, placement);
                    const Run &run = runs[placement];
                    records.push_back({entryKey(entry.name, routing,
                                                placement),
                                       run.moves, run.distance_um,
                                       run.compile_us});
                }
            } catch (const std::exception &e) {
                std::fprintf(stderr, "%s/%s: FAILED: %s\n",
                             entry.name.c_str(),
                             std::string(routingStrategyName(routing)).c_str(),
                             e.what());
                ++failures;
                continue;
            }
            const Run &uf = runs[PlacementStrategy::UsageFrequency];
            const Run &ra = runs[PlacementStrategy::RoutingAware];
            const double dist_delta =
                uf.distance_um == 0.0
                    ? 0.0
                    : 100.0 * (ra.distance_um - uf.distance_um) /
                          uf.distance_um;
            table.addRow(
                {entry.name,
                 std::to_string(runs[PlacementStrategy::RowMajor].moves),
                 std::to_string(
                     runs[PlacementStrategy::ColumnInterleaved].moves),
                 std::to_string(uf.moves), std::to_string(ra.moves),
                 fmt(uf.distance_um, "%.0f"), fmt(ra.distance_um, "%.0f"),
                 fmt(dist_delta, "%+.1f")});
            if (entry.table2) {
                auto &[dw, dt] = dist_wins[routing];
                dw += ra.distance_um < uf.distance_um ? 1 : 0;
                ++dt;
                auto &[mw, mt] = move_wins[routing];
                mw += ra.moves < uf.moves ? 1 : 0;
                ++mt;
            }
        }
        std::printf("--- routing=%s ---\n%s\n",
                    std::string(routingStrategyName(routing)).c_str(),
                    table.toString().c_str());
    }

    std::printf("--- routing-aware vs usage-frequency (Table 2 entries) ---\n");
    for (const RoutingStrategy routing : kRoutings) {
        const auto [dw, dt] = dist_wins[routing];
        const auto [mw, mt] = move_wins[routing];
        std::printf("%-12s move distance reduced on %d/%d, planned moves "
                    "reduced on %d/%d\n",
                    std::string(routingStrategyName(routing)).c_str(), dw, dt,
                    mw, mt);
    }

    if (!write_baseline_path.empty()) {
        std::ofstream out(write_baseline_path);
        if (!out) {
            std::fprintf(stderr, "micro_placement: cannot write '%s'\n",
                         write_baseline_path.c_str());
            return 2;
        }
        out << "{\n";
        for (std::size_t i = 0; i < records.size(); ++i) {
            out << "  \"" << records[i].key << "\": " << records[i].moves
                << (i + 1 < records.size() ? ",\n" : "\n");
        }
        out << "}\n";
        std::printf("\nbaseline written: %s (%zu entries)\n",
                    write_baseline_path.c_str(), records.size());
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "micro_placement: cannot write '%s'\n",
                         json_path.c_str());
            return 2;
        }
        out << "{\n  \"schema\": 1,\n  \"smoke\": " << (smoke ? "true" : "false")
            << ",\n  \"entries\": [\n";
        for (std::size_t i = 0; i < records.size(); ++i) {
            const Record &r = records[i];
            out << "    {\"key\": \"" << r.key << "\", \"moves\": " << r.moves
                << ", \"distance_um\": " << fmt(r.distance_um, "%.1f")
                << ", \"compile_us\": " << fmt(r.compile_us, "%.1f") << "}"
                << (i + 1 < records.size() ? ",\n" : "\n");
        }
        out << "  ]\n}\n";
        std::printf("\nsummary written: %s\n", json_path.c_str());
    }

    int regressions = 0;
    if (!baseline_path.empty()) {
        std::map<std::string, long long> baseline;
        if (!loadBaseline(baseline_path, baseline)) {
            std::fprintf(stderr, "micro_placement: cannot read baseline '%s'\n",
                         baseline_path.c_str());
            return 2;
        }
        std::size_t checked = 0;
        std::size_t unmatched = 0;
        for (const Record &r : records) {
            const auto it = baseline.find(r.key);
            if (it == baseline.end()) {
                // A measured entry with no baseline is *not* gated — say
                // so loudly, or a new benchmark/strategy ships ungated
                // until someone regenerates baselines.json.
                std::fprintf(stderr,
                             "micro_placement: no baseline for '%s' — "
                             "entry not gated (regenerate with "
                             "--write-baseline)\n",
                             r.key.c_str());
                ++unmatched;
                continue;
            }
            ++checked;
            const double limit =
                static_cast<double>(it->second) * (1.0 + tolerance_pct / 100.0);
            if (static_cast<double>(r.moves) > limit) {
                std::fprintf(stderr,
                             "REGRESSION %s: %zu planned moves vs baseline "
                             "%lld (+%.1f%% > %.1f%% tolerance)\n",
                             r.key.c_str(), r.moves, it->second,
                             100.0 * (static_cast<double>(r.moves) -
                                      static_cast<double>(it->second)) /
                                 static_cast<double>(it->second),
                             tolerance_pct);
                ++regressions;
            }
        }
        if (checked == 0) {
            std::fprintf(stderr,
                         "micro_placement: baseline '%s' matched no measured "
                         "entry — stale baseline?\n",
                         baseline_path.c_str());
            return 2;
        }
        std::printf("\nbaseline gate: %zu entries checked against %s "
                    "(%zu measured without a baseline), "
                    "%d regression(s) beyond %.1f%%\n",
                    checked, baseline_path.c_str(), unmatched, regressions,
                    tolerance_pct);
    }

    if (failures > 0) {
        std::fprintf(stderr, "%d configuration(s) failed validation\n",
                     failures);
        return 1;
    }
    return regressions > 0 ? 1 : 0;
}
