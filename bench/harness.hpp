/**
 * @file
 * Shared helpers for the paper-reproduction benchmark harnesses.
 */

#ifndef POWERMOVE_BENCH_HARNESS_HPP
#define POWERMOVE_BENCH_HARNESS_HPP

#include <string>

#include "compiler/powermove.hpp"
#include "enola/enola.hpp"
#include "workloads/suite.hpp"

namespace powermove::bench {

/** The three compiler configurations Table 3 compares. */
struct TrioResult
{
    CompileResult enola;
    CompileResult non_storage;
    CompileResult with_storage;
};

/**
 * Compiles repeatedly and keeps the best wall-clock compile time: at
 * sub-millisecond scales single-shot timings are dominated by cold
 * caches and first-touch page faults.
 */
template <typename CompileFn>
CompileResult
compileBestOf(CompileFn &&compile, int repeats = 3)
{
    CompileResult best = compile();
    for (int i = 1; i < repeats; ++i) {
        CompileResult next = compile();
        next.compile_time = std::min(next.compile_time, best.compile_time);
        best = std::move(next);
    }
    return best;
}

/**
 * PowerMove options for compile-time measurement: pass profiling off so
 * the T_comp columns carry no per-stage clock-read overhead (profiling
 * never changes the schedule, only the timing).
 */
inline CompilerOptions
timingOptions(bool use_storage, std::size_t num_aods)
{
    CompilerOptions options;
    options.use_storage = use_storage;
    options.num_aods = num_aods;
    options.profile_passes = false;
    return options;
}

/** Runs Enola, PowerMove w/o storage, and PowerMove w/ storage. */
inline TrioResult
runTrio(const BenchmarkSpec &spec, std::size_t num_aods = 1)
{
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();
    EnolaOptions enola_options;
    enola_options.num_aods = 1; // the paper evaluates Enola with one AOD
    const EnolaCompiler enola(machine, enola_options);
    const PowerMoveCompiler without(machine, timingOptions(false, num_aods));
    const PowerMoveCompiler with(machine, timingOptions(true, num_aods));
    return TrioResult{
        compileBestOf([&] { return enola.compile(circuit); }),
        compileBestOf([&] { return without.compile(circuit); }),
        compileBestOf([&] { return with.compile(circuit); }),
    };
}

/** Compile-time of the paper's "Our" column: mean of both scenarios. */
inline double
ourCompileMicros(const TrioResult &trio)
{
    return 0.5 * (trio.non_storage.compile_time.micros() +
                  trio.with_storage.compile_time.micros());
}

} // namespace powermove::bench

#endif // POWERMOVE_BENCH_HARNESS_HPP
