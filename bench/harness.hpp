/**
 * @file
 * Shared helpers for the paper-reproduction benchmark harnesses.
 */

#ifndef POWERMOVE_BENCH_HARNESS_HPP
#define POWERMOVE_BENCH_HARNESS_HPP

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "compiler/powermove.hpp"
#include "enola/enola.hpp"
#include "obs/metrics.hpp"
#include "workloads/suite.hpp"

namespace powermove::bench {

/** The three compiler configurations Table 3 compares. */
struct TrioResult
{
    CompileResult enola;
    CompileResult non_storage;
    CompileResult with_storage;
};

/**
 * Compiles repeatedly and keeps the fastest run whole — compile time,
 * schedule, and pass profiles from the same best run: at
 * sub-millisecond scales single-shot timings are dominated by cold
 * caches and first-touch page faults, and mixing one run's profiles
 * with another's total would misattribute the difference. Every
 * non-timing field is deterministic across the repeats, so only the
 * timings actually vary.
 */
template <typename CompileFn>
CompileResult
compileBestOf(CompileFn &&compile, int repeats = 3)
{
    CompileResult best = compile();
    for (int i = 1; i < repeats; ++i) {
        CompileResult next = compile();
        if (next.compile_time.micros() < best.compile_time.micros())
            best = std::move(next);
    }
    return best;
}

/**
 * Min-of-N wall clock of fn(), in microseconds, on steady_clock — the
 * monotonic clock. Shared CI runners both adjust the system clock (so
 * non-monotonic clocks can jump mid-measurement) and preempt noisily
 * (so a mean smears scheduler hiccups into the number); the minimum of
 * repeated monotonic timings is the stable statistic the regression
 * gate trends on.
 */
template <typename Fn>
double
minOfNWallMicros(Fn &&fn, int repeats = 3)
{
    double best = 0.0;
    for (int i = 0; i < repeats; ++i) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const auto stop = std::chrono::steady_clock::now();
        const double micros =
            std::chrono::duration<double, std::micro>(stop - start).count();
        if (i == 0 || micros < best)
            best = micros;
    }
    return best;
}

/** Wall-clock distribution of repeated runs, in microseconds. */
struct WallStats
{
    /** The regression-gate statistic (see minOfNWallMicros). */
    double min_us = 0.0;
    double p50_us = 0.0;
    double p95_us = 0.0;
    double p99_us = 0.0;
    /** Raw per-run timings, in run order. */
    std::vector<double> samples_us;
};

/**
 * min + p50/p95/p99 of @p samples_us. The percentiles use
 * obs::percentileOfSorted — the same fractional-rank
 * linear-interpolation quantile the live latency histograms
 * (obs::Histogram::percentile) approximate — so a bench report and a
 * metrics export answer "p95" identically. min stays the gate
 * statistic; the percentiles describe the noise around it. Exposed
 * separately from wallStatsMicros for harnesses that collect samples
 * themselves (e.g. interleaving several configurations per round so
 * machine drift hits all of them equally).
 */
inline WallStats
wallStatsFromSamples(std::vector<double> samples_us)
{
    WallStats stats;
    stats.samples_us = std::move(samples_us);
    std::vector<double> sorted = stats.samples_us;
    std::sort(sorted.begin(), sorted.end());
    stats.min_us = sorted.empty() ? 0.0 : sorted.front();
    stats.p50_us = obs::percentileOfSorted(sorted, 0.50);
    stats.p95_us = obs::percentileOfSorted(sorted, 0.95);
    stats.p99_us = obs::percentileOfSorted(sorted, 0.99);
    return stats;
}

/** One timed call of fn(), in wall microseconds on steady_clock. */
template <typename Fn>
double
onceWallMicros(Fn &&fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(stop - start).count();
}

/** Times fn() @p repeats times; see wallStatsFromSamples. */
template <typename Fn>
WallStats
wallStatsMicros(Fn &&fn, int repeats = 3)
{
    std::vector<double> samples_us;
    samples_us.reserve(static_cast<std::size_t>(repeats));
    for (int i = 0; i < repeats; ++i)
        samples_us.push_back(onceWallMicros(fn));
    return wallStatsFromSamples(std::move(samples_us));
}

/** snprintf into a std::string, e.g. fmt(1.5, "%.1f") == "1.5". */
inline std::string
fmt(double value, const char *spec)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), spec, value);
    return buffer;
}

/**
 * PowerMove options for compile-time measurement: pass profiling off so
 * the T_comp columns carry no per-stage clock-read overhead (profiling
 * never changes the schedule, only the timing).
 */
inline CompilerOptions
timingOptions(bool use_storage, std::size_t num_aods)
{
    CompilerOptions options;
    options.use_storage = use_storage;
    options.num_aods = num_aods;
    options.profile_passes = false;
    return options;
}

/** Runs Enola, PowerMove w/o storage, and PowerMove w/ storage. */
inline TrioResult
runTrio(const BenchmarkSpec &spec, std::size_t num_aods = 1)
{
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();
    EnolaOptions enola_options;
    enola_options.num_aods = 1; // the paper evaluates Enola with one AOD
    const EnolaCompiler enola(machine, enola_options);
    const PowerMoveCompiler without(machine, timingOptions(false, num_aods));
    const PowerMoveCompiler with(machine, timingOptions(true, num_aods));
    return TrioResult{
        compileBestOf([&] { return enola.compile(circuit); }),
        compileBestOf([&] { return without.compile(circuit); }),
        compileBestOf([&] { return with.compile(circuit); }),
    };
}

/** Compile-time of the paper's "Our" column: mean of both scenarios. */
inline double
ourCompileMicros(const TrioResult &trio)
{
    return 0.5 * (trio.non_storage.compile_time.micros() +
                  trio.with_storage.compile_time.micros());
}

} // namespace powermove::bench

#endif // POWERMOVE_BENCH_HARNESS_HPP
