/**
 * @file
 * Reproduces paper Fig. 6: the decomposition of output fidelity into
 * two-qubit-gate, excitation, transfer, and decoherence factors as the
 * qubit count scales, for Enola and both PowerMove configurations, over
 * the five benchmark families the figure plots.
 */

#include <cstdio>
#include <vector>

#include "common/strings.hpp"
#include "harness.hpp"
#include "report/table.hpp"

namespace {

struct Sweep
{
    const char *family;
    std::vector<std::size_t> sizes;
};

const std::vector<Sweep> kSweeps = {
    {"QAOA-regular3", {20, 40, 60, 80, 100}},
    {"QSIM-rand-0.3", {10, 20, 40, 60, 80}},
    {"QFT", {10, 20, 30, 40, 50, 60}},
    {"VQE", {10, 20, 30, 40, 50}},
    {"BV", {20, 30, 40, 50, 60, 70}},
};

void
addRows(powermove::TextTable &table, const char *family, std::size_t n,
        const char *compiler, const powermove::FidelityBreakdown &metrics)
{
    using powermove::formatFidelity;
    table.addRow({family, std::to_string(n), compiler,
                  formatFidelity(metrics.two_q_factor),
                  formatFidelity(metrics.excitation_factor),
                  formatFidelity(metrics.transfer_factor),
                  formatFidelity(metrics.decoherence_factor),
                  formatFidelity(metrics.fidelity())});
}

} // namespace

int
main()
{
    using namespace powermove;
    using namespace powermove::bench;

    std::printf("=== Fig. 6: fidelity factor ablation vs #qubits ===\n");
    std::printf("(series: two-qubit gate, excitation, transfer, decoherence "
                "factors; with-storage excitation is identically 1)\n\n");

    for (const auto &sweep : kSweeps) {
        TextTable table({"Family", "n", "Compiler", "TwoQubit", "Excitation",
                         "Transfer", "Decoherence", "Total"});
        for (const std::size_t n : sweep.sizes) {
            const auto spec = makeFamilyInstance(sweep.family, n);
            const auto trio = runTrio(spec);
            addRows(table, sweep.family, n, "Enola", trio.enola.metrics);
            addRows(table, sweep.family, n, "Ours-ns",
                    trio.non_storage.metrics);
            addRows(table, sweep.family, n, "Ours-ws",
                    trio.with_storage.metrics);
        }
        std::printf("--- %s ---\n%s\n", sweep.family,
                    table.toString().c_str());
    }
    return 0;
}
