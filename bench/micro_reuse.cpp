/**
 * @file
 * Routing-strategy comparison: continuous vs reuse-aware (src/reuse/).
 *
 * Compiles every Table 2 benchmark — plus depth-2 VQE ansatze, the
 * canonical multi-block workload where atom reuse pays between
 * entanglement layers (the Table 2 VQE rows are single-layer chains
 * whose idle qubits never enter the compute zone, so no routing policy
 * can save a move there) — under both RoutingStrategy values, validates
 * every schedule against its source circuit, and prints the per-row and
 * per-family comparison: planned moves, transfers, qubits held, and the
 * fidelity ratio.
 *
 * `--smoke` compiles one small entry per family (CI mode: fast, but
 * still validating both strategies and the comparison machinery).
 * Standalone main (no Google Benchmark dependency); exits nonzero if
 * any schedule fails hardware validation.
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "compiler/powermove.hpp"
#include "isa/validator.hpp"
#include "report/table.hpp"
#include "workloads/suite.hpp"
#include "workloads/vqe.hpp"

namespace {

using namespace powermove;

struct Entry
{
    std::string name;
    std::string family;
    MachineConfig machine_config;
    Circuit circuit;
};

std::vector<Entry>
makeEntries(bool smoke)
{
    std::vector<Entry> entries;
    std::map<std::string, int> seen;
    for (const BenchmarkSpec &spec : table2Suite()) {
        if (smoke && seen[spec.family]++ > 0)
            continue;
        entries.push_back(
            {spec.name, spec.family, spec.machine_config, spec.build()});
    }
    // Multi-layer VQE: two entanglement layers -> two CZ blocks, so the
    // chain-end qubits idle in the compute zone between layers.
    for (const std::size_t n : smoke ? std::vector<std::size_t>{30}
                                     : std::vector<std::size_t>{30, 50}) {
        entries.push_back({"VQE-depth2-" + std::to_string(n), "VQE-depth2",
                           MachineConfig::forQubits(n),
                           makeVqe(n, 2, VqeEntanglement::Linear, 0xF00D + n)});
    }
    return entries;
}

struct Run
{
    std::size_t moves = 0;
    std::size_t transfers = 0;
    std::uint64_t held = 0;
    double fidelity = 0.0;
    double compile_us = 0.0;
};

Run
compileOne(const Machine &machine, const Circuit &circuit,
           RoutingStrategy routing)
{
    CompilerOptions options;
    options.routing = routing;
    const auto result = PowerMoveCompiler(machine, options).compile(circuit);
    validateAgainstCircuit(result.schedule, circuit);

    Run run;
    run.moves = result.schedule.numQubitMoves();
    run.transfers = result.schedule.numTransfers();
    run.fidelity = result.metrics.fidelity();
    run.compile_us = result.compile_time.micros();
    for (const PassProfile &profile : result.pass_profiles) {
        if (profile.pass != PassId::Routing)
            continue;
        for (const PassCounter &counter : profile.counters) {
            if (counter.name == "qubits_held")
                run.held = counter.value;
        }
    }
    return run;
}

std::string
fmt(double value, const char *spec)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), spec, value);
    return buffer;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    std::printf("=== Routing strategies: continuous vs reuse%s ===\n\n",
                smoke ? " (smoke subset)" : "");

    TextTable table({"Benchmark", "Moves cont", "Moves reuse", "Moves d%",
                     "Transfers cont", "Transfers reuse", "Held",
                     "Fidelity ratio"});
    std::map<std::string, std::pair<std::size_t, std::size_t>> family_moves;
    std::size_t total_continuous = 0;
    std::size_t total_reuse = 0;
    int failures = 0;

    for (const Entry &entry : makeEntries(smoke)) {
        const Machine machine(entry.machine_config);
        try {
            const Run cont =
                compileOne(machine, entry.circuit,
                           RoutingStrategy::Continuous);
            const Run reuse =
                compileOne(machine, entry.circuit, RoutingStrategy::Reuse);

            const double delta =
                cont.moves == 0
                    ? 0.0
                    : 100.0 *
                          (static_cast<double>(reuse.moves) -
                           static_cast<double>(cont.moves)) /
                          static_cast<double>(cont.moves);
            table.addRow({entry.name, std::to_string(cont.moves),
                          std::to_string(reuse.moves), fmt(delta, "%+.1f"),
                          std::to_string(cont.transfers),
                          std::to_string(reuse.transfers),
                          std::to_string(reuse.held),
                          fmt(reuse.fidelity / cont.fidelity, "%.4f")});
            family_moves[entry.family].first += cont.moves;
            family_moves[entry.family].second += reuse.moves;
            total_continuous += cont.moves;
            total_reuse += reuse.moves;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s: FAILED: %s\n", entry.name.c_str(),
                         e.what());
            ++failures;
        }
    }

    std::printf("%s\n", table.toString().c_str());

    std::printf("--- Planned moves by family ---\n");
    for (const auto &[family, moves] : family_moves) {
        const auto [cont, reuse] = moves;
        std::printf("%-16s %6zu -> %6zu  (%+.1f%%)\n", family.c_str(), cont,
                    reuse,
                    cont == 0 ? 0.0
                              : 100.0 *
                                    (static_cast<double>(reuse) -
                                     static_cast<double>(cont)) /
                                    static_cast<double>(cont));
    }
    std::printf("\nSuite total: %zu -> %zu planned moves (%+.1f%%)\n",
                total_continuous, total_reuse,
                total_continuous == 0
                    ? 0.0
                    : 100.0 *
                          (static_cast<double>(total_reuse) -
                           static_cast<double>(total_continuous)) /
                          static_cast<double>(total_continuous));

    if (failures > 0) {
        std::fprintf(stderr, "%d benchmark(s) failed validation\n", failures);
        return 1;
    }
    return 0;
}
