/**
 * @file
 * Residency-policy comparison: the compute zone as a cache of atoms.
 *
 * Compiles every Table 2 benchmark — plus depth-2 VQE ansatze, the
 * canonical multi-block workload where atom reuse pays between
 * entanglement layers — under the continuous router and under the
 * reuse router with each residency policy
 * (`--residency=lookahead|lru|lti|fidelity`), validates every schedule
 * against its source circuit, and prints the per-row and per-family
 * comparison: planned moves, reuse hits, holds, and the fidelity ratio
 * against the continuous baseline.
 *
 * Beyond validation, the run gates the residency accounting invariants
 * on every compile (exit nonzero on violation):
 *
 *  - `parked_no_reuse + window_misses == lookahead_misses` (the miss
 *    split is exact, never an estimate);
 *  - `residency_holds_started == residency_holds_ended` (every span is
 *    settled by program end under every policy);
 *  - cross-block reuse: on the QSIM and QFT families the `lti` policy
 *    must measure strictly more reuse hits than `lookahead` (residency
 *    persisting across block boundaries is what buys them), and on BV
 *    it must plan no more moves than `lookahead`.
 *
 * `--smoke` compiles one small entry per family (CI mode). `--json P`
 * additionally writes every row as JSON for the bench-regression
 * artifact. Standalone main (no Google Benchmark dependency).
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "compiler/powermove.hpp"
#include "isa/validator.hpp"
#include "report/table.hpp"
#include "workloads/suite.hpp"
#include "workloads/vqe.hpp"

namespace {

using namespace powermove;

struct Entry
{
    std::string name;
    std::string family;
    MachineConfig machine_config;
    Circuit circuit;
};

std::vector<Entry>
makeEntries(bool smoke)
{
    std::vector<Entry> entries;
    std::map<std::string, int> seen;
    for (const BenchmarkSpec &spec : table2Suite()) {
        if (smoke && seen[spec.family]++ > 0)
            continue;
        entries.push_back(
            {spec.name, spec.family, spec.machine_config, spec.build()});
    }
    // Multi-layer VQE: two entanglement layers -> two CZ blocks, so the
    // chain-end qubits idle in the compute zone between layers.
    for (const std::size_t n : smoke ? std::vector<std::size_t>{30}
                                     : std::vector<std::size_t>{30, 50}) {
        entries.push_back({"VQE-depth2-" + std::to_string(n), "VQE-depth2",
                           MachineConfig::forQubits(n),
                           makeVqe(n, 2, VqeEntanglement::Linear, 0xF00D + n)});
    }
    return entries;
}

constexpr ResidencyPolicy kPolicies[] = {
    ResidencyPolicy::Lookahead,
    ResidencyPolicy::Lru,
    ResidencyPolicy::Lti,
    ResidencyPolicy::Fidelity,
};

struct Run
{
    std::size_t moves = 0;
    std::size_t transfers = 0;
    std::uint64_t held = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t parked_no_reuse = 0;
    std::uint64_t window_misses = 0;
    std::uint64_t holds_started = 0;
    std::uint64_t holds_ended = 0;
    double fidelity = 0.0;
};

Run
compileOne(const Machine &machine, const Circuit &circuit,
           RoutingStrategy routing,
           ResidencyPolicy residency = ResidencyPolicy::Lookahead)
{
    CompilerOptions options;
    options.routing = routing;
    options.residency = residency;
    const auto result = PowerMoveCompiler(machine, options).compile(circuit);
    validateAgainstCircuit(result.schedule, circuit);

    Run run;
    run.moves = result.schedule.numQubitMoves();
    run.transfers = result.schedule.numTransfers();
    run.fidelity = result.metrics.fidelity();
    for (const PassProfile &profile : result.pass_profiles) {
        if (profile.pass != PassId::Routing)
            continue;
        for (const PassCounter &counter : profile.counters) {
            if (counter.name == "qubits_held")
                run.held = counter.value;
            if (counter.name == "lookahead_hits")
                run.hits = counter.value;
            if (counter.name == "lookahead_misses")
                run.misses = counter.value;
            if (counter.name == "parked_no_reuse")
                run.parked_no_reuse = counter.value;
            if (counter.name == "window_misses")
                run.window_misses = counter.value;
            if (counter.name == "residency_holds_started")
                run.holds_started = counter.value;
            if (counter.name == "residency_holds_ended")
                run.holds_ended = counter.value;
        }
    }
    return run;
}

std::string
fmt(double value, const char *spec)
{
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), spec, value);
    return buffer;
}

/** One gate violation: prints and counts, run continues for the report. */
int
gate(bool ok, const std::string &name, const char *what)
{
    if (ok)
        return 0;
    std::fprintf(stderr, "%s: GATE FAILED: %s\n", name.c_str(), what);
    return 1;
}

void
writeJson(std::FILE *out,
          const std::vector<std::pair<Entry, std::map<std::string, Run>>>
              &rows)
{
    std::fprintf(out, "{\n  \"benchmarks\": [\n");
    bool first_row = true;
    for (const auto &[entry, runs] : rows) {
        if (!first_row)
            std::fprintf(out, ",\n");
        first_row = false;
        std::fprintf(out, "    {\"name\": \"%s\", \"family\": \"%s\"",
                     entry.name.c_str(), entry.family.c_str());
        for (const auto &[policy, run] : runs) {
            std::fprintf(out,
                         ",\n     \"%s\": {\"moves\": %zu, \"transfers\": "
                         "%zu, \"held\": %llu, \"reuse_hits\": %llu, "
                         "\"misses\": %llu, \"parked_no_reuse\": %llu, "
                         "\"window_misses\": %llu, \"holds_started\": %llu, "
                         "\"holds_ended\": %llu, \"fidelity\": %.6f}",
                         policy.c_str(), run.moves, run.transfers,
                         static_cast<unsigned long long>(run.held),
                         static_cast<unsigned long long>(run.hits),
                         static_cast<unsigned long long>(run.misses),
                         static_cast<unsigned long long>(run.parked_no_reuse),
                         static_cast<unsigned long long>(run.window_misses),
                         static_cast<unsigned long long>(run.holds_started),
                         static_cast<unsigned long long>(run.holds_ended),
                         run.fidelity);
        }
        std::fprintf(out, "}");
    }
    std::fprintf(out, "\n  ]\n}\n");
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc)
            json_path = argv[++i];
    }

    std::printf(
        "=== Residency policies: continuous vs reuse x "
        "{lookahead, lru, lti, fidelity}%s ===\n\n",
        smoke ? " (smoke subset)" : "");

    TextTable table({"Benchmark", "Policy", "Moves", "Hits", "Held",
                     "Misses", "NoReuse", "WindowMiss", "Fidelity ratio"});
    // family -> policy -> (moves, hits) totals for the summary + gates.
    std::map<std::string, std::map<std::string, std::pair<std::size_t,
                                                          std::uint64_t>>>
        family_totals;
    std::vector<std::pair<Entry, std::map<std::string, Run>>> rows;
    int failures = 0;

    for (const Entry &entry : makeEntries(smoke)) {
        const Machine machine(entry.machine_config);
        try {
            const Run cont = compileOne(machine, entry.circuit,
                                        RoutingStrategy::Continuous);
            std::map<std::string, Run> runs;
            runs["continuous"] = cont;
            family_totals[entry.family]["continuous"].first += cont.moves;
            for (const ResidencyPolicy policy : kPolicies) {
                const Run run = compileOne(machine, entry.circuit,
                                           RoutingStrategy::Reuse, policy);
                const std::string policy_name(residencyPolicyName(policy));
                runs[policy_name] = run;
                table.addRow({entry.name, policy_name,
                              std::to_string(run.moves),
                              std::to_string(run.hits),
                              std::to_string(run.held),
                              std::to_string(run.misses),
                              std::to_string(run.parked_no_reuse),
                              std::to_string(run.window_misses),
                              fmt(run.fidelity / cont.fidelity, "%.4f")});
                auto &family = family_totals[entry.family][policy_name];
                family.first += run.moves;
                family.second += run.hits;

                // Accounting invariants, per compile and per policy.
                failures += gate(run.parked_no_reuse + run.window_misses ==
                                     run.misses,
                                 entry.name + "/" + policy_name,
                                 "miss split must sum to lookahead_misses");
                failures += gate(run.holds_started == run.holds_ended,
                                 entry.name + "/" + policy_name,
                                 "residency spans must settle by program "
                                 "end (holds_started == holds_ended)");
            }
            rows.emplace_back(entry, std::move(runs));
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s: FAILED: %s\n", entry.name.c_str(),
                         e.what());
            ++failures;
        }
    }

    std::printf("%s\n", table.toString().c_str());

    std::printf("--- Planned moves (hits) by family ---\n");
    for (const auto &[family, by_policy] : family_totals) {
        std::printf("%-16s", family.c_str());
        for (const auto &[policy, totals] : by_policy) {
            std::printf("  %s=%zu(%llu)", policy.c_str(), totals.first,
                        static_cast<unsigned long long>(totals.second));
        }
        std::printf("\n");
    }

    // Cross-block reuse gates: persistent residency (lti) must buy
    // reuse hits the per-block window cannot see on the block-per-gate
    // families, and must never plan more moves than the window policy
    // on BV (one final block; hits are impossible for everyone, but
    // unbounded residency skips parks the window policy pays for).
    for (const auto &[family, by_policy] : family_totals) {
        const auto lookahead = by_policy.at("lookahead");
        const auto lti = by_policy.at("lti");
        if (family == "QSIM-rand-0.3" || family == "QFT") {
            failures += gate(lti.second > lookahead.second, family,
                             "lti must measure more reuse hits than "
                             "lookahead (cross-block residency)");
        }
        if (family == "BV") {
            failures += gate(lti.first <= lookahead.first, family,
                             "lti must not plan more moves than lookahead "
                             "on BV (held data qubits skip their parks)");
        }
    }

    if (!json_path.empty()) {
        std::FILE *out = std::fopen(json_path.c_str(), "w");
        if (out == nullptr) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            ++failures;
        } else {
            writeJson(out, rows);
            std::fclose(out);
            std::printf("\nwrote %s\n", json_path.c_str());
        }
    }

    if (failures > 0) {
        std::fprintf(stderr, "%d gate/validation failure(s)\n", failures);
        return 1;
    }
    return 0;
}
