/**
 * @file
 * Per-pass timing microbenchmark across the Table 2 suite.
 *
 * Compiles every benchmark with the default (with-storage) and the
 * storage-free configuration, aggregating the PassProfiles that every
 * pipeline compile records, and prints the per-pass breakdown: which of
 * the six passes the compile time actually goes to, per benchmark family
 * and over the whole suite.
 *
 * Standalone main (no Google Benchmark dependency) so the breakdown is
 * available in every build.
 */

#include <cstdio>
#include <map>
#include <string>

#include "compiler/powermove.hpp"
#include "harness.hpp"
#include "report/summary.hpp"
#include "report/table.hpp"
#include "workloads/suite.hpp"

int
main()
{
    using namespace powermove;

    constexpr int kRepeats = 3; // amortize cold caches, keep the minimum run

    std::printf("=== Per-pass compile-time breakdown (Table 2 suite) ===\n\n");

    std::vector<PassProfile> suite_totals;
    std::map<std::string, std::vector<PassProfile>> family_totals;
    TextTable per_bench({"Benchmark", "Config", "Compile (us)", "Hottest pass"});

    for (const BenchmarkSpec &spec : table2Suite()) {
        const Machine machine(spec.machine_config);
        const Circuit circuit = spec.build();
        for (const bool use_storage : {true, false}) {
            CompilerOptions options;
            options.use_storage = use_storage;
            const PowerMoveCompiler compiler(machine, options);

            const CompileResult best = bench::compileBestOf(
                [&] { return compiler.compile(circuit); }, kRepeats);

            const PassProfile *hottest = nullptr;
            for (const PassProfile &profile : best.pass_profiles) {
                if (hottest == nullptr ||
                    profile.wall_time.micros() > hottest->wall_time.micros())
                    hottest = &profile;
            }
            char compile_us[32];
            std::snprintf(compile_us, sizeof(compile_us), "%.1f",
                          best.compile_time.micros());
            per_bench.addRow(
                {spec.name, use_storage ? "with-storage" : "non-storage",
                 compile_us,
                 hottest != nullptr ? std::string(passName(hottest->pass))
                                    : "-"});

            mergePassProfiles(suite_totals, best.pass_profiles);
            mergePassProfiles(family_totals[spec.family], best.pass_profiles);
        }
    }

    std::printf("%s\n", per_bench.toString().c_str());

    for (const auto &[family, totals] : family_totals) {
        std::printf("--- %s ---\n%s\n", family.c_str(),
                    formatPassProfiles(totals).c_str());
    }

    std::printf("=== Suite totals (%d-repeat minimum per benchmark) ===\n%s",
                kRepeats, formatPassProfiles(suite_totals).c_str());
    return 0;
}
