/**
 * @file
 * Reproduces paper Table 2: the benchmark suite and the zone dimensions
 * derived from the Sec. 7.1 sizing rule, plus circuit shape statistics.
 */

#include <cstdio>

#include "circuit/stats.hpp"
#include "report/table.hpp"
#include "workloads/suite.hpp"

int
main()
{
    using namespace powermove;

    std::printf("=== Table 2: benchmarks and machine configurations ===\n\n");

    TextTable table({"Name", "#Qubits", "Compute Zone (um^2)",
                     "Inter Zone (um^2)", "Storage Zone (um^2)", "CZ gates",
                     "CZ blocks"});
    for (const auto &spec : table2Suite()) {
        const auto stats = computeStats(spec.build());
        table.addRow({spec.family, std::to_string(spec.num_qubits),
                      spec.machine_config.computeZoneExtent(),
                      spec.machine_config.interZoneExtent(),
                      spec.machine_config.storageZoneExtent(),
                      std::to_string(stats.num_cz_gates),
                      std::to_string(stats.num_blocks)});
    }
    std::printf("%s", table.toString().c_str());
    return 0;
}
