/**
 * @file
 * Reproduces paper Table 3: fidelity, execution time and compilation
 * time of Enola vs PowerMove (non-storage / with-storage) over the full
 * benchmark suite. Paper-reported values are printed alongside the
 * measured ones so the reproduction quality is visible at a glance.
 * Absolute compile times are not comparable (the authors measured a
 * Python/solver artifact; both pipelines here are C++), so the paper's
 * T_comp improvement ratio is shown for reference only.
 */

#include <cstdio>
#include <map>
#include <string>

#include "common/strings.hpp"
#include "harness.hpp"
#include "report/summary.hpp"
#include "report/table.hpp"

namespace {

/** Paper Table 3 reference rows. */
struct PaperRow
{
    double enola_fid, ns_fid, ws_fid;
    double enola_texe, ns_texe, ws_texe;
    double tcomp_improv;
};

const std::map<std::string, PaperRow> kPaper = {
    {"QAOA-regular3-30", {0.48, 0.64, 0.68, 13198.04, 4680.72, 6116.19, 3.10}},
    {"QAOA-regular3-40", {0.34, 0.53, 0.57, 17249.38, 5601.12, 8998.75, 3.49}},
    {"QAOA-regular3-50", {0.23, 0.43, 0.49, 21087.88, 7135.26, 9582.99, 3.43}},
    {"QAOA-regular3-60", {0.14, 0.35, 0.39, 25449.73, 8134.16, 12440.46, 3.15}},
    {"QAOA-regular3-80", {0.05, 0.22, 0.24, 33553.14, 10490.10, 17746.76, 3.22}},
    {"QAOA-regular3-100", {0.01, 0.10, 0.14, 44038.42, 16122.96, 21710.11, 3.66}},
    {"QAOA-regular4-30", {0.40, 0.56, 0.56, 16450.23, 6056.05, 12127.03, 3.93}},
    {"QAOA-regular4-40", {0.24, 0.45, 0.42, 23365.45, 7394.03, 17608.55, 4.03}},
    {"QAOA-regular4-50", {0.14, 0.34, 0.31, 30079.41, 9928.27, 20013.50, 4.01}},
    {"QAOA-regular4-60", {0.07, 0.26, 0.23, 36332.16, 11306.93, 22594.20, 4.04}},
    {"QAOA-regular4-80", {0.01, 0.10, 0.09, 49182.73, 19631.36, 32934.94, 4.04}},
    {"QAOA-random-20", {0.23, 0.39, 0.47, 32768.58, 11782.99, 16845.33, 7.06}},
    {"QAOA-random-30", {0.03, 0.11, 0.16, 68113.52, 25391.69, 38051.69, 9.27}},
    {"QFT-18", {8.95e-4, 4.87e-3, 0.05, 108173.62, 36810.15, 107637.68, 31.42}},
    {"QFT-29", {7.12e-9, 9.99e-7, 5.78e-4, 239150.00, 89670.26, 237315.37, 47.10}},
    {"BV-14", {0.57, 0.60, 0.91, 5583.98, 3034.20, 5282.11, 23.26}},
    {"BV-50", {0.04, 0.05, 0.84, 10118.96, 5631.26, 9255.85, 95.32}},
    {"BV-70", {6.92e-4, 1.05e-3, 0.75, 17620.11, 10277.27, 15942.37, 213.55}},
    {"VQE-30", {0.71, 0.81, 0.79, 5436.18, 1688.03, 2981.71, 1.94}},
    {"VQE-50", {0.48, 0.67, 0.63, 10196.50, 2946.26, 5354.37, 1.89}},
    {"QSIM-rand-0.3-10", {0.51, 0.60, 0.74, 13353.05, 4886.36, 9713.39, 10.00}},
    {"QSIM-rand-0.3-20", {0.05, 0.08, 0.42, 37796.35, 16636.02, 35550.68, 53.64}},
    {"QSIM-rand-0.3-40", {3.94e-6, 2.39e-5, 0.14, 93062.71, 45424.55, 89418.81, 64.74}},
};

} // namespace

int
main()
{
    using namespace powermove;
    using namespace powermove::bench;

    std::printf("=== Table 3: main results (measured | paper) ===\n\n");

    TextTable fidelity({"Benchmark", "Enola", "Enola(paper)", "Ours-ns",
                        "ns(paper)", "Ours-ws", "ws(paper)", "Fid.Improv",
                        "Improv(paper)"});
    TextTable time({"Benchmark", "Enola Texe(us)", "paper", "ns Texe(us)",
                    "paper", "ws Texe(us)", "paper", "Texe Improv",
                    "Improv(paper)"});
    TextTable comp({"Benchmark", "Enola Tcomp(ms)", "Our Tcomp(ms)",
                    "Tcomp Improv", "Improv(paper)"});

    RatioSummary fid_improv;
    RatioSummary storage_fid_improv;
    RatioSummary texe_improv;

    for (const auto &spec : table2Suite()) {
        const auto trio = runTrio(spec);
        const auto &paper = kPaper.at(spec.name);

        const double enola_fid = trio.enola.metrics.fidelity();
        const double ns_fid = trio.non_storage.metrics.fidelity();
        const double ws_fid = trio.with_storage.metrics.fidelity();
        fidelity.addRow(
            {spec.name, formatFidelity(enola_fid),
             formatFidelity(paper.enola_fid), formatFidelity(ns_fid),
             formatFidelity(paper.ns_fid), formatFidelity(ws_fid),
             formatFidelity(paper.ws_fid), formatRatio(ws_fid / enola_fid),
             formatRatio(paper.ws_fid / paper.enola_fid)});

        fid_improv.add(ws_fid / enola_fid);
        storage_fid_improv.add(ws_fid / ns_fid);

        const double enola_texe = trio.enola.metrics.exec_time.micros();
        const double ns_texe = trio.non_storage.metrics.exec_time.micros();
        const double ws_texe = trio.with_storage.metrics.exec_time.micros();
        time.addRow({spec.name, formatGeneral(enola_texe, 6),
                     formatGeneral(paper.enola_texe, 6),
                     formatGeneral(ns_texe, 6),
                     formatGeneral(paper.ns_texe, 6),
                     formatGeneral(ws_texe, 6),
                     formatGeneral(paper.ws_texe, 6),
                     formatRatio(enola_texe / ns_texe),
                     formatRatio(paper.enola_texe / paper.ns_texe)});
        texe_improv.add(enola_texe / ns_texe);

        const double enola_ms = trio.enola.compile_time.micros() / 1000.0;
        const double ours_ms = ourCompileMicros(trio) / 1000.0;
        comp.addRow({spec.name, formatGeneral(enola_ms, 4),
                     formatGeneral(ours_ms, 4),
                     formatRatio(enola_ms / ours_ms),
                     formatRatio(paper.tcomp_improv)});
    }

    std::printf("--- Fidelity ---\n%s\n", fidelity.toString().c_str());
    std::printf("--- Execution time ---\n%s\n", time.toString().c_str());
    std::printf("--- Compilation time (absolute values not comparable to "
                "the paper's Python artifact) ---\n%s",
                comp.toString().c_str());

    std::printf("\n--- Aggregates (cf. the paper's summary claims) ---\n");
    std::printf("fidelity improvement ws/Enola:      %s\n",
                fid_improv.toString().c_str());
    std::printf("storage-zone benefit ws/ns:         %s\n",
                storage_fid_improv.toString().c_str());
    std::printf("execution-time improvement Enola/ns: %s\n",
                texe_improv.toString().c_str());
    return 0;
}
