/**
 * @file
 * Observability overhead gate.
 *
 * The observability layer promises to be near-free when disabled (a
 * null bundle costs one branch per instrumented site) and bounded when
 * enabled (relaxed atomics + one histogram bucket increment per
 * sample). This harness measures both promises on the same job set,
 * three ways:
 *
 *   bare  a direct PowerMoveCompiler loop — no service, no
 *         instrumentation — the floor the service layers sit on
 *   off   CompilationService with obs == nullptr (the shipped default)
 *   on    CompilationService with a full Observability bundle and pass
 *         profiling enabled
 *
 * The services are built once, outside the timing, with the memory
 * cache disabled (cache_capacity = 0) and no disk tier, so every timed
 * batch compiles every job fresh; the jobs are distinct QAOA instances
 * so submissions can never coalesce, and batches complete before the
 * next begins so nothing coalesces across repetitions either. All
 * three configurations therefore compile every circuit every time,
 * and with seed derivation disabled they compile the *same* schedules.
 *
 * Each measurement round times all three configurations back to back
 * and the gates compare the median of the per-round paired ratios:
 * pairing cancels the frequency scaling / noisy-neighbor drift that
 * min-of-N across three separate measurement windows cannot (a quiet
 * window for one configuration otherwise reads as overhead in the
 * others). Gates:
 *
 *   off / bare < 1.02   the whole service layer — queue, fingerprint,
 *                       cache bookkeeping, AND the disabled-obs
 *                       branches — stays within 2% of raw compilation
 *   on  / off  < 1.25   full instrumentation (metrics + spans + pass
 *                       profiling) stays within a generous 25%
 *
 * The enabled run is also checked for effect, not just cost: the
 * registry must have counted every submission and folded per-pass wall
 * time, so the gate can never pass by silently measuring a bundle that
 * was never wired through.
 *
 * Flags:
 *   --smoke       smaller circuits, CI mode
 *   --json PATH   machine-readable summary (uploaded as BENCH_obs.json
 *                 by the bench-regression job)
 *
 * Exits nonzero when a gate fails. Standalone main (no Google
 * Benchmark dependency).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "compiler/powermove.hpp"
#include "harness.hpp"
#include "obs/observability.hpp"
#include "report/table.hpp"
#include "service/service.hpp"
#include "workloads/qaoa.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace powermove;

/**
 * Distinct deep QAOA-regular3 instances. Distinct widths defeat
 * coalescing and memory hits within a repetition; many QAOA rounds
 * deepen each circuit so per-job compile time (milliseconds) dwarfs
 * the fixed per-submission service cost (futex handoffs, fingerprint
 * — tens of microseconds) the 2% gate bounds. At shallow depth that
 * fixed cost would dominate and the gate would measure the service,
 * not the instrumentation.
 */
std::vector<BenchmarkSpec>
makeSpecs(bool smoke)
{
    const std::vector<std::size_t> widths =
        smoke ? std::vector<std::size_t>{60, 90, 120}
              : std::vector<std::size_t>{90, 120, 150};
    const std::size_t rounds = 10;
    std::vector<BenchmarkSpec> specs;
    for (const std::size_t n : widths) {
        BenchmarkSpec spec = makeFamilyInstance("QAOA-regular3", n);
        spec.build = [n, rounds] {
            return makeQaoaRegular(n, 3, rounds, n);
        };
        specs.push_back(std::move(spec));
    }
    return specs;
}

/** Pre-built circuits so construction cost stays outside the timing. */
std::vector<Circuit>
buildCircuits(const std::vector<BenchmarkSpec> &specs)
{
    std::vector<Circuit> circuits;
    circuits.reserve(specs.size());
    for (const BenchmarkSpec &spec : specs)
        circuits.push_back(spec.build());
    return circuits;
}

/** One bare pass: build each machine, compile each circuit directly. */
void
runBare(const std::vector<BenchmarkSpec> &specs,
        const std::vector<Circuit> &circuits, bool profile)
{
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const Machine machine(specs[i].machine_config);
        CompilerOptions options;
        options.profile_passes = profile;
        const PowerMoveCompiler compiler(machine, options);
        const CompileResult result = compiler.compile(circuits[i]);
        if (result.schedule.instructions().empty())
            std::fprintf(stderr, "micro_obs: empty schedule (bare)\n");
    }
}

/** The timed job set; @p profile toggles per-pass wall profiling. */
std::vector<service::CompileJob>
makeJobs(const std::vector<BenchmarkSpec> &specs,
         const std::vector<Circuit> &circuits, bool profile)
{
    std::vector<service::CompileJob> jobs;
    jobs.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        CompilerOptions options;
        options.profile_passes = profile;
        jobs.push_back({circuits[i], specs[i].machine_config, options});
    }
    return jobs;
}

/**
 * A single-worker service with every cache tier off, so each timed
 * batch compiles every job fresh and repetitions do identical work.
 */
std::unique_ptr<service::CompilationService>
makeService(std::shared_ptr<obs::Observability> obs)
{
    service::ServiceOptions options;
    options.num_workers = 1;
    options.cache_capacity = 0;
    // Compile with the verbatim seed, like the bare loop does: the
    // default per-job seed derivation would produce a *different*
    // schedule than the bare compile, and the ratio would then compare
    // two different workloads instead of the same work through two
    // paths.
    options.derive_job_seeds = false;
    options.obs = std::move(obs);
    return std::make_unique<service::CompilationService>(options);
}

/**
 * One service pass: the whole batch through @p svc. Takes the jobs by
 * value so callers copy them *outside* the timed region — duplicating
 * the input circuits is the caller's cost in deployment too, not part
 * of the service overhead under test.
 */
void
runBatch(service::CompilationService &svc,
         std::vector<service::CompileJob> jobs)
{
    const std::vector<service::BatchEntry> entries =
        svc.compileBatch(std::move(jobs));
    for (const service::BatchEntry &entry : entries)
        if (!entry.ok())
            std::fprintf(stderr, "micro_obs: job failed: %s\n",
                         entry.error.c_str());
}

/** Median of the per-round ratios nom[i] / den[i]. */
double
medianPairedRatio(const std::vector<double> &nom,
                  const std::vector<double> &den)
{
    std::vector<double> ratios;
    ratios.reserve(nom.size());
    for (std::size_t i = 0; i < nom.size() && i < den.size(); ++i)
        if (den[i] > 0.0)
            ratios.push_back(nom[i] / den[i]);
    std::sort(ratios.begin(), ratios.end());
    return obs::percentileOfSorted(ratios, 0.50);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--json PATH]\n", argv[0]);
            return 2;
        }
    }

    const std::vector<BenchmarkSpec> specs = makeSpecs(smoke);
    const std::vector<Circuit> circuits = buildCircuits(specs);
    const int repeats = smoke ? 7 : 9;

    // The enabled run keeps one bundle for the whole measurement —
    // long-lived registries are the deployment shape, and
    // re-registering the same series each repetition would time
    // registration, not recording.
    auto bundle = std::make_shared<obs::Observability>(
        obs::ObservabilityOptions{obs::LogLevel::Error, stderr});
    const auto svc_off = makeService(nullptr);
    const auto svc_on = makeService(bundle);
    const std::vector<service::CompileJob> plain_jobs =
        makeJobs(specs, circuits, false);
    const std::vector<service::CompileJob> profiled_jobs =
        makeJobs(specs, circuits, true);

    // Warm-up: fault in code, allocator arenas, and worker threads
    // once, untimed.
    runBare(specs, circuits, false);
    runBatch(*svc_off, plain_jobs);
    runBatch(*svc_on, profiled_jobs);

    // Interleaved rounds: each round times all three configurations
    // back to back, so frequency scaling, thermal drift, and noisy
    // neighbors hit every configuration equally instead of biasing
    // whichever one was measured in the slow window. min-of-N across
    // rounds then compares like with like.
    std::vector<double> bare_us, off_us, on_us;
    bare_us.reserve(static_cast<std::size_t>(repeats));
    off_us.reserve(static_cast<std::size_t>(repeats));
    on_us.reserve(static_cast<std::size_t>(repeats));
    for (int i = 0; i < repeats; ++i) {
        bare_us.push_back(bench::onceWallMicros(
            [&] { runBare(specs, circuits, false); }));
        std::vector<service::CompileJob> off_batch = plain_jobs;
        off_us.push_back(bench::onceWallMicros(
            [&] { runBatch(*svc_off, std::move(off_batch)); }));
        std::vector<service::CompileJob> on_batch = profiled_jobs;
        on_us.push_back(bench::onceWallMicros(
            [&] { runBatch(*svc_on, std::move(on_batch)); }));
    }
    const bench::WallStats bare =
        bench::wallStatsFromSamples(std::move(bare_us));
    const bench::WallStats off =
        bench::wallStatsFromSamples(std::move(off_us));
    const bench::WallStats on = bench::wallStatsFromSamples(std::move(on_us));

    // Effect check: the instrumented runs must have actually recorded.
    const std::string exposition = bundle->metrics.toPrometheusText();
    const bool counted =
        exposition.find("powermove_jobs_submitted_total") !=
            std::string::npos &&
        exposition.find("powermove_pass_wall_us") != std::string::npos;

    const double off_ratio =
        medianPairedRatio(off.samples_us, bare.samples_us);
    const double on_ratio = medianPairedRatio(on.samples_us, off.samples_us);
    const double kOffBound = 1.02;
    const double kOnBound = 1.25;

    TextTable table({"config", "min ms", "p50 ms", "p95 ms", "vs",
                     "med ratio", "bound"});
    const auto row = [&](const char *name, const bench::WallStats &stats,
                         const char *vs, double ratio, double bound) {
        table.addRow({name, bench::fmt(stats.min_us / 1000.0, "%.2f"),
                      bench::fmt(stats.p50_us / 1000.0, "%.2f"),
                      bench::fmt(stats.p95_us / 1000.0, "%.2f"), vs,
                      ratio > 0.0 ? bench::fmt(ratio, "%.3f") : "-",
                      bound > 0.0 ? bench::fmt(bound, "< %.2f") : "-"});
    };
    row("bare compile loop", bare, "-", 0.0, 0.0);
    row("service, obs off", off, "bare", off_ratio, kOffBound);
    row("service, obs on", on, "off", on_ratio, kOnBound);
    std::printf("%zu jobs x %d repeats%s\n%s\n", specs.size(), repeats,
                smoke ? " (smoke)" : "", table.toString().c_str());

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "micro_obs: cannot write '%s'\n",
                         json_path.c_str());
            return 2;
        }
        out << "{\n  \"schema\": 1,\n  \"smoke\": "
            << (smoke ? "true" : "false") << ",\n  \"jobs\": "
            << specs.size() << ",\n  \"repeats\": " << repeats
            << ",\n  \"bare_min_us\": " << bench::fmt(bare.min_us, "%.1f")
            << ",\n  \"off_min_us\": " << bench::fmt(off.min_us, "%.1f")
            << ",\n  \"on_min_us\": " << bench::fmt(on.min_us, "%.1f")
            << ",\n  \"off_p95_us\": " << bench::fmt(off.p95_us, "%.1f")
            << ",\n  \"on_p95_us\": " << bench::fmt(on.p95_us, "%.1f")
            << ",\n  \"off_over_bare\": " << bench::fmt(off_ratio, "%.4f")
            << ",\n  \"on_over_off\": " << bench::fmt(on_ratio, "%.4f")
            << ",\n  \"off_bound\": " << bench::fmt(kOffBound, "%.2f")
            << ",\n  \"on_bound\": " << bench::fmt(kOnBound, "%.2f")
            << ",\n  \"recorded\": " << (counted ? "true" : "false")
            << "\n}\n";
        std::printf("summary written: %s\n", json_path.c_str());
    }

    int failures = 0;
    if (off_ratio >= kOffBound) {
        std::fprintf(stderr,
                     "micro_obs: disabled-path gate failed: service with "
                     "obs off is %.4fx bare (bound %.2f)\n",
                     off_ratio, kOffBound);
        ++failures;
    }
    if (on_ratio >= kOnBound) {
        std::fprintf(stderr,
                     "micro_obs: enabled-path gate failed: obs on is "
                     "%.4fx obs off (bound %.2f)\n",
                     on_ratio, kOnBound);
        ++failures;
    }
    if (!counted) {
        std::fprintf(stderr, "micro_obs: instrumented run recorded no "
                             "submissions or pass timings\n");
        ++failures;
    }
    return failures == 0 ? 0 : 1;
}
