/**
 * @file
 * Batch-service throughput harness: pushes the full Table 2 suite
 * through the CompilationService at 1/2/4/8 workers.
 *
 * For each pool size it reports the cold batch wall time (every job
 * compiles), the aggregate compile throughput and speedup over the
 * serial pool, and a warm second pass that must be served entirely from
 * the content-addressed cache. A cross-pool determinism check asserts
 * that every pool size reproduces the serial run's fidelity bit for
 * bit — the service's core scheduling invariant.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "report/table.hpp"
#include "service/service.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace powermove;
using service::CompilationService;

double
wallMillis(const std::chrono::steady_clock::time_point &start,
           const std::chrono::steady_clock::time_point &stop)
{
    return std::chrono::duration<double, std::milli>(stop - start).count();
}

std::string
formatDouble(double value, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

} // namespace

int
main(int argc, char **argv)
{
    // Repeat the cold pass and keep the best time, like bench/harness.hpp
    // does per compilation: at millisecond scales single shots are noisy.
    int repeats = 3;
    if (argc > 1)
        repeats = std::max(1, std::atoi(argv[1]));

    std::vector<service::CompileJob> jobs;
    for (const BenchmarkSpec &spec : table2Suite())
        jobs.push_back({spec.build(), spec.machine_config, {}});
    std::printf("=== Service throughput: %zu-job Table 2 batch ===\n",
                jobs.size());
    std::printf("(hardware threads: %u — speedup saturates there)\n\n",
                std::thread::hardware_concurrency());

    std::vector<double> serial_fidelity;
    double serial_ms = 0.0;

    TextTable table({"Workers", "Cold batch (ms)", "Jobs/s", "Speedup",
                     "Warm batch (ms)", "Warm hits"});
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
        double best_cold_ms = 1e300;
        std::vector<double> fidelity;
        double warm_ms = 0.0;
        std::size_t warm_hits = 0;

        for (int repeat = 0; repeat < repeats; ++repeat) {
            CompilationService svc({workers, 2 * jobs.size()});

            const auto cold_start = std::chrono::steady_clock::now();
            const auto cold = svc.compileBatch(jobs);
            const auto cold_stop = std::chrono::steady_clock::now();
            best_cold_ms =
                std::min(best_cold_ms, wallMillis(cold_start, cold_stop));

            const auto warm_start = std::chrono::steady_clock::now();
            const auto warm = svc.compileBatch(jobs);
            const auto warm_stop = std::chrono::steady_clock::now();
            warm_ms = wallMillis(warm_start, warm_stop);

            fidelity.clear();
            warm_hits = 0;
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                if (!cold[i].ok() || !warm[i].ok()) {
                    std::fprintf(stderr, "job %zu failed: %s\n", i,
                                 (cold[i].ok() ? warm[i] : cold[i])
                                     .error.c_str());
                    return 1;
                }
                fidelity.push_back(cold[i].result.result->metrics.fidelity());
                if (warm[i].result.from_cache)
                    ++warm_hits;
            }
        }

        if (workers == 1) {
            serial_fidelity = fidelity;
            serial_ms = best_cold_ms;
        } else {
            // Bit-identical across pool sizes, per the derived-seed rule.
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                if (fidelity[i] != serial_fidelity[i]) {
                    std::fprintf(stderr,
                                 "determinism violation on job %zu: "
                                 "%.17g (x%zu) vs %.17g (serial)\n",
                                 i, fidelity[i], workers,
                                 serial_fidelity[i]);
                    return 1;
                }
            }
        }

        table.addRow({std::to_string(workers),
                      formatDouble(best_cold_ms, 2),
                      formatDouble(1e3 * jobs.size() / best_cold_ms, 1),
                      formatDouble(serial_ms / best_cold_ms, 2),
                      formatDouble(warm_ms, 2), std::to_string(warm_hits)});
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("determinism: all pool sizes bit-identical to serial\n");
    return 0;
}
