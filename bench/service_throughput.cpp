/**
 * @file
 * Service throughput harness: worker scaling, an async JobService soak,
 * and warm-vs-cold persistent disk-cache rows.
 *
 * Three sections:
 *
 *  1. Worker scaling — the Table 2 suite through the synchronous
 *     CompilationService at 1/2/4/8 workers: cold batch wall time,
 *     aggregate throughput, speedup over serial, and a warm second pass
 *     that must be served entirely from the memory cache. A cross-pool
 *     determinism check asserts every pool size reproduces the serial
 *     run's fidelity bit for bit.
 *  2. JobService soak — tens of thousands of async submissions (mostly
 *     duplicates of the distinct suite, with randomized priorities and
 *     occasional generous deadlines) through the sharded JobService;
 *     reports sustained submissions/s and the tier breakdown
 *     (compiled / coalesced / memory / disk). Nothing may be rejected,
 *     expire, or fail.
 *  3. Disk restart — a cold JobService populates a cache directory,
 *     dies, and a fresh instance re-serves the whole suite from disk.
 *     The warm pass must beat the cold pass by the required factor
 *     (10x normally, 2x under --smoke where timings are tiny and
 *     noisy); every warm result must come from the Disk tier.
 *
 * Flags:
 *   --smoke          CI mode: one entry per family, ~2k-job soak,
 *                    single repeat
 *   --jobs N         soak submissions (default 10000, max 100000)
 *   --cache-dir DIR  disk-cache directory for section 3 (default: a
 *                    fresh temp dir, removed on exit)
 *   --json PATH      machine-readable summary (uploaded as
 *                    BENCH_service.json by the bench-regression job)
 *   [N]              positional: cold-pass repeats for section 1
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "report/table.hpp"
#include "service/job_service.hpp"
#include "service/service.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace powermove;
using service::CompilationService;
using service::JobService;

double
wallMillis(const std::chrono::steady_clock::time_point &start,
           const std::chrono::steady_clock::time_point &stop)
{
    return std::chrono::duration<double, std::milli>(stop - start).count();
}

std::string
formatDouble(double value, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

/** The distinct benchmark jobs: the full suite, one per family in smoke. */
std::vector<service::CompileJob>
makeJobs(bool smoke)
{
    std::vector<service::CompileJob> jobs;
    std::map<std::string, int> seen;
    for (const BenchmarkSpec &spec : table2Suite()) {
        if (smoke && seen[spec.family]++ > 0)
            continue;
        jobs.push_back({spec.build(), spec.machine_config, {}});
    }
    return jobs;
}

/**
 * The disk-restart job set. Under --smoke it is the suite itself; the
 * full run uses larger family instances, where per-job compile time
 * dwarfs the per-file open/read/deserialize overhead that dominates at
 * small sizes and the warm/cold ratio reflects the steady-state gap.
 */
std::vector<service::CompileJob>
makeDiskJobs(bool smoke, const std::vector<service::CompileJob> &suite)
{
    if (smoke)
        return suite;
    std::vector<service::CompileJob> jobs;
    for (const char *family : {"QAOA-regular3", "QFT", "VQE", "BV"}) {
        for (const std::size_t n : {100u, 144u}) {
            const BenchmarkSpec spec = makeFamilyInstance(family, n);
            jobs.push_back({spec.build(), spec.machine_config, {}});
        }
    }
    return jobs;
}

struct ScalingRow
{
    std::size_t workers = 0;
    double cold_ms = 0.0;
    double warm_ms = 0.0;
    double jobs_per_s = 0.0;
    double speedup = 0.0;
};

struct SoakSummary
{
    std::size_t submissions = 0;
    double wall_ms = 0.0;
    double jobs_per_s = 0.0;
    service::JobServiceStats stats;
};

struct DiskSummary
{
    std::size_t jobs = 0;
    double cold_ms = 0.0;
    double warm_ms = 0.0;
    double speedup = 0.0;
    double required = 0.0;
};

/** Section 1: CompilationService worker scaling + determinism gate. */
int
runScaling(const std::vector<service::CompileJob> &jobs, int repeats,
           std::vector<ScalingRow> &rows)
{
    std::printf("=== Worker scaling: %zu-job batch ===\n", jobs.size());
    std::printf("(hardware threads: %u — speedup saturates there)\n\n",
                std::thread::hardware_concurrency());

    std::vector<double> serial_fidelity;
    double serial_ms = 0.0;

    TextTable table({"Workers", "Cold batch (ms)", "Jobs/s", "Speedup",
                     "Warm batch (ms)", "Warm hits"});
    for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
        double best_cold_ms = 1e300;
        std::vector<double> fidelity;
        double warm_ms = 0.0;
        std::size_t warm_hits = 0;

        for (int repeat = 0; repeat < repeats; ++repeat) {
            service::ServiceOptions pool;
            pool.num_workers = workers;
            pool.cache_capacity = 2 * jobs.size();
            CompilationService svc(pool);

            const auto cold_start = std::chrono::steady_clock::now();
            const auto cold = svc.compileBatch(jobs);
            const auto cold_stop = std::chrono::steady_clock::now();
            best_cold_ms =
                std::min(best_cold_ms, wallMillis(cold_start, cold_stop));

            const auto warm_start = std::chrono::steady_clock::now();
            const auto warm = svc.compileBatch(jobs);
            const auto warm_stop = std::chrono::steady_clock::now();
            warm_ms = wallMillis(warm_start, warm_stop);

            fidelity.clear();
            warm_hits = 0;
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                if (!cold[i].ok() || !warm[i].ok()) {
                    std::fprintf(stderr, "job %zu failed: %s\n", i,
                                 (cold[i].ok() ? warm[i] : cold[i])
                                     .error.c_str());
                    return 1;
                }
                fidelity.push_back(
                    cold[i].result.result->metrics.fidelity());
                if (warm[i].result.from_cache)
                    ++warm_hits;
            }
        }

        if (workers == 1) {
            serial_fidelity = fidelity;
            serial_ms = best_cold_ms;
        } else {
            // Bit-identical across pool sizes, per the derived-seed rule.
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                if (fidelity[i] != serial_fidelity[i]) {
                    std::fprintf(stderr,
                                 "determinism violation on job %zu: "
                                 "%.17g (x%zu) vs %.17g (serial)\n",
                                 i, fidelity[i], workers,
                                 serial_fidelity[i]);
                    return 1;
                }
            }
        }

        const double jobs_per_s = 1e3 * jobs.size() / best_cold_ms;
        rows.push_back({workers, best_cold_ms, warm_ms, jobs_per_s,
                        serial_ms / best_cold_ms});
        table.addRow({std::to_string(workers),
                      formatDouble(best_cold_ms, 2),
                      formatDouble(jobs_per_s, 1),
                      formatDouble(serial_ms / best_cold_ms, 2),
                      formatDouble(warm_ms, 2), std::to_string(warm_hits)});
    }

    std::printf("%s\n", table.toString().c_str());
    std::printf("determinism: all pool sizes bit-identical to serial\n\n");
    return 0;
}

/**
 * Section 2: async soak. @p submissions tickets over the distinct job
 * set, randomized priorities and a slice of generous deadlines; every
 * ticket must resolve successfully.
 */
int
runSoak(const std::vector<service::CompileJob> &jobs,
        std::size_t submissions, SoakSummary &summary)
{
    std::printf("=== JobService soak: %zu submissions over %zu distinct "
                "jobs ===\n",
                submissions, jobs.size());

    service::JobServiceOptions options;
    options.max_queue = submissions; // soak dispatch, not admission
    JobService svc(options);

    Rng rng(0x736f616bULL); // "soak"
    std::vector<service::JobTicket> tickets;
    tickets.reserve(submissions);

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < submissions; ++i) {
        const service::CompileJob &job = jobs[i % jobs.size()];
        const int priority = static_cast<int>(rng.nextBelow(11)) - 5;
        const double deadline_ms = rng.nextBool(0.1) ? 60000.0 : 0.0;
        tickets.push_back(svc.submit(job, priority, deadline_ms));
    }
    for (service::JobTicket &ticket : tickets) {
        try {
            if (!ticket.result.get().result) {
                std::fprintf(stderr, "soak: empty result\n");
                return 1;
            }
        } catch (const std::exception &error) {
            std::fprintf(stderr, "soak: job %llu failed: %s\n",
                         static_cast<unsigned long long>(ticket.id),
                         error.what());
            return 1;
        }
    }
    const auto stop = std::chrono::steady_clock::now();
    svc.waitIdle();

    summary.submissions = submissions;
    summary.wall_ms = wallMillis(start, stop);
    summary.jobs_per_s = 1e3 * submissions / summary.wall_ms;
    summary.stats = svc.stats();

    const service::JobServiceStats &stats = summary.stats;
    std::printf("%zu shards x %zu workers: %.2f ms, %.0f jobs/s\n",
                stats.num_shards, stats.workers_per_shard, summary.wall_ms,
                summary.jobs_per_s);
    std::printf("tiers: %zu compiled, %zu coalesced, %zu memory, %zu "
                "disk\n\n",
                stats.compiled, stats.coalesced, stats.memory_hits,
                stats.disk_hits);

    if (stats.rejected + stats.expired + stats.failed > 0) {
        std::fprintf(stderr,
                     "soak: %zu rejected, %zu expired, %zu failed — "
                     "expected none\n",
                     stats.rejected, stats.expired, stats.failed);
        return 1;
    }
    return 0;
}

/**
 * Section 3: disk restart. A cold service populates @p cache_dir and is
 * destroyed; a fresh instance must re-serve every job from the Disk
 * tier at least @p required times faster than the cold pass.
 */
int
runDiskRestart(const std::vector<service::CompileJob> &jobs,
               const std::string &cache_dir, double required, int repeats,
               DiskSummary &summary)
{
    std::printf("=== Disk restart: %zu jobs through '%s' ===\n",
                jobs.size(), cache_dir.c_str());

    service::JobServiceOptions options;
    options.cache_dir = cache_dir;

    // Min-of-N on both sides, each repeat through a fresh service (and,
    // for the cold side, a fresh directory): single shots are noisy at
    // millisecond scales and the ratio below is a hard gate.
    double cold_ms = 1e300;
    for (int repeat = 0; repeat < repeats; ++repeat) {
        std::filesystem::remove_all(cache_dir);
        JobService cold(options);
        std::vector<service::JobTicket> tickets;
        const auto start = std::chrono::steady_clock::now();
        for (const service::CompileJob &job : jobs)
            tickets.push_back(cold.submit(job));
        for (service::JobTicket &ticket : tickets)
            (void)ticket.result.get();
        cold_ms = std::min(
            cold_ms, wallMillis(start, std::chrono::steady_clock::now()));
        cold.waitIdle();
    } // destroyed: only the cache directory survives

    double warm_ms = 1e300;
    std::size_t disk_served = 0;
    for (int repeat = 0; repeat < repeats; ++repeat) {
        JobService warm(options);
        std::vector<service::JobTicket> tickets;
        disk_served = 0;
        const auto start = std::chrono::steady_clock::now();
        for (const service::CompileJob &job : jobs)
            tickets.push_back(warm.submit(job));
        for (service::JobTicket &ticket : tickets) {
            if (ticket.result.get().source == service::ResultSource::Disk)
                ++disk_served;
        }
        warm_ms = std::min(
            warm_ms, wallMillis(start, std::chrono::steady_clock::now()));
        warm.waitIdle();
    }

    summary.jobs = jobs.size();
    summary.cold_ms = cold_ms;
    summary.warm_ms = warm_ms;
    summary.speedup = cold_ms / warm_ms;
    summary.required = required;

    std::printf("cold (compile + store): %.2f ms\n", cold_ms);
    std::printf("warm (restart, disk):   %.2f ms  (%.1fx, need >= %.0fx)\n",
                warm_ms, summary.speedup, required);
    std::printf("disk-served: %zu/%zu\n\n", disk_served, jobs.size());

    if (disk_served != jobs.size()) {
        std::fprintf(stderr,
                     "disk restart: only %zu/%zu served from disk\n",
                     disk_served, jobs.size());
        return 1;
    }
    if (summary.speedup < required) {
        std::fprintf(stderr,
                     "disk restart: warm pass only %.1fx faster than "
                     "cold (required %.0fx)\n",
                     summary.speedup, required);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path;
    std::string cache_dir;
    std::size_t soak_jobs = 0; // 0 = default for the mode
    // Repeat the cold scaling pass and keep the best time, like
    // bench/harness.hpp does per compilation: at millisecond scales
    // single shots are noisy.
    int repeats = 3;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "service_throughput: --json needs a value\n");
                return 2;
            }
            json_path = argv[++i];
        } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(
                    stderr,
                    "service_throughput: --cache-dir needs a value\n");
                return 2;
            }
            cache_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--jobs") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "service_throughput: --jobs needs a value\n");
                return 2;
            }
            soak_jobs = static_cast<std::size_t>(
                std::strtoull(argv[++i], nullptr, 10));
        } else {
            repeats = std::max(1, std::atoi(argv[i]));
        }
    }
    if (smoke)
        repeats = 1;
    if (soak_jobs == 0)
        soak_jobs = smoke ? 2000 : 10000;
    soak_jobs = std::min<std::size_t>(soak_jobs, 100000);

    const std::vector<service::CompileJob> jobs = makeJobs(smoke);

    // A private temp cache dir unless the caller supplied one; a fresh
    // directory either way, so the cold pass is genuinely cold.
    namespace fs = std::filesystem;
    const bool own_cache_dir = cache_dir.empty();
    if (own_cache_dir) {
        cache_dir = (fs::temp_directory_path() /
                     ("powermove_bench_cache_" +
                      std::to_string(
                          static_cast<unsigned long>(::getpid()))))
                        .string();
    }
    fs::remove_all(cache_dir);

    std::vector<ScalingRow> scaling;
    SoakSummary soak;
    DiskSummary disk;

    int rc = runScaling(jobs, repeats, scaling);
    if (rc == 0)
        rc = runSoak(jobs, soak_jobs, soak);
    if (rc == 0)
        rc = runDiskRestart(makeDiskJobs(smoke, jobs), cache_dir,
                            smoke ? 2.0 : 10.0, std::max(repeats, 3), disk);

    if (own_cache_dir)
        fs::remove_all(cache_dir);

    if (rc == 0 && !json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "service_throughput: cannot write '%s'\n",
                         json_path.c_str());
            return 2;
        }
        out << "{\n  \"schema\": 1,\n  \"smoke\": "
            << (smoke ? "true" : "false") << ",\n  \"scaling\": [\n";
        for (std::size_t i = 0; i < scaling.size(); ++i) {
            const ScalingRow &row = scaling[i];
            out << "    {\"workers\": " << row.workers
                << ", \"cold_ms\": " << formatDouble(row.cold_ms, 3)
                << ", \"warm_ms\": " << formatDouble(row.warm_ms, 3)
                << ", \"jobs_per_s\": " << formatDouble(row.jobs_per_s, 1)
                << ", \"speedup\": " << formatDouble(row.speedup, 3) << "}"
                << (i + 1 < scaling.size() ? ",\n" : "\n");
        }
        out << "  ],\n  \"soak\": {\"submissions\": " << soak.submissions
            << ", \"wall_ms\": " << formatDouble(soak.wall_ms, 3)
            << ", \"jobs_per_s\": " << formatDouble(soak.jobs_per_s, 1)
            << ", \"compiled\": " << soak.stats.compiled
            << ", \"coalesced\": " << soak.stats.coalesced
            << ", \"memory_hits\": " << soak.stats.memory_hits
            << ", \"disk_hits\": " << soak.stats.disk_hits << "},\n";
        out << "  \"disk\": {\"jobs\": " << disk.jobs
            << ", \"cold_ms\": " << formatDouble(disk.cold_ms, 3)
            << ", \"warm_ms\": " << formatDouble(disk.warm_ms, 3)
            << ", \"speedup\": " << formatDouble(disk.speedup, 2)
            << ", \"required\": " << formatDouble(disk.required, 1)
            << "}\n}\n";
        std::printf("summary written: %s\n", json_path.c_str());
    }
    return rc;
}
