/**
 * @file
 * Reproduces paper Fig. 7: execution time and fidelity of PowerMove
 * (with storage) under 1-4 independent AOD arrays, on the five circuits
 * the figure evaluates: 100-qubit QAOA-regular3, 20-qubit QSIM-rand-0.3,
 * 18-qubit QFT, 50-qubit VQE, and 70-qubit BV.
 */

#include <cstdio>
#include <vector>

#include "common/strings.hpp"
#include "compiler/powermove.hpp"
#include "report/table.hpp"
#include "workloads/suite.hpp"

int
main()
{
    using namespace powermove;

    const std::vector<std::string> benchmarks = {
        "QAOA-regular3-100", "QSIM-rand-0.3-20", "QFT-18", "VQE-50", "BV-70",
    };

    std::printf("=== Fig. 7: effects of multiple AODs ===\n\n");

    TextTable table({"Benchmark", "#AOD", "Texe (us)", "Speedup vs 1 AOD",
                     "Fidelity"});
    for (const auto &name : benchmarks) {
        const auto spec = findBenchmark(name);
        const Machine machine(spec.machine_config);
        const Circuit circuit = spec.build();

        double base_texe = 0.0;
        for (std::size_t aods = 1; aods <= 4; ++aods) {
            const PowerMoveCompiler compiler(machine, {true, aods});
            const auto result = compiler.compile(circuit);
            const double texe = result.metrics.exec_time.micros();
            if (aods == 1)
                base_texe = texe;
            table.addRow({name, std::to_string(aods),
                          formatGeneral(texe, 6),
                          formatRatio(base_texe / texe),
                          formatFidelity(result.metrics.fidelity())});
        }
    }
    std::printf("%s", table.toString().c_str());
    return 0;
}
