/**
 * @file
 * Reproduces paper Table 1: hardware fidelity and duration parameters,
 * including the movement-time law's calibration points.
 */

#include <cstdio>

#include "arch/params.hpp"
#include "common/strings.hpp"
#include "report/table.hpp"

int
main()
{
    using namespace powermove;
    const HardwareParams params;

    std::printf("=== Table 1: parameters on the fidelity and duration of "
                "operations on NAQC ===\n\n");

    TextTable table({"Operation", "Fidelity", "Duration"});
    table.addRow({"1Q gate", formatGeneral(params.f_one_q * 100, 6) + "%",
                  formatGeneral(params.t_one_q.micros(), 4) + " us"});
    table.addRow({"CZ gate", formatGeneral(params.f_cz * 100, 6) + "%",
                  formatGeneral(params.t_cz.micros() * 1000, 4) + " ns"});
    table.addRow({"Excitation",
                  formatGeneral(params.f_excitation * 100, 6) + "%",
                  formatGeneral(params.t_cz.micros() * 1000, 4) + " ns"});
    table.addRow({"Transfer", formatGeneral(params.f_transfer * 100, 6) + "%",
                  formatGeneral(params.t_transfer.micros(), 4) + " us"});
    std::printf("%s\n", table.toString().c_str());

    std::printf("Qubit movement: ~100%% fidelity if a < %.0f m/s^2\n",
                params.max_acceleration);
    std::printf("  t(27.5 um) = %.1f us, t(110 um) = %.1f us "
                "(t = %.0f us * sqrt(d / %.0f um))\n",
                params.moveDuration(Distance::microns(27.5)).micros(),
                params.moveDuration(Distance::microns(110.0)).micros(),
                params.move_t_ref.micros(), params.move_d_ref.microns());
    std::printf("Coherence time T2 = %.1f s; site pitch = %.0f um; "
                "zone gap = %.0f um\n",
                params.t2.seconds(), params.site_pitch.microns(),
                params.zone_gap.microns());
    return 0;
}
