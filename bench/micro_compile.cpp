/**
 * @file
 * End-to-end compile-time microbenchmark: PowerMove vs the Enola
 * baseline across program sizes. Supports the T_comp column of Table 3:
 * PowerMove's near-linear heuristics vs the baseline's iterated-MIS
 * scheduling produce a compile-time gap that widens with circuit size.
 */

#include <benchmark/benchmark.h>

#include "compiler/powermove.hpp"
#include "enola/enola.hpp"
#include "workloads/qaoa.hpp"
#include "workloads/qft.hpp"

namespace {

using namespace powermove;

void
BM_PowerMoveCompileQaoa(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Machine machine(MachineConfig::forQubits(n));
    const Circuit circuit = makeQaoaRegular(n, 3, 1, n);
    CompilerOptions options;
    options.profile_passes = false; // measure the bare pipeline
    const PowerMoveCompiler compiler(machine, options);
    for (auto _ : state) {
        auto result = compiler.compile(circuit);
        benchmark::DoNotOptimize(result);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_EnolaCompileQaoa(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Machine machine(MachineConfig::forQubits(n));
    const Circuit circuit = makeQaoaRegular(n, 3, 1, n);
    const EnolaCompiler compiler(machine);
    for (auto _ : state) {
        auto result = compiler.compile(circuit);
        benchmark::DoNotOptimize(result);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_PowerMoveCompileQft(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Machine machine(MachineConfig::forQubits(n));
    const Circuit circuit = makeQft(n);
    CompilerOptions options;
    options.profile_passes = false; // measure the bare pipeline
    const PowerMoveCompiler compiler(machine, options);
    for (auto _ : state) {
        auto result = compiler.compile(circuit);
        benchmark::DoNotOptimize(result);
    }
}

void
BM_EnolaCompileQft(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Machine machine(MachineConfig::forQubits(n));
    const Circuit circuit = makeQft(n);
    const EnolaCompiler compiler(machine);
    for (auto _ : state) {
        auto result = compiler.compile(circuit);
        benchmark::DoNotOptimize(result);
    }
}

} // namespace

BENCHMARK(BM_PowerMoveCompileQaoa)
    ->Arg(30)
    ->Arg(100)
    ->Arg(400)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();
BENCHMARK(BM_EnolaCompileQaoa)
    ->Arg(30)
    ->Arg(100)
    ->Arg(400)
    ->Arg(800)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();
BENCHMARK(BM_PowerMoveCompileQft)
    ->Arg(18)
    ->Arg(29)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EnolaCompileQft)
    ->Arg(18)
    ->Arg(29)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
