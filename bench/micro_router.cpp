/**
 * @file
 * Microbenchmarks of the movement pipeline: one continuous-router stage
 * transition, distance-aware grouping vs MIS grouping, and the AOD
 * conflict predicate itself.
 */

#include <benchmark/benchmark.h>

#include "arch/layout.hpp"
#include "common/rng.hpp"
#include "enola/mis.hpp"
#include "route/conflict.hpp"
#include "route/grouping.hpp"
#include "route/router.hpp"

namespace {

using namespace powermove;

Stage
randomMatching(std::size_t num_qubits, std::size_t pairs, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<QubitId> qubits(num_qubits);
    for (QubitId q = 0; q < num_qubits; ++q)
        qubits[q] = q;
    rng.shuffle(qubits);
    Stage stage;
    for (std::size_t p = 0; p < pairs; ++p)
        stage.gates.push_back(
            CzGate{qubits[2 * p], qubits[2 * p + 1]}.canonical());
    return stage;
}

void
BM_RouterStageTransition(benchmark::State &state)
{
    const auto n = static_cast<std::size_t>(state.range(0));
    const Machine machine(MachineConfig::forQubits(n));
    const Stage stage = randomMatching(n, n / 4, 7);
    for (auto _ : state) {
        state.PauseTiming();
        Layout layout(machine, n);
        placeRowMajor(layout, ZoneKind::Storage);
        ContinuousRouter router(machine, {true, 11});
        state.ResumeTiming();
        auto plan = router.planStageTransition(layout, stage);
        benchmark::DoNotOptimize(plan);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_RouterParkingTransition(benchmark::State &state)
{
    // Parking-dominated transition: every qubit starts in the compute
    // zone and only a few interact, so step 1 sends almost all of them
    // through the storage-slot search (the free-site-index hot path).
    const auto n = static_cast<std::size_t>(state.range(0));
    const Machine machine(MachineConfig::forQubits(n));
    const Stage stage = randomMatching(n, n / 8, 13);
    for (auto _ : state) {
        state.PauseTiming();
        Layout layout(machine, n);
        placeRowMajor(layout, ZoneKind::Compute);
        ContinuousRouter router(machine, {true, 11});
        state.ResumeTiming();
        auto plan = router.planStageTransition(layout, stage);
        benchmark::DoNotOptimize(plan);
    }
    state.SetComplexityN(state.range(0));
}

std::vector<QubitMove>
randomMoves(const Machine &machine, std::size_t count, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<QubitMove> moves;
    const auto sites = machine.numSites();
    for (QubitId q = 0; q < count; ++q) {
        moves.push_back(QubitMove{q,
                                  static_cast<SiteId>(rng.nextBelow(sites)),
                                  static_cast<SiteId>(rng.nextBelow(sites))});
    }
    return moves;
}

void
BM_DistanceAwareGrouping(benchmark::State &state)
{
    const Machine machine(MachineConfig::forQubits(256));
    const auto moves =
        randomMoves(machine, static_cast<std::size_t>(state.range(0)), 3);
    for (auto _ : state) {
        auto groups = groupMoves(machine, moves);
        benchmark::DoNotOptimize(groups);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_MisGrouping(benchmark::State &state)
{
    const Machine machine(MachineConfig::forQubits(256));
    const auto moves =
        randomMoves(machine, static_cast<std::size_t>(state.range(0)), 3);
    for (auto _ : state) {
        auto groups = groupMovesByMis(machine, moves);
        benchmark::DoNotOptimize(groups);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_ConflictPredicate(benchmark::State &state)
{
    const Machine machine(MachineConfig::forQubits(256));
    const auto moves = randomMoves(machine, 64, 5);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &a = moves[i % moves.size()];
        const auto &b = moves[(i * 31 + 7) % moves.size()];
        benchmark::DoNotOptimize(movesConflict(machine, a, b));
        ++i;
    }
}

} // namespace

BENCHMARK(BM_RouterStageTransition)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_RouterParkingTransition)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_DistanceAwareGrouping)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Complexity();
BENCHMARK(BM_MisGrouping)->RangeMultiplier(4)->Range(16, 256)->Complexity();
BENCHMARK(BM_ConflictPredicate);

BENCHMARK_MAIN();
