/**
 * @file
 * Routing-strategy comparison, fast-path differential, and the
 * fast-path speedup gate.
 *
 * For every Table 2 benchmark, all CZ gates are merged into one
 * commutable block, replicated at depth multipliers {1, 4, 16}, and
 * partitioned/ordered into the stage sequence the pipeline would hand
 * the routing pass. The harness times the routing pass — router
 * construction plus every stage transition — under three strategies:
 *
 *   continuous   the reference ContinuousRouter (paper Sec. 5)
 *   fast         FastContinuousRouter, the incremental fast path
 *   windowed     WindowedRouter at the default window of 8
 *
 * The fast path's win is eliminating the reference's per-transition
 * O(qubits + sites) scratch rebuild, so its speedup depends on the
 * stage-width : machine-size ratio. Table 2's entries (n <= 36) are
 * mover-dominated and show 1.3-2x; the asymptotic case is a narrow
 * stage on a big machine, where the rebuild is nearly all of the
 * reference's work. Dedicated scale rows (BV and VQE family instances
 * at 256-1024 qubits, depth 16) pin that regime, and the regression
 * gate — median fast-path speedup across the scale rows >= 5x — runs
 * on them in CI so the fast path can never silently decay into a
 * second copy of the reference.
 *
 * The harness also runs an untimed differential — continuous vs fast
 * over every stage sequence of every row, in both zone configurations,
 * comparing plans move-for-move and final layouts — and reports the
 * movement-quality delta the windowed search buys on the Table 2 rows
 * (total move distance and move count vs the reference).
 *
 * Flags:
 *   --smoke       one small entry per family + the scale rows
 *                 (CI mode; keeps depth 16 and the speedup gate)
 *   --json PATH   machine-readable summary (uploaded next to
 *                 BENCH_ci.json by the bench-regression job)
 *
 * Exits 1 when the differential check fails anywhere or when the
 * median scale-row speedup falls below the 5x floor; exits 2 on flag
 * errors.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "harness.hpp"
#include "report/table.hpp"
#include "route/fast_router.hpp"
#include "route/router.hpp"
#include "route/windowed_router.hpp"
#include "schedule/stage_order.hpp"
#include "schedule/stage_partition.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace powermove;
using bench::fmt;

constexpr std::uint64_t kSeed = 11;
constexpr std::uint32_t kWindow = 8;
constexpr double kMinMedianSpeedup = 5.0;

struct Entry
{
    std::string name;
    std::size_t num_qubits = 0;
    MachineConfig machine_config;
    CzBlock block; // every CZ gate of the circuit, in program order
    /** Depth multipliers this row runs at. */
    std::vector<std::size_t> depths;
    /** Speedup-gate row (deepest depth only, no windowed timing). */
    bool scale_row = false;
};

Entry
entryFromSpec(const BenchmarkSpec &spec, std::vector<std::size_t> depths,
              bool scale_row)
{
    Entry entry;
    entry.name = spec.name;
    entry.num_qubits = spec.num_qubits;
    entry.machine_config = spec.machine_config;
    entry.depths = std::move(depths);
    entry.scale_row = scale_row;
    const Circuit circuit = spec.build();
    for (const CzBlock *block : circuit.blocks()) {
        entry.block.gates.insert(entry.block.gates.end(),
                                 block->gates.begin(), block->gates.end());
    }
    return entry;
}

std::vector<Entry>
makeEntries(bool smoke)
{
    const std::vector<std::size_t> depths =
        smoke ? std::vector<std::size_t>{1, 16}
              : std::vector<std::size_t>{1, 4, 16};
    std::vector<Entry> entries;
    std::map<std::string, int> seen;
    for (const BenchmarkSpec &spec : table2Suite()) {
        if (smoke && seen[spec.family]++ > 0)
            continue;
        entries.push_back(entryFromSpec(spec, depths, false));
    }
    // The speedup-gate rows: narrow stages (BV's star touches two
    // qubits per stage; VQE's layers are shallow) on machines big
    // enough that the reference's per-transition rebuild dominates.
    for (const auto &[family, n] :
         std::initializer_list<std::pair<const char *, std::size_t>>{
             {"BV", 256}, {"BV", 1024}, {"VQE", 1024}}) {
        entries.push_back(entryFromSpec(makeFamilyInstance(family, n),
                                        {depths.back()}, true));
    }
    return entries;
}

/** @p block's gate list replicated @p depth times, as one block. */
CzBlock
atDepth(const CzBlock &block, std::size_t depth)
{
    CzBlock deep;
    deep.gates.reserve(block.gates.size() * depth);
    for (std::size_t d = 0; d < depth; ++d) {
        deep.gates.insert(deep.gates.end(), block.gates.begin(),
                          block.gates.end());
    }
    return deep;
}

/**
 * The stage sequence the pipeline would hand the routing pass. Uses
 * the linear partition strategy — bit-identical stages to the default
 * coloring path (micro_partition gates that), but without its
 * quadratic clique expansion, which would dominate this harness's
 * setup on the star-shaped BV scale rows.
 */
std::vector<Stage>
stagesFor(const CzBlock &block, std::size_t num_qubits)
{
    return orderStages(partitionIntoStagesBy(StagePartitionStrategy::Linear,
                                             block, num_qubits),
                       StageOrderOptions{});
}

/** Move count and total travel of one full routing pass (untimed). */
struct RouteOutcome
{
    std::size_t moves = 0;
    double distance_um = 0.0;
};

template <typename MakeRouter>
RouteOutcome
routeOutcome(const Machine &machine, std::size_t num_qubits,
             const std::vector<Stage> &stages, MakeRouter &&make_router)
{
    Layout layout(machine, num_qubits);
    placeRowMajor(layout, ZoneKind::Storage);
    auto router = make_router();
    RouteOutcome outcome;
    for (const Stage &stage : stages) {
        const TransitionPlan plan = router->planStageTransition(layout, stage);
        outcome.moves += plan.moves.size();
        for (const auto &move : plan.moves) {
            outcome.distance_um +=
                machine.distanceBetween(move.from, move.to).microns();
        }
    }
    return outcome;
}

/**
 * Wall time of the routing pass alone: construct the router, route
 * every stage. Outcome accumulation lives in routeOutcome so neither
 * strategy's timing carries the harness's own distance arithmetic.
 */
template <typename MakeRouter>
double
routeMicros(const Machine &machine, std::size_t num_qubits,
            const std::vector<Stage> &stages, MakeRouter &&make_router)
{
    return bench::minOfNWallMicros([&] {
        Layout layout(machine, num_qubits);
        placeRowMajor(layout, ZoneKind::Storage);
        auto router = make_router();
        for (const Stage &stage : stages) {
            const TransitionPlan plan =
                router->planStageTransition(layout, stage);
            (void)plan;
        }
    });
}

/**
 * Untimed differential: continuous vs fast over @p stages, plan by
 * plan, in one zone configuration. Returns false on any divergence.
 */
bool
differentialHolds(const Machine &machine, const std::vector<Stage> &stages,
                  std::size_t num_qubits, bool use_storage, const char *key)
{
    const RouterOptions options{use_storage, kSeed};
    ContinuousRouter reference(machine, options);
    FastContinuousRouter fast(machine, options);
    Layout ref_layout(machine, num_qubits);
    Layout fast_layout(machine, num_qubits);
    placeRowMajor(ref_layout,
                  use_storage ? ZoneKind::Storage : ZoneKind::Compute);
    fast_layout.assignFrom(ref_layout);

    for (std::size_t s = 0; s < stages.size(); ++s) {
        const auto ref_plan =
            reference.planStageTransition(ref_layout, stages[s]);
        const auto fast_plan =
            fast.planStageTransition(fast_layout, stages[s]);
        if (ref_plan.moves != fast_plan.moves ||
            ref_plan.labels != fast_plan.labels ||
            ref_plan.num_parked != fast_plan.num_parked ||
            ref_plan.num_evicted != fast_plan.num_evicted) {
            std::fprintf(stderr,
                         "%s (%s storage): fast DIVERGED from continuous at "
                         "stage %zu/%zu\n",
                         key, use_storage ? "with" : "without", s,
                         stages.size());
            return false;
        }
    }
    for (QubitId q = 0; q < num_qubits; ++q) {
        if (ref_layout.siteOf(q) != fast_layout.siteOf(q)) {
            std::fprintf(stderr,
                         "%s (%s storage): final layouts differ at qubit %u\n",
                         key, use_storage ? "with" : "without",
                         static_cast<unsigned>(q));
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "micro_router: --json needs a value\n");
                return 2;
            }
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "micro_router: unknown flag '%s'\n",
                         argv[i]);
            return 2;
        }
    }

    std::printf("=== Routing strategies: Table 2 x depth + scale rows%s "
                "===\n\n",
                smoke ? " (smoke subset)" : "");

    struct Record
    {
        std::string key;
        std::size_t stages;
        double route_us;
        std::size_t moves;
        double distance_um;
    };
    std::vector<Record> records;
    std::size_t differential_failures = 0;
    std::vector<double> gate_speedups;

    TextTable table({"Benchmark", "depth", "stages", "cont(us)", "fast(us)",
                     "speedup", "win8(us)", "dist save", "moves save"});
    const std::vector<Entry> entries = makeEntries(smoke);
    for (const Entry &entry : entries) {
        const Machine machine(entry.machine_config);
        for (const std::size_t depth : entry.depths) {
            const CzBlock block = atDepth(entry.block, depth);
            const std::vector<Stage> stages =
                stagesFor(block, entry.num_qubits);
            const std::string key_base =
                entry.name + "|x" + std::to_string(depth);

            // Differential first (both zone configurations): a timing
            // table for a router that diverges from the reference would
            // be comparing two different algorithms.
            for (const bool use_storage : {true, false}) {
                if (!differentialHolds(machine, stages, entry.num_qubits,
                                       use_storage, key_base.c_str()))
                    ++differential_failures;
            }

            const auto make_continuous = [&] {
                return std::make_unique<ContinuousRouter>(
                    machine, RouterOptions{true, kSeed});
            };
            const auto make_fast = [&] {
                return std::make_unique<FastContinuousRouter>(
                    machine, RouterOptions{true, kSeed});
            };

            const double continuous_us = routeMicros(
                machine, entry.num_qubits, stages, make_continuous);
            const double fast_us =
                routeMicros(machine, entry.num_qubits, stages, make_fast);
            const RouteOutcome continuous_out = routeOutcome(
                machine, entry.num_qubits, stages, make_continuous);
            const RouteOutcome fast_out =
                routeOutcome(machine, entry.num_qubits, stages, make_fast);

            const double speedup =
                fast_us > 0.0 ? continuous_us / fast_us : 0.0;
            if (entry.scale_row)
                gate_speedups.push_back(speedup);

            records.push_back({key_base + "|continuous", stages.size(),
                               continuous_us, continuous_out.moves,
                               continuous_out.distance_um});
            records.push_back({key_base + "|fast", stages.size(), fast_us,
                               fast_out.moves, fast_out.distance_um});

            // Movement quality: how much travel the windowed search
            // saves over the reference. Quality is the windowed path's
            // story on realistic Table 2 sizes; scale rows skip it
            // (window x thousands of stages adds minutes for a column
            // the gate never reads).
            std::string win_cell = "-", dist_cell = "-", moves_cell = "-";
            if (!entry.scale_row) {
                struct WindowedHolder
                {
                    Rng rng;
                    WindowedRouter router;
                    WindowedHolder(const Machine &machine)
                        : rng(kSeed),
                          router(machine, RouterOptions{true, kSeed},
                                 kWindow, rng)
                    {}
                    TransitionPlan
                    planStageTransition(Layout &layout, const Stage &stage)
                    {
                        return router.planStageTransition(layout, stage);
                    }
                };
                const auto make_windowed = [&] {
                    return std::make_unique<WindowedHolder>(machine);
                };
                const double windowed_us = routeMicros(
                    machine, entry.num_qubits, stages, make_windowed);
                const RouteOutcome windowed_out = routeOutcome(
                    machine, entry.num_qubits, stages, make_windowed);
                const double dist_save =
                    continuous_out.distance_um > 0.0
                        ? 100.0 *
                              (continuous_out.distance_um -
                               windowed_out.distance_um) /
                              continuous_out.distance_um
                        : 0.0;
                const double moves_save =
                    continuous_out.moves > 0
                        ? 100.0 *
                              (static_cast<double>(continuous_out.moves) -
                               static_cast<double>(windowed_out.moves)) /
                              static_cast<double>(continuous_out.moves)
                        : 0.0;
                win_cell = fmt(windowed_us, "%.1f");
                dist_cell = fmt(dist_save, "%.1f%%");
                moves_cell = fmt(moves_save, "%.1f%%");
                records.push_back({key_base + "|windowed", stages.size(),
                                   windowed_us, windowed_out.moves,
                                   windowed_out.distance_um});
            }

            table.addRow({entry.name, "x" + std::to_string(depth),
                          std::to_string(stages.size()),
                          fmt(continuous_us, "%.1f"), fmt(fast_us, "%.1f"),
                          fmt(speedup, "%.1fx"), win_cell, dist_cell,
                          moves_cell});
        }
    }
    std::printf("%s\n", table.toString().c_str());

    std::sort(gate_speedups.begin(), gate_speedups.end());
    const double min_speedup =
        gate_speedups.empty() ? 0.0 : gate_speedups.front();
    const double median_speedup =
        gate_speedups.empty() ? 0.0
                              : gate_speedups[gate_speedups.size() / 2];
    const double max_speedup =
        gate_speedups.empty() ? 0.0 : gate_speedups.back();
    std::printf("fast vs continuous on the scale rows: min %.1fx, median "
                "%.1fx, max %.1fx (floor: median >= %.1fx)\n",
                min_speedup, median_speedup, max_speedup, kMinMedianSpeedup);

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "micro_router: cannot write '%s'\n",
                         json_path.c_str());
            return 2;
        }
        out << "{\n  \"schema\": 1,\n  \"smoke\": "
            << (smoke ? "true" : "false")
            << ",\n  \"median_scale_speedup\": "
            << fmt(median_speedup, "%.2f")
            << ",\n  \"min_scale_speedup\": " << fmt(min_speedup, "%.2f")
            << ",\n  \"entries\": [\n";
        for (std::size_t i = 0; i < records.size(); ++i) {
            const Record &r = records[i];
            out << "    {\"key\": \"" << r.key
                << "\", \"stages\": " << r.stages
                << ", \"route_us\": " << fmt(r.route_us, "%.1f")
                << ", \"moves\": " << r.moves
                << ", \"distance_um\": " << fmt(r.distance_um, "%.1f") << "}"
                << (i + 1 < records.size() ? ",\n" : "\n");
        }
        out << "  ]\n}\n";
        std::printf("\nsummary written: %s\n", json_path.c_str());
    }

    if (differential_failures > 0) {
        std::fprintf(stderr, "%zu differential check(s) failed\n",
                     differential_failures);
        return 1;
    }
    if (median_speedup < kMinMedianSpeedup) {
        std::fprintf(stderr,
                     "fast-path regression: median scale-row speedup %.2fx "
                     "is below the %.1fx floor\n",
                     median_speedup, kMinMedianSpeedup);
        return 1;
    }
    return 0;
}
