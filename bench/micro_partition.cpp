/**
 * @file
 * Microbenchmark: stage partitioning cost, PowerMove's near-linear
 * greedy edge coloring (Alg. 1) vs Enola's iterated-MIS extraction.
 * The widening gap with gate count is the algorithmic core of the
 * paper's compile-time story (Sec. 7.2).
 */

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "enola/mis.hpp"
#include "schedule/stage_partition.hpp"

namespace {

using namespace powermove;

CzBlock
randomBlock(std::size_t num_qubits, std::size_t num_gates, std::uint64_t seed)
{
    Rng rng(seed);
    CzBlock block;
    block.gates.reserve(num_gates);
    while (block.gates.size() < num_gates) {
        const auto a = static_cast<QubitId>(rng.nextBelow(num_qubits));
        const auto b = static_cast<QubitId>(rng.nextBelow(num_qubits));
        if (a != b)
            block.gates.push_back(CzGate{a, b}.canonical());
    }
    return block;
}

void
BM_GreedyColoringPartition(benchmark::State &state)
{
    const auto gates = static_cast<std::size_t>(state.range(0));
    const std::size_t qubits = gates / 2 + 2;
    const CzBlock block = randomBlock(qubits, gates, 42);
    for (auto _ : state) {
        auto stages = partitionIntoStages(block, qubits);
        benchmark::DoNotOptimize(stages);
    }
    state.SetComplexityN(state.range(0));
}

void
BM_MisPartition(benchmark::State &state)
{
    const auto gates = static_cast<std::size_t>(state.range(0));
    const std::size_t qubits = gates / 2 + 2;
    const CzBlock block = randomBlock(qubits, gates, 42);
    for (auto _ : state) {
        auto stages = partitionStagesByMis(block, qubits);
        benchmark::DoNotOptimize(stages);
    }
    state.SetComplexityN(state.range(0));
}

} // namespace

BENCHMARK(BM_GreedyColoringPartition)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Complexity();
BENCHMARK(BM_MisPartition)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

BENCHMARK_MAIN();
