/**
 * @file
 * Stage-partition strategy comparison and differential harness.
 *
 * For every Table 2 benchmark, all of its CZ gates are merged into one
 * commutable block and replicated at several depth multipliers (deep
 * blocks are where the Coloring path's per-qubit clique expansion —
 * O(k^2) edges for a qubit used in k gates — dominates compile time).
 * Each block is partitioned under every StagePartitionStrategy; the
 * harness times the partition alone, checks `linear` is bit-identical
 * to `coloring` (same greedy order, same colors), checks `balanced`
 * keeps the stage count with qubit-disjoint coverage-complete stages
 * without widening any stage, and reports the linear-vs-coloring
 * speedup plus the max-stage-width reduction balanced buys. Depth-1
 * rows also time Enola's iterated-MIS extraction — the paper's
 * Sec. 7.2 compile-time comparison the pre-rewrite Google-Benchmark
 * harness carried (deeper rows skip it; iterated MIS is quadratic in
 * stages and would dominate the run).
 *
 * Flags:
 *   --smoke       one small entry per family, shallow depths (CI mode)
 *   --json PATH   machine-readable summary (uploaded next to
 *                 BENCH_ci.json by the bench-regression job)
 *
 * Stage assignments are deterministic, so the differential checks are
 * exact; only the timing columns are noisy (min-of-N on steady_clock,
 * bench/harness.hpp). Standalone main (no Google Benchmark dependency);
 * exits nonzero when any differential check fails.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "enola/mis.hpp"
#include "harness.hpp"
#include "report/table.hpp"
#include "schedule/stage_partition.hpp"
#include "workloads/suite.hpp"

namespace {

using namespace powermove;

struct Entry
{
    std::string name;
    std::size_t num_qubits = 0;
    CzBlock block; // every CZ gate of the circuit, in program order
};

std::vector<Entry>
makeEntries(bool smoke)
{
    std::vector<Entry> entries;
    std::map<std::string, int> seen;
    for (const BenchmarkSpec &spec : table2Suite()) {
        if (smoke && seen[spec.family]++ > 0)
            continue;
        Entry entry;
        entry.name = spec.name;
        entry.num_qubits = spec.num_qubits;
        const Circuit circuit = spec.build();
        for (const CzBlock *block : circuit.blocks()) {
            entry.block.gates.insert(entry.block.gates.end(),
                                     block->gates.begin(),
                                     block->gates.end());
        }
        entries.push_back(std::move(entry));
    }
    return entries;
}

/** @p block's gate list replicated @p depth times, as one block. */
CzBlock
atDepth(const CzBlock &block, std::size_t depth)
{
    CzBlock deep;
    deep.gates.reserve(block.gates.size() * depth);
    for (std::size_t d = 0; d < depth; ++d) {
        deep.gates.insert(deep.gates.end(), block.gates.begin(),
                          block.gates.end());
    }
    return deep;
}

constexpr StagePartitionStrategy kStrategies[] = {
    StagePartitionStrategy::Coloring,
    StagePartitionStrategy::Linear,
    StagePartitionStrategy::Balanced,
};

std::size_t
maxStageWidth(const std::vector<Stage> &stages)
{
    std::size_t widest = 0;
    for (const Stage &stage : stages)
        widest = std::max(widest, stage.gates.size());
    return widest;
}

bool
sameStages(const std::vector<Stage> &a, const std::vector<Stage> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t s = 0; s < a.size(); ++s) {
        if (a[s].gates != b[s].gates)
            return false;
    }
    return true;
}

/** Gates of @p stages as a sorted multiset for coverage comparison. */
std::vector<CzGate>
sortedGates(const std::vector<Stage> &stages)
{
    std::vector<CzGate> all;
    for (const Stage &stage : stages)
        for (const CzGate &gate : stage.gates)
            all.push_back(gate);
    std::sort(all.begin(), all.end());
    return all;
}

using bench::fmt;

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "micro_partition: --json needs a value\n");
                return 2;
            }
            json_path = argv[++i];
        } else {
            std::fprintf(stderr, "micro_partition: unknown flag '%s'\n",
                         argv[i]);
            return 2;
        }
    }

    // Smoke keeps the heavy star/chain entries (BV, QFT) shallow enough
    // for a CI job; the full sweep pushes depth 16 where the conflict
    // graph's clique expansion visibly dominates.
    const std::vector<std::size_t> depths =
        smoke ? std::vector<std::size_t>{1, 8}
              : std::vector<std::size_t>{1, 4, 16};

    std::printf("=== Stage-partition strategies across Table 2 x depth%s "
                "===\n\n",
                smoke ? " (smoke subset)" : "");

    struct Record
    {
        std::string key;
        std::size_t gates;
        double partition_us;
        std::size_t stages;
        std::size_t max_width;
    };
    std::vector<Record> records;
    std::size_t linear_mismatches = 0;
    std::size_t balanced_mismatches = 0;
    std::size_t checked = 0;

    const std::size_t deepest = depths.back();
    std::vector<double> deepest_speedups;
    int width_reduced = 0;
    int width_total = 0;

    TextTable table({"Benchmark", "depth", "gates", "coloring(us)",
                     "linear(us)", "speedup", "balanced(us)", "mis(us)",
                     "stages", "maxw col>bal"});
    const std::vector<Entry> entries = makeEntries(smoke);
    for (const Entry &entry : entries) {
        for (const std::size_t depth : depths) {
            const CzBlock block = atDepth(entry.block, depth);
            const std::string key_base =
                entry.name + "|x" + std::to_string(depth);

            std::map<StagePartitionStrategy, std::vector<Stage>> stages;
            std::map<StagePartitionStrategy, double> micros;
            for (const StagePartitionStrategy strategy : kStrategies) {
                stages[strategy] =
                    partitionIntoStagesBy(strategy, block, entry.num_qubits);
                micros[strategy] = bench::minOfNWallMicros([&] {
                    auto result = partitionIntoStagesBy(strategy, block,
                                                        entry.num_qubits);
                    (void)result;
                });
                records.push_back(
                    {key_base + "|" +
                         std::string(stagePartitionStrategyName(strategy)),
                     block.gates.size(), micros[strategy],
                     stages[strategy].size(),
                     maxStageWidth(stages[strategy])});
            }

            // Enola baseline, shallow rows only (Sec. 7.2 comparison).
            std::string mis_cell = "-";
            if (depth == 1) {
                const double mis_us = bench::minOfNWallMicros([&] {
                    auto result =
                        partitionStagesByMis(block, entry.num_qubits);
                    (void)result;
                });
                mis_cell = fmt(mis_us, "%.1f");
                records.push_back({key_base + "|mis", block.gates.size(),
                                   mis_us, 0, 0});
            }

            const auto &coloring = stages[StagePartitionStrategy::Coloring];
            const auto &linear = stages[StagePartitionStrategy::Linear];
            const auto &balanced = stages[StagePartitionStrategy::Balanced];

            ++checked;
            if (!sameStages(coloring, linear)) {
                std::fprintf(stderr,
                             "%s: linear DIVERGED from coloring (%zu vs %zu "
                             "stages)\n",
                             key_base.c_str(), linear.size(), coloring.size());
                ++linear_mismatches;
            }
            bool balanced_ok =
                balanced.size() == coloring.size() &&
                sortedGates(balanced) == sortedGates(coloring) &&
                maxStageWidth(balanced) <= maxStageWidth(coloring);
            for (const Stage &stage : balanced)
                balanced_ok = balanced_ok && stage.qubitsDisjoint();
            if (!balanced_ok) {
                std::fprintf(stderr,
                             "%s: balanced broke count/coverage/"
                             "disjointness/width (%zu vs %zu stages)\n",
                             key_base.c_str(), balanced.size(),
                             coloring.size());
                ++balanced_mismatches;
            }

            const double speedup =
                micros[StagePartitionStrategy::Linear] > 0.0
                    ? micros[StagePartitionStrategy::Coloring] /
                          micros[StagePartitionStrategy::Linear]
                    : 0.0;
            if (depth == deepest)
                deepest_speedups.push_back(speedup);
            width_reduced +=
                maxStageWidth(balanced) < maxStageWidth(coloring) ? 1 : 0;
            ++width_total;

            table.addRow(
                {entry.name, "x" + std::to_string(depth),
                 std::to_string(block.gates.size()),
                 fmt(micros[StagePartitionStrategy::Coloring], "%.1f"),
                 fmt(micros[StagePartitionStrategy::Linear], "%.1f"),
                 fmt(speedup, "%.1fx"),
                 fmt(micros[StagePartitionStrategy::Balanced], "%.1f"),
                 mis_cell, std::to_string(coloring.size()),
                 std::to_string(maxStageWidth(coloring)) + ">" +
                     std::to_string(maxStageWidth(balanced))});
        }
    }
    std::printf("%s\n", table.toString().c_str());

    std::sort(deepest_speedups.begin(), deepest_speedups.end());
    const double min_speedup =
        deepest_speedups.empty() ? 0.0 : deepest_speedups.front();
    const double median_speedup =
        deepest_speedups.empty()
            ? 0.0
            : deepest_speedups[deepest_speedups.size() / 2];
    std::printf("linear vs coloring at depth x%zu: min %.1fx, median %.1fx, "
                "max %.1fx\n",
                deepest, min_speedup, median_speedup,
                deepest_speedups.empty() ? 0.0 : deepest_speedups.back());
    std::printf("linear bit-identical to coloring on %zu/%zu blocks; "
                "balanced valid on %zu/%zu, max stage width reduced on "
                "%d/%d\n",
                checked - linear_mismatches, checked,
                checked - balanced_mismatches, checked, width_reduced,
                width_total);

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "micro_partition: cannot write '%s'\n",
                         json_path.c_str());
            return 2;
        }
        out << "{\n  \"schema\": 1,\n  \"smoke\": " << (smoke ? "true" : "false")
            << ",\n  \"entries\": [\n";
        for (std::size_t i = 0; i < records.size(); ++i) {
            const Record &r = records[i];
            out << "    {\"key\": \"" << r.key << "\", \"gates\": " << r.gates
                << ", \"partition_us\": " << fmt(r.partition_us, "%.1f")
                << ", \"stages\": " << r.stages
                << ", \"max_width\": " << r.max_width << "}"
                << (i + 1 < records.size() ? ",\n" : "\n");
        }
        out << "  ]\n}\n";
        std::printf("\nsummary written: %s\n", json_path.c_str());
    }

    if (linear_mismatches + balanced_mismatches > 0) {
        std::fprintf(stderr, "%zu differential check(s) failed\n",
                     linear_mismatches + balanced_mismatches);
        return 1;
    }
    return 0;
}
