/** @file Cross-module integration tests, including the Fig. 3 scenario. */

#include <gtest/gtest.h>

#include "compiler/powermove.hpp"
#include "enola/enola.hpp"
#include "fidelity/evaluator.hpp"
#include "isa/validator.hpp"
#include "qasm/converter.hpp"
#include "workloads/suite.hpp"

namespace powermove {
namespace {

/**
 * The motivating example of paper Fig. 3: stage 1 executes (1,2), (3,4),
 * (5,6); stage 2 executes (2,3) and (4,5). A direct transition without
 * care clusters qubits 4,5,6 (Fig. 3b); the continuous router must
 * resolve it without reverting to the initial layout.
 */
TEST(Fig3ScenarioTest, ContinuousRouterAvoidsClustering)
{
    Circuit circuit(6, "fig3");
    circuit.append(CzGate{0, 1});
    circuit.append(CzGate{2, 3});
    circuit.append(CzGate{4, 5});
    circuit.barrier(); // stage boundary as drawn in the figure
    circuit.append(CzGate{1, 2});
    circuit.append(CzGate{3, 4});

    const Machine machine(MachineConfig::forQubits(6));
    for (const bool storage : {false, true}) {
        const PowerMoveCompiler compiler(machine, {storage, 1});
        const auto result = compiler.compile(circuit);
        // The validator enforces exactly the no-clustering rule the
        // figure is about: co-located non-gate pairs fail validation.
        EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit));
        EXPECT_EQ(result.num_stages, 2u);
    }
}

TEST(Fig3ScenarioTest, EnolaRevertsAndPaysTwoLegs)
{
    Circuit circuit(6, "fig3");
    circuit.append(CzGate{0, 1});
    circuit.append(CzGate{2, 3});
    circuit.append(CzGate{4, 5});
    circuit.barrier();
    circuit.append(CzGate{1, 2});
    circuit.append(CzGate{3, 4});

    const Machine machine(MachineConfig::forQubits(6));
    const auto enola = EnolaCompiler(machine).compile(circuit);
    const auto ours = PowerMoveCompiler(machine, {false, 1}).compile(circuit);
    EXPECT_NO_THROW(validateAgainstCircuit(enola.schedule, circuit));
    // Enola moves every gate's mover out *and* back: 2 moves per gate.
    EXPECT_EQ(enola.schedule.numQubitMoves(), 10u);
    EXPECT_LT(ours.schedule.numQubitMoves(), enola.schedule.numQubitMoves());
}

TEST(IntegrationTest, QasmPipelineEndToEnd)
{
    // Compile a hand-written QASM program through the full stack.
    const auto loaded = qasm::loadQasm(
        "OPENQASM 2.0;\n"
        "include \"qelib1.inc\";\n"
        "qreg q[6];\n"
        "h q;\n"
        "cx q[0],q[1];\n"
        "cx q[2],q[3];\n"
        "cz q[4],q[5];\n"
        "rz(pi/8) q[0];\n"
        "cz q[1],q[2];\n");
    const Machine machine(MachineConfig::forQubits(6));
    const auto result = PowerMoveCompiler(machine).compile(loaded.circuit);
    EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, loaded.circuit));
    EXPECT_GT(result.metrics.fidelity(), 0.5);
}

TEST(IntegrationTest, EvaluatorAgreesWithCompilerMetrics)
{
    const auto spec = findBenchmark("VQE-30");
    const Machine machine(spec.machine_config);
    const auto result = PowerMoveCompiler(machine).compile(spec.build());
    const auto re_evaluated = evaluateSchedule(result.schedule);
    EXPECT_DOUBLE_EQ(re_evaluated.fidelity(), result.metrics.fidelity());
    EXPECT_DOUBLE_EQ(re_evaluated.exec_time.micros(),
                     result.metrics.exec_time.micros());
}

TEST(IntegrationTest, StorageTradesTimeForFidelityOnExcitationHeavyLoads)
{
    // QSim has many pulses with mostly idle qubits: storage should cost
    // execution time but win fidelity by a wide margin (Table 3).
    const auto spec = findBenchmark("QSIM-rand-0.3-20");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();

    const auto ns = PowerMoveCompiler(machine, {false, 1}).compile(circuit);
    const auto ws = PowerMoveCompiler(machine, {true, 1}).compile(circuit);
    EXPECT_GT(ws.metrics.exec_time.micros(), ns.metrics.exec_time.micros());
    EXPECT_GT(ws.metrics.fidelity(), 4.0 * ns.metrics.fidelity());
}

TEST(IntegrationTest, StageCountsMatchAcrossCompilers)
{
    // Both compilers use near-optimal scheduling; on QAOA instances the
    // stage counts should agree to within one stage.
    const auto spec = findBenchmark("QAOA-regular3-30");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();
    const auto ours = PowerMoveCompiler(machine).compile(circuit);
    const auto enola = EnolaCompiler(machine).compile(circuit);
    const auto diff = ours.num_stages > enola.num_stages
                          ? ours.num_stages - enola.num_stages
                          : enola.num_stages - ours.num_stages;
    EXPECT_LE(diff, 1u);
}

TEST(IntegrationTest, BiggerMachineStillValidates)
{
    // Run a small circuit on a much larger machine than required.
    MachineConfig config = MachineConfig::forQubits(100);
    const Machine machine(config);
    Circuit circuit(10);
    for (QubitId q = 0; q + 1 < 10; q += 2)
        circuit.append(CzGate{q, static_cast<QubitId>(q + 1)});
    const auto result = PowerMoveCompiler(machine).compile(circuit);
    EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit));
}

TEST(IntegrationTest, AlphaSweepPreservesValidity)
{
    const auto spec = findBenchmark("QAOA-regular3-30");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();
    for (const double alpha : {0.1, 0.3, 0.5, 0.8, 1.0}) {
        const PowerMoveCompiler compiler(machine, {true, 1, alpha});
        const auto result = compiler.compile(circuit);
        EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit))
            << "alpha=" << alpha;
    }
}

TEST(IntegrationTest, MultiAodSchedulesRemainValid)
{
    const auto spec = findBenchmark("QSIM-rand-0.3-20");
    const Machine machine(spec.machine_config);
    const Circuit circuit = spec.build();
    for (const std::size_t aods : {1u, 2u, 3u, 4u}) {
        const auto result =
            PowerMoveCompiler(machine, {true, aods}).compile(circuit);
        EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, circuit));
    }
}

} // namespace
} // namespace powermove
