/** @file Tests for QASM-to-circuit lowering. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "qasm/converter.hpp"

namespace powermove::qasm {
namespace {

TEST(ConverterTest, Native1QGates)
{
    const auto result = loadQasm(
        "qreg q[2]; h q[0]; x q[1]; sdg q[0]; rz(1.5) q[1];");
    EXPECT_EQ(result.circuit.numQubits(), 2u);
    EXPECT_EQ(result.circuit.numOneQGates(), 4u);
    EXPECT_EQ(result.circuit.numCzGates(), 0u);

    const auto &layer =
        std::get<OneQLayer>(result.circuit.moments().front());
    EXPECT_EQ(layer.gates[0].kind, OneQKind::H);
    EXPECT_EQ(layer.gates[2].kind, OneQKind::Sdg);
    EXPECT_EQ(layer.gates[3].kind, OneQKind::Rz);
    EXPECT_DOUBLE_EQ(layer.gates[3].angle, 1.5);
}

TEST(ConverterTest, NativeCz)
{
    const auto result = loadQasm("qreg q[2]; cz q[0],q[1];");
    EXPECT_EQ(result.circuit.numCzGates(), 1u);
    EXPECT_EQ(result.circuit.numOneQGates(), 0u);
}

TEST(ConverterTest, CxDecomposesToHadamardConjugatedCz)
{
    const auto result = loadQasm("qreg q[2]; cx q[0],q[1];");
    EXPECT_EQ(result.circuit.numCzGates(), 1u);
    EXPECT_EQ(result.circuit.numOneQGates(), 2u);
    // Structure: H layer, CZ block, H layer.
    ASSERT_EQ(result.circuit.moments().size(), 3u);
}

TEST(ConverterTest, CpDecomposesToTwoCz)
{
    const auto result = loadQasm("qreg q[2]; cp(pi/2) q[0],q[1];");
    EXPECT_EQ(result.circuit.numCzGates(), 2u);
}

TEST(ConverterTest, RzzDecomposesToTwoCz)
{
    const auto result = loadQasm("qreg q[2]; rzz(0.3) q[0],q[1];");
    EXPECT_EQ(result.circuit.numCzGates(), 2u);
}

TEST(ConverterTest, SwapDecomposesToThreeCz)
{
    const auto result = loadQasm("qreg q[2]; swap q[0],q[1];");
    EXPECT_EQ(result.circuit.numCzGates(), 3u);
}

TEST(ConverterTest, ToffoliDecomposesToSixCz)
{
    const auto result = loadQasm("qreg q[3]; ccx q[0],q[1],q[2];");
    EXPECT_EQ(result.circuit.numCzGates(), 6u);
}

TEST(ConverterTest, UGatesBecomeSinglePulses)
{
    const auto result = loadQasm(
        "qreg q[1]; u1(0.3) q[0]; u2(0.1,0.2) q[0]; u3(1.0,2.0,3.0) q[0];");
    EXPECT_EQ(result.circuit.numOneQGates(), 3u);
    const auto &layer =
        std::get<OneQLayer>(result.circuit.moments().front());
    EXPECT_EQ(layer.gates[0].kind, OneQKind::Rz);
    EXPECT_EQ(layer.gates[1].kind, OneQKind::U);
    EXPECT_EQ(layer.gates[2].kind, OneQKind::U);
    EXPECT_DOUBLE_EQ(layer.gates[2].angle, 1.0);
}

TEST(ConverterTest, IdentityEmitsNothing)
{
    const auto result = loadQasm("qreg q[1]; id q[0];");
    EXPECT_TRUE(result.circuit.empty());
}

TEST(ConverterTest, BroadcastAppliesPerElement)
{
    const auto result = loadQasm("qreg q[4]; h q;");
    EXPECT_EQ(result.circuit.numOneQGates(), 4u);
}

TEST(ConverterTest, BroadcastTwoRegisterGate)
{
    const auto result = loadQasm("qreg a[3]; qreg b[3]; cz a,b;");
    EXPECT_EQ(result.circuit.numCzGates(), 3u);
    // Registers map to contiguous qubit ranges: a=0..2, b=3..5.
    const auto blocks = result.circuit.blocks();
    EXPECT_EQ(blocks[0]->gates[0], (CzGate{0, 3}));
    EXPECT_EQ(blocks[0]->gates[2], (CzGate{2, 5}));
}

TEST(ConverterTest, BroadcastSizeMismatchRejected)
{
    EXPECT_THROW(loadQasm("qreg a[2]; qreg b[3]; cz a,b;"), ParseError);
}

TEST(ConverterTest, MixedBroadcastAndIndexedArgs)
{
    const auto result = loadQasm("qreg a[3]; qreg b[1]; cz a,b[0];");
    EXPECT_EQ(result.circuit.numCzGates(), 3u);
    for (const auto &gate : result.circuit.blocks()[0]->gates)
        EXPECT_TRUE(gate.touches(3));
}

TEST(ConverterTest, UserGateExpansion)
{
    const auto result = loadQasm(
        "qreg q[2];\n"
        "gate bell a,b { h a; cx a,b; }\n"
        "bell q[0],q[1];\n");
    EXPECT_EQ(result.circuit.numCzGates(), 1u);
    EXPECT_EQ(result.circuit.numOneQGates(), 3u); // h + cx's two h
}

TEST(ConverterTest, ParameterizedUserGate)
{
    const auto result = loadQasm(
        "qreg q[1];\n"
        "gate mygate(theta) a { rz(theta/2) a; rz(theta/2) a; }\n"
        "mygate(3.0) q[0];\n");
    const auto &layer =
        std::get<OneQLayer>(result.circuit.moments().front());
    ASSERT_EQ(layer.gates.size(), 2u);
    EXPECT_DOUBLE_EQ(layer.gates[0].angle, 1.5);
}

TEST(ConverterTest, NestedUserGates)
{
    const auto result = loadQasm(
        "qreg q[2];\n"
        "gate inner a,b { cz a,b; }\n"
        "gate outer a,b { inner a,b; inner b,a; }\n"
        "outer q[0],q[1];\n");
    EXPECT_EQ(result.circuit.numCzGates(), 2u);
}

TEST(ConverterTest, RecursiveGateRejected)
{
    EXPECT_THROW(loadQasm("qreg q[1];\n"
                          "gate loop a { loop a; }\n"
                          "loop q[0];\n"),
                 ParseError);
}

TEST(ConverterTest, MeasureRecordsTargets)
{
    const auto result = loadQasm(
        "qreg q[3]; creg c[3]; measure q[2] -> c[2]; measure q -> c;");
    EXPECT_EQ(result.measured, (std::vector<QubitId>{2, 0, 1, 2}));
    EXPECT_TRUE(result.circuit.empty());
}

TEST(ConverterTest, BarrierSplitsBlocks)
{
    const auto result = loadQasm(
        "qreg q[4]; cz q[0],q[1]; barrier q; cz q[2],q[3];");
    EXPECT_EQ(result.circuit.numBlocks(), 2u);
}

TEST(ConverterTest, SemanticErrors)
{
    EXPECT_THROW(loadQasm("qreg q[2]; h p[0];"), ParseError);      // bad reg
    EXPECT_THROW(loadQasm("qreg q[2]; h q[5];"), ParseError);      // bad index
    EXPECT_THROW(loadQasm("qreg q[2]; zz q[0],q[1];"), ParseError); // bad gate
    EXPECT_THROW(loadQasm("qreg q[2]; h q[0],q[1];"), ParseError); // arity
    EXPECT_THROW(loadQasm("qreg q[2]; rz q[0];"), ParseError);     // params
    EXPECT_THROW(loadQasm("creg c[2]; h c[0];"), ParseError);      // no qreg
    EXPECT_THROW(loadQasm("qreg q[2]; qreg q[3];"), ParseError);   // redecl
}

TEST(ConverterTest, MultipleQregsShareIdSpace)
{
    const auto result = loadQasm("qreg a[2]; qreg b[2]; cz a[1],b[0];");
    EXPECT_EQ(result.circuit.numQubits(), 4u);
    EXPECT_EQ(result.circuit.blocks()[0]->gates[0], (CzGate{1, 2}));
}

TEST(ConverterTest, LoadQasmFileErrors)
{
    EXPECT_THROW(loadQasmFile("/nonexistent/file.qasm"), ConfigError);
}

class IncludeResolutionTest : public ::testing::Test
{
  protected:
    void
    writeFile(const std::string &name, const std::string &content)
    {
        const std::string path = dir_ + "/" + name;
        std::ofstream out(path);
        out << content;
    }

    void
    SetUp() override
    {
        dir_ = ::testing::TempDir() + "pm_qasm_inc";
        std::filesystem::create_directories(dir_);
    }

    std::string dir_;
};

TEST_F(IncludeResolutionTest, StandardIncludeIsNative)
{
    writeFile("main.qasm",
              "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\n"
              "cx q[0],q[1];\n");
    const auto result = loadQasmFile(dir_ + "/main.qasm");
    EXPECT_EQ(result.circuit.numCzGates(), 1u);
}

TEST_F(IncludeResolutionTest, UserIncludeSuppliesGateDefinitions)
{
    writeFile("gates.inc",
              "gate zz(gamma) a,b { cx a,b; rz(2*gamma) b; cx a,b; }\n");
    writeFile("main.qasm",
              "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"
              "include \"gates.inc\";\nqreg q[2];\nzz(0.3) q[0],q[1];\n");
    const auto result = loadQasmFile(dir_ + "/main.qasm");
    EXPECT_EQ(result.circuit.numCzGates(), 2u);
}

TEST_F(IncludeResolutionTest, NestedIncludes)
{
    writeFile("inner.inc", "gate myz a { z a; }\n");
    writeFile("outer.inc",
              "include \"inner.inc\";\ngate both a { myz a; x a; }\n");
    writeFile("main.qasm",
              "include \"outer.inc\";\nqreg q[1];\nboth q[0];\n");
    const auto result = loadQasmFile(dir_ + "/main.qasm");
    EXPECT_EQ(result.circuit.numOneQGates(), 2u);
}

TEST_F(IncludeResolutionTest, CyclicIncludesRejected)
{
    writeFile("a.inc", "include \"b.inc\";\n");
    writeFile("b.inc", "include \"a.inc\";\n");
    writeFile("main.qasm", "include \"a.inc\";\nqreg q[1];\nh q[0];\n");
    EXPECT_THROW(loadQasmFile(dir_ + "/main.qasm"), ConfigError);
}

TEST_F(IncludeResolutionTest, MissingIncludeRejected)
{
    writeFile("main.qasm", "include \"ghost.inc\";\nqreg q[1];\nh q[0];\n");
    EXPECT_THROW(loadQasmFile(dir_ + "/main.qasm"), ConfigError);
}

} // namespace
} // namespace powermove::qasm
