/** @file Tests for the OpenQASM parser. */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "qasm/parser.hpp"

namespace powermove::qasm {
namespace {

TEST(ParserTest, HeaderAndIncludes)
{
    const auto program = parseProgram(
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n");
    EXPECT_EQ(program.version, "2.0");
    ASSERT_EQ(program.includes.size(), 1u);
    EXPECT_EQ(program.includes[0], "qelib1.inc");
    ASSERT_EQ(program.statements.size(), 1u);
    const auto &reg = std::get<RegDecl>(program.statements[0]);
    EXPECT_EQ(reg.name, "q");
    EXPECT_EQ(reg.size, 3u);
    EXPECT_TRUE(reg.quantum);
}

TEST(ParserTest, HeaderIsOptional)
{
    const auto program = parseProgram("qreg q[1];\nh q[0];\n");
    EXPECT_EQ(program.statements.size(), 2u);
}

TEST(ParserTest, CregDeclaration)
{
    const auto program = parseProgram("qreg q[2]; creg c[2];");
    const auto &creg = std::get<RegDecl>(program.statements[1]);
    EXPECT_FALSE(creg.quantum);
    EXPECT_EQ(creg.name, "c");
}

TEST(ParserTest, GateCallWithIndexedArgs)
{
    const auto program = parseProgram("qreg q[4]; cz q[0],q[3];");
    const auto &call = std::get<GateCall>(program.statements[1]);
    EXPECT_EQ(call.name, "cz");
    ASSERT_EQ(call.args.size(), 2u);
    EXPECT_EQ(call.args[0].reg, "q");
    EXPECT_EQ(*call.args[0].index, 0u);
    EXPECT_EQ(*call.args[1].index, 3u);
}

TEST(ParserTest, GateCallWithBroadcastArg)
{
    const auto program = parseProgram("qreg q[4]; h q;");
    const auto &call = std::get<GateCall>(program.statements[1]);
    EXPECT_FALSE(call.args[0].index.has_value());
}

TEST(ParserTest, ParameterExpressions)
{
    const auto program =
        parseProgram("qreg q[1]; rz(pi/4) q[0]; rx(-2*pi) q[0]; "
                     "ry(sin(pi/2)+3^2) q[0];");
    const auto &rz = std::get<GateCall>(program.statements[1]);
    EXPECT_NEAR(evaluateExpr(rz.params[0], {}), std::numbers::pi / 4, 1e-12);
    const auto &rx = std::get<GateCall>(program.statements[2]);
    EXPECT_NEAR(evaluateExpr(rx.params[0], {}), -2 * std::numbers::pi, 1e-12);
    const auto &ry = std::get<GateCall>(program.statements[3]);
    EXPECT_NEAR(evaluateExpr(ry.params[0], {}), 1.0 + 9.0, 1e-12);
}

TEST(ParserTest, PowerIsRightAssociative)
{
    const auto program = parseProgram("qreg q[1]; rz(2^3^2) q[0];");
    const auto &call = std::get<GateCall>(program.statements[1]);
    EXPECT_DOUBLE_EQ(evaluateExpr(call.params[0], {}), 512.0);
}

TEST(ParserTest, ParameterBindings)
{
    const auto program = parseProgram("qreg q[1]; rz(theta/2) q[0];");
    const auto &call = std::get<GateCall>(program.statements[1]);
    EXPECT_DOUBLE_EQ(evaluateExpr(call.params[0], {{"theta", 3.0}}), 1.5);
    EXPECT_THROW(evaluateExpr(call.params[0], {}), ParseError);
}

TEST(ParserTest, GateDeclaration)
{
    const auto program = parseProgram(
        "qreg q[2];\n"
        "gate bell a,b { h a; cx a,b; }\n"
        "bell q[0],q[1];\n");
    const auto &decl = std::get<GateDecl>(program.statements[1]);
    EXPECT_EQ(decl.name, "bell");
    EXPECT_TRUE(decl.params.empty());
    EXPECT_EQ(decl.qubits, (std::vector<std::string>{"a", "b"}));
    ASSERT_EQ(decl.body.size(), 2u);
    EXPECT_EQ(decl.body[0].name, "h");
    EXPECT_EQ(decl.body[1].name, "cx");
}

TEST(ParserTest, ParameterizedGateDeclaration)
{
    const auto program = parseProgram(
        "qreg q[1];\n"
        "gate phase(lambda) a { rz(lambda) a; }\n"
        "phase(pi) q[0];\n");
    const auto &decl = std::get<GateDecl>(program.statements[1]);
    EXPECT_EQ(decl.params, (std::vector<std::string>{"lambda"}));
}

TEST(ParserTest, MeasureStatement)
{
    const auto program =
        parseProgram("qreg q[2]; creg c[2]; measure q[1] -> c[1];");
    const auto &measure = std::get<MeasureStmt>(program.statements[2]);
    EXPECT_EQ(measure.source.reg, "q");
    EXPECT_EQ(*measure.source.index, 1u);
    EXPECT_EQ(measure.target_reg, "c");
}

TEST(ParserTest, MeasureWholeRegister)
{
    const auto program =
        parseProgram("qreg q[2]; creg c[2]; measure q -> c;");
    const auto &measure = std::get<MeasureStmt>(program.statements[2]);
    EXPECT_FALSE(measure.source.index.has_value());
}

TEST(ParserTest, BarrierStatement)
{
    const auto program = parseProgram("qreg q[3]; barrier q[0],q[2];");
    const auto &barrier = std::get<BarrierStmt>(program.statements[1]);
    EXPECT_EQ(barrier.args.size(), 2u);
}

TEST(ParserTest, ResetRejectedWithClearMessage)
{
    try {
        parseProgram("qreg q[1]; reset q[0];");
        FAIL() << "expected ParseError";
    } catch (const ParseError &error) {
        EXPECT_NE(std::string(error.what()).find("reset"),
                  std::string::npos);
    }
}

TEST(ParserTest, IfRejected)
{
    EXPECT_THROW(parseProgram("qreg q[1]; creg c[1]; if (c==1) x q[0];"),
                 ParseError);
}

TEST(ParserTest, SyntaxErrorsCarryPositions)
{
    try {
        parseProgram("qreg q[2];\ncz q[0] q[1];"); // missing comma
        FAIL() << "expected ParseError";
    } catch (const ParseError &error) {
        EXPECT_EQ(error.line(), 2u);
    }
}

TEST(ParserTest, ZeroSizeRegisterRejected)
{
    EXPECT_THROW(parseProgram("qreg q[0];"), ParseError);
}

TEST(ParserTest, MissingSemicolonRejected)
{
    EXPECT_THROW(parseProgram("qreg q[2]"), ParseError);
    EXPECT_THROW(parseProgram("qreg q[2]; h q[0]"), ParseError);
}

} // namespace
} // namespace powermove::qasm
