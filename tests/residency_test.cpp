/** @file Tests for the pluggable residency policies (src/reuse/policy.*).
 *
 * Three layers: policy-level unit tests pinning each implementation's
 * eviction ranking against hand-built next-use indexes; router-level
 * tests of cross-block persistence and the residency lifetime
 * invariants (randomized across every policy); and pipeline-level tests
 * of the `--residency` axis — accounting invariants over the Table 2
 * families under all four policies, plus the cross-block reuse wins the
 * per-block window policy cannot see on QSIM/QFT.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "compiler/powermove.hpp"
#include "isa/json.hpp"
#include "isa/validator.hpp"
#include "reuse/policy.hpp"
#include "reuse/router.hpp"
#include "workloads/suite.hpp"

namespace powermove {
namespace {

Stage
stageOf(std::initializer_list<CzGate> gates)
{
    Stage stage;
    stage.gates = gates;
    return stage;
}

/** Runs one partition() call and returns {holds, releases}. */
std::pair<std::vector<QubitId>, std::vector<QubitId>>
partitionOnce(ResidencyPolicyImpl &policy, const ReuseAnalysis &analysis,
              std::vector<QubitId> candidates, std::size_t stage,
              std::size_t lookahead, std::size_t capacity)
{
    std::vector<QubitId> holds;
    std::vector<QubitId> releases;
    const ResidencyQuery query{candidates, stage, stage, analysis,
                               lookahead,  capacity};
    policy.partition(query, holds, releases);
    EXPECT_EQ(holds.size() + releases.size(), candidates.size());
    std::sort(holds.begin(), holds.end());
    std::sort(releases.begin(), releases.end());
    return {holds, releases};
}

std::uint64_t
routingCounter(const CompileResult &result, const std::string &name)
{
    for (const PassProfile &profile : result.pass_profiles) {
        if (profile.pass != PassId::Routing)
            continue;
        for (const PassCounter &counter : profile.counters)
            if (counter.name == name)
                return counter.value;
    }
    ADD_FAILURE() << "routing counter not found: " << name;
    return 0;
}

CompileResult
compileWith(const Machine &machine, const Circuit &circuit,
            ResidencyPolicy residency)
{
    CompilerOptions options;
    options.routing = RoutingStrategy::Reuse;
    options.residency = residency;
    return PowerMoveCompiler(machine, options).compile(circuit);
}

// ------------------------------------------------------------ name/catalog

TEST(ResidencyNameTest, NamesRoundTripAndCatalogCoversResidency)
{
    for (const auto policy :
         {ResidencyPolicy::Lookahead, ResidencyPolicy::Lru,
          ResidencyPolicy::Lti, ResidencyPolicy::Fidelity}) {
        ResidencyPolicy parsed{};
        EXPECT_TRUE(
            parseResidencyPolicy(residencyPolicyName(policy), parsed));
        EXPECT_EQ(parsed, policy);
    }
    ResidencyPolicy untouched = ResidencyPolicy::Lti;
    EXPECT_FALSE(parseResidencyPolicy("bogus", untouched));
    EXPECT_EQ(untouched, ResidencyPolicy::Lti);

    bool saw_residency = false;
    for (const StrategyCatalogEntry &entry : strategyCatalog()) {
        if (entry.dimension != "residency")
            continue;
        saw_residency = true;
        EXPECT_EQ(entry.flag, "--residency");
        ASSERT_EQ(entry.values.size(), 4u);
        EXPECT_EQ(entry.values[0], "lookahead"); // default first
        EXPECT_EQ(entry.values[1], "lru");
        EXPECT_EQ(entry.values[2], "lti");
        EXPECT_EQ(entry.values[3], "fidelity");
    }
    EXPECT_TRUE(saw_residency);
}

// ------------------------------------------------------------ policy units

const HardwareParams &
defaultParams()
{
    static const Machine machine(MachineConfig::forQubits(4));
    return machine.params();
}

TEST(ResidencyPolicyTest, LookaheadMatchesTheWindowDecision)
{
    ReuseAnalysis analysis;
    analysis.beginBlock({stageOf({{0, 1}}), stageOf({{2, 3}}),
                         stageOf({{2, 3}}), stageOf({{0, 1}})},
                        4);
    const auto policy = makeResidencyPolicy(ResidencyPolicy::Lookahead, 1,
                                            defaultParams());
    EXPECT_EQ(policy->kind(), ResidencyPolicy::Lookahead);
    EXPECT_FALSE(policy->persistsAcrossBlocks());

    // Stage 1: qubits 0 and 1 idle, next use at stage 3 (distance 2).
    // A window of 1 parks them both...
    auto [holds, releases] =
        partitionOnce(*policy, analysis, {0, 1}, 1, 1, 100);
    EXPECT_TRUE(holds.empty());
    EXPECT_EQ(releases, (std::vector<QubitId>{0, 1}));

    // ...and a window of 2 holds them both, regardless of capacity
    // (the window policy leaves displacement to the router's step 4).
    const auto wide = makeResidencyPolicy(ResidencyPolicy::Lookahead, 2,
                                          defaultParams());
    std::tie(holds, releases) =
        partitionOnce(*wide, analysis, {0, 1}, 1, 2, 0);
    EXPECT_EQ(holds, (std::vector<QubitId>{0, 1}));
    EXPECT_TRUE(releases.empty());
}

TEST(ResidencyPolicyTest, LruEvictsTheLeastRecentlyUsedUnderPressure)
{
    ReuseAnalysis analysis;
    analysis.beginBlock({stageOf({{0, 1}})}, 4);
    const auto policy =
        makeResidencyPolicy(ResidencyPolicy::Lru, 4, defaultParams());
    EXPECT_TRUE(policy->persistsAcrossBlocks());
    policy->beginProgram(4);
    policy->noteInteraction(0, 0);
    policy->noteInteraction(1, 1);
    policy->noteInteraction(2, 2);

    // No pressure: everything stays resident.
    auto [holds, releases] =
        partitionOnce(*policy, analysis, {0, 1, 2}, 0, 4, 3);
    EXPECT_EQ(holds, (std::vector<QubitId>{0, 1, 2}));

    // Capacity 2: the stalest stamp (qubit 0) is evicted first.
    std::tie(holds, releases) =
        partitionOnce(*policy, analysis, {0, 1, 2}, 0, 4, 2);
    EXPECT_EQ(holds, (std::vector<QubitId>{1, 2}));
    EXPECT_EQ(releases, (std::vector<QubitId>{0}));

    // Zero capacity: full flush.
    std::tie(holds, releases) =
        partitionOnce(*policy, analysis, {0, 1, 2}, 0, 4, 0);
    EXPECT_TRUE(holds.empty());
    EXPECT_EQ(releases, (std::vector<QubitId>{0, 1, 2}));

    // Never-interacted qubits are the oldest of all, and ties break
    // toward the lower qubit id.
    const auto fresh =
        makeResidencyPolicy(ResidencyPolicy::Lru, 4, defaultParams());
    fresh->beginProgram(4);
    std::tie(holds, releases) =
        partitionOnce(*fresh, analysis, {1, 2, 3}, 0, 4, 1);
    EXPECT_EQ(holds, (std::vector<QubitId>{3}));
    EXPECT_EQ(releases, (std::vector<QubitId>{1, 2}));
}

TEST(ResidencyPolicyTest, LtiEvictsTheFarthestNextUse)
{
    // Next uses after stage 1: qubit 0 -> stage 3, qubit 1 -> stage 2,
    // qubit 2 -> never (farthest of all under Belady).
    ReuseAnalysis analysis;
    analysis.beginBlock({stageOf({{0, 1}}), stageOf({{4, 5}}),
                         stageOf({{1, 3}}), stageOf({{0, 3}})},
                        6);
    const auto policy =
        makeResidencyPolicy(ResidencyPolicy::Lti, 4, defaultParams());
    EXPECT_TRUE(policy->persistsAcrossBlocks());

    auto [holds, releases] =
        partitionOnce(*policy, analysis, {0, 1, 2}, 1, 4, 2);
    EXPECT_EQ(holds, (std::vector<QubitId>{0, 1}));
    EXPECT_EQ(releases, (std::vector<QubitId>{2}));

    std::tie(holds, releases) =
        partitionOnce(*policy, analysis, {0, 1, 2}, 1, 4, 1);
    EXPECT_EQ(holds, (std::vector<QubitId>{1})); // soonest next use
    EXPECT_EQ(releases, (std::vector<QubitId>{0, 2}));
}

TEST(ResidencyPolicyTest, FidelityHoldsOnlyWithinBreakEven)
{
    const double break_even = fidelityBreakEvenStages(defaultParams());
    // Table 1 defaults: the storage round trip outweighs one stage of
    // residency but not two — reuse pays only back-to-back.
    EXPECT_GT(break_even, 1.0);
    EXPECT_LT(break_even, 2.0);

    const auto policy = makeResidencyPolicy(ResidencyPolicy::Fidelity, 4,
                                            defaultParams());
    EXPECT_TRUE(policy->persistsAcrossBlocks());

    // Qubit 0's next use after stage 1 is stage 2 (distance 1, inside
    // break-even -> hold); qubit 1's is stage 3 (distance 2, outside ->
    // release); qubit 2 never interacts again in a non-final block, so
    // holding it is a cross-block bet priced at distance 3 -> release.
    ReuseAnalysis analysis;
    analysis.beginBlock({stageOf({{0, 1}}), stageOf({{4, 5}}),
                         stageOf({{0, 4}}), stageOf({{1, 4}})},
                        6);
    auto [holds, releases] =
        partitionOnce(*policy, analysis, {0, 1, 2}, 1, 4, 100);
    EXPECT_EQ(holds, (std::vector<QubitId>{0}));
    EXPECT_EQ(releases, (std::vector<QubitId>{1, 2}));
}

// ------------------------------------------------------------ router level

TEST(ResidencyRouterTest, PersistentPoliciesCarryResidencyAcrossBlocks)
{
    const Machine machine(MachineConfig::forQubits(4));
    const std::vector<Stage> first_block{stageOf({{0, 1}}),
                                         stageOf({{2, 3}})};
    const std::vector<Stage> final_block{stageOf({{0, 1}})};

    // With a window of 1 the lookahead policy parks qubits 0 and 1 at
    // the second transition (no further use inside the block), and the
    // final block starts cold: no reuse hits anywhere.
    {
        ReuseAwareRouter router(machine, {1, 0xC0FFEE,
                                          ResidencyPolicy::Lookahead});
        Layout layout(machine, 4);
        placeRowMajor(layout, ZoneKind::Storage);
        router.beginBlock(first_block, 4);
        for (const Stage &stage : first_block)
            router.planStageTransition(layout, stage);
        EXPECT_EQ(router.numResidents(), 0u);
        router.beginBlock(final_block, 4, /*final_block=*/true);
        const auto plan =
            router.planStageTransition(layout, final_block.front());
        EXPECT_EQ(plan.num_reuse_hits, 0u);
        router.endProgram();
    }

    // The Belady policy instead keeps them resident across the block
    // boundary, and the final block's gate consumes both residents.
    {
        ReuseAwareRouter router(machine,
                                {1, 0xC0FFEE, ResidencyPolicy::Lti});
        Layout layout(machine, 4);
        placeRowMajor(layout, ZoneKind::Storage);
        router.beginBlock(first_block, 4);
        for (const Stage &stage : first_block)
            router.planStageTransition(layout, stage);
        EXPECT_EQ(router.numResidents(), 2u);
        EXPECT_TRUE(router.isResident(0));
        EXPECT_TRUE(router.isResident(1));
        router.beginBlock(final_block, 4, /*final_block=*/true);
        EXPECT_EQ(router.numResidents(), 2u) << "survived the boundary";
        const auto plan =
            router.planStageTransition(layout, final_block.front());
        EXPECT_EQ(plan.num_reuse_hits, 2u);
        router.endProgram();
        EXPECT_EQ(router.numResidents(), 0u);
        EXPECT_EQ(router.residencyStats().holds_started,
                  router.residencyStats().holds_ended);
    }
}

/** Random qubit-disjoint stage: 1..n/2 gate pairs drawn by shuffle. */
Stage
randomStage(Rng &rng, std::size_t num_qubits)
{
    std::vector<QubitId> order(num_qubits);
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size() - 1; i > 0; --i)
        std::swap(order[i], order[rng.nextBelow(i + 1)]);
    const std::size_t pairs = 1 + rng.nextBelow(num_qubits / 2);
    Stage stage;
    for (std::size_t p = 0; p < pairs; ++p)
        stage.gates.push_back({order[2 * p], order[2 * p + 1]});
    return stage;
}

TEST(ResidencyRouterTest, LifetimeInvariantsHoldAcrossRandomPrograms)
{
    for (const auto policy :
         {ResidencyPolicy::Lookahead, ResidencyPolicy::Lru,
          ResidencyPolicy::Lti, ResidencyPolicy::Fidelity}) {
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
            for (const std::size_t n : {4u, 9u}) {
                Rng rng(seed * 1000 + n);
                const Machine machine(MachineConfig::forQubits(n));
                ReuseAwareRouter router(machine, {2, seed, policy});
                Layout layout(machine, n);
                placeRowMajor(layout, ZoneKind::Storage);

                const std::size_t num_blocks = 2 + rng.nextBelow(3);
                for (std::size_t b = 0; b < num_blocks; ++b) {
                    std::vector<Stage> stages;
                    const std::size_t num_stages = 1 + rng.nextBelow(3);
                    for (std::size_t s = 0; s < num_stages; ++s)
                        stages.push_back(randomStage(rng, n));
                    router.beginBlock(stages, n, b + 1 == num_blocks);
                    for (const Stage &stage : stages) {
                        router.planStageTransition(layout, stage);
                        // Open spans == current residents, and every
                        // resident really sits in the compute zone.
                        const ResidencyStats &stats =
                            router.residencyStats();
                        ASSERT_EQ(stats.holds_started - stats.holds_ended,
                                  router.numResidents());
                        for (QubitId q = 0; q < n; ++q) {
                            if (!router.isResident(q))
                                continue;
                            EXPECT_EQ(layout.zoneOf(q), ZoneKind::Compute)
                                << "policy="
                                << residencyPolicyName(policy)
                                << " seed=" << seed << " qubit=" << q;
                        }
                    }
                }
                router.endProgram();
                const ResidencyStats &stats = router.residencyStats();
                EXPECT_EQ(stats.holds_started, stats.holds_ended)
                    << "policy=" << residencyPolicyName(policy)
                    << " seed=" << seed << " n=" << n;
                EXPECT_EQ(router.numResidents(), 0u);
            }
        }
    }
}

// ---------------------------------------------------------- pipeline level

TEST(ResidencyPipelineTest, DefaultIsLookaheadAndEveryPolicyIsDeterministic)
{
    const Machine machine(MachineConfig::forQubits(10));
    const Circuit circuit = findBenchmark("QSIM-rand-0.3-10").build();

    CompilerOptions defaults;
    defaults.routing = RoutingStrategy::Reuse;
    EXPECT_EQ(defaults.residency, ResidencyPolicy::Lookahead);
    const auto implicit =
        PowerMoveCompiler(machine, defaults).compile(circuit);
    const auto explicit_lookahead =
        compileWith(machine, circuit, ResidencyPolicy::Lookahead);
    EXPECT_EQ(scheduleToJson(implicit.schedule),
              scheduleToJson(explicit_lookahead.schedule));

    for (const auto policy :
         {ResidencyPolicy::Lru, ResidencyPolicy::Lti,
          ResidencyPolicy::Fidelity}) {
        const auto a = compileWith(machine, circuit, policy);
        const auto b = compileWith(machine, circuit, policy);
        EXPECT_EQ(scheduleToJson(a.schedule), scheduleToJson(b.schedule))
            << residencyPolicyName(policy);
    }
}

TEST(ResidencyPipelineTest, AccountingInvariantsHoldForEveryPolicy)
{
    // One representative entry per family keeps this sweep cheap; the
    // full-suite version runs in bench/micro_reuse as a CI gate.
    const std::vector<BenchmarkSpec> suite = table2Suite();
    std::vector<std::string> picked;
    std::vector<const BenchmarkSpec *> specs;
    for (const BenchmarkSpec &spec : suite) {
        if (std::find(picked.begin(), picked.end(), spec.family) !=
            picked.end())
            continue;
        picked.push_back(spec.family);
        specs.push_back(&spec);
    }
    for (const BenchmarkSpec *spec : specs) {
        const Machine machine(spec->machine_config);
        const Circuit circuit = spec->build();
        for (const auto policy :
             {ResidencyPolicy::Lookahead, ResidencyPolicy::Lru,
              ResidencyPolicy::Lti, ResidencyPolicy::Fidelity}) {
            const auto result = compileWith(machine, circuit, policy);
            const std::string tag = spec->name + std::string("/") +
                                    std::string(residencyPolicyName(policy));
            EXPECT_NO_THROW(
                validateAgainstCircuit(result.schedule, circuit))
                << tag;
            EXPECT_GT(result.metrics.fidelity(), 0.0) << tag;
            // Satellite bugfixes, pinned per policy: the miss split is
            // exact, and no residency span leaks past program end.
            EXPECT_EQ(routingCounter(result, "parked_no_reuse") +
                          routingCounter(result, "window_misses"),
                      routingCounter(result, "lookahead_misses"))
                << tag;
            EXPECT_EQ(routingCounter(result, "residency_holds_started"),
                      routingCounter(result, "residency_holds_ended"))
                << tag;
        }
    }
}

TEST(ResidencyPipelineTest, LtiFindsCrossBlockReuseTheWindowCannot)
{
    // QSIM circuits interleave 1Q layers between CZ moments, so every
    // block is a single stage and the per-block window can never hold:
    // lookahead measures zero reuse hits. Persistent Belady residency
    // turns the block-boundary parks into hits and plans fewer moves.
    {
        const BenchmarkSpec &spec = findBenchmark("QSIM-rand-0.3-10");
        const Machine machine(spec.machine_config);
        const Circuit circuit = spec.build();
        const auto window =
            compileWith(machine, circuit, ResidencyPolicy::Lookahead);
        const auto belady =
            compileWith(machine, circuit, ResidencyPolicy::Lti);
        EXPECT_EQ(routingCounter(window, "lookahead_hits"), 0u);
        EXPECT_GT(routingCounter(belady, "lookahead_hits"), 0u);
        EXPECT_LT(belady.schedule.numQubitMoves(),
                  window.schedule.numQubitMoves());
    }
    // QFT: one block per target qubit, within-block reuse is thin but
    // cross-block reuse is massive (every prefix qubit returns in every
    // later block).
    {
        const BenchmarkSpec &spec = findBenchmark("QFT-18");
        const Machine machine(spec.machine_config);
        const Circuit circuit = spec.build();
        const auto window =
            compileWith(machine, circuit, ResidencyPolicy::Lookahead);
        const auto belady =
            compileWith(machine, circuit, ResidencyPolicy::Lti);
        EXPECT_GT(routingCounter(belady, "lookahead_hits"),
                  routingCounter(window, "lookahead_hits"));
        EXPECT_LT(belady.schedule.numQubitMoves(),
                  window.schedule.numQubitMoves());
    }
    // BV has a single (final) CZ block, so cross-block hits are
    // impossible for every policy; persistent residency must still
    // never plan more moves than the window policy.
    {
        const BenchmarkSpec &spec = findBenchmark("BV-14");
        const Machine machine(spec.machine_config);
        const Circuit circuit = spec.build();
        const auto window =
            compileWith(machine, circuit, ResidencyPolicy::Lookahead);
        const auto belady =
            compileWith(machine, circuit, ResidencyPolicy::Lti);
        EXPECT_EQ(routingCounter(belady, "lookahead_hits"), 0u);
        EXPECT_LE(belady.schedule.numQubitMoves(),
                  window.schedule.numQubitMoves());
    }
}

} // namespace
} // namespace powermove
