/**
 * @file
 * Tests for the leveled logfmt logger: line shape, quoting, level
 * filtering, and level parsing.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "obs/log.hpp"

namespace powermove::obs {
namespace {

/** Captures a logger's output through a tmpfile. */
class CapturedLogger
{
  public:
    explicit CapturedLogger(LogLevel level)
        : file_(std::tmpfile()), logger_(level, file_)
    {
    }

    ~CapturedLogger()
    {
        if (file_ != nullptr)
            std::fclose(file_);
    }

    Logger &logger() { return logger_; }

    std::string
    text()
    {
        std::fflush(file_);
        std::rewind(file_);
        std::string out;
        char buffer[4096];
        std::size_t n;
        while ((n = std::fread(buffer, 1, sizeof(buffer), file_)) > 0)
            out.append(buffer, n);
        return out;
    }

  private:
    std::FILE *file_;
    Logger logger_;
};

TEST(LogLevelTest, NamesAndParsingRoundTrip)
{
    for (const LogLevel level :
         {LogLevel::Trace, LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
          LogLevel::Error, LogLevel::Off}) {
        LogLevel parsed = LogLevel::Info;
        ASSERT_TRUE(parseLogLevel(logLevelName(level), parsed));
        EXPECT_EQ(parsed, level);
    }
    LogLevel parsed = LogLevel::Info;
    EXPECT_FALSE(parseLogLevel("verbose", parsed));
    EXPECT_FALSE(parseLogLevel("", parsed));
}

TEST(LoggerTest, EmitsLogfmtLines)
{
    CapturedLogger capture(LogLevel::Info);
    capture.logger().info("job_finished",
                          {{"job", 42}, {"total_ms", 1.5}, {"state", "done"}});

    const std::string text = capture.text();
    EXPECT_NE(text.find("ts="), std::string::npos);
    EXPECT_NE(text.find(" level=info"), std::string::npos);
    EXPECT_NE(text.find(" event=job_finished"), std::string::npos);
    EXPECT_NE(text.find(" job=42"), std::string::npos);
    EXPECT_NE(text.find(" total_ms=1.5"), std::string::npos);
    EXPECT_NE(text.find(" state=done"), std::string::npos);
    EXPECT_EQ(text.find('\n'), text.size() - 1); // exactly one line
    EXPECT_EQ(capture.logger().linesWritten(), 1u);
}

TEST(LoggerTest, QuotesValuesThatNeedIt)
{
    CapturedLogger capture(LogLevel::Info);
    capture.logger().info("failure", {{"error", "no such file"},
                                      {"expr", "a=b"},
                                      {"quoted", "say \"hi\""}});

    const std::string text = capture.text();
    EXPECT_NE(text.find("error=\"no such file\""), std::string::npos);
    EXPECT_NE(text.find("expr=\"a=b\""), std::string::npos);
    EXPECT_NE(text.find("quoted=\"say \\\"hi\\\"\""), std::string::npos);
}

TEST(LoggerTest, DropsEventsBelowTheLevel)
{
    CapturedLogger capture(LogLevel::Warn);
    Logger &logger = capture.logger();
    EXPECT_FALSE(logger.enabled(LogLevel::Debug));
    EXPECT_FALSE(logger.enabled(LogLevel::Info));
    EXPECT_TRUE(logger.enabled(LogLevel::Warn));
    EXPECT_TRUE(logger.enabled(LogLevel::Error));

    logger.debug("dropped");
    logger.info("dropped");
    logger.warn("kept_warn");
    logger.error("kept_error");

    const std::string text = capture.text();
    EXPECT_EQ(text.find("dropped"), std::string::npos);
    EXPECT_NE(text.find("event=kept_warn"), std::string::npos);
    EXPECT_NE(text.find("event=kept_error"), std::string::npos);
    EXPECT_EQ(logger.linesWritten(), 2u);
}

TEST(LoggerTest, OffSilencesEverythingAndSetLevelReopens)
{
    CapturedLogger capture(LogLevel::Off);
    Logger &logger = capture.logger();
    EXPECT_FALSE(logger.enabled(LogLevel::Error));
    logger.error("silenced");
    EXPECT_EQ(logger.linesWritten(), 0u);

    logger.setLevel(LogLevel::Trace);
    EXPECT_EQ(logger.level(), LogLevel::Trace);
    EXPECT_TRUE(logger.enabled(LogLevel::Trace));
    logger.log(LogLevel::Trace, "visible");
    EXPECT_EQ(logger.linesWritten(), 1u);
    EXPECT_NE(capture.text().find("level=trace"), std::string::npos);
}

TEST(LoggerTest, IntegerFieldTypesRender)
{
    CapturedLogger capture(LogLevel::Info);
    capture.logger().info("sizes", {{"a", std::size_t{7}},
                                    {"b", std::int64_t{-3}},
                                    {"c", std::uint64_t{9}},
                                    {"d", -1}});
    const std::string text = capture.text();
    EXPECT_NE(text.find(" a=7"), std::string::npos);
    EXPECT_NE(text.find(" b=-3"), std::string::npos);
    EXPECT_NE(text.find(" c=9"), std::string::npos);
    EXPECT_NE(text.find(" d=-1"), std::string::npos);
}

} // namespace
} // namespace powermove::obs
