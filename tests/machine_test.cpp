/** @file Tests for the zoned machine geometry. */

#include <gtest/gtest.h>

#include "arch/machine.hpp"
#include "common/error.hpp"

namespace powermove {
namespace {

TEST(MachineConfigTest, ForQubitsMatchesPaperSizingRule)
{
    // Table 2 cross-checks: compute 15*ceil(sqrt(n)) square, storage
    // double-height, 30um gap.
    const auto c30 = MachineConfig::forQubits(30);
    EXPECT_EQ(c30.compute_cols, 6);
    EXPECT_EQ(c30.compute_rows, 6);
    EXPECT_EQ(c30.storage_cols, 6);
    EXPECT_EQ(c30.storage_rows, 12);
    EXPECT_EQ(c30.computeZoneExtent(), "90 x 90");
    EXPECT_EQ(c30.interZoneExtent(), "90 x 30");
    EXPECT_EQ(c30.storageZoneExtent(), "90 x 180");

    EXPECT_EQ(MachineConfig::forQubits(40).computeZoneExtent(), "105 x 105");
    EXPECT_EQ(MachineConfig::forQubits(50).computeZoneExtent(), "120 x 120");
    EXPECT_EQ(MachineConfig::forQubits(60).computeZoneExtent(), "120 x 120");
    EXPECT_EQ(MachineConfig::forQubits(80).computeZoneExtent(), "135 x 135");
    EXPECT_EQ(MachineConfig::forQubits(100).computeZoneExtent(), "150 x 150");
    EXPECT_EQ(MachineConfig::forQubits(14).computeZoneExtent(), "60 x 60");
    EXPECT_EQ(MachineConfig::forQubits(14).storageZoneExtent(), "60 x 120");
    EXPECT_EQ(MachineConfig::forQubits(18).computeZoneExtent(), "75 x 75");
    EXPECT_EQ(MachineConfig::forQubits(29).computeZoneExtent(), "90 x 90");
}

TEST(MachineConfigTest, ZeroQubitsRejected)
{
    EXPECT_THROW(MachineConfig::forQubits(0), ConfigError);
}

TEST(MachineTest, SiteCountsByZone)
{
    const Machine machine(MachineConfig::forQubits(30));
    EXPECT_EQ(machine.numComputeSites(), 36u);
    EXPECT_EQ(machine.numStorageSites(), 72u);
    EXPECT_EQ(machine.numSites(), 108u);
}

TEST(MachineTest, ZoneClassification)
{
    const Machine machine(MachineConfig::forQubits(30));
    EXPECT_EQ(machine.zoneOf(0), ZoneKind::Compute);
    EXPECT_EQ(machine.zoneOf(35), ZoneKind::Compute);
    EXPECT_EQ(machine.zoneOf(36), ZoneKind::Storage);
    EXPECT_EQ(machine.zoneOf(107), ZoneKind::Storage);
}

TEST(MachineTest, CoordSiteRoundTrip)
{
    const Machine machine(MachineConfig::forQubits(30));
    for (SiteId site = 0; site < machine.numSites(); ++site) {
        const auto coord = machine.coordOf(site);
        EXPECT_TRUE(machine.isSite(coord));
        EXPECT_EQ(machine.siteAt(coord), site);
    }
}

TEST(MachineTest, GapRowsHoldNoSites)
{
    const Machine machine(MachineConfig::forQubits(30));
    // Compute rows are 0..5; gap rows 6..7; storage rows 8..19.
    EXPECT_FALSE(machine.isSite(SiteCoord{0, 6}));
    EXPECT_FALSE(machine.isSite(SiteCoord{5, 7}));
    EXPECT_TRUE(machine.isSite(SiteCoord{0, 5}));
    EXPECT_TRUE(machine.isSite(SiteCoord{0, 8}));
    EXPECT_EQ(machine.storageTopRow(), 8);
    EXPECT_EQ(machine.computeBottomRow(), 6);
}

TEST(MachineTest, OutOfBoundsCoordinates)
{
    const Machine machine(MachineConfig::forQubits(30));
    EXPECT_FALSE(machine.isSite(SiteCoord{-1, 0}));
    EXPECT_FALSE(machine.isSite(SiteCoord{0, -1}));
    EXPECT_FALSE(machine.isSite(SiteCoord{6, 0}));
    EXPECT_FALSE(machine.isSite(SiteCoord{0, 20}));
}

TEST(MachineTest, PhysicalPitchWithinZones)
{
    const Machine machine(MachineConfig::forQubits(30));
    const auto a = machine.physOf(machine.siteAt(SiteCoord{0, 0}));
    const auto b = machine.physOf(machine.siteAt(SiteCoord{1, 0}));
    const auto c = machine.physOf(machine.siteAt(SiteCoord{0, 1}));
    EXPECT_DOUBLE_EQ(euclidean(a, b).microns(), 15.0);
    EXPECT_DOUBLE_EQ(euclidean(a, c).microns(), 15.0);
}

TEST(MachineTest, InterZoneGapIs30Microns)
{
    const Machine machine(MachineConfig::forQubits(30));
    // Last compute row is y=5 (physical 75um); first storage row should
    // sit at 90 (compute height) + 30 (gap) = 120um.
    const auto bottom_compute = machine.physOf(machine.siteAt(SiteCoord{0, 5}));
    const auto top_storage = machine.physOf(machine.siteAt(SiteCoord{0, 8}));
    EXPECT_DOUBLE_EQ(bottom_compute.y, 75.0);
    EXPECT_DOUBLE_EQ(top_storage.y, 120.0);
    EXPECT_DOUBLE_EQ(top_storage.y - bottom_compute.y, 45.0);
}

TEST(MachineTest, DistanceBetweenZones)
{
    const Machine machine(MachineConfig::forQubits(30));
    const SiteId compute = machine.siteAt(SiteCoord{2, 5});
    const SiteId storage = machine.siteAt(SiteCoord{2, 8});
    EXPECT_DOUBLE_EQ(machine.distanceBetween(compute, storage).microns(), 45.0);
    EXPECT_DOUBLE_EQ(machine.distanceBetween(compute, compute).microns(), 0.0);
}

TEST(MachineTest, ComputeAndStorageSiteLists)
{
    const Machine machine(MachineConfig::forQubits(30));
    const auto compute = machine.computeSites();
    const auto storage = machine.storageSites();
    EXPECT_EQ(compute.size(), 36u);
    EXPECT_EQ(storage.size(), 72u);
    EXPECT_EQ(compute.front(), 0u);
    EXPECT_EQ(storage.front(), 36u);
    // Storage list starts at the row nearest the compute zone.
    EXPECT_EQ(machine.coordOf(storage.front()).y, machine.storageTopRow());
}

TEST(MachineTest, ZoneKindNames)
{
    EXPECT_EQ(zoneKindName(ZoneKind::Compute), "compute");
    EXPECT_EQ(zoneKindName(ZoneKind::Storage), "storage");
}

TEST(MachineTest, StoragelessMachineIsLegal)
{
    MachineConfig config;
    config.compute_cols = 4;
    config.compute_rows = 4;
    config.storage_cols = 0;
    config.storage_rows = 0;
    const Machine machine(config);
    EXPECT_EQ(machine.numStorageSites(), 0u);
    EXPECT_EQ(machine.numSites(), 16u);
}

TEST(MachineTest, InvalidConfigsRejected)
{
    MachineConfig config;
    config.compute_cols = 0;
    config.compute_rows = 4;
    EXPECT_THROW(Machine{config}, ConfigError);

    MachineConfig negative = MachineConfig::forQubits(4);
    negative.gap_rows = -1;
    EXPECT_THROW(Machine{negative}, ConfigError);
}

} // namespace
} // namespace powermove
