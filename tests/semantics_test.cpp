/** @file Semantic-equivalence tests via exact simulation.
 *
 * These tests prove unitary equivalence (not just matching gate counts)
 * for the circuit transformation passes, the QASM decompositions, and
 * the writer round trip, by comparing state evolution on random input
 * states.
 */

#include <gtest/gtest.h>

#include "circuit/fuse.hpp"
#include "circuit/transform.hpp"
#include "common/rng.hpp"
#include "qasm/converter.hpp"
#include "qasm/writer.hpp"
#include "sim/statevector.hpp"

namespace powermove {
namespace {

constexpr double kEps = 1e-9;

/** |<psi|A|x> vs <psi|B|x>| agreement on random states. */
void
expectEquivalent(const Circuit &a, const Circuit &b, std::uint64_t seed,
                 int trials = 4)
{
    ASSERT_EQ(a.numQubits(), b.numQubits());
    Rng rng(seed);
    for (int t = 0; t < trials; ++t) {
        StateVector sa = StateVector::random(a.numQubits(), rng);
        StateVector sb = sa;
        sa.applyCircuit(a);
        sb.applyCircuit(b);
        EXPECT_NEAR(StateVector::overlap(sa, sb), 1.0, kEps)
            << "trial " << t;
    }
}

Circuit
randomCircuit(std::size_t num_qubits, std::uint64_t seed)
{
    Rng rng(seed);
    Circuit circuit(num_qubits);
    for (int m = 0; m < 30; ++m) {
        if (rng.nextBool(0.5)) {
            static const OneQKind kinds[] = {
                OneQKind::H,  OneQKind::X,   OneQKind::Z, OneQKind::S,
                OneQKind::T,  OneQKind::Rz,  OneQKind::Rx};
            circuit.append(OneQGate{
                kinds[rng.nextBelow(7)],
                static_cast<QubitId>(rng.nextBelow(num_qubits)),
                rng.nextDouble() * 3.0});
        } else {
            const auto a = static_cast<QubitId>(rng.nextBelow(num_qubits));
            const auto b = static_cast<QubitId>(rng.nextBelow(num_qubits));
            if (a != b)
                circuit.append(CzGate{a, b});
        }
    }
    return circuit;
}

// ---- transformation passes -------------------------------------------

class PassSemantics : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(PassSemantics, BlockFusionPreservesUnitary)
{
    const Circuit circuit = randomCircuit(5, GetParam());
    expectEquivalent(circuit, fuseCommutableBlocks(circuit),
                     GetParam() * 3 + 1);
}

TEST_P(PassSemantics, CancellationPreservesUnitary)
{
    const Circuit circuit = randomCircuit(5, GetParam());
    expectEquivalent(circuit, cancelAdjacentOneQ(circuit),
                     GetParam() * 5 + 2);
}

TEST_P(PassSemantics, InverseUndoesTheCircuit)
{
    const Circuit circuit = randomCircuit(4, GetParam());
    Rng rng(GetParam() * 7 + 3);
    StateVector state = StateVector::random(4, rng);
    const StateVector before = state;
    state.applyCircuit(circuit);
    state.applyCircuit(inverseCircuit(circuit));
    EXPECT_NEAR(StateVector::overlap(state, before), 1.0, kEps);
}

TEST_P(PassSemantics, WriterRoundTripPreservesUnitary)
{
    const Circuit circuit = randomCircuit(5, GetParam());
    const Circuit reparsed = qasm::loadQasm(qasm::writeQasm(circuit)).circuit;
    expectEquivalent(circuit, reparsed, GetParam() * 11 + 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassSemantics,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---- QASM decompositions ---------------------------------------------

TEST(DecompositionSemantics, CxActsAsControlledX)
{
    const auto cx = qasm::loadQasm("qreg q[2]; cx q[0],q[1];").circuit;
    // On |10> (control set) the target flips to give |11>.
    StateVector state(2);
    state.apply(OneQGate{OneQKind::X, 0, 0.0});
    state.applyCircuit(cx);
    EXPECT_NEAR(std::norm(state.amplitude(0b11)), 1.0, kEps);
    // On |01> (control clear) nothing happens.
    StateVector idle(2);
    idle.apply(OneQGate{OneQKind::X, 1, 0.0});
    idle.applyCircuit(cx);
    EXPECT_NEAR(std::norm(idle.amplitude(0b10)), 1.0, kEps);
}

TEST(DecompositionSemantics, SwapExchangesStates)
{
    const auto swap = qasm::loadQasm("qreg q[2]; swap q[0],q[1];").circuit;
    StateVector state(2);
    state.apply(OneQGate{OneQKind::X, 0, 0.0}); // |01> (qubit 0 set)
    state.applyCircuit(swap);
    EXPECT_NEAR(std::norm(state.amplitude(0b10)), 1.0, kEps);
}

TEST(DecompositionSemantics, ToffoliOnBasisStates)
{
    const auto ccx =
        qasm::loadQasm("qreg q[3]; ccx q[0],q[1],q[2];").circuit;
    // Both controls set: target flips.
    StateVector both(3);
    both.apply(OneQGate{OneQKind::X, 0, 0.0});
    both.apply(OneQGate{OneQKind::X, 1, 0.0});
    both.applyCircuit(ccx);
    EXPECT_NEAR(std::norm(both.amplitude(0b111)), 1.0, kEps);
    // One control set: nothing flips.
    StateVector one(3);
    one.apply(OneQGate{OneQKind::X, 0, 0.0});
    one.applyCircuit(ccx);
    EXPECT_NEAR(std::norm(one.amplitude(0b001)), 1.0, kEps);
}

TEST(DecompositionSemantics, CpMatchesDirectPhaseApplication)
{
    const double lambda = 0.93;
    const auto cp = qasm::loadQasm("qreg q[2]; cp(0.93) q[0],q[1];").circuit;

    Rng rng(31);
    StateVector via_decomposition = StateVector::random(2, rng);
    StateVector expected = via_decomposition;
    via_decomposition.applyCircuit(cp);

    // Reference: multiply the |11> amplitude by e^{i lambda} directly.
    StateVector reference(2);
    for (std::size_t i = 0; i < 4; ++i) {
        // Build reference from expected's amplitudes.
        (void)reference;
    }
    // Compare phases via overlap with a manually phased copy: construct
    // the reference by applying rz decomposition identity instead.
    const auto rzz = qasm::loadQasm(
        "qreg q[2]; rz(0.465) q[0]; rz(0.465) q[1]; rzz(-0.465) q[0],q[1];")
                         .circuit;
    // cp(l) = e^{il/4} * rz(l/2) rz(l/2) exp(-i l/4 ZZ); global phase
    // cancels in the overlap.
    expected.applyCircuit(rzz);
    EXPECT_NEAR(StateVector::overlap(via_decomposition, expected), 1.0,
                kEps)
        << "lambda=" << lambda;
}

TEST(DecompositionSemantics, GhzPreparation)
{
    const auto ghz = qasm::loadQasm(
        "qreg q[4]; h q[0]; cx q[0],q[1]; cx q[1],q[2]; cx q[2],q[3];")
                         .circuit;
    StateVector state(4);
    state.applyCircuit(ghz);
    EXPECT_NEAR(std::norm(state.amplitude(0b0000)), 0.5, kEps);
    EXPECT_NEAR(std::norm(state.amplitude(0b1111)), 0.5, kEps);
}

TEST(DecompositionSemantics, UserGateExpansionMatchesInline)
{
    const auto via_gate = qasm::loadQasm(
        "qreg q[2];\n"
        "gate zz(g) a,b { cx a,b; rz(2*g) b; cx a,b; }\n"
        "zz(0.35) q[0],q[1];\n").circuit;
    const auto inline_form = qasm::loadQasm(
        "qreg q[2]; cx q[0],q[1]; rz(0.7) q[1]; cx q[0],q[1];").circuit;
    expectEquivalent(via_gate, inline_form, 41);
}

} // namespace
} // namespace powermove
