/** @file Property test for the fast router's incremental structures.
 *
 * The fast router keeps planned occupancy, free-site bitmasks, a
 * qubit-to-site mirror, and a compute-resident list alive across
 * transitions instead of rebuilding them. This test churns the router
 * through long random park/retrieve/move sequences and, after every
 * single transition, asks auditAgainstLayout() to rebuild each
 * structure from scratch and compare — so any drift (a stale bit, a
 * missed resident swap, an occupancy leak) is caught at the transition
 * that introduced it, not stages later when it corrupts a plan.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "route/fast_router.hpp"
#include "schedule/stage.hpp"

namespace powermove {
namespace {

/**
 * A stage built to churn: gate pairs are drawn from a shuffled pool so
 * successive stages retrieve previously parked qubits, park previously
 * interacting ones, and re-pair compute residents in new combinations.
 */
Stage
churnStage(Rng &rng, std::size_t num_qubits)
{
    std::vector<QubitId> qubits(num_qubits);
    for (QubitId q = 0; q < num_qubits; ++q)
        qubits[q] = q;
    rng.shuffle(qubits);
    // Anywhere from one pair (mass parking) to saturation (mass
    // retrieval); both extremes stress different structures.
    const std::size_t pairs = 1 + rng.nextBelow(num_qubits / 2);
    Stage stage;
    for (std::size_t p = 0; p < pairs; ++p)
        stage.gates.push_back(
            CzGate{qubits[2 * p], qubits[2 * p + 1]}.canonical());
    return stage;
}

class FastRouterStateTest
    : public ::testing::TestWithParam<std::tuple<bool, std::uint64_t>>
{};

TEST_P(FastRouterStateTest, IncrementalStateMatchesRebuildAfterEveryChurn)
{
    const auto [use_storage, seed] = GetParam();
    const std::size_t n = 30;
    const Machine machine(MachineConfig::forQubits(n));
    FastContinuousRouter router(machine, RouterOptions{use_storage, seed});

    Layout layout(machine, n);
    placeRowMajor(layout,
                  use_storage ? ZoneKind::Storage : ZoneKind::Compute);

    Rng stage_rng(seed ^ 0x636875726eULL); // "churn"
    std::string why;
    for (int step = 0; step < 60; ++step) {
        const Stage stage = churnStage(stage_rng, n);
        router.planStageTransition(layout, stage);
        ASSERT_TRUE(router.auditAgainstLayout(layout, &why))
            << "step " << step << ": " << why;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Churn, FastRouterStateTest,
    ::testing::Combine(::testing::Bool(),
                       ::testing::Values(11, 22, 33, 44)));

/** Tiny machine: parking pressure keeps every structure near full. */
TEST(FastRouterStatePressureTest, SmallMachineStaysConsistent)
{
    const std::size_t n = 8;
    const Machine machine(MachineConfig::forQubits(n));
    FastContinuousRouter router(machine, RouterOptions{true, 5});
    Layout layout(machine, n);
    placeRowMajor(layout, ZoneKind::Storage);

    Rng stage_rng(123);
    std::string why;
    for (int step = 0; step < 80; ++step) {
        const Stage stage = churnStage(stage_rng, n);
        router.planStageTransition(layout, stage);
        ASSERT_TRUE(router.auditAgainstLayout(layout, &why))
            << "step " << step << ": " << why;
    }
}

/**
 * reset() is the documented escape hatch for external layout mutation:
 * after moving a qubit behind the router's back and resetting, the
 * next transition must rebuild and the audits must hold again.
 */
TEST(FastRouterStateResetTest, AuditHoldsAfterResetFromExternalChange)
{
    const std::size_t n = 16;
    const Machine machine(MachineConfig::forQubits(n));
    FastContinuousRouter router(machine, RouterOptions{true, 9});
    Layout layout(machine, n);
    placeRowMajor(layout, ZoneKind::Storage);

    Rng stage_rng(77);
    std::string why;
    for (int step = 0; step < 10; ++step) {
        router.planStageTransition(layout, churnStage(stage_rng, n));
        ASSERT_TRUE(router.auditAgainstLayout(layout, &why)) << why;
    }

    // External mutation: stash one idle qubit somewhere else. Pick a
    // storage-resident qubit and a free storage site so the move is
    // legal at the Layout level.
    QubitId moved = n;
    for (QubitId q = 0; q < n; ++q) {
        if (machine.zoneOf(layout.siteOf(q)) == ZoneKind::Storage) {
            moved = q;
            break;
        }
    }
    ASSERT_LT(moved, n);
    SiteId free_site = kInvalidSite;
    for (const SiteId site : machine.storageSites()) {
        if (layout.occupancy(site) == 0) {
            free_site = site;
            break;
        }
    }
    ASSERT_NE(free_site, kInvalidSite);
    layout.moveTo(moved, free_site);

    router.reset();
    for (int step = 0; step < 10; ++step) {
        router.planStageTransition(layout, churnStage(stage_rng, n));
        ASSERT_TRUE(router.auditAgainstLayout(layout, &why))
            << "post-reset: " << why;
    }
}

} // namespace
} // namespace powermove
