/** @file Unit tests for the strong unit types. */

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace powermove {
namespace {

using namespace powermove::literals;

TEST(DurationTest, DefaultIsZero)
{
    EXPECT_DOUBLE_EQ(Duration().micros(), 0.0);
}

TEST(DurationTest, MicrosRoundTrip)
{
    EXPECT_DOUBLE_EQ(Duration::micros(15.0).micros(), 15.0);
}

TEST(DurationTest, NanosConvertToMicros)
{
    EXPECT_DOUBLE_EQ(Duration::nanos(270.0).micros(), 0.27);
}

TEST(DurationTest, SecondsConvertToMicros)
{
    EXPECT_DOUBLE_EQ(Duration::seconds(1.5).micros(), 1.5e6);
}

TEST(DurationTest, SecondsAccessor)
{
    EXPECT_DOUBLE_EQ(Duration::micros(2.0e6).seconds(), 2.0);
}

TEST(DurationTest, Addition)
{
    EXPECT_DOUBLE_EQ((1_us + 2.5_us).micros(), 3.5);
}

TEST(DurationTest, Subtraction)
{
    EXPECT_DOUBLE_EQ((5_us - 2_us).micros(), 3.0);
}

TEST(DurationTest, ScalarMultiplication)
{
    EXPECT_DOUBLE_EQ((3_us * 4.0).micros(), 12.0);
}

TEST(DurationTest, RatioOfDurations)
{
    EXPECT_DOUBLE_EQ(10_us / 4_us, 2.5);
}

TEST(DurationTest, CompoundAssignment)
{
    Duration d = 1_us;
    d += 2_us;
    EXPECT_DOUBLE_EQ(d.micros(), 3.0);
    d -= 0.5_us;
    EXPECT_DOUBLE_EQ(d.micros(), 2.5);
}

TEST(DurationTest, Comparisons)
{
    EXPECT_LT(1_us, 2_us);
    EXPECT_GT(3_us, 2_us);
    EXPECT_EQ(2_us, Duration::micros(2.0));
    EXPECT_LE(2_us, 2_us);
}

TEST(DistanceTest, MicronsRoundTrip)
{
    EXPECT_DOUBLE_EQ(Distance::microns(27.5).microns(), 27.5);
}

TEST(DistanceTest, Arithmetic)
{
    EXPECT_DOUBLE_EQ((15_um + 15_um).microns(), 30.0);
    EXPECT_DOUBLE_EQ((30_um - 12_um).microns(), 18.0);
    EXPECT_DOUBLE_EQ((15_um * 3.0).microns(), 45.0);
    EXPECT_DOUBLE_EQ(110_um / 27.5_um, 4.0);
}

TEST(DistanceTest, Comparisons)
{
    EXPECT_LT(6_um, 10_um);
    EXPECT_EQ(15_um, Distance::microns(15.0));
}

TEST(UnitsTest, LiteralsProduceExpectedValues)
{
    EXPECT_DOUBLE_EQ((0.27_us).micros(), 0.27);
    EXPECT_DOUBLE_EQ((110_um).microns(), 110.0);
}

} // namespace
} // namespace powermove
