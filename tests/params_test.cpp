/** @file Tests for the Table 1 hardware parameters and the movement law. */

#include <gtest/gtest.h>

#include "arch/params.hpp"

namespace powermove {
namespace {

TEST(HardwareParamsTest, Table1Defaults)
{
    const HardwareParams p;
    EXPECT_DOUBLE_EQ(p.f_one_q, 0.9999);
    EXPECT_DOUBLE_EQ(p.f_cz, 0.995);
    EXPECT_DOUBLE_EQ(p.f_excitation, 0.9975);
    EXPECT_DOUBLE_EQ(p.f_transfer, 0.999);
    EXPECT_DOUBLE_EQ(p.t_one_q.micros(), 1.0);
    EXPECT_DOUBLE_EQ(p.t_cz.micros(), 0.27);
    EXPECT_DOUBLE_EQ(p.t_transfer.micros(), 15.0);
    EXPECT_DOUBLE_EQ(p.t2.seconds(), 1.5);
    EXPECT_DOUBLE_EQ(p.site_pitch.microns(), 15.0);
    EXPECT_DOUBLE_EQ(p.zone_gap.microns(), 30.0);
    EXPECT_DOUBLE_EQ(p.rydberg_radius.microns(), 6.0);
    EXPECT_DOUBLE_EQ(p.min_idle_separation.microns(), 10.0);
    EXPECT_DOUBLE_EQ(p.max_acceleration, 2750.0);
}

TEST(MoveDurationTest, PaperCalibrationPoints)
{
    // Table 1: "e.g. 100us (200us) for 27.5um (110um)".
    const HardwareParams p;
    EXPECT_NEAR(p.moveDuration(Distance::microns(27.5)).micros(), 100.0, 1e-9);
    EXPECT_NEAR(p.moveDuration(Distance::microns(110.0)).micros(), 200.0,
                1e-9);
}

TEST(MoveDurationTest, ZeroAndNegativeDistanceIsFree)
{
    const HardwareParams p;
    EXPECT_DOUBLE_EQ(p.moveDuration(Distance::microns(0.0)).micros(), 0.0);
    EXPECT_DOUBLE_EQ(p.moveDuration(Distance::microns(-5.0)).micros(), 0.0);
}

TEST(MoveDurationTest, SquareRootScaling)
{
    const HardwareParams p;
    const double t1 = p.moveDuration(Distance::microns(10.0)).micros();
    const double t4 = p.moveDuration(Distance::microns(40.0)).micros();
    EXPECT_NEAR(t4 / t1, 2.0, 1e-9);
}

TEST(MoveDurationTest, MonotoneInDistance)
{
    const HardwareParams p;
    double previous = 0.0;
    for (double d = 5.0; d <= 300.0; d += 5.0) {
        const double t = p.moveDuration(Distance::microns(d)).micros();
        EXPECT_GT(t, previous);
        previous = t;
    }
}

TEST(MoveDurationTest, CustomReferenceParameters)
{
    HardwareParams p;
    p.move_t_ref = Duration::micros(100.0);
    p.move_d_ref = Distance::microns(100.0);
    EXPECT_NEAR(p.moveDuration(Distance::microns(25.0)).micros(), 50.0, 1e-9);
}

} // namespace
} // namespace powermove
