/**
 * @file
 * Tests for the instrumented service layer: metric-catalog coverage,
 * terminal-state counter consistency, cache-tier attribution, the
 * memory-vs-disk Cached distinction, slow-job logging, and per-job
 * trace spans.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/observability.hpp"
#include "service/job_service.hpp"
#include "service/service.hpp"

namespace powermove::service {
namespace {

namespace fs = std::filesystem;

/** A fresh empty directory under the system temp dir, removed on exit. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_(fs::temp_directory_path() /
                ("powermove_obs_service_" + tag + "_" +
                 std::to_string(static_cast<unsigned long>(::getpid()))))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }

    ~TempDir() { fs::remove_all(path_); }

    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

/** A small distinct job: a 4-qubit chain with @p variant CZ blocks. */
CompileJob
smallJob(std::size_t variant = 1)
{
    Circuit circuit(4);
    for (std::size_t i = 0; i < variant; ++i) {
        circuit.append(CzGate{0, 1});
        circuit.append(CzGate{2, 3});
        circuit.barrier();
        circuit.append(CzGate{1, 2});
        circuit.barrier();
    }
    return CompileJob{std::move(circuit), MachineConfig::forQubits(4), {}};
}

/** An observability bundle logging to @p out (or a discard file). */
std::shared_ptr<obs::Observability>
makeBundle(obs::LogLevel level = obs::LogLevel::Off, std::FILE *out = stderr)
{
    return std::make_shared<obs::Observability>(
        obs::ObservabilityOptions{level, out});
}

/** Terminal-state counter value for @p state. */
std::uint64_t
stateCount(obs::MetricsRegistry &registry, JobState state)
{
    return registry
        .counter("powermove_job_states_total",
                 {{"state", std::string(jobStateName(state))}})
        .value();
}

std::uint64_t
tierCount(obs::MetricsRegistry &registry, TierIndex tier)
{
    return registry
        .counter("powermove_jobs_tier_total",
                 {{"tier", std::string(tierName(tier))}})
        .value();
}

std::uint64_t
sumTerminalStates(obs::MetricsRegistry &registry)
{
    std::uint64_t sum = 0;
    for (const JobState state : {JobState::Cached, JobState::Done,
                                 JobState::Failed, JobState::Rejected,
                                 JobState::Expired})
        sum += stateCount(registry, state);
    return sum;
}

std::size_t
countOccurrences(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

TEST(ObsServiceTest, ExpositionCoversEveryStateTierAndPassAtZero)
{
    auto bundle = makeBundle();
    JobServiceOptions options;
    options.num_shards = 2;
    options.workers_per_shard = 1;
    options.obs = bundle;
    JobService svc(options);

    // No jobs submitted: every pre-registered series must still export.
    const std::string text = bundle->metrics.toPrometheusText();
    for (std::size_t s = 0; s < kNumJobStates; ++s) {
        const std::string state(jobStateName(static_cast<JobState>(s)));
        EXPECT_NE(text.find("powermove_job_states_total{state=\"" + state +
                            "\"} 0"),
                  std::string::npos)
            << state;
    }
    for (std::size_t t = 0; t < kNumTiers; ++t) {
        const std::string tier(tierName(static_cast<TierIndex>(t)));
        EXPECT_NE(text.find("powermove_jobs_tier_total{tier=\"" + tier +
                            "\"} 0"),
                  std::string::npos)
            << tier;
    }
    for (std::size_t p = 0; p < kNumPasses; ++p) {
        const std::string pass(passName(static_cast<PassId>(p)));
        EXPECT_NE(text.find("powermove_pass_wall_us_count{pass=\"" + pass +
                            "\"} 0"),
                  std::string::npos)
            << pass;
    }
    for (const char *priority : {"low", "normal", "high"}) {
        EXPECT_NE(text.find("powermove_job_wait_us_count{priority=\"" +
                            std::string(priority) + "\"} 0"),
                  std::string::npos)
            << priority;
    }
    EXPECT_NE(text.find("powermove_jobs_submitted_total 0"),
              std::string::npos);
    EXPECT_NE(text.find("powermove_shard_queue_depth{shard=\"0\"}"),
              std::string::npos);
    EXPECT_NE(text.find("powermove_shard_queue_depth{shard=\"1\"}"),
              std::string::npos);
    EXPECT_NE(text.find("powermove_shard_imbalance"), std::string::npos);
    EXPECT_NE(text.find("powermove_memory_cache_evictions_total 0"),
              std::string::npos);
}

TEST(ObsServiceTest, EveryTerminalOutcomeIncrementsExactlyOneStateCounter)
{
    auto bundle = makeBundle();
    JobServiceOptions options;
    options.num_shards = 1;
    options.workers_per_shard = 1;
    options.cache_capacity = 16;
    options.obs = bundle;
    JobService svc(options);

    // Done: a fresh compile.
    (void)svc.submit(smallJob(1)).result.get();
    // Cached (memory): the same job again.
    (void)svc.submit(smallJob(1)).result.get();
    // Failed: the compiler's constructor rejects num_aods = 0.
    CompileJob bad = smallJob(2);
    bad.options.num_aods = 0;
    EXPECT_THROW(svc.submit(bad).result.get(), ConfigError);
    // Expired: an already-impossible deadline behind a queued stream.
    (void)svc.submit(smallJob(3));
    JobTicket doomed =
        svc.submit(smallJob(4), /*priority=*/0, /*deadline_ms=*/1e-6);
    EXPECT_THROW(doomed.result.get(), ExpiredError);
    svc.waitIdle();

    const JobServiceStats stats = svc.stats();
    EXPECT_EQ(stats.submitted, 5u);

    // Exactly one terminal counter per submission, no double counting.
    EXPECT_EQ(sumTerminalStates(bundle->metrics), stats.submitted);
    EXPECT_GE(stateCount(bundle->metrics, JobState::Done), 1u);
    EXPECT_EQ(stateCount(bundle->metrics, JobState::Cached), 1u);
    EXPECT_EQ(stateCount(bundle->metrics, JobState::Failed), 1u);
    EXPECT_EQ(stateCount(bundle->metrics, JobState::Expired), 1u);
    EXPECT_EQ(stateCount(bundle->metrics, JobState::Rejected), 0u);

    // The tier counters mirror the stats-side attribution.
    EXPECT_EQ(tierCount(bundle->metrics, TierIndex::Memory),
              stats.memory_hits);
    EXPECT_EQ(tierCount(bundle->metrics, TierIndex::Coalesced),
              stats.coalesced);
    EXPECT_EQ(tierCount(bundle->metrics, TierIndex::Disk), stats.disk_hits);
    EXPECT_EQ(stateCount(bundle->metrics, JobState::Queued),
              stats.submitted);
    EXPECT_EQ(bundle->metrics.counter("powermove_jobs_submitted_total")
                  .value(),
              stats.submitted);
}

TEST(ObsServiceTest, RejectionsCountTowardTerminalConsistency)
{
    auto bundle = makeBundle();
    JobServiceOptions options;
    options.num_shards = 1;
    options.workers_per_shard = 1;
    options.cache_capacity = 0;
    options.max_queue = 1;
    options.obs = bundle;
    JobService svc(options);

    std::vector<JobTicket> tickets;
    for (std::size_t v = 1; v <= 24; ++v)
        tickets.push_back(svc.submit(smallJob(v)));
    for (JobTicket &ticket : tickets) {
        try {
            (void)ticket.result.get();
        } catch (const RejectedError &) {
        }
    }
    svc.waitIdle();

    const JobServiceStats stats = svc.stats();
    EXPECT_EQ(stats.submitted, 24u);
    EXPECT_GT(stats.rejected, 0u);
    EXPECT_EQ(stateCount(bundle->metrics, JobState::Rejected),
              stats.rejected);
    EXPECT_EQ(sumTerminalStates(bundle->metrics), stats.submitted);
}

TEST(ObsServiceTest, CachedTimelineDistinguishesMemoryFromDisk)
{
    TempDir dir("tiers");
    auto bundle = makeBundle();
    const CompileJob job = smallJob(5);

    {
        // Populate the disk tier, then die.
        JobServiceOptions options;
        options.num_shards = 1;
        options.workers_per_shard = 1;
        options.cache_dir = dir.str();
        JobService svc(options);
        (void)svc.submit(job).result.get();
    }

    JobServiceOptions options;
    options.num_shards = 1;
    options.workers_per_shard = 1;
    options.cache_dir = dir.str();
    options.obs = bundle;
    JobService svc(options);

    // Cold memory, warm disk: a worker deserializes the stored entry.
    JobTicket from_disk = svc.submit(job);
    const JobResult disk_result = from_disk.result.get();
    EXPECT_EQ(disk_result.source, ResultSource::Disk);
    const auto disk_status = svc.status(from_disk.id);
    ASSERT_TRUE(disk_status.has_value());
    EXPECT_EQ(disk_status->state, JobState::Cached);
    const TimelineEvent *disk_event =
        disk_status->timeline.find(JobState::Cached);
    ASSERT_NE(disk_event, nullptr);
    EXPECT_EQ(disk_event->detail, "disk");

    // Now resident in the memory cache: served at submit.
    JobTicket from_memory = svc.submit(job);
    const JobResult memory_result = from_memory.result.get();
    EXPECT_EQ(memory_result.source, ResultSource::Memory);
    const auto memory_status = svc.status(from_memory.id);
    ASSERT_TRUE(memory_status.has_value());
    const TimelineEvent *memory_event =
        memory_status->timeline.find(JobState::Cached);
    ASSERT_NE(memory_event, nullptr);
    EXPECT_EQ(memory_event->detail, "memory");

    // Disk-cache metrics observed the hit.
    EXPECT_GE(bundle->metrics.counter("powermove_disk_cache_hits_total")
                  .value(),
              1u);
    EXPECT_GE(bundle->metrics
                  .counter("powermove_disk_cache_read_bytes_total")
                  .value(),
              1u);
    const std::string text = bundle->metrics.toPrometheusText();
    EXPECT_NE(text.find("powermove_disk_cache_entries"), std::string::npos);
    EXPECT_NE(text.find("powermove_disk_cache_resident_bytes"),
              std::string::npos);
}

TEST(ObsServiceTest, SlowJobThresholdEmitsWarnLine)
{
    std::FILE *capture = std::tmpfile();
    ASSERT_NE(capture, nullptr);
    auto bundle = makeBundle(obs::LogLevel::Warn, capture);

    JobServiceOptions options;
    options.num_shards = 1;
    options.workers_per_shard = 1;
    options.obs = bundle;
    options.slow_job_ms = 1e-6; // every finished job is "slow"
    {
        JobService svc(options);
        (void)svc.submit(smallJob(1)).result.get();
        svc.waitIdle();
    }

    std::fflush(capture);
    std::rewind(capture);
    std::string text;
    char buffer[4096];
    std::size_t n;
    while ((n = std::fread(buffer, 1, sizeof(buffer), capture)) > 0)
        text.append(buffer, n);
    std::fclose(capture);

    EXPECT_NE(text.find("event=slow_job"), std::string::npos);
    EXPECT_NE(text.find("level=warn"), std::string::npos);
}

TEST(ObsServiceTest, TraceCarriesOnePassSpanPerCompiledJob)
{
    auto bundle = makeBundle();
    JobServiceOptions options;
    options.num_shards = 1;
    options.workers_per_shard = 1;
    options.obs = bundle;
    JobService svc(options);

    (void)svc.submit(smallJob(1)).result.get();
    (void)svc.submit(smallJob(2)).result.get();
    svc.waitIdle();

    const std::string json = bundle->trace.toChromeTraceJson();
    // Two compiled jobs, each with exactly one span per pipeline pass.
    EXPECT_EQ(countOccurrences(json, "\"cat\":\"pass\""), 2 * kNumPasses);
    EXPECT_GE(countOccurrences(json, "\"name\":\"queued\""), 2u);
    EXPECT_GE(countOccurrences(json, "\"name\":\"running\""), 2u);
    EXPECT_GE(countOccurrences(json, "\"source\":\"compiled\""), 2u);
}

TEST(ObsServiceTest, BatchServiceSharesTheCatalog)
{
    auto bundle = makeBundle();
    ServiceOptions options;
    options.num_workers = 1;
    options.obs = bundle;
    CompilationService svc(options);

    std::vector<CompileJob> jobs;
    jobs.push_back(smallJob(1));
    jobs.push_back(smallJob(2));
    const std::vector<BatchEntry> first = svc.compileBatch(std::move(jobs));
    for (const BatchEntry &entry : first)
        EXPECT_TRUE(entry.ok());
    // A repeat of job 1 is a memory hit.
    (void)svc.submit(smallJob(1)).get();

    EXPECT_EQ(bundle->metrics.counter("powermove_jobs_submitted_total")
                  .value(),
              3u);
    EXPECT_EQ(tierCount(bundle->metrics, TierIndex::Memory), 1u);
    EXPECT_EQ(tierCount(bundle->metrics, TierIndex::Miss), 2u);
    // Each fresh compile folded one observation into every pass.
    for (std::size_t p = 0; p < kNumPasses; ++p) {
        const std::string pass(passName(static_cast<PassId>(p)));
        EXPECT_EQ(bundle->metrics
                      .histogram("powermove_pass_wall_us", {},
                                 {{"pass", pass}})
                      .count(),
                  2u)
            << pass;
    }
    const std::string text = bundle->metrics.toPrometheusText();
    EXPECT_NE(text.find("powermove_queue_depth"), std::string::npos);
}

} // namespace
} // namespace powermove::service
