/** @file Tests for distance-aware Coll-Move grouping (Sec. 5.3). */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "route/conflict.hpp"
#include "route/grouping.hpp"

namespace powermove {
namespace {

class GroupingTest : public ::testing::Test
{
  protected:
    GroupingTest() : machine_(MachineConfig::forQubits(64)) {}

    QubitMove
    move(QubitId q, SiteCoord from, SiteCoord to) const
    {
        return QubitMove{q, machine_.siteAt(from), machine_.siteAt(to)};
    }

    Machine machine_;
};

TEST_F(GroupingTest, EmptyInput)
{
    EXPECT_TRUE(groupMoves(machine_, {}).empty());
}

TEST_F(GroupingTest, SingleMove)
{
    const auto groups = groupMoves(machine_, {move(0, {0, 0}, {1, 0})});
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].moves.size(), 1u);
}

TEST_F(GroupingTest, CompatibleMovesShareOneGroup)
{
    const auto groups = groupMoves(machine_, {
        move(0, {0, 0}, {0, 1}),
        move(1, {2, 0}, {2, 1}),
        move(2, {4, 0}, {4, 1}),
    });
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].moves.size(), 3u);
}

TEST_F(GroupingTest, CrossingMovesSplit)
{
    const auto groups = groupMoves(machine_, {
        move(0, {0, 0}, {4, 0}),
        move(1, {4, 1}, {0, 1}),
    });
    EXPECT_EQ(groups.size(), 2u);
}

TEST_F(GroupingTest, AllGroupsAreConflictFree)
{
    Rng rng(123);
    std::vector<QubitMove> moves;
    for (QubitId q = 0; q < 30; ++q) {
        const SiteCoord from{static_cast<std::int32_t>(rng.nextBelow(8)),
                             static_cast<std::int32_t>(rng.nextBelow(8))};
        SiteCoord to{static_cast<std::int32_t>(rng.nextBelow(8)),
                     static_cast<std::int32_t>(rng.nextBelow(8))};
        moves.push_back(move(q, from, to));
    }
    const auto groups = groupMoves(machine_, moves);
    std::size_t total = 0;
    for (const auto &group : groups) {
        EXPECT_TRUE(isValidCollMove(machine_, group));
        EXPECT_FALSE(group.moves.empty());
        total += group.moves.size();
    }
    EXPECT_EQ(total, moves.size());
}

TEST_F(GroupingTest, FirstGroupHoldsShortestMove)
{
    const auto groups = groupMoves(machine_, {
        move(0, {0, 0}, {7, 7}), // long
        move(1, {0, 1}, {0, 2}), // short
    });
    ASSERT_FALSE(groups.empty());
    // Ascending-distance processing seeds the first group with the
    // shortest move.
    EXPECT_EQ(groups[0].moves[0].qubit, 1u);
}

TEST_F(GroupingTest, DistanceSortingBalancesGroupLengths)
{
    // Two short parallel moves and two long parallel moves that each
    // conflict with the short ones: distance-aware grouping pairs
    // short-with-short and long-with-long.
    const auto groups = groupMoves(machine_, {
        move(0, {0, 0}, {0, 1}),  // short, down
        move(1, {2, 0}, {2, 1}),  // short, down
        move(2, {4, 6}, {4, 0}),  // long, up (y-order conflict with short)
        move(3, {6, 6}, {6, 0}),  // long, up
    });
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].moves.size(), 2u);
    EXPECT_EQ(groups[1].moves.size(), 2u);
    // Each group is homogeneous in direction.
    for (const auto &group : groups) {
        const auto dir = machine_.coordOf(group.moves[0].to).y -
                         machine_.coordOf(group.moves[0].from).y;
        for (const auto &m : group.moves) {
            const auto d =
                machine_.coordOf(m.to).y - machine_.coordOf(m.from).y;
            EXPECT_EQ((d > 0), (dir > 0));
        }
    }
}

TEST_F(GroupingTest, DeterministicForEqualInput)
{
    const std::vector<QubitMove> moves = {
        move(0, {0, 0}, {3, 3}),
        move(1, {1, 0}, {1, 5}),
        move(2, {5, 5}, {0, 0}),
    };
    const auto a = groupMoves(machine_, moves);
    const auto b = groupMoves(machine_, moves);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].moves, b[i].moves);
}

TEST_F(GroupingTest, CollMoveAccessors)
{
    CollMove group;
    group.moves = {move(0, {0, 0}, {0, 5}),
                   move(1, {2, 0}, {2, 1})};
    EXPECT_DOUBLE_EQ(group.maxDistance(machine_).microns(), 75.0);

    // Storage round trips: one in, one out.
    const SiteId storage = machine_.storageSites().front();
    CollMove zone_moves;
    zone_moves.moves = {QubitMove{0, 0, storage}, QubitMove{1, storage, 0}};
    EXPECT_EQ(zone_moves.countMoveIns(machine_), 1u);
    EXPECT_EQ(zone_moves.countMoveOuts(machine_), 1u);
}

/** Property: grouping never exceeds the move count and is conflict-free. */
class GroupingProperty : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(GroupingProperty, RandomBatches)
{
    const Machine machine(MachineConfig::forQubits(49));
    Rng rng(GetParam());
    std::vector<QubitMove> moves;
    const auto sites = machine.numSites();
    for (QubitId q = 0; q < 40; ++q) {
        const auto from = static_cast<SiteId>(rng.nextBelow(sites));
        const auto to = static_cast<SiteId>(rng.nextBelow(sites));
        moves.push_back(QubitMove{q, from, to});
    }
    const auto groups = groupMoves(machine, moves);
    EXPECT_LE(groups.size(), moves.size());
    std::size_t total = 0;
    for (const auto &group : groups) {
        EXPECT_TRUE(isValidCollMove(machine, group));
        total += group.moves.size();
    }
    EXPECT_EQ(total, moves.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupingProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

} // namespace
} // namespace powermove
