/**
 * @file
 * Tests for the persistent on-disk compile cache: exact round-trips,
 * restart persistence, corruption tolerance, byte-budget eviction, and
 * cross-instance sharing through the CompilationService.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "compiler/powermove.hpp"
#include "isa/validator.hpp"
#include "service/disk_cache.hpp"
#include "service/fingerprint.hpp"
#include "service/service.hpp"

namespace powermove::service {
namespace {

namespace fs = std::filesystem;

/** A fresh empty directory under the system temp dir, removed on exit. */
class TempDir
{
  public:
    explicit TempDir(const std::string &tag)
        : path_(fs::temp_directory_path() /
                ("powermove_disk_cache_" + tag + "_" +
                 std::to_string(static_cast<unsigned long>(::getpid()))))
    {
        fs::remove_all(path_);
        fs::create_directories(path_);
    }

    ~TempDir() { fs::remove_all(path_); }

    const fs::path &path() const { return path_; }
    std::string str() const { return path_.string(); }

  private:
    fs::path path_;
};

/** DiskCacheOptions built field-by-field (no aggregate-init warnings). */
DiskCacheOptions
cacheOptions(const std::string &dir, std::uint64_t max_bytes = 256ull << 20)
{
    DiskCacheOptions options;
    options.dir = dir;
    options.max_bytes = max_bytes;
    return options;
}

/** A small distinct job: a 4-qubit chain with @p variant CZ blocks. */
CompileJob
smallJob(std::size_t variant = 1)
{
    Circuit circuit(4);
    for (std::size_t i = 0; i < variant; ++i) {
        circuit.append(CzGate{0, 1});
        circuit.append(CzGate{2, 3});
        circuit.barrier();
        circuit.append(CzGate{1, 2});
        circuit.barrier();
    }
    return CompileJob{std::move(circuit), MachineConfig::forQubits(4), {}};
}

/** Compiles @p job exactly as the service would (derived seed). */
CompileResult
compileDirect(const CompileJob &job, const Machine &machine)
{
    const PowerMoveCompiler compiler(machine, effectiveOptions(job));
    return compiler.compile(job.circuit);
}

/** The single `.pmc` entry file in @p dir; fails the test if not 1. */
fs::path
soleEntryFile(const fs::path &dir)
{
    std::vector<fs::path> entries;
    for (const auto &item : fs::directory_iterator(dir))
        if (item.path().extension() == ".pmc")
            entries.push_back(item.path());
    EXPECT_EQ(entries.size(), 1u);
    return entries.empty() ? fs::path() : entries.front();
}

TEST(DiskCacheTest, SerializationRoundTripIsByteIdentical)
{
    const CompileJob job = smallJob();
    const Machine machine(job.machine);
    const CompileResult fresh = compileDirect(job, machine);

    const std::string bytes = serializeCompileResult(fresh);
    ASSERT_FALSE(bytes.empty());

    const auto decoded = deserializeCompileResult(bytes, machine);
    ASSERT_TRUE(decoded);
    validateAgainstCircuit(decoded->schedule, job.circuit);

    // The canonical encoding is the byte-identity witness: an exact
    // decode re-encodes to exactly the same bytes.
    EXPECT_EQ(serializeCompileResult(*decoded), bytes);
    EXPECT_EQ(decoded->num_stages, fresh.num_stages);
    EXPECT_EQ(decoded->num_coll_moves, fresh.num_coll_moves);
    EXPECT_DOUBLE_EQ(decoded->metrics.fidelity(), fresh.metrics.fidelity());
    EXPECT_EQ(decoded->schedule.instructions().size(),
              fresh.schedule.instructions().size());
}

TEST(DiskCacheTest, TruncatedPayloadNeverDecodes)
{
    const CompileJob job = smallJob();
    const Machine machine(job.machine);
    const std::string bytes =
        serializeCompileResult(compileDirect(job, machine));

    // Every proper prefix must be rejected cleanly — no partial result,
    // no crash. (Step 7 keeps the loop cheap; 1 would also pass.)
    for (std::size_t len = 0; len < bytes.size(); len += 7) {
        const auto decoded = deserializeCompileResult(
            std::string_view(bytes.data(), len), machine);
        EXPECT_EQ(decoded, nullptr) << "prefix of " << len << " decoded";
    }
}

TEST(DiskCacheTest, StoreThenLoadHits)
{
    const TempDir dir("store_load");
    const CompileJob job = smallJob();
    const Machine machine(job.machine);
    const CompileResult fresh = compileDirect(job, machine);
    const std::uint64_t key = jobFingerprint(job);

    DiskCache cache(cacheOptions(dir.str()));
    EXPECT_FALSE(cache.contains(key));
    EXPECT_EQ(cache.load(key, machine), nullptr); // cold miss

    cache.store(key, fresh);
    EXPECT_TRUE(cache.contains(key));
    const auto loaded = cache.load(key, machine);
    ASSERT_TRUE(loaded);
    EXPECT_EQ(serializeCompileResult(*loaded),
              serializeCompileResult(fresh));

    const DiskCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_EQ(stats.corrupt, 0u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_GT(stats.bytes, 0u);
}

TEST(DiskCacheTest, EntriesSurviveRestart)
{
    const TempDir dir("restart");
    const CompileJob job = smallJob();
    const Machine machine(job.machine);
    const CompileResult fresh = compileDirect(job, machine);
    const std::uint64_t key = jobFingerprint(job);

    {
        DiskCache first(cacheOptions(dir.str()));
        first.store(key, fresh);
    } // destroyed: only the files remain

    DiskCache second(cacheOptions(dir.str()));
    EXPECT_TRUE(second.contains(key)); // re-indexed from the directory
    const auto loaded = second.load(key, machine);
    ASSERT_TRUE(loaded);
    EXPECT_EQ(serializeCompileResult(*loaded),
              serializeCompileResult(fresh));
}

TEST(DiskCacheTest, TruncatedEntryFileIsAMissAndIsDeleted)
{
    const TempDir dir("truncated");
    const CompileJob job = smallJob();
    const Machine machine(job.machine);
    const std::uint64_t key = jobFingerprint(job);

    DiskCache cache(cacheOptions(dir.str()));
    cache.store(key, compileDirect(job, machine));
    const fs::path entry = soleEntryFile(dir.path());
    ASSERT_FALSE(entry.empty());

    // Chop the file mid-payload, as a crash mid-write (pre-rename this
    // cannot happen, but a torn disk can produce anything).
    const auto full_size = fs::file_size(entry);
    fs::resize_file(entry, full_size / 2);

    EXPECT_EQ(cache.load(key, machine), nullptr);
    EXPECT_FALSE(cache.contains(key));
    EXPECT_FALSE(fs::exists(entry)); // the bad entry is swept
    EXPECT_EQ(cache.stats().corrupt, 1u);

    // The slot is immediately reusable.
    cache.store(key, compileDirect(job, machine));
    EXPECT_TRUE(cache.load(key, machine) != nullptr);
}

TEST(DiskCacheTest, FlippedPayloadBitFailsTheChecksum)
{
    const TempDir dir("bitflip");
    const CompileJob job = smallJob();
    const Machine machine(job.machine);
    const std::uint64_t key = jobFingerprint(job);

    DiskCache cache(cacheOptions(dir.str()));
    cache.store(key, compileDirect(job, machine));
    const fs::path entry = soleEntryFile(dir.path());
    ASSERT_FALSE(entry.empty());

    // Flip one bit near the end of the payload.
    const auto size = fs::file_size(entry);
    std::fstream file(entry,
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file);
    file.seekg(static_cast<std::streamoff>(size - 3));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(static_cast<std::streamoff>(size - 3));
    file.write(&byte, 1);
    file.close();

    EXPECT_EQ(cache.load(key, machine), nullptr);
    EXPECT_EQ(cache.stats().corrupt, 1u);
    EXPECT_FALSE(fs::exists(entry));
}

TEST(DiskCacheTest, GarbageEntryIndexedOnStartupIsAMiss)
{
    const TempDir dir("garbage");
    const std::uint64_t key = 0xdeadbeefcafe1234ull;
    {
        char name[64];
        std::snprintf(name, sizeof name, "%016llx.pmc",
                      static_cast<unsigned long long>(key));
        std::ofstream file(dir.path() / name, std::ios::binary);
        file << "this is not a cache entry";
    }

    DiskCache cache(cacheOptions(dir.str()));
    EXPECT_TRUE(cache.contains(key)); // indexed by name, unverified
    const Machine machine(MachineConfig::forQubits(4));
    EXPECT_EQ(cache.load(key, machine), nullptr); // verification rejects
    EXPECT_EQ(cache.stats().corrupt, 1u);
    EXPECT_FALSE(cache.contains(key));
}

TEST(DiskCacheTest, ByteBudgetEvictsLeastRecentlyUsed)
{
    const TempDir dir("evict");
    const CompileJob probe = smallJob(1);
    const Machine machine(probe.machine);
    const std::uint64_t entry_bytes =
        serializeCompileResult(compileDirect(probe, machine)).size() + 36;

    // Room for roughly two entries of variant-1 size; variants 2 and 3
    // are larger, so after three stores only the newest survive.
    DiskCache cache(cacheOptions(dir.str(), entry_bytes * 2));
    std::vector<std::uint64_t> keys;
    for (std::size_t variant = 1; variant <= 3; ++variant) {
        const CompileJob job = smallJob(variant);
        keys.push_back(jobFingerprint(job));
        cache.store(keys.back(), compileDirect(job, machine));
    }

    const DiskCacheStats stats = cache.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LE(stats.bytes, entry_bytes * 2);
    EXPECT_FALSE(cache.contains(keys[0])); // oldest gone
    EXPECT_TRUE(cache.contains(keys[2]));  // newest always kept
}

TEST(DiskCacheTest, ServiceWarmRestartServesBitIdenticalFromDisk)
{
    const TempDir dir("service_restart");
    const CompileJob job = smallJob();
    const Machine machine(job.machine);
    const std::string fresh_bytes =
        serializeResultWitness(compileDirect(job, machine));

    ServiceOptions options;
    options.num_workers = 2;
    options.cache_dir = dir.str();
    {
        CompilationService cold(options);
        const JobResult out = cold.submit(job).get();
        EXPECT_EQ(out.source, ResultSource::Compiled);
        EXPECT_EQ(serializeResultWitness(*out.result), fresh_bytes);
        EXPECT_EQ(cold.stats().disk.stores, 1u);
    } // service gone; memory cache gone; only the disk entry remains

    CompilationService warm(options);
    const JobResult out = warm.submit(job).get();
    EXPECT_TRUE(out.from_cache);
    EXPECT_EQ(out.source, ResultSource::Disk);
    // The acceptance bar: compiled-fresh and served-from-disk results
    // are byte-identical under the canonical encoding.
    EXPECT_EQ(serializeResultWitness(*out.result), fresh_bytes);

    const ServiceStats stats = warm.stats();
    EXPECT_EQ(stats.disk_hits, 1u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.jobs_completed, 0u); // nothing compiled
    EXPECT_EQ(stats.disk.hits, 1u);

    // Second submission is now a memory hit, not another disk read.
    const JobResult again = warm.submit(job).get();
    EXPECT_EQ(again.source, ResultSource::Memory);
    EXPECT_EQ(warm.stats().disk.hits, 1u);
}

TEST(DiskCacheTest, TwoLiveServicesShareOneCacheDirectory)
{
    const TempDir dir("shared");
    ServiceOptions options;
    options.num_workers = 2;
    options.cache_dir = dir.str();

    // Both instances are alive at once, as two processes would be.
    CompilationService a(options);
    CompilationService b(options);

    std::vector<std::string> via_a(4);
    std::vector<std::string> via_b(4);
    std::thread feeder([&] {
        for (std::size_t v = 0; v < via_b.size(); ++v)
            via_b[v] = serializeResultWitness(
                *b.submit(smallJob(v + 1)).get().result);
    });
    for (std::size_t v = 0; v < via_a.size(); ++v)
        via_a[v] = serializeResultWitness(
            *a.submit(smallJob(v + 1)).get().result);
    feeder.join();

    // Wherever each result came from — fresh, raced, or read back from
    // the shared directory — both services agree byte-for-byte.
    for (std::size_t v = 0; v < via_a.size(); ++v)
        EXPECT_EQ(via_a[v], via_b[v]) << "variant " << (v + 1);

    // A third, cold instance sees the merged population.
    CompilationService c(options);
    for (std::size_t v = 0; v < via_a.size(); ++v) {
        const JobResult out = c.submit(smallJob(v + 1)).get();
        EXPECT_EQ(out.source, ResultSource::Disk) << "variant " << (v + 1);
        EXPECT_EQ(serializeResultWitness(*out.result), via_a[v]);
    }
    EXPECT_EQ(c.stats().disk_hits, via_a.size());
}

TEST(DiskCacheTest, DeriveToggleNeverAliasesDiskEntries)
{
    // Same fingerprint, different seeding rule: the disk keys differ, so
    // a cache populated with derived-seed schedules can never answer a
    // verbatim-seed service (or vice versa) with the wrong schedule.
    EXPECT_EQ(diskCacheKey(42, true), 42u);
    EXPECT_NE(diskCacheKey(42, false), 42u);
    EXPECT_NE(diskCacheKey(42, false), diskCacheKey(43, false));

    const TempDir dir("derive_toggle");
    const CompileJob job = smallJob();

    ServiceOptions derived;
    derived.num_workers = 1;
    derived.cache_dir = dir.str();
    ServiceOptions verbatim = derived;
    verbatim.derive_job_seeds = false;

    {
        CompilationService svc(derived);
        (void)svc.submit(job).get();
        EXPECT_EQ(svc.stats().disk.stores, 1u);
    }
    {
        CompilationService svc(verbatim);
        const JobResult out = svc.submit(job).get();
        // Compiled fresh — a miss, not a cross-rule disk hit — even
        // though the derived-seed entry for this very fingerprint is
        // sitting in the directory.
        EXPECT_EQ(out.source, ResultSource::Compiled);
        EXPECT_EQ(svc.stats().disk.hits, 0u);
    }
}

} // namespace
} // namespace powermove::service
