/** @file Tests for circuit transformation passes. */

#include <gtest/gtest.h>

#include "circuit/transform.hpp"
#include "workloads/qft.hpp"

namespace powermove {
namespace {

TEST(InverseCircuitTest, ReversesMomentsAndAdjointsGates)
{
    Circuit circuit(2);
    circuit.append(OneQGate{OneQKind::S, 0, 0.0});
    circuit.append(OneQGate{OneQKind::Rz, 1, 0.5});
    circuit.append(CzGate{0, 1});
    circuit.append(OneQGate{OneQKind::T, 0, 0.0});

    const Circuit inverse = inverseCircuit(circuit);
    EXPECT_EQ(inverse.numCzGates(), 1u);
    EXPECT_EQ(inverse.numOneQGates(), 3u);

    // First moment of the inverse is the adjoint of the last layer.
    const auto &first = std::get<OneQLayer>(inverse.moments().front());
    EXPECT_EQ(first.gates[0].kind, OneQKind::Tdg);
    const auto &last = std::get<OneQLayer>(inverse.moments().back());
    EXPECT_EQ(last.gates[1].kind, OneQKind::Sdg);
    EXPECT_DOUBLE_EQ(last.gates[0].angle, -0.5);
}

TEST(InverseCircuitTest, SelfInverseGatesUnchanged)
{
    Circuit circuit(1);
    circuit.append(OneQGate{OneQKind::H, 0, 0.0});
    circuit.append(OneQGate{OneQKind::X, 0, 0.0});
    const Circuit inverse = inverseCircuit(circuit);
    const auto &layer = std::get<OneQLayer>(inverse.moments().front());
    EXPECT_EQ(layer.gates[0].kind, OneQKind::X);
    EXPECT_EQ(layer.gates[1].kind, OneQKind::H);
}

TEST(InverseCircuitTest, DoubleInverseRestoresShape)
{
    const Circuit qft = makeQft(6);
    const Circuit twice = inverseCircuit(inverseCircuit(qft));
    EXPECT_EQ(twice.numCzGates(), qft.numCzGates());
    EXPECT_EQ(twice.numOneQGates(), qft.numOneQGates());
    EXPECT_EQ(twice.numBlocks(), qft.numBlocks());
}

TEST(CancelAdjacentTest, SelfInversePairsCancel)
{
    Circuit circuit(1);
    circuit.append(OneQGate{OneQKind::H, 0, 0.0});
    circuit.append(OneQGate{OneQKind::H, 0, 0.0});
    const Circuit simplified = cancelAdjacentOneQ(circuit);
    EXPECT_EQ(simplified.numOneQGates(), 0u);
}

TEST(CancelAdjacentTest, TripleLeavesOne)
{
    Circuit circuit(1);
    for (int i = 0; i < 3; ++i)
        circuit.append(OneQGate{OneQKind::X, 0, 0.0});
    const Circuit simplified = cancelAdjacentOneQ(circuit);
    EXPECT_EQ(simplified.numOneQGates(), 1u);
}

TEST(CancelAdjacentTest, RotationsMerge)
{
    Circuit circuit(1);
    circuit.append(OneQGate{OneQKind::Rz, 0, 0.25});
    circuit.append(OneQGate{OneQKind::Rz, 0, 0.5});
    const Circuit simplified = cancelAdjacentOneQ(circuit);
    ASSERT_EQ(simplified.numOneQGates(), 1u);
    const auto &layer = std::get<OneQLayer>(simplified.moments().front());
    EXPECT_DOUBLE_EQ(layer.gates[0].angle, 0.75);
}

TEST(CancelAdjacentTest, OppositeRotationsVanish)
{
    Circuit circuit(1);
    circuit.append(OneQGate{OneQKind::Ry, 0, 0.7});
    circuit.append(OneQGate{OneQKind::Ry, 0, -0.7});
    EXPECT_EQ(cancelAdjacentOneQ(circuit).numOneQGates(), 0u);
}

TEST(CancelAdjacentTest, DifferentQubitsDoNotInterfere)
{
    Circuit circuit(2);
    circuit.append(OneQGate{OneQKind::H, 0, 0.0});
    circuit.append(OneQGate{OneQKind::H, 1, 0.0});
    EXPECT_EQ(cancelAdjacentOneQ(circuit).numOneQGates(), 2u);
}

TEST(CancelAdjacentTest, BlocksBreakCancellation)
{
    Circuit circuit(2);
    circuit.append(OneQGate{OneQKind::H, 0, 0.0});
    circuit.append(CzGate{0, 1});
    circuit.append(OneQGate{OneQKind::H, 0, 0.0});
    // H gates in different layers (a CZ block between) must survive.
    const Circuit simplified = cancelAdjacentOneQ(circuit);
    EXPECT_EQ(simplified.numOneQGates(), 2u);
    EXPECT_EQ(simplified.numCzGates(), 1u);
    EXPECT_EQ(simplified.numBlocks(), 1u);
}

TEST(GateCountsTest, PerQubitTotals)
{
    Circuit circuit(3);
    circuit.append(OneQGate{OneQKind::H, 0, 0.0});
    circuit.append(CzGate{0, 1});
    circuit.append(CzGate{0, 2});
    const auto counts = gateCountsPerQubit(circuit);
    EXPECT_EQ(counts, (std::vector<std::size_t>{3, 1, 1}));
}

TEST(CircuitDepthTest, CountsLayersAndBlockMultiplicity)
{
    Circuit circuit(3);
    circuit.append(OneQGate{OneQKind::H, 0, 0.0});   // depth 1
    circuit.append(OneQGate{OneQKind::H, 0, 0.0});   // stacked: depth 2
    circuit.append(CzGate{0, 1});                    // block:
    circuit.append(CzGate{0, 2});                    //   qubit 0 twice -> 2
    EXPECT_EQ(circuitDepth(circuit), 4u);
    EXPECT_EQ(circuitDepth(Circuit(2)), 0u);
}

TEST(CircuitDepthTest, QftDepthIsQuadratic)
{
    const Circuit qft = makeQft(8);
    // 8 H (each own layer-ish) + 28 sequential CPs + deferred rz layers.
    EXPECT_GE(circuitDepth(qft), 28u + 8u);
}

} // namespace
} // namespace powermove
