/**
 * @file
 * Tests for the metrics registry: handle identity, counter/gauge/
 * histogram semantics, quantile estimation, and the Prometheus / JSON
 * exports.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace powermove::obs {
namespace {

TEST(CounterTest, AccumulatesMonotonically)
{
    Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);
}

TEST(GaugeTest, SetAndAddInterleave)
{
    Gauge gauge;
    EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
    gauge.set(10.0);
    gauge.add(-2.5);
    EXPECT_DOUBLE_EQ(gauge.value(), 7.5);
    gauge.set(3.0);
    EXPECT_DOUBLE_EQ(gauge.value(), 3.0);
}

TEST(HistogramTest, BucketsCountAndSum)
{
    Histogram histogram({10.0, 100.0, 1000.0});
    histogram.observe(5.0);    // bucket <= 10
    histogram.observe(10.0);   // boundary lands in its own bucket
    histogram.observe(50.0);   // bucket <= 100
    histogram.observe(5000.0); // +Inf bucket

    EXPECT_EQ(histogram.count(), 4u);
    EXPECT_DOUBLE_EQ(histogram.sum(), 5065.0);

    const std::vector<std::uint64_t> buckets = histogram.bucketCounts();
    ASSERT_EQ(buckets.size(), 4u); // 3 bounds + Inf
    EXPECT_EQ(buckets[0], 2u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 0u);
    EXPECT_EQ(buckets[3], 1u);
}

TEST(HistogramTest, PercentileInterpolatesAndClamps)
{
    Histogram histogram({10.0, 20.0, 30.0});
    for (int i = 0; i < 10; ++i)
        histogram.observe(15.0); // all in the (10, 20] bucket

    // Everything lives in one bucket: every quantile interpolates
    // inside (10, 20], and beyond-last-boundary clamping never exceeds
    // the final bound.
    EXPECT_GT(histogram.percentile(0.5), 10.0);
    EXPECT_LE(histogram.percentile(0.5), 20.0);
    EXPECT_LE(histogram.percentile(0.99), 20.0);

    Histogram overflow({10.0});
    overflow.observe(99.0); // +Inf bucket
    EXPECT_DOUBLE_EQ(overflow.percentile(0.5), 10.0); // clamps to last

    Histogram empty({10.0});
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
}

TEST(PercentileOfSortedTest, MatchesFractionalRankDefinition)
{
    EXPECT_DOUBLE_EQ(percentileOfSorted({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(percentileOfSorted({7.0}, 0.0), 7.0);
    EXPECT_DOUBLE_EQ(percentileOfSorted({7.0}, 1.0), 7.0);

    const std::vector<double> sorted{10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 0.0), 10.0);
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 1.0), 40.0);
    // rank = q * (n - 1) = 1.5 -> halfway between 20 and 30.
    EXPECT_DOUBLE_EQ(percentileOfSorted(sorted, 0.5), 25.0);
}

TEST(DefaultBoundsTest, AreStrictlyIncreasing)
{
    for (const std::vector<double> &bounds :
         {defaultLatencyBoundsUs(), passWallBoundsUs()}) {
        ASSERT_GE(bounds.size(), 2u);
        for (std::size_t i = 1; i < bounds.size(); ++i)
            EXPECT_LT(bounds[i - 1], bounds[i]);
    }
}

TEST(MetricsRegistryTest, ResolvesStableHandlesByNameAndLabels)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("requests_total", {{"tier", "memory"}});
    Counter &b = registry.counter("requests_total", {{"tier", "memory"}});
    Counter &c = registry.counter("requests_total", {{"tier", "disk"}});
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);

    Histogram &h1 = registry.histogram("latency_us", {1.0, 2.0});
    Histogram &h2 = registry.histogram("latency_us", {9.0, 99.0});
    EXPECT_EQ(&h1, &h2); // first registration's boundaries win
    EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistryTest, KindConflictThrows)
{
    MetricsRegistry registry;
    registry.counter("thing");
    EXPECT_THROW(registry.gauge("thing"), Error);
    EXPECT_THROW(registry.histogram("thing", {1.0}), Error);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndRecording)
{
    MetricsRegistry registry;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&registry] {
            Counter &counter = registry.counter("shared_total");
            for (int i = 0; i < 1000; ++i)
                counter.add();
        });
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_EQ(registry.counter("shared_total").value(), 4000u);
}

TEST(MetricsRegistryTest, PrometheusExposition)
{
    MetricsRegistry registry;
    registry.counter("jobs_total", {{"tier", "memory"}}).add(3);
    registry.gauge("queue_depth").set(7.0);
    Histogram &h = registry.histogram("wait_us", {10.0, 100.0});
    h.observe(5.0);
    h.observe(50.0);

    const std::string text = registry.toPrometheusText();
    EXPECT_NE(text.find("# TYPE jobs_total counter"), std::string::npos);
    EXPECT_NE(text.find("jobs_total{tier=\"memory\"} 3"), std::string::npos);
    EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
    EXPECT_NE(text.find("queue_depth 7"), std::string::npos);
    EXPECT_NE(text.find("# TYPE wait_us histogram"), std::string::npos);
    EXPECT_NE(text.find("wait_us_bucket{le=\"10\"} 1"), std::string::npos);
    EXPECT_NE(text.find("wait_us_bucket{le=\"100\"} 2"), std::string::npos);
    EXPECT_NE(text.find("wait_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
    EXPECT_NE(text.find("wait_us_count 2"), std::string::npos);
    EXPECT_NE(text.find("wait_us_sum 55"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonExport)
{
    MetricsRegistry registry;
    registry.counter("jobs_total", {{"tier", "disk"}}).add(2);
    registry.gauge("depth").set(1.5);
    registry.histogram("wait_us", {10.0}).observe(4.0);

    const std::string json = registry.toJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"jobs_total\""), std::string::npos);
    EXPECT_NE(json.find("\"tier\""), std::string::npos);
    EXPECT_NE(json.find("\"disk\""), std::string::npos);
    EXPECT_NE(json.find("\"p95\""), std::string::npos);

    // Crude structural sanity: balanced braces and brackets.
    long braces = 0, brackets = 0;
    for (const char c : json) {
        braces += c == '{' ? 1 : c == '}' ? -1 : 0;
        brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

} // namespace
} // namespace powermove::obs
