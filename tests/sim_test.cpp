/** @file Unit tests for the state-vector simulator. */

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sim/statevector.hpp"

namespace powermove {
namespace {

constexpr double kEps = 1e-12;

TEST(StateVectorTest, InitialStateIsZeroKet)
{
    const StateVector state(3);
    EXPECT_EQ(state.dimension(), 8u);
    EXPECT_NEAR(std::norm(state.amplitude(0)), 1.0, kEps);
    for (std::size_t i = 1; i < 8; ++i)
        EXPECT_NEAR(std::norm(state.amplitude(i)), 0.0, kEps);
}

TEST(StateVectorTest, SizeLimitsEnforced)
{
    EXPECT_THROW(StateVector(0), ConfigError);
    EXPECT_THROW(StateVector(21), ConfigError);
}

TEST(StateVectorTest, HadamardCreatesEqualSuperposition)
{
    StateVector state(1);
    state.apply(OneQGate{OneQKind::H, 0, 0.0});
    EXPECT_NEAR(std::norm(state.amplitude(0)), 0.5, kEps);
    EXPECT_NEAR(std::norm(state.amplitude(1)), 0.5, kEps);
    // HH = I.
    state.apply(OneQGate{OneQKind::H, 0, 0.0});
    EXPECT_NEAR(std::norm(state.amplitude(0)), 1.0, kEps);
}

TEST(StateVectorTest, XFlipsBasisState)
{
    StateVector state(2);
    state.apply(OneQGate{OneQKind::X, 1, 0.0});
    EXPECT_NEAR(std::norm(state.amplitude(0b10)), 1.0, kEps);
    EXPECT_NEAR(state.probabilityOfOne(1), 1.0, kEps);
    EXPECT_NEAR(state.probabilityOfOne(0), 0.0, kEps);
}

TEST(StateVectorTest, CzPhasesOnlyTheOneOneComponent)
{
    StateVector state(2);
    state.apply(OneQGate{OneQKind::H, 0, 0.0});
    state.apply(OneQGate{OneQKind::H, 1, 0.0});
    state.apply(CzGate{0, 1});
    EXPECT_NEAR(state.amplitude(0b11).real(), -0.5, kEps);
    EXPECT_NEAR(state.amplitude(0b01).real(), 0.5, kEps);
    EXPECT_NEAR(state.norm(), 1.0, kEps);
}

TEST(StateVectorTest, SSquaredIsZ)
{
    StateVector s_twice(1);
    s_twice.apply(OneQGate{OneQKind::H, 0, 0.0});
    s_twice.apply(OneQGate{OneQKind::S, 0, 0.0});
    s_twice.apply(OneQGate{OneQKind::S, 0, 0.0});

    StateVector z_once(1);
    z_once.apply(OneQGate{OneQKind::H, 0, 0.0});
    z_once.apply(OneQGate{OneQKind::Z, 0, 0.0});
    EXPECT_NEAR(StateVector::overlap(s_twice, z_once), 1.0, kEps);
}

TEST(StateVectorTest, TSquaredIsS)
{
    StateVector t_twice(1);
    t_twice.apply(OneQGate{OneQKind::H, 0, 0.0});
    t_twice.apply(OneQGate{OneQKind::T, 0, 0.0});
    t_twice.apply(OneQGate{OneQKind::T, 0, 0.0});

    StateVector s_once(1);
    s_once.apply(OneQGate{OneQKind::H, 0, 0.0});
    s_once.apply(OneQGate{OneQKind::S, 0, 0.0});
    EXPECT_NEAR(StateVector::overlap(t_twice, s_once), 1.0, kEps);
}

TEST(StateVectorTest, RotationsInvertWithNegatedAngle)
{
    Rng rng(5);
    for (const auto kind : {OneQKind::Rx, OneQKind::Ry, OneQKind::Rz}) {
        StateVector state = StateVector::random(3, rng);
        const StateVector before = state;
        state.apply(OneQGate{kind, 1, 0.77});
        state.apply(OneQGate{kind, 1, -0.77});
        EXPECT_NEAR(StateVector::overlap(state, before), 1.0, kEps);
    }
}

TEST(StateVectorTest, BellStateViaHadamardConjugatedCz)
{
    // H(1); CZ(0,1); H(1) after H(0) = CX(0,1) on |00>: Bell state.
    StateVector state(2);
    state.apply(OneQGate{OneQKind::H, 0, 0.0});
    state.apply(OneQGate{OneQKind::H, 1, 0.0});
    state.apply(CzGate{0, 1});
    state.apply(OneQGate{OneQKind::H, 1, 0.0});
    EXPECT_NEAR(std::norm(state.amplitude(0b00)), 0.5, kEps);
    EXPECT_NEAR(std::norm(state.amplitude(0b11)), 0.5, kEps);
    EXPECT_NEAR(std::norm(state.amplitude(0b01)), 0.0, kEps);
    EXPECT_NEAR(std::norm(state.amplitude(0b10)), 0.0, kEps);
}

TEST(StateVectorTest, RandomStateIsNormalized)
{
    Rng rng(11);
    const StateVector state = StateVector::random(5, rng);
    EXPECT_NEAR(state.norm(), 1.0, kEps);
}

TEST(StateVectorTest, OverlapBoundsAndSelfOverlap)
{
    Rng rng(13);
    const StateVector a = StateVector::random(4, rng);
    const StateVector b = StateVector::random(4, rng);
    EXPECT_NEAR(StateVector::overlap(a, a), 1.0, kEps);
    const double cross = StateVector::overlap(a, b);
    EXPECT_GE(cross, 0.0);
    EXPECT_LE(cross, 1.0 + kEps);
}

TEST(StateVectorTest, GlobalPhaseInsensitivity)
{
    // Rz(2pi) = -I: a pure global phase; overlap must still be 1.
    Rng rng(17);
    StateVector state = StateVector::random(2, rng);
    const StateVector before = state;
    state.apply(OneQGate{OneQKind::Rz, 0, 2.0 * std::numbers::pi});
    EXPECT_NEAR(StateVector::overlap(state, before), 1.0, kEps);
}

TEST(StateVectorTest, UnitarityPreservedOverRandomCircuit)
{
    Rng rng(19);
    StateVector state = StateVector::random(4, rng);
    for (int i = 0; i < 50; ++i) {
        const auto q = static_cast<QubitId>(rng.nextBelow(4));
        state.apply(OneQGate{OneQKind::Ry, q, rng.nextDouble()});
        const auto p = static_cast<QubitId>(rng.nextBelow(4));
        if (p != q)
            state.apply(CzGate{p, q});
    }
    EXPECT_NEAR(state.norm(), 1.0, 1e-9);
}

} // namespace
} // namespace powermove
