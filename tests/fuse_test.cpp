/** @file Tests for commutation-aware block fusion. */

#include <gtest/gtest.h>

#include "circuit/fuse.hpp"
#include "circuit/stats.hpp"
#include "compiler/powermove.hpp"
#include "isa/validator.hpp"
#include "qasm/converter.hpp"
#include "workloads/suite.hpp"

namespace powermove {
namespace {

TEST(IsDiagonalTest, Classification)
{
    EXPECT_TRUE(isDiagonal(OneQKind::Z));
    EXPECT_TRUE(isDiagonal(OneQKind::S));
    EXPECT_TRUE(isDiagonal(OneQKind::Sdg));
    EXPECT_TRUE(isDiagonal(OneQKind::T));
    EXPECT_TRUE(isDiagonal(OneQKind::Tdg));
    EXPECT_TRUE(isDiagonal(OneQKind::Rz));
    EXPECT_FALSE(isDiagonal(OneQKind::H));
    EXPECT_FALSE(isDiagonal(OneQKind::X));
    EXPECT_FALSE(isDiagonal(OneQKind::Rx));
    EXPECT_FALSE(isDiagonal(OneQKind::U));
}

TEST(FuseTest, DiagonalLayerBetweenBlocksMerges)
{
    Circuit circuit(4);
    circuit.append(CzGate{0, 1});
    circuit.append(OneQGate{OneQKind::Rz, 0, 0.5}); // diagonal: commutes
    circuit.append(CzGate{2, 3});
    const Circuit fused = fuseCommutableBlocks(circuit);
    EXPECT_EQ(fused.numBlocks(), 1u);
    EXPECT_EQ(fused.numCzGates(), 2u);
    EXPECT_EQ(fused.numOneQGates(), 1u);
}

TEST(FuseTest, UntouchedQubitGateMerges)
{
    Circuit circuit(5);
    circuit.append(CzGate{0, 1});
    circuit.append(OneQGate{OneQKind::H, 4, 0.0}); // qubit 4 in no block
    circuit.append(CzGate{2, 3});
    EXPECT_EQ(fuseCommutableBlocks(circuit).numBlocks(), 1u);
}

TEST(FuseTest, HadamardOnSharedQubitBlocksFusion)
{
    Circuit circuit(2);
    circuit.append(CzGate{0, 1});
    circuit.append(OneQGate{OneQKind::H, 0, 0.0}); // touches both blocks
    circuit.append(CzGate{0, 1});
    EXPECT_EQ(fuseCommutableBlocks(circuit).numBlocks(), 2u);
}

TEST(FuseTest, HoistableBeforeFirstBlockOnly)
{
    // H on qubit 2 is not in block 1 ({0,1}) so it hoists; the blocks
    // merge even though qubit 2 is in block 2.
    Circuit circuit(3);
    circuit.append(CzGate{0, 1});
    circuit.append(OneQGate{OneQKind::H, 2, 0.0});
    circuit.append(CzGate{1, 2});
    const Circuit fused = fuseCommutableBlocks(circuit);
    EXPECT_EQ(fused.numBlocks(), 1u);
    // The H must now precede the merged block.
    EXPECT_TRUE(std::holds_alternative<OneQLayer>(fused.moments().front()));
}

TEST(FuseTest, SinkableAfterSecondBlockOnly)
{
    // X on qubit 0 is in block 1 (cannot hoist) but not in block 2
    // (can sink): merge with the X emitted after.
    Circuit circuit(4);
    circuit.append(CzGate{0, 1});
    circuit.append(OneQGate{OneQKind::X, 0, 0.0});
    circuit.append(CzGate{2, 3});
    const Circuit fused = fuseCommutableBlocks(circuit);
    EXPECT_EQ(fused.numBlocks(), 1u);
    EXPECT_TRUE(std::holds_alternative<CzBlock>(fused.moments().front()));
    EXPECT_TRUE(std::holds_alternative<OneQLayer>(fused.moments().back()));
}

TEST(FuseTest, NonCommutingGateInBothBlocksPreventsFusion)
{
    // X on qubit 0 can neither hoist (block 1 touches 0) nor sink
    // (block 2 touches 0): fusion must refuse.
    Circuit circuit(4);
    circuit.append(CzGate{0, 1});
    circuit.append(OneQGate{OneQKind::X, 0, 0.0});
    circuit.append(CzGate{0, 2});
    EXPECT_EQ(fuseCommutableBlocks(circuit).numBlocks(), 2u);
}

TEST(FuseTest, SunkGatesKeepPerQubitOrder)
{
    // X(0) can only sink (in block 1, not in block 2); the later Rz(0)
    // is hoist-eligible by kind but must follow the sunk X: both sink,
    // order preserved in the trailing layer.
    Circuit circuit(4);
    circuit.append(CzGate{0, 1});
    circuit.append(OneQGate{OneQKind::X, 0, 0.0});
    circuit.append(OneQGate{OneQKind::Rz, 0, 0.3});
    circuit.append(CzGate{2, 3});
    const Circuit fused = fuseCommutableBlocks(circuit);
    ASSERT_EQ(fused.numBlocks(), 1u);
    const auto &layer = std::get<OneQLayer>(fused.moments().back());
    ASSERT_EQ(layer.gates.size(), 2u);
    EXPECT_EQ(layer.gates[0].kind, OneQKind::X);
    EXPECT_EQ(layer.gates[1].kind, OneQKind::Rz);
}

TEST(FuseTest, ChainsOfBlocksCollapse)
{
    // Five blocks separated by diagonal gates collapse into one.
    Circuit circuit(10);
    for (QubitId q = 0; q + 1 < 10; q += 2) {
        circuit.append(CzGate{q, static_cast<QubitId>(q + 1)});
        circuit.append(OneQGate{OneQKind::T, q, 0.0});
    }
    const Circuit fused = fuseCommutableBlocks(circuit);
    EXPECT_EQ(fused.numBlocks(), 1u);
    EXPECT_EQ(fused.numCzGates(), 5u);
}

TEST(FuseTest, BarriersDissolve)
{
    Circuit circuit(4);
    circuit.append(CzGate{0, 1});
    circuit.barrier();
    circuit.append(CzGate{2, 3});
    EXPECT_EQ(circuit.numBlocks(), 2u);
    EXPECT_EQ(fuseCommutableBlocks(circuit).numBlocks(), 1u);
}

TEST(FuseTest, CpDecompositionFusesBackToOneBlock)
{
    // cp lowers to rz-sprinkled CZ pairs: fusion recovers a single
    // commutable block, halving the stage count.
    const auto loaded = qasm::loadQasm(
        "qreg q[2]; cp(0.5) q[0],q[1];");
    EXPECT_EQ(loaded.circuit.numBlocks(), 2u);
    const Circuit fused = fuseCommutableBlocks(loaded.circuit);
    EXPECT_EQ(fused.numBlocks(), 2u); // H's on the target block fusion
    // But a pure rzz chain fuses fully:
    const auto rzz = qasm::loadQasm(
        "qreg q[4]; rz(0.1) q[0]; cz q[0],q[1]; rz(0.2) q[1]; "
        "cz q[2],q[3]; rz(0.3) q[3]; cz q[0],q[2];");
    const Circuit rzz_fused = fuseCommutableBlocks(rzz.circuit);
    EXPECT_EQ(rzz_fused.numBlocks(), 1u);
}

TEST(FuseTest, FusedCircuitsCompileAndValidate)
{
    const auto spec = findBenchmark("QSIM-rand-0.3-10");
    const Circuit original = spec.build();
    const Circuit fused = fuseCommutableBlocks(original);
    EXPECT_LE(fused.numBlocks(), original.numBlocks());
    EXPECT_EQ(fused.numCzGates(), original.numCzGates());

    const Machine machine(spec.machine_config);
    const auto result = PowerMoveCompiler(machine).compile(fused);
    EXPECT_NO_THROW(validateAgainstCircuit(result.schedule, fused));
}

TEST(FuseTest, SuiteWideInvariants)
{
    for (const auto &spec : table2Suite()) {
        const Circuit original = spec.build();
        const Circuit fused = fuseCommutableBlocks(original);
        EXPECT_EQ(fused.numCzGates(), original.numCzGates()) << spec.name;
        EXPECT_EQ(fused.numOneQGates(), original.numOneQGates())
            << spec.name;
        EXPECT_LE(fused.numBlocks(), original.numBlocks()) << spec.name;
    }
}

TEST(FuseTest, EmptyAndOneQOnlyCircuits)
{
    EXPECT_TRUE(fuseCommutableBlocks(Circuit(3)).empty());
    Circuit only_1q(2);
    only_1q.append(OneQGate{OneQKind::H, 0, 0.0});
    const Circuit fused = fuseCommutableBlocks(only_1q);
    EXPECT_EQ(fused.numOneQGates(), 1u);
    EXPECT_EQ(fused.numBlocks(), 0u);
}

} // namespace
} // namespace powermove
