/** @file Tests for the dynamic qubit layout. */

#include <gtest/gtest.h>

#include "arch/layout.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace powermove {
namespace {

class LayoutTest : public ::testing::Test
{
  protected:
    LayoutTest() : machine_(MachineConfig::forQubits(9)), layout_(machine_, 9)
    {}

    Machine machine_;
    Layout layout_;
};

TEST_F(LayoutTest, StartsUnplaced)
{
    EXPECT_FALSE(layout_.allPlaced());
    EXPECT_EQ(layout_.siteOf(0), kInvalidSite);
    EXPECT_TRUE(layout_.isEmpty(0));
}

TEST_F(LayoutTest, PlaceAndQuery)
{
    layout_.place(3, 5);
    EXPECT_EQ(layout_.siteOf(3), 5u);
    EXPECT_EQ(layout_.occupancy(5), 1u);
    EXPECT_EQ(layout_.occupants(5)[0], 3u);
    EXPECT_EQ(layout_.occupants(5)[1], kNoQubit);
    EXPECT_EQ(layout_.zoneOf(3), ZoneKind::Compute);
}

TEST_F(LayoutTest, TwoQubitsShareComputeSite)
{
    layout_.place(0, 4);
    layout_.place(1, 4);
    EXPECT_EQ(layout_.occupancy(4), 2u);
    const auto pair = layout_.occupants(4);
    EXPECT_EQ(pair[0], 0u);
    EXPECT_EQ(pair[1], 1u);
}

TEST_F(LayoutTest, ComputeSiteCapacityIsTwo)
{
    layout_.place(0, 4);
    layout_.place(1, 4);
    EXPECT_THROW(layout_.place(2, 4), InternalError);
}

TEST_F(LayoutTest, StorageSiteCapacityIsOne)
{
    const SiteId storage = machine_.storageSites().front();
    layout_.place(0, storage);
    EXPECT_THROW(layout_.place(1, storage), InternalError);
}

TEST_F(LayoutTest, MoveToRelocates)
{
    layout_.place(0, 1);
    layout_.moveTo(0, 2);
    EXPECT_EQ(layout_.siteOf(0), 2u);
    EXPECT_TRUE(layout_.isEmpty(1));
    // Self-move is a no-op.
    layout_.moveTo(0, 2);
    EXPECT_EQ(layout_.siteOf(0), 2u);
}

TEST_F(LayoutTest, MoveRequiresPlacement)
{
    EXPECT_THROW(layout_.moveTo(0, 2), InternalError);
}

TEST_F(LayoutTest, PlaceTwiceRejected)
{
    layout_.place(0, 1);
    EXPECT_THROW(layout_.place(0, 2), InternalError);
}

TEST_F(LayoutTest, UnplaceFreesSlot)
{
    layout_.place(0, 1);
    layout_.place(1, 1);
    layout_.unplace(0);
    EXPECT_EQ(layout_.siteOf(0), kInvalidSite);
    EXPECT_EQ(layout_.occupancy(1), 1u);
    EXPECT_EQ(layout_.occupants(1)[0], 1u);
    EXPECT_THROW(layout_.unplace(0), InternalError);
}

TEST_F(LayoutTest, TransactionalSwapViaUnplace)
{
    layout_.place(0, 1);
    layout_.place(1, 2);
    // Swap both: remove everything, then reinsert.
    layout_.unplace(0);
    layout_.unplace(1);
    layout_.place(0, 2);
    layout_.place(1, 1);
    EXPECT_EQ(layout_.siteOf(0), 2u);
    EXPECT_EQ(layout_.siteOf(1), 1u);
}

TEST_F(LayoutTest, CountInZone)
{
    layout_.place(0, 0);
    layout_.place(1, machine_.storageSites().front());
    layout_.place(2, machine_.storageSites()[1]);
    EXPECT_EQ(layout_.countInZone(ZoneKind::Compute), 1u);
    EXPECT_EQ(layout_.countInZone(ZoneKind::Storage), 2u);
}

TEST_F(LayoutTest, OutOfRangeIdsPanic)
{
    EXPECT_THROW(layout_.siteOf(99), InternalError);
    EXPECT_THROW(layout_.place(99, 0), InternalError);
    EXPECT_THROW(layout_.place(0, 9999), InternalError);
    EXPECT_THROW(layout_.occupancy(9999), InternalError);
}

TEST(PlaceRowMajorTest, ComputePlacementIsRowMajor)
{
    const Machine machine(MachineConfig::forQubits(9));
    Layout layout(machine, 9);
    placeRowMajor(layout, ZoneKind::Compute);
    EXPECT_TRUE(layout.allPlaced());
    for (QubitId q = 0; q < 9; ++q) {
        EXPECT_EQ(layout.siteOf(q), q);
        EXPECT_EQ(layout.zoneOf(q), ZoneKind::Compute);
    }
}

TEST(PlaceRowMajorTest, StoragePlacementFillsNearestRowsFirst)
{
    const Machine machine(MachineConfig::forQubits(9));
    Layout layout(machine, 9);
    placeRowMajor(layout, ZoneKind::Storage);
    EXPECT_TRUE(layout.allPlaced());
    EXPECT_EQ(layout.countInZone(ZoneKind::Storage), 9u);
    // First qubit takes the storage site nearest the compute zone.
    EXPECT_EQ(machine.coordOf(layout.siteOf(0)).y, machine.storageTopRow());
}

TEST(PlaceRowMajorTest, OverfullZoneRejected)
{
    const Machine machine(MachineConfig::forQubits(9)); // 9 compute sites
    Layout layout(machine, 10);
    EXPECT_THROW(placeRowMajor(layout, ZoneKind::Compute), ConfigError);
}

/**
 * Churn property: any legal sequence of park/evict/claim operations —
 * modeled as random place/moveTo/unplace churn like the routers apply
 * — never double-occupies a site beyond its zone capacity, keeps every
 * occupant list consistent with siteOf(), and conserves the
 * countInZone totals (placed = compute + storage). This is the
 * occupancy contract the reuse subsystem's ZoneOccupancy plans
 * against.
 */
TEST(LayoutChurnProperty, RandomChurnPreservesZoneInvariants)
{
    const Machine machine(MachineConfig::forQubits(12));
    const std::size_t num_qubits = 12;

    for (const std::uint64_t seed : {1u, 7u, 42u, 1234u}) {
        Rng rng(seed);
        Layout layout(machine, num_qubits);
        std::size_t placed = 0;

        const auto random_site_with_room = [&]() -> SiteId {
            // Rejection-sample a site with spare capacity; the lattice
            // always has room for 12 qubits.
            for (;;) {
                const auto site = static_cast<SiteId>(
                    rng.nextBelow(machine.numSites()));
                const std::size_t cap =
                    machine.zoneOf(site) == ZoneKind::Compute ? 2 : 1;
                if (layout.occupancy(site) < cap)
                    return site;
            }
        };

        for (int op = 0; op < 2000; ++op) {
            const auto q =
                static_cast<QubitId>(rng.nextBelow(num_qubits));
            if (layout.siteOf(q) == kInvalidSite) {
                layout.place(q, random_site_with_room()); // claim
                ++placed;
            } else if (rng.nextBool(0.5)) {
                layout.moveTo(q, random_site_with_room()); // park/evict
            } else {
                layout.unplace(q);
                --placed;
            }

            // Capacity and occupant-list consistency at every site.
            std::size_t census = 0;
            for (SiteId site = 0; site < machine.numSites(); ++site) {
                const std::size_t occ = layout.occupancy(site);
                const std::size_t cap =
                    machine.zoneOf(site) == ZoneKind::Compute ? 2 : 1;
                ASSERT_LE(occ, cap) << "seed " << seed << " op " << op;
                const auto occupants = layout.occupants(site);
                for (std::size_t slot = 0; slot < occ; ++slot) {
                    ASSERT_NE(occupants[slot], kNoQubit);
                    ASSERT_EQ(layout.siteOf(occupants[slot]), site);
                }
                census += occ;
            }
            ASSERT_EQ(census, placed) << "seed " << seed << " op " << op;

            // Zone totals conserve the placed count.
            ASSERT_EQ(layout.countInZone(ZoneKind::Compute) +
                          layout.countInZone(ZoneKind::Storage),
                      placed)
                << "seed " << seed << " op " << op;
        }
    }
}

} // namespace
} // namespace powermove
