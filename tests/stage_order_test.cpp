/** @file Tests for the zone-aware stage scheduler (Sec. 4.2). */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "schedule/stage_order.hpp"

namespace powermove {
namespace {

Stage
stageOf(std::initializer_list<CzGate> gates)
{
    Stage stage;
    for (const auto &gate : gates)
        stage.gates.push_back(gate.canonical());
    return stage;
}

TEST(TransitionCostTest, IdenticalSetsCostZero)
{
    const std::vector<QubitId> q{1, 2, 3};
    EXPECT_DOUBLE_EQ(stageTransitionCost(q, q, 0.5), 0.0);
}

TEST(TransitionCostTest, AsymmetricWeighting)
{
    const std::vector<QubitId> current{1, 2};
    const std::vector<QubitId> next{3, 4};
    // Two qubits enter storage (weight 1), two leave it (weight alpha).
    EXPECT_DOUBLE_EQ(stageTransitionCost(current, next, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(stageTransitionCost(current, next, 1.0), 4.0);
}

TEST(TransitionCostTest, SubsetDirections)
{
    const std::vector<QubitId> small{1, 2};
    const std::vector<QubitId> big{1, 2, 3, 4};
    // Growing the active set only pays the alpha-weighted term...
    EXPECT_DOUBLE_EQ(stageTransitionCost(small, big, 0.5), 1.0);
    // ...while shrinking pays full weight per parked qubit.
    EXPECT_DOUBLE_EQ(stageTransitionCost(big, small, 0.5), 2.0);
}

TEST(TransitionCostTest, EmptySets)
{
    EXPECT_DOUBLE_EQ(stageTransitionCost({}, {1, 2}, 0.5), 1.0);
    EXPECT_DOUBLE_EQ(stageTransitionCost({1, 2}, {}, 0.5), 2.0);
    EXPECT_DOUBLE_EQ(stageTransitionCost({}, {}, 0.5), 0.0);
}

TEST(OrderStagesTest, EmptyAndSingleton)
{
    EXPECT_TRUE(orderStages({}).empty());
    const auto one = orderStages({stageOf({{0, 1}})});
    ASSERT_EQ(one.size(), 1u);
}

TEST(OrderStagesTest, FirstStageHasFewestQubits)
{
    std::vector<Stage> stages = {
        stageOf({{0, 1}, {2, 3}, {4, 5}}),
        stageOf({{6, 7}}),
        stageOf({{0, 2}, {1, 3}}),
    };
    const auto ordered = orderStages(std::move(stages));
    EXPECT_EQ(ordered.front().gates.size(), 1u);
    EXPECT_EQ(ordered.front().gates[0], (CzGate{6, 7}));
}

TEST(OrderStagesTest, GreedyPrefersOverlappingSuccessor)
{
    // After {0,1}, the stage {0,2} (one qubit in common) should beat
    // {4,5} (fully disjoint).
    std::vector<Stage> stages = {
        stageOf({{0, 1}}),
        stageOf({{4, 5}}),
        stageOf({{0, 2}}),
    };
    const auto ordered = orderStages(std::move(stages));
    ASSERT_EQ(ordered.size(), 3u);
    EXPECT_EQ(ordered[0].gates[0], (CzGate{0, 1}));
    EXPECT_EQ(ordered[1].gates[0], (CzGate{0, 2}));
    EXPECT_EQ(ordered[2].gates[0], (CzGate{4, 5}));
}

TEST(OrderStagesTest, PreservesStageMultiset)
{
    std::vector<Stage> stages = {
        stageOf({{0, 1}, {2, 3}}),
        stageOf({{1, 2}}),
        stageOf({{0, 3}}),
        stageOf({{1, 3}, {0, 2}}),
    };
    std::size_t gates_before = 0;
    for (const auto &stage : stages)
        gates_before += stage.gates.size();

    const auto ordered = orderStages(std::move(stages));
    std::size_t gates_after = 0;
    for (const auto &stage : ordered)
        gates_after += stage.gates.size();
    EXPECT_EQ(ordered.size(), 4u);
    EXPECT_EQ(gates_after, gates_before);
}

TEST(OrderStagesTest, DeterministicTieBreak)
{
    std::vector<Stage> stages = {
        stageOf({{0, 1}}),
        stageOf({{2, 3}}),
        stageOf({{4, 5}}),
    };
    const auto a = orderStages(stages);
    const auto b = orderStages(stages);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].gates, b[i].gates);
}

TEST(OrderStagesTest, AlphaValidation)
{
    std::vector<Stage> stages = {stageOf({{0, 1}}), stageOf({{2, 3}})};
    EXPECT_THROW(orderStages(stages, StageOrderOptions{0.0}), ConfigError);
    EXPECT_THROW(orderStages(stages, StageOrderOptions{-1.0}), ConfigError);
    EXPECT_THROW(orderStages(stages, StageOrderOptions{1.5}), ConfigError);
    EXPECT_NO_THROW(orderStages(stages, StageOrderOptions{1.0}));
}

TEST(OrderStagesTest, LowAlphaPrefersGrowingActiveSet)
{
    // From {0,1}: candidate A activates two new qubits while keeping the
    // current ones ({0,1,2,3} -> cost 2*alpha); candidate B swaps to a
    // disjoint pair ({2,3} -> cost 2 + 2*alpha). A must win for any
    // alpha; with alpha small the margin grows.
    std::vector<Stage> stages = {
        stageOf({{0, 1}}),
        stageOf({{2, 3}}),
        stageOf({{0, 2}, {1, 3}}),
    };
    const auto ordered = orderStages(std::move(stages),
                                     StageOrderOptions{0.1});
    EXPECT_EQ(ordered[1].gates.size(), 2u);
}

} // namespace
} // namespace powermove
